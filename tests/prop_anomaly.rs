//! Anomaly-detector properties (xrand-seeded) and the passivity
//! guarantee.
//!
//! Two layers of contract:
//!
//! - **Pure-function properties** of [`obs::detect`]: on randomized
//!   sample batches, flags are invariant under permutation of the batch,
//!   raising the threshold only ever removes flags, and every flag's
//!   score strictly clears the threshold it was produced under.
//! - **Passivity**: arming the detector on a fault-free run changes
//!   *nothing* — zero `anomaly` events, and the journal stays
//!   byte-identical to the detector-off run, across seeds and on the
//!   committed BT golden (`tests/fixtures/bt4_chameleon.journal.jsonl`).
//!   The detector observes the health plane; it must never perturb a
//!   healthy run's behavior or its recorded artifacts.

use std::path::PathBuf;
use std::sync::Arc;

use chameleon_repro::mpisim::FaultPlan;
use chameleon_repro::obs::detect::{detect, DetectorConfig, HealthSample};
use chameleon_repro::obs::{query, AnomalyKind, EventKind};
use chameleon_repro::workloads::degraded::DegradedRing;
use chameleon_repro::workloads::driver::{run, Mode, Overrides, ScaledWorkload};
use chameleon_repro::workloads::{bt::Bt, Class};
use xrand::Xoshiro256;

/// Random batch: 2–4 cohorts of 2–8 members around cohort-specific
/// baselines, with a few injected outliers (the only candidates that can
/// legitimately flag).
fn random_batch(rng: &mut Xoshiro256) -> Vec<HealthSample> {
    let mut samples = Vec::new();
    let mut rank = 0u64;
    for cluster in 0..rng.range_u64(2, 5) {
        let base_compute = rng.range_u64(50_000, 2_000_000);
        let members = rng.range_usize(2, 9);
        for _ in 0..members {
            let mut compute_ns = base_compute + rng.below(base_compute / 10 + 1);
            let mut retransmits = rng.below(3);
            if rng.gen_bool(0.15) {
                compute_ns *= rng.range_u64(3, 10); // straggler
            }
            if rng.gen_bool(0.15) {
                retransmits += rng.range_u64(20, 60); // flaky link
            }
            samples.push(HealthSample {
                rank,
                cluster,
                compute_ns,
                retransmits,
            });
            rank += 1;
        }
    }
    samples
}

#[test]
fn flags_are_invariant_under_batch_permutation() {
    let mut rng = Xoshiro256::seed_from_u64(0x0b5e_7e11);
    for _ in 0..200 {
        let cfg = DetectorConfig::default();
        let mut samples = random_batch(&mut rng);
        let canonical = detect(&cfg, &samples);
        for _ in 0..4 {
            rng.shuffle(&mut samples);
            assert_eq!(
                detect(&cfg, &samples),
                canonical,
                "sample order leaked into flags or scores"
            );
        }
    }
}

#[test]
fn raising_threshold_only_removes_flags() {
    let mut rng = Xoshiro256::seed_from_u64(0x7a9e_5107);
    for _ in 0..200 {
        let samples = random_batch(&mut rng);
        let mut prev: Option<Vec<(u64, AnomalyKind)>> = None;
        for threshold in [1.0, 2.0, 4.0, 8.0, 16.0, 64.0] {
            let cfg = DetectorConfig {
                threshold,
                ..DetectorConfig::default()
            };
            let flags = detect(&cfg, &samples);
            for f in &flags {
                assert!(
                    f.score > threshold,
                    "flag {f:?} does not clear its own threshold {threshold}"
                );
            }
            let now: Vec<(u64, AnomalyKind)> = flags.iter().map(|f| (f.rank, f.kind)).collect();
            if let Some(prev) = &prev {
                assert!(
                    now.iter().all(|f| prev.contains(f)),
                    "threshold {threshold} added flags: {now:?} not within {prev:?}"
                );
            }
            prev = Some(now);
        }
    }
}

/// Run the DRING scenario workload with a zero-rate (fault-free) plan
/// armed, with and without the detector, and return both journals.
fn fault_free_pair(seed: u64) -> (String, String) {
    let run_with = |detector: Option<DetectorConfig>| {
        let rep = run(
            Arc::new(ScaledWorkload::new(DegradedRing, 1)),
            Class::A,
            6,
            Mode::Chameleon,
            Overrides {
                journal: true,
                faults: Some(FaultPlan::new(seed)),
                detector,
                ..Default::default()
            },
        );
        rep.journal.expect("journal requested")
    };
    let off = run_with(None);
    let on = run_with(Some(DetectorConfig::default()));
    assert_eq!(
        query::anomalies(&on).len(),
        0,
        "fault-free run emitted anomaly events under seed {seed}"
    );
    assert_eq!(
        on.events()
            .filter(|(_, e)| matches!(e.kind, EventKind::Anomaly { .. }))
            .count(),
        0
    );
    (off.to_jsonl(), on.to_jsonl())
}

#[test]
fn armed_detector_is_passive_on_fault_free_runs() {
    // Byte-identity across 10 seeds: SPMD cohort members do identical
    // work, so every robust deviation is exactly zero and the floored
    // scale keeps epsilon noise below any flag. If arming the detector
    // ever changed a healthy run's journal, the mitigation ladder would
    // be reshaping the very behavior it claims to only observe.
    for seed in 1..=10u64 {
        let (off, on) = fault_free_pair(seed);
        assert_eq!(
            off, on,
            "detector arming changed a fault-free journal (seed {seed})"
        );
    }
}

#[test]
fn armed_detector_reproduces_the_committed_bt_golden() {
    // The strongest passivity statement: the armed run regenerates the
    // *committed* detector-off golden byte-for-byte (same fixture that
    // golden_traces.rs pins), so detector-on cannot drift from the seed
    // artifacts even across refactors of either side.
    let rep = run(
        Arc::new(ScaledWorkload::new(Bt, 25)),
        Class::A,
        4,
        Mode::Chameleon,
        Overrides {
            journal: true,
            detector: Some(DetectorConfig::default()),
            ..Default::default()
        },
    );
    let journal = rep.journal.expect("journal requested");
    assert_eq!(query::anomalies(&journal).len(), 0);
    let fixture = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/bt4_chameleon.journal.jsonl");
    let want = std::fs::read_to_string(&fixture)
        .unwrap_or_else(|e| panic!("missing fixture {} ({e})", fixture.display()));
    assert_eq!(
        journal.to_jsonl(),
        want,
        "armed detector perturbed the committed fault-free golden"
    );
}
