//! Golden-trace regression fixtures.
//!
//! Checked-in trace files under `tests/fixtures/` pin down two things
//! byte-for-byte:
//!
//! - the text trace format (`scalatrace::format`) — serialization must
//!   not drift, or archived traces become unreadable;
//! - the merge output on a fixed SPMD-with-divergence input — the merge
//!   spec (orientation, trimming, leftmost LCS walk) must stay stable
//!   across refactors of its implementation.
//!
//! On intentional changes regenerate with:
//!
//! ```text
//! REGEN_GOLDEN=1 cargo test --test golden_traces
//! ```
//!
//! and review the fixture diff like source code.

use std::path::PathBuf;
use std::sync::Arc;

use chameleon_repro::mpisim::Comm;
use chameleon_repro::scalatrace::format;
use chameleon_repro::scalatrace::merge::{merge_all, merge_traces};
use chameleon_repro::scalatrace::{CompressedTrace, Endpoint, EventRecord, MpiOp};
use chameleon_repro::sigkit::StackSig;
use chameleon_repro::workloads::driver::{run, Mode, Overrides, ScaledWorkload};
use chameleon_repro::workloads::{bt::Bt, Class};

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Compare `text` against the named fixture, or rewrite the fixture when
/// `REGEN_GOLDEN` is set.
fn assert_golden(name: &str, text: &str) {
    let path = fixture_path(name);
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, text).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); regenerate with REGEN_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        text, want,
        "{name} drifted from its golden fixture; if the change is \
         intentional, regenerate with REGEN_GOLDEN=1 and review the diff"
    );
}

/// A small deterministic trace with every structural feature the format
/// has to carry: loops (incl. nested), rank sections, endpoint kinds, and
/// multi-sample time statistics.
fn structured_trace(rank: usize) -> CompressedTrace {
    let mut t = CompressedTrace::new();
    let ev = |op: MpiOp, sig: u64, dt: f64| EventRecord::new(op, StackSig(sig), rank, dt);
    t.append(ev(MpiOp::barrier(Comm::WORLD), 1, 1e-5));
    for i in 0..8 {
        t.append(ev(
            MpiOp::send(Endpoint::Relative(1), 7, 4096, Comm::WORLD),
            2,
            1e-6 * (1.0 + (i % 3) as f64),
        ));
        t.append(ev(
            MpiOp::recv(Endpoint::Relative(-1), 7, 4096, Comm::WORLD),
            3,
            2e-6,
        ));
    }
    t.append(ev(
        MpiOp::send(Endpoint::Absolute(0), 9, 64, Comm::WORLD),
        4,
        5e-6,
    ));
    t.append(ev(MpiOp::barrier(Comm::WORLD), 5, 1e-5));
    t
}

#[test]
fn format_golden_roundtrip() {
    let trace = structured_trace(0);
    let text = format::to_text(&trace);
    assert_golden("structured_trace.txt", &text);

    // Byte-identical roundtrip: parse back, reserialize, same bytes.
    let parsed = format::from_text(&text).expect("golden trace parses");
    assert_eq!(parsed, trace, "parse is lossless");
    assert_eq!(format::to_text(&parsed), text, "reserialization is stable");
}

#[test]
fn merge_output_golden() {
    // Four SPMD ranks whose middles diverge (odd ranks use a different
    // site for one op) — exercises fold, trim, and take paths at once.
    let variant = |rank: usize| {
        let mut t = structured_trace(rank);
        if rank % 2 == 1 {
            t.append(EventRecord::new(
                MpiOp::send(Endpoint::Relative(2), 11, 128, Comm::WORLD),
                StackSig(100 + rank as u64),
                rank,
                3e-6,
            ));
        }
        t.append(EventRecord::new(
            MpiOp::barrier(Comm::WORLD),
            StackSig(6),
            rank,
            1e-5,
        ));
        t
    };
    let traces: Vec<CompressedTrace> = (0..4).map(variant).collect();

    let pair = merge_traces(&traces[0], &traces[1]);
    assert_golden("merged_pair.txt", &format::to_text(&pair));

    let all = merge_all(traces.iter());
    let text = format::to_text(&all);
    assert_golden("merged_all4.txt", &text);

    // The merged trace itself roundtrips byte-identically.
    let parsed = format::from_text(&text).expect("merged golden parses");
    assert_eq!(format::to_text(&parsed), text);
}

#[test]
fn degraded_trace_golden() {
    // Shrink-and-continue pinned byte-for-byte: a fixed fault plan (rank
    // crash + lossy link) must always yield the *same* degraded online
    // trace — fault handling is part of the deterministic protocol, not a
    // best-effort scramble. Regenerate with REGEN_GOLDEN=1 only when the
    // fault model or the shrink protocol intentionally changes.
    use chameleon_repro::workloads::chaos::{chaos_plan, run_chaos};
    let out = run_chaos(6, 40, chaos_plan(1, 6));
    assert!(out.online_trace.dynamic_size() > 0);
    assert!(out.stats[0].as_ref().unwrap().degraded_slices >= 1);
    let text = format::to_text(&out.online_trace);
    assert_golden("chaos_degraded_p6_seed1.txt", &text);
    let parsed = format::from_text(&text).expect("degraded golden parses");
    assert_eq!(format::to_text(&parsed), text);
}

#[test]
fn journal_golden_roundtrip() {
    // The flight-recorder journal is a deterministic artifact like the
    // traces above: fixed seed -> byte-identical JSONL. The fixture pins
    // the schema (field order, number formatting, event taxonomy); the
    // round-trip pins the parser as its exact inverse.
    use chameleon_repro::obs::RunJournal;
    let run_once = || {
        let rep = run(
            Arc::new(ScaledWorkload::new(Bt, 25)),
            Class::A,
            4,
            Mode::Chameleon,
            Overrides {
                journal: true,
                ..Default::default()
            },
        );
        rep.journal.expect("journal requested")
    };
    let journal = run_once();
    let text = journal.to_jsonl();
    assert_golden("bt4_chameleon.journal.jsonl", &text);

    let parsed = RunJournal::from_jsonl(&text).expect("journal parses");
    assert_eq!(parsed, journal, "parse is lossless");
    assert_eq!(parsed.to_jsonl(), text, "reserialization is stable");

    let again = run_once();
    assert_eq!(
        again.to_jsonl(),
        text,
        "same-seed runs produce byte-identical journals"
    );

    // The metrics plane is part of the deterministic artifact: rank 0
    // emits one snapshot per marker reduction, with byte-stable payloads.
    let snapshots = journal
        .events()
        .filter(|(_, e)| matches!(e.kind, chameleon_repro::obs::EventKind::Snapshot { .. }))
        .count();
    assert!(
        snapshots > 0,
        "a recorded chameleon run must carry metric snapshots"
    );
}

#[test]
fn v1_journal_without_snapshots_still_parses() {
    // Schema compatibility: journals written before the metrics plane
    // existed (same magic, no `snapshot` lines) must keep parsing, and
    // must reserialize byte-identically — old artifacts stay readable.
    use chameleon_repro::obs::RunJournal;
    let path = fixture_path("bt4_chameleon_nosnap.journal.jsonl");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing v1 fixture {} ({e})", path.display()));
    let parsed = RunJournal::from_jsonl(&text).expect("pre-snapshot v1 journal parses");
    let snapshots = parsed
        .events()
        .filter(|(_, e)| matches!(e.kind, chameleon_repro::obs::EventKind::Snapshot { .. }))
        .count();
    assert_eq!(snapshots, 0, "v1 fixture predates the metrics plane");
    assert_eq!(
        parsed.to_jsonl(),
        text,
        "v1 journal reserializes byte-identically"
    );
}

#[test]
fn armed_journal_is_reproducible() {
    // Same property with a fault plan armed: drops, retries, a crash and
    // the resulting re-elections all land in the journal at the same
    // virtual times, run after run.
    use chameleon_repro::obs::RunJournal;
    use chameleon_repro::workloads::chaos::{chaos_plan, run_chaos_recorded};
    let a = run_chaos_recorded(6, 40, chaos_plan(1, 6)).journal.unwrap();
    let b = run_chaos_recorded(6, 40, chaos_plan(1, 6)).journal.unwrap();
    assert!(a.armed);
    assert_eq!(
        a.to_jsonl(),
        b.to_jsonl(),
        "armed same-seed journals are byte-identical"
    );
    let parsed = RunJournal::from_jsonl(&a.to_jsonl()).expect("armed journal parses");
    assert_eq!(parsed.to_jsonl(), a.to_jsonl());
}

#[test]
fn workload_trace_golden() {
    // End-to-end: the BT pattern traced through the simulator. Pins the
    // whole pipeline — simulation determinism, compression, reduction
    // merge — to one reviewable artifact.
    let rep = run(
        Arc::new(ScaledWorkload::new(Bt, 25)),
        Class::A,
        4,
        Mode::ScalaTrace,
        Overrides::default(),
    );
    let trace = rep.global_trace.expect("global trace");
    let text = format::to_text(&trace);
    assert_golden("bt4_scalatrace.txt", &text);
    let parsed = format::from_text(&text).expect("workload golden parses");
    assert_eq!(format::to_text(&parsed), text);
}
