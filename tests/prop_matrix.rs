//! Property suite for the scenario-matrix plan expander (xrand-seeded).
//!
//! The regression gate's whole premise is that a plan names a *fixed,
//! canonical* set of trials: `results.json` rows are keyed by trial ID,
//! baselines are committed once, and any drift in expansion order or ID
//! assignment would read as a spurious divergence. Three contracts carry
//! that premise, checked here over randomly generated plans:
//!
//! - **cardinality** — `expand()` yields exactly the cross product of the
//!   axis lengths, with all IDs distinct (nothing collapses silently);
//! - **schedule independence** — executing trials through the bounded
//!   worker pool returns results in canonical order for *any* worker
//!   count, so parallelism never leaks into the result table;
//! - **representation independence** — reordering a plan's axis lists
//!   (or its JSON keys) changes neither the trial IDs nor their order:
//!   the expansion is a pure function of the plan's *set* semantics.

use chameleon_repro::workloads::matrix::{run_pool, MatrixPlan};
use xrand::Xoshiro256;

/// A random valid crash-free plan: axis values drawn without replacement
/// (duplicates are rejected by validation) over driver-safe workloads.
fn random_plan(rng: &mut Xoshiro256) -> MatrixPlan {
    fn pick<T: Clone>(rng: &mut Xoshiro256, pool: &[T], n: usize) -> Vec<T> {
        let mut pool = pool.to_vec();
        rng.shuffle(&mut pool);
        pool.truncate(n);
        pool
    }
    let n = 1 + rng.usize_below(3);
    let workloads = pick(rng, &["BT", "SP", "LU", "CG", "CHAOS", "MERGE_NEAR"], n);
    // MERGE_* and crash faults exclude each other; stay crash-free and
    // keep the fault axis legal for every drawn workload.
    let faults = if workloads.iter().any(|w| w.starts_with("MERGE_")) {
        vec!["none"]
    } else {
        let n = 1 + rng.usize_below(2);
        pick(rng, &["none", "lossy"], n)
    };
    let n = 1 + rng.usize_below(4);
    let seeds = pick(rng, &[1u64, 7, 42, 0xBEEF, 0xC0FFEE], n);
    let n = 1 + rng.usize_below(3);
    let ranks = pick(rng, &[2usize, 4, 6, 8], n);
    let n = 1 + rng.usize_below(4);
    let classes = pick(rng, &["A", "B", "C", "D"], n);
    let n = 1 + rng.usize_below(2);
    let journal = pick(rng, &[true, false], n);
    let json = format!(
        r#"{{
            "name": "prop",
            "workloads": [{}],
            "classes": [{}],
            "ranks": [{}],
            "seeds": [{}],
            "faults": [{}],
            "journal": [{}]
        }}"#,
        quote_list(&workloads),
        quote_list(&classes),
        num_list(&ranks),
        num_list(&seeds),
        quote_list(&faults),
        journal
            .iter()
            .map(|b| b.to_string())
            .collect::<Vec<_>>()
            .join(", "),
    );
    let plan = MatrixPlan::from_json(&json).expect("generated plan parses");
    plan.validate().expect("generated plan validates");
    plan
}

fn quote_list(items: &[&str]) -> String {
    items
        .iter()
        .map(|s| format!("{s:?}"))
        .collect::<Vec<_>>()
        .join(", ")
}

fn num_list<T: std::fmt::Display>(items: &[T]) -> String {
    items
        .iter()
        .map(|n| n.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

#[test]
fn expansion_matches_cross_product_cardinality_with_unique_ids() {
    let mut rng = Xoshiro256::seed_from_u64(0x3A7_81C5);
    for _ in 0..200 {
        let plan = random_plan(&mut rng);
        let trials = plan.expand();
        assert_eq!(
            trials.len(),
            plan.cardinality(),
            "expansion must be exactly the cross product: {plan:?}"
        );
        let mut ids: Vec<&str> = trials.iter().map(|t| t.id.as_str()).collect();
        let sorted = ids.clone();
        ids.dedup();
        assert_eq!(
            ids.len(),
            trials.len(),
            "trial IDs must be unique: {plan:?}"
        );
        assert_eq!(ids, sorted, "canonical order must be the ID sort: {plan:?}");
    }
}

#[test]
fn pool_parallelism_never_reorders_trials() {
    let mut rng = Xoshiro256::seed_from_u64(0xDE7E_2311);
    for _ in 0..40 {
        let plan = random_plan(&mut rng);
        let trials = plan.expand();
        // A stand-in executor with scheduling jitter: if result order
        // depended on completion order, unequal worker counts would
        // disagree.
        let jitter: Vec<u64> = (0..trials.len()).map(|_| rng.below(5) * 200).collect();
        let reference: Vec<String> = trials.iter().map(|t| t.id.clone()).collect();
        for jobs in [1, 2, 5, 16] {
            let out = run_pool(&trials, jobs, |i, t| {
                std::thread::sleep(std::time::Duration::from_micros(jitter[i]));
                t.id.clone()
            });
            assert_eq!(
                out, reference,
                "worker count {jobs} must not reorder results"
            );
        }
    }
}

#[test]
fn trial_ids_are_stable_under_plan_field_reordering() {
    let mut rng = Xoshiro256::seed_from_u64(0x0F1E_55AB);
    for _ in 0..100 {
        let plan = random_plan(&mut rng);
        // Shuffle every axis list (the plan's set semantics are
        // unchanged) — the expansion must be identical.
        let mut shuffled = plan.clone();
        rng.shuffle(&mut shuffled.workloads);
        rng.shuffle(&mut shuffled.classes);
        rng.shuffle(&mut shuffled.ranks);
        rng.shuffle(&mut shuffled.seeds);
        rng.shuffle(&mut shuffled.faults);
        rng.shuffle(&mut shuffled.journal);
        assert_eq!(
            plan.expand(),
            shuffled.expand(),
            "axis order leaked into the expansion: {plan:?}"
        );
    }
}

#[test]
fn json_key_order_is_irrelevant() {
    // The same plan written with its keys permuted (and axis lists
    // reversed) parses to the same expansion.
    let a = MatrixPlan::from_json(
        r#"{
            "name": "kv",
            "workloads": ["BT", "CHAOS"],
            "ranks": [4, 2],
            "seeds": [3, 1],
            "faults": ["lossy", "none"],
            "journal": [true, false]
        }"#,
    )
    .unwrap();
    let b = MatrixPlan::from_json(
        r#"{
            "journal": [false, true],
            "faults": ["none", "lossy"],
            "seeds": [1, 3],
            "ranks": [2, 4],
            "workloads": ["CHAOS", "BT"],
            "name": "kv"
        }"#,
    )
    .unwrap();
    assert_eq!(a.expand(), b.expand());
}
