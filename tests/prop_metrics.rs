//! Property suite for the metrics-plane sketches (xrand-seeded).
//!
//! The snapshot reduction folds per-rank [`MetricSet`] deltas over the
//! radix tree, so the journal's byte-determinism rests on three algebraic
//! contracts the unit tests only spot-check:
//!
//! - `merge` is associative and commutative with the empty set as its
//!   identity — the fold's *shape* (tree arity, child order, dead-rank
//!   dropouts) can never change the reduced sketch;
//! - equal sketches serialize to equal bytes, so *any* merge order of the
//!   same multiset of deltas yields the identical wire frame and hence
//!   the identical `snapshot` journal line;
//! - a recorded quantile is the lower bound of its log bucket: never
//!   above the exact empirical quantile, and within the documented
//!   `2^-SUB_BITS` relative error below it (exact under `2*2^SUB_BITS`).
//!
//! Generators draw values across the full dynamic range (unit-bucket
//! integers through 2^50-scale durations) so both the exact and the
//! bucketed regimes are exercised every run.

use chameleon_repro::obs::metrics::{
    bucket_lo, bucket_of, Counter, HistId, MetricSet, NUM_BUCKETS, SUB_BITS,
};
use xrand::Xoshiro256;

/// A random metric set: every counter touched with probability 1/2, every
/// histogram fed 0..24 values spanning the exact and bucketed ranges.
fn random_set(rng: &mut Xoshiro256) -> MetricSet {
    let mut m = MetricSet::new();
    for c in Counter::ALL {
        if rng.gen_bool(0.5) {
            m.add(c, rng.below(1 << 30));
        }
    }
    for h in HistId::ALL {
        for _ in 0..rng.usize_below(24) {
            m.observe(h, random_value(rng));
        }
    }
    m
}

/// Values spread over the sketch's whole range: small exact integers,
/// mid-range, and up to 2^50 (a ~13-day duration in nanoseconds).
fn random_value(rng: &mut Xoshiro256) -> u64 {
    match rng.usize_below(3) {
        0 => rng.below(16),
        1 => rng.below(1 << 20),
        _ => rng.below(1 << 50),
    }
}

#[test]
fn merge_is_associative_and_commutative_with_identity() {
    let mut rng = Xoshiro256::seed_from_u64(0x5EED_A19E);
    for _ in 0..200 {
        let a = random_set(&mut rng);
        let b = random_set(&mut rng);
        let c = random_set(&mut rng);

        // (a + b) + c == a + (b + c)
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "merge is associative");

        // a + b == b + a
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge is commutative");

        // a + 0 == a, both ways.
        let mut a0 = a.clone();
        a0.merge(&MetricSet::new());
        assert_eq!(a0, a, "empty set is a right identity");
        let mut zero_a = MetricSet::new();
        zero_a.merge(&a);
        assert_eq!(zero_a, a, "empty set is a left identity");
    }
}

#[test]
fn merge_order_never_changes_serialized_bytes() {
    // The property the snapshot event leans on directly: however the
    // radix fold associates and orders the same per-rank deltas, the
    // reduced sketch encodes to the same bytes.
    let mut rng = Xoshiro256::seed_from_u64(0xB17E_0DE7);
    for _ in 0..100 {
        let parts: Vec<MetricSet> = (0..rng.range_usize(2, 9))
            .map(|_| random_set(&mut rng))
            .collect();

        // Reference: left fold in natural order.
        let mut reference = MetricSet::new();
        for p in &parts {
            reference.merge(p);
        }
        let want = reference.encode();

        for _ in 0..4 {
            // Random order...
            let mut order: Vec<usize> = (0..parts.len()).collect();
            rng.shuffle(&mut order);
            // ...and a random association: fold random pairs of partial
            // sums until one remains, like an arbitrary reduction tree.
            let mut pool: Vec<MetricSet> = order.iter().map(|&i| parts[i].clone()).collect();
            while pool.len() > 1 {
                let i = rng.usize_below(pool.len());
                let taken = pool.swap_remove(i);
                let j = rng.usize_below(pool.len());
                pool[j].merge(&taken);
            }
            assert_eq!(
                pool[0].encode(),
                want,
                "merge shape must not leak into the wire bytes"
            );
        }

        // And the wire frame round-trips losslessly.
        let (back, n) = MetricSet::decode_with_count(&reference.encode_with_count(7)).unwrap();
        assert_eq!((back, n), (reference, 7));
    }
}

#[test]
fn quantiles_respect_the_bucket_error_bound() {
    let mut rng = Xoshiro256::seed_from_u64(0x0DD_B0C5);
    for _ in 0..200 {
        let n = rng.range_usize(1, 64);
        let mut values: Vec<u64> = (0..n).map(|_| random_value(&mut rng)).collect();
        let mut m = MetricSet::new();
        for &v in &values {
            m.observe(HistId::RecvWaitNs, v);
        }
        values.sort_unstable();
        let h = m.hist(HistId::RecvWaitNs);

        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            // Exact empirical quantile under the same ceil-rank rule.
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            let exact = values[rank - 1];
            let got = h.quantile(q);
            assert!(
                got <= exact,
                "quantile reports a bucket lower bound: q={q} got={got} exact={exact}"
            );
            assert!(
                exact - got <= got >> SUB_BITS,
                "bucket error bound: q={q} got={got} exact={exact}"
            );
            if exact < (2 << SUB_BITS) {
                assert_eq!(got, exact, "unit buckets are exact below 2*2^SUB_BITS");
            }
        }
        assert_eq!(h.count(), n as u64);
        assert_eq!(h.max(), *values.last().unwrap());
    }

    // The bound above is inherited from the bucket geometry; pin that
    // geometry over random values too, not just the unit-test grid.
    for _ in 0..2000 {
        let v = rng.next_u64();
        let b = bucket_of(v);
        assert!(b < NUM_BUCKETS);
        let lo = bucket_lo(b);
        assert!(lo <= v && v - lo <= lo >> SUB_BITS, "v={v} b={b} lo={lo}");
    }
}
