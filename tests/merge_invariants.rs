//! Inter-node merge invariants, exercised on seeded randomized traces.
//!
//! The fast-path merge (prefilters + Hirschberg) and the full-table
//! reference oracle must both uphold the ScalaTrace merge contract:
//!
//! - merging is commutative and associative *up to structural equality*
//!   (the same events with the same rank coverage, and each rank's event
//!   sequence intact — node placement of unmatched events may differ);
//! - merging a trace with itself or with the empty trace is an identity;
//! - rank coverage of the output is exactly the union of the inputs';
//! - each input's per-rank event order is preserved verbatim.
//!
//! Every case is additionally run differentially: the fast path must be
//! byte-identical to the reference oracle.

use chameleon_repro::mpisim::Comm;
use chameleon_repro::scalatrace::merge::{
    merge_all, merge_traces, merge_traces_baseline, merge_traces_reference,
};
use chameleon_repro::scalatrace::{CompressedTrace, Endpoint, EventRecord, MpiOp};
use chameleon_repro::sigkit::StackSig;
use xrand::Xoshiro256;

fn ev(sig: u64, rank: usize) -> EventRecord {
    EventRecord::new(
        MpiOp::send(Endpoint::Relative(1), 0, 64, Comm::WORLD),
        StackSig(sig),
        rank,
        1e-6 * (sig as f64 + 1.0),
    )
}

/// Random site stream over a small alphabet — small alphabets force
/// repeats, loop folding, and ambiguous alignments.
fn random_trace(rng: &mut Xoshiro256, rank: usize, alphabet: u64, len: usize) -> CompressedTrace {
    let mut t = CompressedTrace::new();
    for _ in 0..len {
        t.append(ev(rng.below(alphabet) + 1, rank));
    }
    t
}

/// An SPMD variant: same site stream as `of`, recorded by `rank`, with
/// `flips` sites replaced by rank-private ones.
fn spmd_variant(
    rng: &mut Xoshiro256,
    of: &[u64],
    rank: usize,
    flips: usize,
) -> (CompressedTrace, Vec<u64>) {
    let mut sites = of.to_vec();
    for _ in 0..flips {
        if sites.is_empty() {
            break;
        }
        let at = rng.usize_below(sites.len());
        sites[at] = 1_000_000 + rank as u64 * 1000 + at as u64;
    }
    let mut t = CompressedTrace::new();
    for &s in &sites {
        t.append(ev(s, rank));
    }
    (t, sites)
}

/// The dynamic event stream a single rank observes in `t`, in order.
fn projection(t: &CompressedTrace, rank: usize) -> Vec<StackSig> {
    let mut out = Vec::new();
    t.walk(&mut |e| {
        if e.ranks.contains(rank) {
            out.push(e.stack_sig);
        }
    });
    out
}

/// All ranks covered anywhere in `t`.
fn rank_coverage(t: &CompressedTrace) -> Vec<usize> {
    let mut out = Vec::new();
    t.walk(&mut |e| out.extend(e.ranks.expand()));
    out.sort_unstable();
    out.dedup();
    out
}

/// Structural equality: identical per-rank event sequences and identical
/// rank coverage. Weaker than `==` (ignores where unmatched events landed
/// between folds and how time mass distributed), which is exactly the
/// freedom commutativity has.
fn structurally_equal(a: &CompressedTrace, b: &CompressedTrace) -> bool {
    let ranks = rank_coverage(a);
    ranks == rank_coverage(b) && ranks.iter().all(|&r| projection(a, r) == projection(b, r))
}

/// Merge with the fast path, differentially checking the oracle on the
/// same inputs. Every invariant test routes merges through this, so each
/// randomized case doubles as a fast-vs-reference differential case.
fn checked_merge(a: &CompressedTrace, b: &CompressedTrace) -> CompressedTrace {
    let fast = merge_traces(a, b);
    let oracle = merge_traces_reference(a, b);
    assert_eq!(fast, oracle, "fast path diverged from reference oracle");
    fast
}

#[test]
fn commutative_up_to_structural_equality() {
    let mut rng = Xoshiro256::seed_from_u64(0xC0337A);
    for case in 0..200 {
        let alphabet = [2u64, 3, 5, 16][case % 4];
        let (la, lb) = (rng.range_usize(0, 40), rng.range_usize(0, 40));
        let a = random_trace(&mut rng, 0, alphabet, la);
        let b = random_trace(&mut rng, 1, alphabet, lb);
        let ab = checked_merge(&a, &b);
        let ba = checked_merge(&b, &a);
        assert!(
            structurally_equal(&ab, &ba),
            "case {case}: merge(a,b) !~ merge(b,a)"
        );
    }
}

#[test]
fn commutative_exactly_on_spmd_traces() {
    // With an identical site stream the alignment is forced, so
    // commutativity tightens to full equality (rank union is symmetric).
    let mut rng = Xoshiro256::seed_from_u64(0x59314D);
    for _ in 0..50 {
        let n_sites = rng.range_usize(1, 40);
        let sites: Vec<u64> = (0..n_sites).map(|_| rng.below(6) + 1).collect();
        let (a, _) = spmd_variant(&mut rng, &sites, 0, 0);
        let (b, _) = spmd_variant(&mut rng, &sites, 1, 0);
        assert_eq!(checked_merge(&a, &b), checked_merge(&b, &a));
    }
}

#[test]
fn associative_up_to_structural_equality() {
    let mut rng = Xoshiro256::seed_from_u64(0xA550C);
    for case in 0..120 {
        let alphabet = [3u64, 5, 16][case % 3];
        let (la, lb, lc) = (
            rng.range_usize(0, 30),
            rng.range_usize(0, 30),
            rng.range_usize(0, 30),
        );
        let a = random_trace(&mut rng, 0, alphabet, la);
        let b = random_trace(&mut rng, 1, alphabet, lb);
        let c = random_trace(&mut rng, 2, alphabet, lc);
        let left = checked_merge(&checked_merge(&a, &b), &c);
        let right = checked_merge(&a, &checked_merge(&b, &c));
        assert!(
            structurally_equal(&left, &right),
            "case {case}: (a∪b)∪c !~ a∪(b∪c)"
        );
        // merge_all folds left-to-right and must agree with the explicit
        // left fold structurally.
        let folded = merge_all([&a, &b, &c]);
        assert!(structurally_equal(&folded, &left), "case {case}: merge_all");
    }
}

#[test]
fn merge_with_self_and_empty_is_identity() {
    let mut rng = Xoshiro256::seed_from_u64(0x1DE17);
    let empty = CompressedTrace::new();
    for case in 0..100 {
        let len = rng.range_usize(0, 50);
        let a = random_trace(&mut rng, 3, 5, len);

        let with_empty = checked_merge(&a, &empty);
        assert_eq!(with_empty, a, "case {case}: a ∪ ∅ ≠ a");
        let from_empty = checked_merge(&empty, &a);
        assert_eq!(from_empty, a, "case {case}: ∅ ∪ a ≠ a");

        // Self-merge folds every node with itself: same structure, same
        // ranks (union is idempotent).
        let with_self = checked_merge(&a, &a);
        assert!(
            structurally_equal(&with_self, &a),
            "case {case}: a ∪ a !~ a"
        );
        assert_eq!(with_self.compressed_size(), a.compressed_size());
    }
}

#[test]
fn rank_coverage_is_union_of_inputs() {
    let mut rng = Xoshiro256::seed_from_u64(0x124C5);
    for case in 0..100 {
        let n_traces = rng.range_usize(2, 6);
        let traces: Vec<CompressedTrace> = (0..n_traces)
            .map(|r| {
                let len = rng.range_usize(1, 25);
                random_trace(&mut rng, 10 + r, 4, len)
            })
            .collect();
        let mut expect: Vec<usize> = traces.iter().flat_map(rank_coverage).collect();
        expect.sort_unstable();
        expect.dedup();

        let merged = traces
            .iter()
            .skip(1)
            .fold(traces[0].clone(), |acc, t| checked_merge(&acc, t));
        assert_eq!(rank_coverage(&merged), expect, "case {case}");
    }
}

#[test]
fn per_input_event_order_is_preserved() {
    // After any merge, projecting the output onto one input's rank must
    // reproduce that input's dynamic event stream verbatim — merging
    // reorders nothing within a rank.
    let mut rng = Xoshiro256::seed_from_u64(0x0D4D3);
    for case in 0..150 {
        let n_sites = rng.range_usize(1, 35);
        let sites: Vec<u64> = (0..n_sites).map(|_| rng.below(5) + 1).collect();
        let (fa, fb) = (rng.usize_below(4), rng.usize_below(4));
        let (a, _) = spmd_variant(&mut rng, &sites, 0, fa);
        let (b, _) = spmd_variant(&mut rng, &sites, 1, fb);
        let lc = rng.range_usize(0, 35);
        let c = random_trace(&mut rng, 2, 5, lc);

        let merged = checked_merge(&checked_merge(&a, &b), &c);
        assert_eq!(
            projection(&merged, 0),
            projection(&a, 0),
            "case {case}: rank 0"
        );
        assert_eq!(
            projection(&merged, 1),
            projection(&b, 1),
            "case {case}: rank 1"
        );
        assert_eq!(
            projection(&merged, 2),
            projection(&c, 2),
            "case {case}: rank 2"
        );
    }
}

#[test]
fn baseline_merge_upholds_the_same_contract() {
    // The pre-optimization baseline kept for benchmarking is not
    // byte-identical to the canonical spec (different tie-breaks), but it
    // must still be a *valid* merge: structural invariants all hold.
    let mut rng = Xoshiro256::seed_from_u64(0xBA5E11);
    for case in 0..150 {
        let alphabet = [2u64, 5, 16][case % 3];
        let (la, lb) = (rng.range_usize(0, 35), rng.range_usize(0, 35));
        let a = random_trace(&mut rng, 0, alphabet, la);
        let b = random_trace(&mut rng, 1, alphabet, lb);
        let old = merge_traces_baseline(&a, &b);
        let new = merge_traces(&a, &b);
        assert!(
            structurally_equal(&old, &new),
            "case {case}: baseline !~ fast path"
        );
    }
}
