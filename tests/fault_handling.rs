//! Failure injection across the stack: rank panics, malformed trace
//! files, and lossy clustered replays must surface as errors or counted
//! degradation — never hangs or silent corruption.

use std::sync::Arc;

use chameleon_repro::chameleon::{Chameleon, ChameleonConfig};
use chameleon_repro::mpisim::{Comm, CostModel, World, WorldConfig};
use chameleon_repro::scalareplay::replay;
use chameleon_repro::scalatrace::{format, TracedProc};
use chameleon_repro::workloads::driver::{run, Mode, Overrides, ScaledWorkload};
use chameleon_repro::workloads::{bt::Bt, Class};

#[test]
fn rank_panic_mid_clustering_does_not_hang() {
    // One rank dies between the marker barrier and the vote; the poison
    // mechanism must unblock the others.
    let err = World::new(WorldConfig::for_tests(4))
        .run(|proc| {
            let mut tp = TracedProc::new(proc);
            let mut cham = Chameleon::new(ChameleonConfig::with_k(2));
            tp.barrier("step");
            if tp.rank() == 2 {
                panic!("injected: rank 2 dies before the marker");
            }
            cham.marker(&mut tp);
            cham.finalize(&mut tp);
        })
        .unwrap_err();
    assert!(err
        .failures
        .iter()
        .any(|(r, msg)| *r == 2 && msg.contains("injected")));
    // The other ranks fail via poisoning rather than deadlocking.
    assert!(err.failures.len() >= 2);
}

#[test]
fn rank_panic_mid_reduction_does_not_hang() {
    // A leaf dies before shipping its subtree trace. Its parent is
    // blocked in the pipelined receive (`recv_from_set`), the root is
    // blocked on the parent — both must abort via the poison flag instead
    // of waiting on a message that will never come.
    use chameleon_repro::scalatrace::reduction::radix_tree_merge;
    use chameleon_repro::scalatrace::{CompressedTrace, Endpoint, EventRecord, MpiOp};
    use chameleon_repro::sigkit::StackSig;

    let err = World::new(WorldConfig::for_tests(5))
        .run(|proc| {
            let me = proc.rank();
            let participants: Vec<usize> = (0..proc.size()).collect();
            let mut mine = CompressedTrace::new();
            mine.append(EventRecord::new(
                MpiOp::send(Endpoint::Relative(1), 0, 8, Comm::WORLD),
                StackSig(1),
                me,
                1e-6,
            ));
            if me == 4 {
                panic!("injected: leaf dies before shipping its trace");
            }
            // Radix 2 over 5 positions: rank 1's children are 3 and 4,
            // the root's children are 1 and 2.
            radix_tree_merge(proc, 2, &participants, &mine).merged
        })
        .unwrap_err();
    assert!(err
        .failures
        .iter()
        .any(|(r, msg)| *r == 4 && msg.contains("injected")));
    assert!(
        err.failures
            .iter()
            .any(|(r, msg)| *r == 1 && msg.contains("poisoned")),
        "the dead leaf's parent must abort via poisoning, got {:?}",
        err.failures
    );
    assert!(
        err.failures.len() >= 3,
        "the stall must propagate up the tree, got {:?}",
        err.failures
    );
}

#[test]
fn malformed_trace_files_are_rejected_not_crashed() {
    let rep = run(
        Arc::new(ScaledWorkload::new(Bt, 25)),
        Class::A,
        4,
        Mode::Chameleon,
        Overrides::default(),
    );
    let text = format::to_text(&rep.global_trace.expect("trace"));

    // Flip random-ish structural bytes and require Err, not panic.
    let corruptions: Vec<String> = vec![
        text.replace("SCALATRACE v1", "SCALATRACE v9"),
        text.replace("E send", "E teleport"),
        text.replacen("L ", "L -", 1),
        {
            let mut t = text.clone();
            t.truncate(t.len() / 2);
            // Cut mid-line: keep only full lines to test structural (not
            // lexical) truncation too.
            t
        },
        text.replace("count=", "count=NaN-"),
    ];
    for (i, bad) in corruptions.iter().enumerate() {
        if bad == &text {
            continue; // corruption pattern did not apply
        }
        assert!(
            format::from_text(bad).is_err(),
            "corruption {i} was accepted"
        );
    }
}

#[test]
fn malformed_wire_payloads_error_never_panic() {
    // Table-driven corpus over every wire decoder in the protocol:
    // truncations must return Err, and *any* single byte flip must either
    // decode (the flip landed in a don't-care position) or return Err —
    // never panic. This is the contract the bounded-retry layer builds on.
    use chameleon_repro::clusterkit::{ClusterMap, LeadSelection};
    use chameleon_repro::scalatrace::reduction::decode_wire_trace;
    use chameleon_repro::scalatrace::{CompressedTrace, Endpoint, EventRecord, MpiOp};
    use chameleon_repro::sigkit::{CallPathSig, SignatureTriple, StackSig};

    let triple = |cp, src, dest| SignatureTriple {
        call_path: CallPathSig(cp),
        src,
        dest,
    };
    let mut map = ClusterMap::from_rank(0, &triple(1, 10, 20));
    map.merge(ClusterMap::from_rank(1, &triple(1, 30, 40)));
    map.merge(ClusterMap::from_rank(2, &triple(2, 50, 60)));
    let sel = LeadSelection {
        leads: map.leads(),
        effective_k: 2,
        map: map.clone(),
    };
    let mut small = CompressedTrace::new();
    small.append(EventRecord::new(
        MpiOp::send(Endpoint::Relative(1), 7, 64, Comm::WORLD),
        StackSig(1),
        0,
        1e-6,
    ));
    small.append(EventRecord::new(
        MpiOp::recv(Endpoint::Relative(-1), 7, 64, Comm::WORLD),
        StackSig(2),
        0,
        2e-6,
    ));
    let trace_text = format::to_text(&small);

    type Decoder = fn(&[u8]) -> bool;
    let decoders: [(&str, Vec<u8>, Decoder); 3] = [
        ("cluster map", map.encode(), |b| {
            ClusterMap::decode(b).is_ok()
        }),
        ("lead selection", sel.encode(), |b| {
            LeadSelection::decode(b).is_ok()
        }),
        ("wire trace", trace_text.into_bytes(), |b| {
            decode_wire_trace(b).is_ok()
        }),
    ];

    for (what, wire, decode_ok) in &decoders {
        assert!(decode_ok(wire), "{what}: pristine payload must decode");
        // Truncation at every length must be an error (or, for the text
        // format, at worst a shorter-but-valid parse — never a panic).
        for cut in 0..wire.len() {
            let truncated = &wire[..cut];
            let outcome = std::panic::catch_unwind(|| decode_ok(truncated));
            assert!(outcome.is_ok(), "{what}: truncation at {cut} panicked");
        }
        // Binary decoders must reject all strict prefixes outright.
        if *what != "wire trace" {
            for cut in 0..wire.len() {
                assert!(
                    !decode_ok(&wire[..cut]),
                    "{what}: truncation at {cut} decoded"
                );
            }
        }
        // Every single-byte flip: Err or clean decode, never a panic.
        for pos in 0..wire.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut bad = wire.clone();
                bad[pos] ^= flip;
                let outcome = std::panic::catch_unwind(|| decode_ok(&bad));
                assert!(
                    outcome.is_ok(),
                    "{what}: byte flip {flip:#04x} at {pos} panicked"
                );
            }
        }
    }
}

#[test]
fn under_provisioned_k_grows_and_replays_cleanly() {
    // K=1 with three behavior groups: dynamic K growth ("Chameleon does
    // not miss any MPI event by selecting at least one representative
    // from each callpath cluster") must still give each group a lead, so
    // the replay covers everyone without endpoint drops.
    let rep = run(
        Arc::new(ScaledWorkload::new(Bt, 25)),
        Class::A,
        8,
        Mode::Chameleon,
        Overrides {
            k: Some(1),
            ..Default::default()
        },
    );
    assert!(
        rep.cham_stats[0].leads >= 3,
        "K must grow to the Call-Path count, got {}",
        rep.cham_stats[0].leads
    );
    let trace = rep.global_trace.expect("trace");
    let replayed = replay(&trace, 8, CostModel::default()).expect("replay completes");
    assert!(replayed.events_executed > 0);
    assert_eq!(
        replayed.dropped_events, 0,
        "per-Call-Path leads keep boundary endpoints in range"
    );
}

#[test]
fn replay_of_truly_overclustered_trace_degrades_gracefully() {
    // Hand-build the pathological case dynamic K prevents: an interior
    // rank's ±1 exchange attributed to *all* ranks. Boundary transposition
    // must drop (counted), not hang.
    use chameleon_repro::scalatrace::{CompressedTrace, Endpoint, EventRecord, MpiOp, RankSet};
    use chameleon_repro::sigkit::StackSig;
    let mut t = CompressedTrace::new();
    let mut send = EventRecord::new(
        MpiOp::send(Endpoint::Relative(1), 3, 32, Comm::WORLD),
        StackSig(1),
        0,
        0.0,
    );
    send.set_ranks(RankSet::from_ranks(0..6));
    let mut recv = EventRecord::new(
        MpiOp::recv(Endpoint::Relative(-1), 3, 32, Comm::WORLD),
        StackSig(2),
        0,
        0.0,
    );
    recv.set_ranks(RankSet::from_ranks(0..6));
    t.append(send);
    t.append(recv);
    let replayed = replay(&t, 6, CostModel::default()).expect("replay completes");
    assert_eq!(replayed.dropped_events, 2, "one send and one recv drop");
}

#[test]
fn empty_world_single_rank_full_pipeline() {
    // Degenerate but legal: P=1 end to end.
    let rep = run(
        Arc::new(ScaledWorkload::new(Bt, 25)),
        Class::A,
        1,
        Mode::Chameleon,
        Overrides::default(),
    );
    let trace = rep.global_trace.expect("trace");
    let replayed = replay(&trace, 1, CostModel::default()).expect("replay");
    assert!(replayed.events_executed > 0);
}

#[test]
fn marker_after_finalize_is_rejected() {
    let err = World::new(WorldConfig::for_tests(2))
        .run(|proc| {
            let mut tp = TracedProc::new(proc);
            let mut cham = Chameleon::new(ChameleonConfig::with_k(1));
            cham.finalize(&mut tp);
            cham.marker(&mut tp); // must panic
        })
        .unwrap_err();
    assert!(err
        .failures
        .iter()
        .any(|(_, msg)| msg.contains("marker after finalize")));
}

#[test]
fn tool_traffic_never_leaks_into_traces() {
    // The clustering protocol moves maps and traces over Comm::TOOL and
    // the marker barrier over Comm::MARKER; none of that may appear as
    // events in the online trace.
    let rep = run(
        Arc::new(ScaledWorkload::new(Bt, 25)),
        Class::A,
        8,
        Mode::Chameleon,
        Overrides::default(),
    );
    let trace = rep.global_trace.expect("trace");
    trace.visit_events(&mut |e| {
        assert_ne!(e.op.comm, Comm::TOOL, "tool message recorded in trace");
        assert_ne!(e.op.comm, Comm::MARKER, "marker recorded in trace");
    });
}
