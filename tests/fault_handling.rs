//! Failure injection across the stack: rank panics, malformed trace
//! files, and lossy clustered replays must surface as errors or counted
//! degradation — never hangs or silent corruption.

use std::sync::Arc;

use chameleon_repro::chameleon::{Chameleon, ChameleonConfig};
use chameleon_repro::mpisim::{Comm, CostModel, World, WorldConfig};
use chameleon_repro::scalareplay::replay;
use chameleon_repro::scalatrace::{format, TracedProc};
use chameleon_repro::workloads::driver::{run, Mode, Overrides, ScaledWorkload};
use chameleon_repro::workloads::{bt::Bt, Class};

#[test]
fn rank_panic_mid_clustering_does_not_hang() {
    // One rank dies between the marker barrier and the vote; the poison
    // mechanism must unblock the others.
    let err = World::new(WorldConfig::for_tests(4))
        .run(|proc| {
            let mut tp = TracedProc::new(proc);
            let mut cham = Chameleon::new(ChameleonConfig::with_k(2));
            tp.barrier("step");
            if tp.rank() == 2 {
                panic!("injected: rank 2 dies before the marker");
            }
            cham.marker(&mut tp);
            cham.finalize(&mut tp);
        })
        .unwrap_err();
    assert!(err
        .failures
        .iter()
        .any(|(r, msg)| *r == 2 && msg.contains("injected")));
    // The other ranks fail via poisoning rather than deadlocking.
    assert!(err.failures.len() >= 2);
}

#[test]
fn rank_panic_mid_reduction_does_not_hang() {
    // A leaf dies before shipping its subtree trace. Its parent is
    // blocked in the pipelined receive (`recv_from_set`), the root is
    // blocked on the parent — both must abort via the poison flag instead
    // of waiting on a message that will never come.
    use chameleon_repro::scalatrace::reduction::radix_tree_merge;
    use chameleon_repro::scalatrace::{CompressedTrace, Endpoint, EventRecord, MpiOp};
    use chameleon_repro::sigkit::StackSig;

    let err = World::new(WorldConfig::for_tests(5))
        .run(|proc| {
            let me = proc.rank();
            let participants: Vec<usize> = (0..proc.size()).collect();
            let mut mine = CompressedTrace::new();
            mine.append(EventRecord::new(
                MpiOp::send(Endpoint::Relative(1), 0, 8, Comm::WORLD),
                StackSig(1),
                me,
                1e-6,
            ));
            if me == 4 {
                panic!("injected: leaf dies before shipping its trace");
            }
            // Radix 2 over 5 positions: rank 1's children are 3 and 4,
            // the root's children are 1 and 2.
            radix_tree_merge(proc, 2, &participants, &mine).merged
        })
        .unwrap_err();
    assert!(err
        .failures
        .iter()
        .any(|(r, msg)| *r == 4 && msg.contains("injected")));
    assert!(
        err.failures
            .iter()
            .any(|(r, msg)| *r == 1 && msg.contains("poisoned")),
        "the dead leaf's parent must abort via poisoning, got {:?}",
        err.failures
    );
    assert!(
        err.failures.len() >= 3,
        "the stall must propagate up the tree, got {:?}",
        err.failures
    );
}

#[test]
fn malformed_trace_files_are_rejected_not_crashed() {
    let rep = run(
        Arc::new(ScaledWorkload::new(Bt, 25)),
        Class::A,
        4,
        Mode::Chameleon,
        Overrides::default(),
    );
    let text = format::to_text(&rep.global_trace.expect("trace"));

    // Flip random-ish structural bytes and require Err, not panic.
    let corruptions: Vec<String> = vec![
        text.replace("SCALATRACE v1", "SCALATRACE v9"),
        text.replace("E send", "E teleport"),
        text.replacen("L ", "L -", 1),
        {
            let mut t = text.clone();
            t.truncate(t.len() / 2);
            // Cut mid-line: keep only full lines to test structural (not
            // lexical) truncation too.
            t
        },
        text.replace("count=", "count=NaN-"),
    ];
    for (i, bad) in corruptions.iter().enumerate() {
        if bad == &text {
            continue; // corruption pattern did not apply
        }
        assert!(
            format::from_text(bad).is_err(),
            "corruption {i} was accepted"
        );
    }
}

#[test]
fn under_provisioned_k_grows_and_replays_cleanly() {
    // K=1 with three behavior groups: dynamic K growth ("Chameleon does
    // not miss any MPI event by selecting at least one representative
    // from each callpath cluster") must still give each group a lead, so
    // the replay covers everyone without endpoint drops.
    let rep = run(
        Arc::new(ScaledWorkload::new(Bt, 25)),
        Class::A,
        8,
        Mode::Chameleon,
        Overrides {
            k: Some(1),
            ..Default::default()
        },
    );
    assert!(
        rep.cham_stats[0].leads >= 3,
        "K must grow to the Call-Path count, got {}",
        rep.cham_stats[0].leads
    );
    let trace = rep.global_trace.expect("trace");
    let replayed = replay(&trace, 8, CostModel::default()).expect("replay completes");
    assert!(replayed.events_executed > 0);
    assert_eq!(
        replayed.dropped_events, 0,
        "per-Call-Path leads keep boundary endpoints in range"
    );
}

#[test]
fn replay_of_truly_overclustered_trace_degrades_gracefully() {
    // Hand-build the pathological case dynamic K prevents: an interior
    // rank's ±1 exchange attributed to *all* ranks. Boundary transposition
    // must drop (counted), not hang.
    use chameleon_repro::scalatrace::{CompressedTrace, Endpoint, EventRecord, MpiOp, RankSet};
    use chameleon_repro::sigkit::StackSig;
    let mut t = CompressedTrace::new();
    let mut send = EventRecord::new(
        MpiOp::send(Endpoint::Relative(1), 3, 32, Comm::WORLD),
        StackSig(1),
        0,
        0.0,
    );
    send.set_ranks(RankSet::from_ranks(0..6));
    let mut recv = EventRecord::new(
        MpiOp::recv(Endpoint::Relative(-1), 3, 32, Comm::WORLD),
        StackSig(2),
        0,
        0.0,
    );
    recv.set_ranks(RankSet::from_ranks(0..6));
    t.append(send);
    t.append(recv);
    let replayed = replay(&t, 6, CostModel::default()).expect("replay completes");
    assert_eq!(replayed.dropped_events, 2, "one send and one recv drop");
}

#[test]
fn empty_world_single_rank_full_pipeline() {
    // Degenerate but legal: P=1 end to end.
    let rep = run(
        Arc::new(ScaledWorkload::new(Bt, 25)),
        Class::A,
        1,
        Mode::Chameleon,
        Overrides::default(),
    );
    let trace = rep.global_trace.expect("trace");
    let replayed = replay(&trace, 1, CostModel::default()).expect("replay");
    assert!(replayed.events_executed > 0);
}

#[test]
fn marker_after_finalize_is_rejected() {
    let err = World::new(WorldConfig::for_tests(2))
        .run(|proc| {
            let mut tp = TracedProc::new(proc);
            let mut cham = Chameleon::new(ChameleonConfig::with_k(1));
            cham.finalize(&mut tp);
            cham.marker(&mut tp); // must panic
        })
        .unwrap_err();
    assert!(err
        .failures
        .iter()
        .any(|(_, msg)| msg.contains("marker after finalize")));
}

#[test]
fn tool_traffic_never_leaks_into_traces() {
    // The clustering protocol moves maps and traces over Comm::TOOL and
    // the marker barrier over Comm::MARKER; none of that may appear as
    // events in the online trace.
    let rep = run(
        Arc::new(ScaledWorkload::new(Bt, 25)),
        Class::A,
        8,
        Mode::Chameleon,
        Overrides::default(),
    );
    let trace = rep.global_trace.expect("trace");
    trace.visit_events(&mut |e| {
        assert_ne!(e.op.comm, Comm::TOOL, "tool message recorded in trace");
        assert_ne!(e.op.comm, Comm::MARKER, "marker recorded in trace");
    });
}
