//! Chaos suite: randomized fault plans over the chaos ring workload.
//!
//! Every seed in `CI_SEEDS` must complete — one rank crash plus a 2%
//! payload-corruption link — with a non-empty online trace at rank 0,
//! counted degraded slices, and zero hangs (a wedged run trips the fault
//! plan's hang backstop and fails loudly instead of timing out CI).
//!
//! Runs are made with the flight recorder armed, and the counters the
//! suite used to trust blindly are cross-checked against the journal's
//! event sequences: the planned crash is witnessed exactly once and is
//! the victim's final recorded act, re-elections move leadership away
//! from dead ranks only, and death detection never names a living peer.
//!
//! On failure the offending fault plan is written to
//! `experiments_out/chaos_seed_<seed>.plan` and the full journal to
//! `experiments_out/chaos_seed_<seed>.journal.jsonl` so the run is
//! replayable and inspectable offline (see OBSERVABILITY.md).

use std::panic::AssertUnwindSafe;
use std::path::PathBuf;

use chameleon_repro::obs::EventKind;
use chameleon_repro::scalatrace::format;
use chameleon_repro::workloads::chaos::{
    chaos_plan, marker_entry_ops, root_crash_plan, run_chaos, run_chaos_recorded,
    run_chaos_supervised, ChaosOutcome,
};
use chameleon_repro::workloads::matrix::{FaultSpec, MatrixPlan, Trial};

/// The seed set, rank count, and step count now live in the committed
/// scenario-matrix plan — the same file `chamtrace matrix run` replays —
/// so the suite and the runner can never drift apart. The seeds are
/// deliberately spread so victims, crash times, and corruption patterns
/// differ across entries.
fn load_plan(file: &str) -> MatrixPlan {
    MatrixPlan::load(
        &PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("plans")
            .join(file),
    )
    .expect("committed plan parses and validates")
}

fn artifact_path(seed: u64, ext: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("experiments_out")
        .join(format!("chaos_seed_{seed:#x}.{ext}"))
}

/// Dump the replay recipe (and the journal, when one was gathered) next
/// to the test binary's output so a CI failure is a file, not a log line.
fn dump_artifacts(seed: u64, recipe: &str, outcome: Option<&ChaosOutcome>) {
    let plan_path = artifact_path(seed, "plan");
    let _ = std::fs::create_dir_all(plan_path.parent().unwrap());
    let _ = std::fs::write(&plan_path, recipe);
    eprintln!(
        "chaos seed {seed:#x} failed; plan written to {}",
        plan_path.display()
    );
    if let Some(journal) = outcome.and_then(|o| o.journal.as_ref()) {
        let journal_path = artifact_path(seed, "journal.jsonl");
        let _ = std::fs::write(&journal_path, journal.to_jsonl());
        eprintln!("journal written to {}", journal_path.display());
    }
}

/// Run one expanded trial with the recorder armed and check both the
/// coarse counters and the journal's event sequences, dumping the
/// artifacts if any assertion fails.
fn run_seed(trial: &Trial, steps: usize) -> ChaosOutcome {
    let (seed, ranks) = (trial.seed, trial.p);
    assert_eq!(
        trial.fault,
        FaultSpec::Chaos,
        "chaos10 is a chaos-fault plan"
    );
    let plan = chaos_plan(seed, ranks);
    let recipe = format!("{plan}\nranks={ranks} steps={steps}\n");
    let out = match std::panic::catch_unwind(|| {
        run_chaos_recorded(ranks, steps, chaos_plan(seed, ranks))
    }) {
        Ok(out) => out,
        Err(payload) => {
            dump_artifacts(seed, &recipe, None);
            std::panic::resume_unwind(payload);
        }
    };
    if let Err(payload) =
        std::panic::catch_unwind(AssertUnwindSafe(|| check_seed(seed, ranks, &out)))
    {
        dump_artifacts(seed, &recipe, Some(&out));
        std::panic::resume_unwind(payload);
    }
    out
}

fn check_seed(seed: u64, ranks: usize, out: &ChaosOutcome) {
    let crash = chaos_plan(seed, ranks).crash.expect("chaos crashes");
    let victim = crash.rank;

    assert_eq!(out.crashed, vec![victim], "exactly the planned rank dies");
    assert!(out.stats[victim].is_none(), "dead rank reports nothing");
    assert!(out.fault_stats[victim].crashed);
    assert!(
        out.online_trace.dynamic_size() > 0,
        "online trace at rank 0 must be non-empty"
    );
    let s0 = out.stats[0].as_ref().expect("rank 0 is immortal");
    assert!(
        s0.degraded_slices >= 1,
        "a mid-run crash must be counted as degradation"
    );

    // Event-sequence checks against the journal: the counters above say
    // *how much* happened; the journal must agree on *what, where, and in
    // which order*.
    let journal = out
        .journal
        .as_ref()
        .expect("recorded run gathers a journal");
    assert!(journal.armed, "a chaos journal is always armed");

    let crashes: Vec<(usize, u64)> = journal
        .events()
        .filter_map(|(rank, e)| match e.kind {
            EventKind::Crash { op } => Some((rank, op)),
            _ => None,
        })
        .collect();
    assert_eq!(
        crashes,
        vec![(victim, crash.at_op)],
        "the journal witnesses exactly the planned crash"
    );

    // Dying is the last thing the victim does: nothing may be recorded
    // on that rank after its crash event.
    let victim_log = journal.rank_log(victim).expect("victim's log survives");
    assert!(
        matches!(
            victim_log.events.last().map(|e| &e.kind),
            Some(EventKind::Crash { .. })
        ),
        "the crash must be the victim's final recorded event"
    );

    // Re-elections move leadership off dead ranks and only onto living
    // ones; rank 0's event count must match its stats counter.
    for (rank, e) in journal.events() {
        if let EventKind::Reelect { old, new, .. } = e.kind {
            assert_eq!(
                old as usize, victim,
                "rank {rank} re-elected away from a living lead"
            );
            assert!(
                !out.crashed.contains(&(new as usize)),
                "rank {rank} elected the dead rank {new}"
            );
        }
        if let EventKind::PeerDead { peer } = e.kind {
            assert_eq!(
                peer as usize, victim,
                "rank {rank} declared a living peer dead"
            );
        }
    }
    let reelects_rank0 = journal
        .rank_log(0)
        .unwrap()
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Reelect { .. }))
        .count() as u64;
    assert_eq!(
        reelects_rank0, s0.lead_reelections,
        "rank 0's re-election events must match its counter"
    );
}

#[test]
fn every_ci_seed_completes_degraded_but_alive() {
    // Whether a particular seed's corruption coins land on the (few) tool
    // payloads is deterministic per seed but varies across seeds, so the
    // lossy-link evidence is asserted over the whole set.
    let plan = load_plan("chaos10.plan.json");
    let trials = plan.expand();
    assert_eq!(trials.len(), 10, "the chaos plan carries the 10 CI seeds");
    let mut corruptions = 0u64;
    for trial in &trials {
        let out = run_seed(trial, plan.steps);
        corruptions += out
            .fault_stats
            .iter()
            .map(|f| f.corruptions + f.duplicates + f.delays)
            .sum::<u64>();
    }
    assert!(
        corruptions > 0,
        "the 2% lossy link never touched a payload across {} seeds",
        trials.len()
    );
}

#[test]
fn same_plan_same_seed_is_bit_identical() {
    // The whole fault layer is virtual-time deterministic: coins are
    // hashed from (seed, sender, nonce), death detection is
    // message-driven, and retransmits are sender-observed. Two runs of
    // the same plan must therefore produce byte-identical degraded
    // online traces, identical degradation counters, and byte-identical
    // journals.
    let plan = load_plan("chaos10.plan.json");
    for trial in &plan.expand()[..3] {
        let seed = trial.seed;
        let a = run_seed(trial, plan.steps);
        let b = run_seed(trial, plan.steps);
        assert_eq!(
            format::to_text(&a.online_trace),
            format::to_text(&b.online_trace),
            "seed {seed:#x}: degraded online trace must be reproducible"
        );
        let (sa, sb) = (a.stats[0].as_ref().unwrap(), b.stats[0].as_ref().unwrap());
        assert_eq!(sa.degraded_slices, sb.degraded_slices);
        assert_eq!(sa.lead_reelections, sb.lead_reelections);
        assert_eq!(a.fault_stats, b.fault_stats);
        assert_eq!(
            a.journal.unwrap().to_jsonl(),
            b.journal.unwrap().to_jsonl(),
            "seed {seed:#x}: armed journal must be byte-reproducible"
        );
    }
}

#[test]
fn root_crash_matrix_completes_with_promoted_deputy() {
    // The CI root-crash matrix (FAULTS.md "Recovery"): kill rank 0 at the
    // first, a middle, and the last marker boundary across three seeds.
    // Every cell must complete with the deputy promoted and a non-empty
    // online trace. Artifacts — the final on-disk checkpoint set and the
    // armed journal — are written under `experiments_out/rootcrash_*` so
    // CI uploads them as run evidence, not just on failure.
    let plan = load_plan("rootcrash.plan.json");
    let trials = plan.expand();
    assert_eq!(trials.len(), 9, "3 seeds x 3 crash points");
    for trial in &trials {
        let seed = trial.seed;
        let m = match trial.fault {
            FaultSpec::RootCrash(point) => point.marker(plan.steps),
            other => panic!("rootcrash plan expanded a {other:?} trial"),
        };
        // One fault-free probe per trial maps marker index -> rank 0's op
        // count at the marker's entry tick (coins are pure in the seed,
        // so the probe schedule matches the armed run's pre-crash path).
        let ops = marker_entry_ops(trial.p, plan.steps, root_crash_plan(seed, 0));
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("experiments_out")
            .join(format!("rootcrash_{seed:#x}_m{m}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let sup = run_chaos_supervised(
            trial.p,
            plan.steps,
            root_crash_plan(seed, ops[m]),
            trial.ckpt_stride,
            &dir,
            trial.journal,
        );

        assert_eq!(
            sup.outcome.crashed,
            vec![0],
            "seed {seed:#x} marker {m}: rank 0 must be the only victim"
        );
        assert!(
            sup.outcome.online_trace.dynamic_size() > 0,
            "seed {seed:#x} marker {m}: promoted deputy roots an empty trace"
        );
        for s in sup.outcome.stats.iter().flatten() {
            assert_eq!(
                s.promotions, 1,
                "seed {seed:#x} marker {m}: survivors disagree on the promotion"
            );
        }
        let journal = sup
            .outcome
            .journal
            .as_ref()
            .expect("matrix runs are recorded");
        let promoted: Vec<usize> = journal
            .events()
            .filter_map(|(rank, e)| matches!(e.kind, EventKind::Promote { .. }).then_some(rank))
            .collect();
        assert_eq!(
            promoted,
            vec![1],
            "seed {seed:#x} marker {m}: exactly the deputy records the promotion"
        );
        let _ = std::fs::write(dir.join("run.journal.jsonl"), journal.to_jsonl());
    }
}

#[test]
fn heavier_loss_still_terminates() {
    // Crank drop + corruption well past the CI defaults; bounded retries
    // may degrade many slices, but the run must still complete with the
    // root's trace intact. (Drops are sender-observed and retransmitted,
    // so they cost time, not correctness.)
    let plan = chaos_plan(99, 4).drop_per_mille(100).corrupt_per_mille(100);
    let out = run_chaos(4, 30, plan);
    assert!(out.online_trace.dynamic_size() > 0);
    let retransmits: u64 = out.fault_stats.iter().map(|f| f.retransmits).sum();
    assert!(retransmits > 0, "10% drop must force retransmissions");
}
