//! Chaos suite: randomized fault plans over the chaos ring workload.
//!
//! Every seed in `CI_SEEDS` must complete — one rank crash plus a 2%
//! payload-corruption link — with a non-empty online trace at rank 0,
//! counted degraded slices, and zero hangs (a wedged run trips the fault
//! plan's hang backstop and fails loudly instead of timing out CI).
//! On failure the offending fault plan is written to
//! `experiments_out/chaos_seed_<seed>.plan` so the run is replayable.

use std::path::PathBuf;

use chameleon_repro::scalatrace::format;
use chameleon_repro::workloads::chaos::{chaos_plan, run_chaos, ChaosOutcome};

/// The fixed CI seed set. Deliberately spread so victims, crash times,
/// and corruption patterns differ across entries.
const CI_SEEDS: [u64; 10] = [1, 2, 3, 5, 8, 13, 21, 34, 0xBAD5EED, 0xC0FFEE];

const RANKS: usize = 6;
const STEPS: usize = 40;

fn artifact_path(seed: u64) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("experiments_out")
        .join(format!("chaos_seed_{seed:#x}.plan"))
}

/// Run one seed, dumping the fault plan as a replay artifact if any
/// assertion fails.
fn run_seed(seed: u64) -> ChaosOutcome {
    let plan = chaos_plan(seed, RANKS);
    let recipe = format!("{plan}\nranks={RANKS} steps={STEPS}\n");
    let result = std::panic::catch_unwind(|| {
        let out = run_chaos(RANKS, STEPS, chaos_plan(seed, RANKS));
        let victim = chaos_plan(seed, RANKS).crash.expect("chaos crashes").rank;

        assert_eq!(out.crashed, vec![victim], "exactly the planned rank dies");
        assert!(out.stats[victim].is_none(), "dead rank reports nothing");
        assert!(out.fault_stats[victim].crashed);
        assert!(
            out.online_trace.dynamic_size() > 0,
            "online trace at rank 0 must be non-empty"
        );
        let s0 = out.stats[0].as_ref().expect("rank 0 is immortal");
        assert!(
            s0.degraded_slices >= 1,
            "a mid-run crash must be counted as degradation"
        );
        out
    });
    match result {
        Ok(out) => out,
        Err(payload) => {
            let path = artifact_path(seed);
            let _ = std::fs::create_dir_all(path.parent().unwrap());
            let _ = std::fs::write(&path, &recipe);
            eprintln!(
                "chaos seed {seed:#x} failed; plan written to {}",
                path.display()
            );
            std::panic::resume_unwind(payload);
        }
    }
}

#[test]
fn every_ci_seed_completes_degraded_but_alive() {
    // Whether a particular seed's corruption coins land on the (few) tool
    // payloads is deterministic per seed but varies across seeds, so the
    // lossy-link evidence is asserted over the whole set.
    let mut corruptions = 0u64;
    for &seed in &CI_SEEDS {
        let out = run_seed(seed);
        corruptions += out
            .fault_stats
            .iter()
            .map(|f| f.corruptions + f.duplicates + f.delays)
            .sum::<u64>();
    }
    assert!(
        corruptions > 0,
        "the 2% lossy link never touched a payload across {} seeds",
        CI_SEEDS.len()
    );
}

#[test]
fn same_plan_same_seed_is_bit_identical() {
    // The whole fault layer is virtual-time deterministic: coins are
    // hashed from (seed, sender, nonce), death detection is
    // message-driven, and retransmits are sender-observed. Two runs of
    // the same plan must therefore produce byte-identical degraded
    // online traces and identical degradation counters.
    for &seed in &CI_SEEDS[..3] {
        let a = run_seed(seed);
        let b = run_seed(seed);
        assert_eq!(
            format::to_text(&a.online_trace),
            format::to_text(&b.online_trace),
            "seed {seed:#x}: degraded online trace must be reproducible"
        );
        let (sa, sb) = (a.stats[0].as_ref().unwrap(), b.stats[0].as_ref().unwrap());
        assert_eq!(sa.degraded_slices, sb.degraded_slices);
        assert_eq!(sa.lead_reelections, sb.lead_reelections);
        assert_eq!(a.fault_stats, b.fault_stats);
    }
}

#[test]
fn heavier_loss_still_terminates() {
    // Crank drop + corruption well past the CI defaults; bounded retries
    // may degrade many slices, but the run must still complete with the
    // root's trace intact. (Drops are sender-observed and retransmitted,
    // so they cost time, not correctness.)
    let plan = chaos_plan(99, 4).drop_per_mille(100).corrupt_per_mille(100);
    let out = run_chaos(4, 30, plan);
    assert!(out.online_trace.dynamic_size() > 0);
    let retransmits: u64 = out.fault_stats.iter().map(|f| f.retransmits).sum();
    assert!(retransmits > 0, "10% drop must force retransmissions");
}
