//! Property suite for the event-driven scheduler (xrand-seeded).
//!
//! The scheduler's determinism contract has three legs, each checked
//! here over randomized inputs rather than hand-picked cases:
//!
//! - **pool-size invariance** — every simulation-visible output (journal
//!   bytes, virtual times, Chameleon stats) is a pure function of the
//!   world's seed and workload, never of how many worker permits the
//!   scheduler hands out (1, 2, 8, or whatever the host offers);
//! - **deterministic tie-break** — when several rank tasks become ready
//!   at the same virtual timestamp, the ready queue dispatches them in
//!   rank order regardless of the order they were *inserted*, so wake
//!   races cannot leak into op ordering;
//! - **no starvation** — under randomized communication patterns (shared
//!   permutation shifts, collectives, rank-skewed compute jitter) every
//!   rank reaches its final state: the world's run() returns a result
//!   for all P ranks and all virtual clocks advanced.

use chameleon_repro::mpisim::sched::ReadyQueue;
use chameleon_repro::mpisim::{Comm, SrcSel, TagSel, World, WorldConfig};
use chameleon_repro::workloads::driver::{run, Mode, Overrides};
use chameleon_repro::workloads::registry::workload;
use chameleon_repro::workloads::Class;
use xrand::Xoshiro256;

// ---------------------------------------------------------------------------
// Pool-size invariance
// ---------------------------------------------------------------------------

#[test]
fn results_invariant_under_worker_pool_size() {
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut rng = Xoshiro256::seed_from_u64(0x5eed_5c4e_d001);
    let names = ["BT", "LU", "SP", "CG"];
    for case in 0..3 {
        let name = names[rng.usize_below(names.len())];
        let p = [4usize, 8][rng.usize_below(2)];
        let lossy = rng.gen_bool(0.5);
        let run_with = |workers: usize| {
            let mut o = Overrides {
                journal: true,
                workers,
                ..Default::default()
            };
            if lossy {
                o.faults = Some(
                    chameleon_repro::mpisim::FaultPlan::new(0xfa_0000 + case)
                        .corrupt_per_mille(100)
                        .duplicate_per_mille(30),
                );
                o.retry_budget = Some(3);
            }
            run(workload(name, 25), Class::A, p, Mode::Chameleon, o)
        };
        let base = run_with(1);
        for workers in [2usize, 8, host] {
            let other = run_with(workers);
            let label = format!("{name} p={p} lossy={lossy} workers={workers}");
            assert_eq!(
                base.journal.as_ref().unwrap().to_jsonl(),
                other.journal.as_ref().unwrap().to_jsonl(),
                "{label}: journal bytes must not depend on pool size"
            );
            assert_eq!(
                base.app_vtime, other.app_vtime,
                "{label}: app vtime must be bit-identical"
            );
            assert_eq!(
                base.cham_stats, other.cham_stats,
                "{label}: Chameleon stats must agree"
            );
            assert_eq!(
                base.fault_stats, other.fault_stats,
                "{label}: fault counters must agree"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Ready-queue tie-break
// ---------------------------------------------------------------------------

#[test]
fn equal_timestamp_ties_resolve_by_rank_for_any_insertion_order() {
    let mut rng = Xoshiro256::seed_from_u64(0x71eb_4ea4);
    for _ in 0..64 {
        // Draw vtimes from a tiny pool so ties are the common case, not
        // the corner case.
        let pool: Vec<f64> = (0..1 + rng.usize_below(4))
            .map(|_| rng.f64_unit() * 10.0)
            .collect();
        let n = 2 + rng.usize_below(30);
        let mut entries: Vec<(f64, usize)> = (0..n)
            .map(|rank| (pool[rng.usize_below(pool.len())], rank))
            .collect();

        // The canonical dispatch order: ascending vtime, ties by rank.
        let mut expect = entries.clone();
        expect.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        let expect: Vec<usize> = expect.into_iter().map(|(_, r)| r).collect();

        // Any insertion permutation must pop the same sequence.
        for _ in 0..4 {
            rng.shuffle(&mut entries);
            let mut q = ReadyQueue::new();
            for &(vt, rank) in &entries {
                q.push(vt, rank);
            }
            let mut got = Vec::with_capacity(n);
            while let Some(rank) = q.pop() {
                got.push(rank);
            }
            assert_eq!(
                got, expect,
                "pop order must be (vtime, rank), not insertion"
            );
        }
    }
}

#[test]
fn world_level_equal_timestamps_dispatch_in_rank_order() {
    // At world start every rank is Ready at virtual time 0.0 — the one
    // moment the ready queue is guaranteed to hold P equal-vtime entries.
    // With a sequential pool (workers=1) the dispatch order is fully
    // observable: each rank runs to its next block in queue order, so
    // rank 0 — receiving with SrcSel::Any — sees the senders in exactly
    // the order the scheduler dispatched them, which must be ascending
    // rank, every run. (A barrier would NOT set this up: barriers are
    // message trees, so ranks exit them at rank-dependent vtimes.)
    //
    // (With workers > 1 several senders run on concurrent OS threads and
    // the FIFO mailbox records their *physical* deposit race — the same
    // nondeterminism the free-running thread engine always had, which is
    // why SrcSel::Any arrival order was never part of the determinism
    // contract. Deterministically-matched programs are pool-invariant;
    // that leg is pinned by the other tests in this file.)
    let p = 12;
    let observe = || -> Vec<usize> {
        let report = World::new(WorldConfig::new(p).with_workers(1))
            .run(move |proc| {
                let me = proc.rank();
                if me == 0 {
                    let mut order = Vec::with_capacity(p - 1);
                    for _ in 1..proc.size() {
                        let (src, _) = proc.recv_u64(SrcSel::Any, TagSel::Tag(7), Comm::WORLD);
                        order.push(src);
                    }
                    order
                } else {
                    proc.send_u64(0, 7, Comm::WORLD, me as u64);
                    Vec::new()
                }
            })
            .unwrap();
        report.results[0].clone()
    };
    let expect: Vec<usize> = (1..p).collect();
    for trial in 0..3 {
        assert_eq!(
            observe(),
            expect,
            "trial {trial}: equal-vtime ready entries must dispatch in ascending rank order"
        );
    }
}

// ---------------------------------------------------------------------------
// No starvation
// ---------------------------------------------------------------------------

#[test]
fn every_rank_reaches_final_state_under_random_patterns() {
    let mut rng = Xoshiro256::seed_from_u64(0xdead_beef_cafe);
    for _ in 0..4 {
        let p = 6 + rng.usize_below(10);
        let rounds = 3 + rng.usize_below(5);
        let workers = 1 + rng.usize_below(8);
        let world_seed = rng.next_u64();

        let report = World::new(WorldConfig::new(p).with_workers(workers))
            .run(move |proc| {
                let p = proc.size();
                let me = proc.rank();
                // Shared schedule: every rank derives the same per-round
                // plan from the world seed; per-rank jitter makes the
                // *timing* (and thus the wake pattern) diverge wildly.
                let mut shared = Xoshiro256::seed_from_u64(world_seed);
                let mut local =
                    Xoshiro256::seed_from_u64(world_seed ^ (me as u64).wrapping_mul(0x9e37_79b9));
                let mut acc = me as u64;
                for round in 0..rounds {
                    proc.compute(1e-7 * (1.0 + 9.0 * local.f64_unit()));
                    match shared.usize_below(3) {
                        0 => {
                            // Random permutation shift: send along a shared
                            // random permutation, receive from its inverse.
                            let mut perm: Vec<usize> = (0..p).collect();
                            shared.shuffle(&mut perm);
                            let mut inv = vec![0usize; p];
                            for (i, &t) in perm.iter().enumerate() {
                                inv[t] = i;
                            }
                            let tag = round as u32;
                            proc.send_u64(perm[me], tag, Comm::WORLD, acc);
                            let (_, v) =
                                proc.recv_u64(SrcSel::Rank(inv[me]), TagSel::Tag(tag), Comm::WORLD);
                            acc = acc.wrapping_add(v);
                        }
                        1 => {
                            proc.barrier(Comm::WORLD);
                        }
                        _ => {
                            acc = proc.allreduce_sum(acc % 1024);
                        }
                    }
                }
                proc.allreduce_sum(acc % 4096)
            })
            .unwrap();

        // Every rank produced a result and agreed on the final reduction:
        // nobody starved, nobody lost a wakeup.
        assert_eq!(report.ranks, p);
        assert_eq!(report.results.len(), p);
        let first = report.results[0];
        assert!(
            report.results.iter().all(|&r| r == first),
            "p={p} workers={workers}: final allreduce disagrees"
        );
        assert!(
            report.rank_vtimes.iter().all(|&t| t > 0.0),
            "p={p} workers={workers}: a rank's virtual clock never advanced"
        );
    }
}
