//! Determinism: the simulator's two clocks (application virtual time and
//! tool time) are fully modeled, so repeated runs must agree bit-for-bit
//! on every reported quantity — traces, state tallies, virtual times, and
//! overheads.

use std::sync::Arc;

use chameleon_repro::mpisim::CostModel;
use chameleon_repro::scalareplay::replay;
use chameleon_repro::workloads::driver::{run, Mode, Overrides, RunReport, ScaledWorkload};
use chameleon_repro::workloads::{lu::Lu, Class};

fn lu_run(mode: Mode) -> RunReport {
    run(
        Arc::new(ScaledWorkload::new(Lu::strong(), 25)),
        Class::A,
        9,
        mode,
        Overrides::default(),
    )
}

#[test]
fn chameleon_runs_are_bit_identical() {
    let a = lu_run(Mode::Chameleon);
    let b = lu_run(Mode::Chameleon);
    assert_eq!(a.app_vtime, b.app_vtime, "virtual app time");
    assert_eq!(a.global_trace, b.global_trace, "online trace");
    for (x, y) in a.cham_stats.iter().zip(&b.cham_stats) {
        assert_eq!(x.states, y.states);
        assert_eq!(x.marker_calls, y.marker_calls);
        assert_eq!(x.signature_time, y.signature_time, "modeled signature time");
        assert_eq!(x.vote_time, y.vote_time, "modeled vote time");
        assert_eq!(
            x.clustering_time, y.clustering_time,
            "modeled clustering time"
        );
        assert_eq!(x.intercomp_time, y.intercomp_time, "modeled merge time");
        assert_eq!(x.mem, y.mem, "memory accounting");
    }
}

#[test]
fn scalatrace_runs_are_bit_identical() {
    let a = lu_run(Mode::ScalaTrace);
    let b = lu_run(Mode::ScalaTrace);
    assert_eq!(a.app_vtime, b.app_vtime);
    assert_eq!(a.global_trace, b.global_trace);
    for (x, y) in a.baseline.iter().zip(&b.baseline) {
        assert_eq!(x.intercomp_time, y.intercomp_time);
        assert_eq!(x.trace_bytes, y.trace_bytes);
    }
}

#[test]
fn replay_is_deterministic() {
    let rep = lu_run(Mode::Chameleon);
    let trace = rep.global_trace.expect("trace");
    let a = replay(&trace, 9, CostModel::default()).expect("replay a");
    let b = replay(&trace, 9, CostModel::default()).expect("replay b");
    assert_eq!(a.replay_vtime, b.replay_vtime);
    assert_eq!(a.rank_vtimes, b.rank_vtimes);
    assert_eq!(a.events_executed, b.events_executed);
    assert_eq!(a.dropped_events, b.dropped_events);
}

#[test]
fn app_vtime_independent_of_instrumentation() {
    // Tool activity must be invisible in the application's virtual time:
    // an instrumented run and a bare run agree exactly.
    let bare = lu_run(Mode::AppOnly);
    let st = lu_run(Mode::ScalaTrace);
    let ch = lu_run(Mode::Chameleon);
    let ac = lu_run(Mode::Acurdion);
    assert_eq!(bare.app_vtime, st.app_vtime);
    assert_eq!(bare.app_vtime, ch.app_vtime);
    assert_eq!(bare.app_vtime, ac.app_vtime);
}
