//! Durable checkpoints, deputy replication, and root failover.
//!
//! Three layers under test:
//!
//! 1. the `CKPT1` codec on real blobs produced by a live run
//!    (truncate-and-flip hardening, integration-scale);
//! 2. kill-and-resume on the fault-free path: a run killed after marker N
//!    and resumed from the on-disk checkpoint must produce a final online
//!    trace byte-identical to an uninterrupted run;
//! 3. root-crash chaos: rank 0 — historically immortal — dies mid-run,
//!    the deputy is promoted with its replica, and the supervised harness
//!    completes with a valid journal and non-empty online trace.

use std::path::{Path, PathBuf};

use chameleon::{Chameleon, ChameleonConfig, Checkpoint};
use clusterkit::{ClusterEntry, ClusterMap, LeadSelection};
use mpisim::{Comm, World, WorldConfig};
use scalatrace::{CompressedTrace, Endpoint, EventRecord, MpiOp, TracedProc};
use sigkit::{CallPathSig, SignatureTriple, StackSig};
use workloads::chaos::{
    chaos_step, latest_checkpoint, marker_entry_ops, root_crash_plan, run_chaos_supervised,
};
use xrand::Xoshiro256;

/// Fresh per-test scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cham_reco_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Run the (fault-free) chaos ring for `steps` markers and return the
/// finalized online trace as text. `kill_after = Some(n)` stops every
/// rank after marker `n` without finalizing — the simulated `kill -9`.
fn run_ring(
    p: usize,
    steps: usize,
    kill_after: Option<usize>,
    cfg: ChameleonConfig,
) -> Option<String> {
    let report = World::new(WorldConfig::for_tests(p))
        .run(move |proc| {
            let mut tp = TracedProc::new(proc);
            let mut cham = Chameleon::new(cfg.clone());
            let n = kill_after.unwrap_or(steps);
            for step in 0..n {
                let alive = cham.alive().to_vec();
                chaos_step(&mut tp, &alive, step);
                cham.marker(&mut tp);
            }
            if kill_after.is_some() {
                return None; // died with partial state; no finalize
            }
            cham.finalize(&mut tp)
                .online_trace
                .map(|t| scalatrace::format::to_text(&t))
        })
        .expect("fault-free ring cannot fail");
    report.results.into_iter().flatten().next()
}

fn load_latest(dir: &Path) -> (u64, Checkpoint) {
    let (marker, path) = latest_checkpoint(dir).expect("checkpointed run left blobs");
    let bytes = std::fs::read(path).unwrap();
    (
        marker,
        Checkpoint::decode(&bytes).expect("on-disk blob decodes"),
    )
}

const P: usize = 4;
const STEPS: usize = 12;
const STRIDE: u64 = 2;

#[test]
fn kill_and_resume_matches_uninterrupted_golden() {
    // Uninterrupted run, checkpointing off: the reference trace.
    let golden = run_ring(P, STEPS, None, ChameleonConfig::with_k(P)).expect("root trace");

    // Checkpointing must be passive: arming the stride (replication over
    // the obs plane + disk writes) cannot change the final trace.
    let dir_full = scratch("full");
    let armed = run_ring(
        P,
        STEPS,
        None,
        ChameleonConfig::with_k(P)
            .with_checkpoint_stride(STRIDE)
            .with_checkpoint_dir(&dir_full),
    )
    .expect("root trace");
    assert_eq!(armed, golden, "checkpointing perturbed the online trace");

    // Kill after marker 7: the latest durable checkpoint closes marker 6.
    let dir_kill = scratch("kill");
    let killed = run_ring(
        P,
        STEPS,
        Some(7),
        ChameleonConfig::with_k(P)
            .with_checkpoint_stride(STRIDE)
            .with_checkpoint_dir(&dir_kill),
    );
    assert!(killed.is_none(), "a killed run finalizes nothing");
    let (marker, ckpt) = load_latest(&dir_kill);
    assert_eq!(marker, 6);
    assert_eq!(ckpt.marker, 6);
    assert_eq!(ckpt.root, 0);
    assert_eq!(ckpt.alive, (0..P).collect::<Vec<_>>());

    // Resume: replay from step 0, fast-forward to marker 6 (merges
    // skipped, checkpoint trace installed), then run out normally. The
    // result must be byte-identical to the uninterrupted golden.
    let resumed = run_ring(
        P,
        STEPS,
        None,
        ChameleonConfig::with_k(P)
            .with_checkpoint_stride(STRIDE)
            .with_resume(ckpt.clone()),
    )
    .expect("resumed run finalizes on the root");
    assert_eq!(
        resumed, golden,
        "kill-at-6-then-resume diverged from golden"
    );

    // Resume is idempotent: replaying from the same checkpoint twice
    // yields the same bytes again.
    let resumed_again = run_ring(
        P,
        STEPS,
        None,
        ChameleonConfig::with_k(P)
            .with_checkpoint_stride(STRIDE)
            .with_resume(ckpt),
    )
    .expect("resumed run finalizes on the root");
    assert_eq!(resumed_again, resumed);

    let _ = std::fs::remove_dir_all(dir_full);
    let _ = std::fs::remove_dir_all(dir_kill);
}

#[test]
fn live_checkpoint_blob_survives_truncate_and_flip() {
    // Harden the decoder against a *rich* blob from a live run (trace,
    // selection, metrics all populated), not just a synthetic specimen.
    let dir = scratch("codec");
    run_ring(
        P,
        STEPS,
        None,
        ChameleonConfig::with_k(P)
            .with_checkpoint_stride(STRIDE)
            .with_checkpoint_dir(&dir),
    )
    .expect("root trace");
    let (_, path) = latest_checkpoint(&dir).unwrap();
    let wire = std::fs::read(path).unwrap();
    assert!(Checkpoint::decode(&wire).is_ok());
    for cut in 0..wire.len() {
        assert!(
            Checkpoint::decode(&wire[..cut]).is_err(),
            "prefix of {cut}/{} bytes decoded",
            wire.len()
        );
    }
    for i in 0..wire.len() {
        let mut bad = wire.clone();
        bad[i] ^= 0xA5;
        assert!(
            Checkpoint::decode(&bad).is_err(),
            "flip at byte {i}/{} went unnoticed",
            wire.len()
        );
    }
    let _ = std::fs::remove_dir_all(dir);
}

/// A random (but structurally valid) checkpoint: every field drawn from
/// its full legal shape — empty through populated traces, optional lead
/// selections, arbitrary metric payloads, sparse alive sets.
fn random_checkpoint(rng: &mut Xoshiro256) -> Checkpoint {
    let p = 2 + rng.usize_below(7);
    // Ascending sparse alive set that always contains at least one rank.
    let alive: Vec<usize> = (0..p).filter(|&r| r == 0 || rng.gen_bool(0.7)).collect();
    let mut trace = CompressedTrace::new();
    for s in 0..rng.usize_below(24) {
        trace.append(EventRecord::new(
            MpiOp::send(
                Endpoint::Relative(1),
                0,
                32 + rng.usize_below(256),
                Comm::WORLD,
            ),
            StackSig(1 + rng.below(1 << 40)),
            rng.usize_below(p),
            1e-6 * (1 + s) as f64,
        ));
    }
    let selection = rng.gen_bool(0.5).then(|| {
        let mut map = ClusterMap::new();
        for &r in &alive {
            let triple = SignatureTriple {
                call_path: CallPathSig(1 + rng.below(1 << 30)),
                src: rng.below(1 << 20),
                dest: rng.below(1 << 20),
            };
            map.insert(triple.call_path, ClusterEntry::singleton(r, &triple));
        }
        let leads = map.leads();
        let effective_k = leads.len();
        LeadSelection {
            map,
            leads,
            effective_k,
        }
    });
    // The metric payload is either absent (plane off) or a valid
    // `MetricSet::encode_with_count` frame — the decoder validates it.
    let metrics = if rng.gen_bool(0.5) {
        Vec::new()
    } else {
        let mut m = obs::metrics::MetricSet::new();
        for c in obs::metrics::Counter::ALL {
            if rng.gen_bool(0.5) {
                m.add(c, rng.below(1 << 30));
            }
        }
        for h in obs::metrics::HistId::ALL {
            for _ in 0..rng.usize_below(8) {
                m.observe(h, rng.below(1 << 40));
            }
        }
        m.encode_with_count(1 + rng.below(64))
    };
    Checkpoint {
        marker: rng.below(1 << 32),
        marker_calls: rng.below(1 << 32),
        root: alive[rng.usize_below(alive.len())] as u64,
        alive,
        old_call_path: CallPathSig(rng.below(u64::MAX)),
        re_clustering: rng.gen_bool(0.5),
        lead_flag: rng.gen_bool(0.5),
        selection,
        trace,
        metrics,
        journal_hwm: rng.below(1 << 32),
    }
}

#[test]
fn random_blobs_roundtrip_byte_identical_across_all_strides() {
    // Fuzz-style table test for the CKPT1 codec, two layers:
    //
    // 1. Synthetic: random valid checkpoints must encode → decode →
    //    re-encode to byte-identical wire (a canonical encoding; any
    //    normalization drift would silently invalidate stored blobs).
    // 2. Live: a checkpointing ring run at *every* stride 1..=8 leaves
    //    blobs on disk, each of which must round-trip byte-identical —
    //    the stride axis changes capture cadence, never the wire format.
    let mut rng = Xoshiro256::seed_from_u64(0xCC_B10B);
    for i in 0..200 {
        let ckpt = random_checkpoint(&mut rng);
        let wire = ckpt.encode();
        let decoded = Checkpoint::decode(&wire)
            .unwrap_or_else(|e| panic!("blob {i} failed to decode: {e:?}"));
        assert_eq!(decoded.marker, ckpt.marker, "blob {i}");
        assert_eq!(decoded.alive, ckpt.alive, "blob {i}");
        assert_eq!(
            decoded.selection.is_some(),
            ckpt.selection.is_some(),
            "blob {i}"
        );
        assert_eq!(
            decoded.encode(),
            wire,
            "blob {i}: re-encode is not byte-identical"
        );
    }

    for stride in 1..=8u64 {
        let dir = scratch(&format!("stride{stride}"));
        run_ring(
            P,
            STEPS,
            None,
            ChameleonConfig::with_k(P)
                .with_checkpoint_stride(stride)
                .with_checkpoint_dir(&dir),
        )
        .expect("root trace");
        let mut blobs = 0;
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            if path.extension().is_some_and(|e| e == "bin") {
                let wire = std::fs::read(&path).unwrap();
                let ckpt = Checkpoint::decode(&wire).unwrap_or_else(|e| {
                    panic!(
                        "stride {stride}: {} failed to decode: {e:?}",
                        path.display()
                    )
                });
                assert_eq!(
                    ckpt.encode(),
                    wire,
                    "stride {stride}: {} re-encode drifted",
                    path.display()
                );
                blobs += 1;
            }
        }
        // One blob per stride-closing marker: markers are 1-based on
        // capture, so a 12-marker run at stride s leaves floor(12/s).
        assert_eq!(
            blobs,
            (STEPS as u64 / stride) as usize,
            "stride {stride}: wrong number of durable blobs"
        );
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn root_crash_promotes_deputy_and_completes_with_journal() {
    // The acceptance scenario: rank 0 dies at a mid-run marker boundary
    // under a lossy link; the supervised run must complete with a
    // promoted deputy, a parseable journal, and a non-empty online trace.
    let seed = 0xC0FFEE;
    let p = 6;
    let steps = 30;
    let ops = marker_entry_ops(p, steps, root_crash_plan(seed, 0));
    let dir = scratch("rootcrash");
    let sup = run_chaos_supervised(p, steps, root_crash_plan(seed, ops[10]), STRIDE, &dir, true);

    assert_eq!(sup.outcome.crashed, vec![0], "rank 0 must be the victim");
    assert!(sup.outcome.stats[0].is_none());
    assert!(
        sup.outcome.online_trace.dynamic_size() > 0,
        "promoted deputy must surface a non-empty online trace"
    );
    // Every survivor counted the same single promotion.
    for s in sup.outcome.stats.iter().flatten() {
        assert_eq!(s.promotions, 1);
    }
    let journal = sup.outcome.journal.as_ref().expect("recorded run");
    // The journal must survive a serialize/parse roundtrip (validity).
    let parsed = obs::RunJournal::from_jsonl(&journal.to_jsonl()).expect("journal parses");
    assert_eq!(parsed.count("promote"), journal.count("promote"));
    assert!(
        journal.count("checkpoint") >= 1,
        "root checkpointed before dying"
    );
    // The promoted deputy (rank 1) restored from its replica: the crash
    // struck marker 11, after the marker-10 replication.
    let promotes: Vec<(usize, u64, u64)> = journal
        .events()
        .filter_map(|(rank, e)| match e.kind {
            obs::EventKind::Promote {
                old_root, restored, ..
            } => Some((rank, old_root, restored)),
            _ => None,
        })
        .collect();
    assert_eq!(
        promotes,
        vec![(1, 0, 1)],
        "deputy promotes with its replica"
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn root_crash_at_every_early_mid_late_marker_is_deterministic() {
    // Crash rank 0 at the first, a middle, and the last marker boundary;
    // each supervised run must complete, and re-running the same seed
    // must reproduce the final trace byte-for-byte (the shrink-golden
    // property: the outcome is a pure function of the plan).
    let seed = 0x5EED;
    let p = 4;
    let steps = 10;
    let ops = marker_entry_ops(p, steps, root_crash_plan(seed, 0));
    for m in [0, steps / 2, steps - 1] {
        let dir_a = scratch(&format!("det_a_{m}"));
        let dir_b = scratch(&format!("det_b_{m}"));
        let a = run_chaos_supervised(
            p,
            steps,
            root_crash_plan(seed, ops[m]),
            STRIDE,
            &dir_a,
            false,
        );
        let b = run_chaos_supervised(
            p,
            steps,
            root_crash_plan(seed, ops[m]),
            STRIDE,
            &dir_b,
            false,
        );
        assert_eq!(a.outcome.crashed, vec![0]);
        assert!(a.outcome.online_trace.dynamic_size() > 0, "marker {m}");
        assert_eq!(
            scalatrace::format::to_text(&a.outcome.online_trace),
            scalatrace::format::to_text(&b.outcome.online_trace),
            "same-seed root-crash runs diverged at marker {m}"
        );
        assert_eq!(a.restarts, b.restarts);
        // A crash at the very first marker precedes any replication: the
        // promotion must report an empty restore, later ones a replica.
        let s1 = a.outcome.stats[1].as_ref().expect("deputy survives");
        assert_eq!(s1.promotions, 1, "marker {m}");
        let _ = std::fs::remove_dir_all(dir_a);
        let _ = std::fs::remove_dir_all(dir_b);
    }
}
