//! The trace-service daemon, end to end over real sockets.
//!
//! Four layers under test:
//!
//! 1. **endpoint equivalence** — every query endpoint's response on the
//!    committed bt4 golden journal is byte-identical to the shared
//!    `obs::query` renderer output (the same bytes `chamtrace journal *
//!    --json` prints), and pinned against committed goldens under
//!    `tests/fixtures/serve/`;
//! 2. **concurrent-ingest determinism** — N parallel clients pushing
//!    interleaved journals/checkpoints leave the store in a state whose
//!    every observable response is byte-identical to serial ingest in
//!    run-ID order;
//! 3. **strict ingest** — malformed uploads (truncated JSONL, flipped
//!    CKPT1 CRC, invalid run IDs) are rejected with 400 + diagnostic and
//!    leave no session behind;
//! 4. **self-telemetry** — `GET /metrics` reports the daemon's own
//!    request/ingest/cache counters, nonzero after traffic.
//!
//! Plus the durability plane (sections 7+): a corruption table proving
//! rehydration quarantines exactly the damaged artifact and keeps every
//! other session serving; a torn-write crash simulation whose restart
//! serves committed sessions byte-identical to the goldens; a seeded
//! [`SvcFaultPlan`] storm the idempotent retrying push must converge
//! through; and the degraded modes — ENOSPC → read-only 503, slow-loris
//! → 408, full backlog → 429 — each visible in `/metrics`.
//!
//! Regenerate endpoint goldens with:
//!
//! ```text
//! REGEN_GOLDEN=1 cargo test --test serve
//! ```

use std::path::PathBuf;

use chameleon::Checkpoint;
use chamserve::{
    http, push_checkpoint, push_checkpoint_with, push_journal, push_journal_with, PushError,
    RetryPolicy, ServeConfig, Server, SvcFaultPlan,
};
use obs::metrics::{Counter, HistId, MetricSet};
use obs::{query, Event, EventKind, RankLog, RunJournal};
use sigkit::CallPathSig;

const TIMEOUT: std::time::Duration = std::time::Duration::from_secs(30);

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Compare `text` against the named fixture, or rewrite the fixture when
/// `REGEN_GOLDEN` is set (same convention as `golden_traces.rs`).
fn assert_golden(name: &str, text: &str) {
    let path = fixture_path(name);
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, text).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); regenerate with REGEN_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        text, want,
        "{name} drifted from its golden fixture; if the change is \
         intentional, regenerate with REGEN_GOLDEN=1 and review the diff"
    );
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cham_serve_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Start a daemon on an ephemeral port with a scratch data dir.
fn start(tag: &str, cache_entries: usize) -> (Server, String) {
    let cfg = ServeConfig {
        data_dir: scratch(tag),
        cache_entries,
        threads: 4,
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", cfg).expect("server starts");
    let addr = server.addr().to_string();
    (server, addr)
}

fn get(addr: &str, path: &str) -> (u16, String) {
    let (status, body) = http::request(addr, "GET", path, &[], TIMEOUT).expect("GET");
    (status, String::from_utf8(body).expect("UTF-8 body"))
}

fn post(addr: &str, path: &str, body: &[u8]) -> (u16, String) {
    let (status, body) = http::request(addr, "POST", path, body, TIMEOUT).expect("POST");
    (status, String::from_utf8(body).expect("UTF-8 body"))
}

fn bt4_text() -> String {
    std::fs::read_to_string(fixture_path("bt4_chameleon.journal.jsonl")).expect("bt4 fixture")
}

/// A small synthetic journal whose content varies with `tag` — distinct
/// digests per run without needing more committed fixtures.
fn mini_journal(tag: u64) -> RunJournal {
    let mut logs = Vec::new();
    for rank in 0..2 {
        let mut log = RankLog::new(rank);
        log.events.push(Event {
            seq: 0,
            vt: 0.0,
            tt: 0.0,
            kind: EventKind::Marker { n: tag },
        });
        if rank == 0 {
            let mut m = MetricSet::new();
            m.add(Counter::Merges, tag);
            m.observe(HistId::RecvWaitNs, 1000 * tag.max(1));
            log.events.push(Event {
                seq: 1,
                vt: 1e-6,
                tt: 1e-7,
                kind: EventKind::Snapshot {
                    marker: tag,
                    ranks: 2,
                    ctrs: m.counter_values(),
                    hists: m.hist_digest(),
                },
            });
        }
        logs.push(log);
    }
    RunJournal::gather(2, false, logs)
}

/// A structurally valid checkpoint carrying a metric sketch.
fn mini_ckpt(marker: u64) -> Checkpoint {
    let mut m = MetricSet::new();
    m.add(Counter::Merges, marker * 10);
    m.observe(HistId::RecvWaitNs, 5000 + marker);
    Checkpoint {
        marker,
        marker_calls: marker,
        root: 0,
        alive: vec![0, 1],
        old_call_path: CallPathSig(0xfeed + marker),
        re_clustering: false,
        lead_flag: false,
        selection: None,
        trace: scalatrace::CompressedTrace::new(),
        metrics: m.encode_with_count(2),
        journal_hwm: 4,
    }
}

// ---------------------------------------------------------------------
// 1. Endpoint equivalence on the committed bt4 golden
// ---------------------------------------------------------------------

#[test]
fn endpoints_match_shared_renderers_on_bt4() {
    let (server, addr) = start("bt4", 8);
    let text = bt4_text();
    let journal = RunJournal::from_jsonl(&text).expect("bt4 parses");

    let receipt = push_journal(&addr, "bt4", text.as_bytes()).expect("push");
    assert_eq!(
        receipt,
        format!(
            "{{\"ok\":true,\"run\":\"bt4\",\"ranks\":4,\"events\":{}}}\n",
            journal.events().count()
        )
    );

    // Every query endpoint returns the exact bytes of the shared
    // renderer — the same bytes `chamtrace journal * --json` prints.
    let cases: Vec<(&str, String)> = vec![
        ("summarize", query::summarize_json(&journal)),
        ("spans", query::spans_json(&journal)),
        ("metrics", query::metrics_json(&journal)),
        ("anomalies", query::anomalies_json(&journal)),
    ];
    for (endpoint, want) in &cases {
        let (status, body) = get(&addr, &format!("/runs/bt4/{endpoint}"));
        assert_eq!(status, 200, "{endpoint}: {body}");
        assert_eq!(&body, want, "{endpoint} daemon bytes != renderer bytes");
        assert_golden(&format!("serve/bt4_{endpoint}.json"), &body);
    }
    for rank in 0..4 {
        let (status, body) = get(&addr, &format!("/runs/bt4/timeline/{rank}"));
        assert_eq!(status, 200);
        assert_eq!(body, query::timeline_json(&journal, rank).unwrap());
        if rank == 0 {
            assert_golden("serve/bt4_timeline_rank0.json", &body);
        }
    }
    // Self-diff through two session slots is the identity.
    push_journal(&addr, "bt4-copy", text.as_bytes()).expect("push copy");
    let (status, body) = get(&addr, "/runs/bt4/diff/bt4-copy");
    assert_eq!(status, 200);
    assert_eq!(body, query::diff_json(&journal, &journal));
    assert_eq!(body, "{\"query\":\"diff\",\"identical\":true}\n");

    // Out-of-range rank and unknown run are clean client errors.
    let (status, body) = get(&addr, "/runs/bt4/timeline/99");
    assert_eq!(status, 400, "{body}");
    let (status, _) = get(&addr, "/runs/nosuch/summarize");
    assert_eq!(status, 404);

    server.shutdown();
}

// ---------------------------------------------------------------------
// 2. Concurrent-ingest determinism
// ---------------------------------------------------------------------

/// Everything observable about a store, as one byte string.
fn observable_state(addr: &str, runs: &[String]) -> String {
    let mut out = String::new();
    let (status, listing) = get(addr, "/runs");
    assert_eq!(status, 200);
    out.push_str(&listing);
    for id in runs {
        let (status, body) = get(addr, &format!("/runs/{id}/summarize"));
        assert_eq!(status, 200, "{id}: {body}");
        out.push_str(&body);
        let (status, body) = get(addr, &format!("/runs/{id}/metrics"));
        assert_eq!(status, 200);
        out.push_str(&body);
    }
    out
}

#[test]
fn concurrent_ingest_matches_serial_reference() {
    const CLIENTS: usize = 6;
    const PUSHES_PER_CLIENT: usize = 4;

    // The workload: each client owns several runs and pushes each run's
    // journal plus two checkpoints, re-pushing some (idempotence must
    // hold under racing duplicates).
    let mut uploads: Vec<(String, String, Vec<Vec<u8>>)> = Vec::new();
    for c in 0..CLIENTS {
        for p in 0..PUSHES_PER_CLIENT {
            let tag = (c * PUSHES_PER_CLIENT + p) as u64;
            let id = format!("run-c{c}-p{p}");
            let jsonl = mini_journal(tag).to_jsonl();
            let ckpts = vec![mini_ckpt(tag).encode(), mini_ckpt(tag + 1).encode()];
            uploads.push((id, jsonl, ckpts));
        }
    }
    let run_ids: Vec<String> = uploads.iter().map(|u| u.0.clone()).collect();

    // Serial reference: ingest in run-ID order, one client.
    let (serial, serial_addr) = start("serial", 8);
    let mut ordered = uploads.clone();
    ordered.sort_by(|a, b| a.0.cmp(&b.0));
    for (id, jsonl, ckpts) in &ordered {
        push_journal(&serial_addr, id, jsonl.as_bytes()).expect("serial journal");
        for blob in ckpts {
            push_checkpoint(&serial_addr, id, blob).expect("serial ckpt");
        }
    }
    let want = observable_state(&serial_addr, &run_ids);
    serial.shutdown();

    // Concurrent ingest: one thread per client, interleaved arbitrarily,
    // every artifact pushed twice (duplicate-push idempotence).
    let (server, addr) = start("concurrent", 8);
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let uploads = &uploads;
            let addr = addr.clone();
            scope.spawn(move || {
                for (id, jsonl, ckpts) in uploads.iter().skip(c).step_by(CLIENTS) {
                    for _ in 0..2 {
                        push_journal(&addr, id, jsonl.as_bytes()).expect("journal");
                        for blob in ckpts {
                            push_checkpoint(&addr, id, blob).expect("ckpt");
                        }
                    }
                }
            });
        }
    });
    let got = observable_state(&addr, &run_ids);
    assert_eq!(
        got, want,
        "concurrent ingest must be byte-identical to serial run-ID-order ingest"
    );
    server.shutdown();
}

// ---------------------------------------------------------------------
// 3. Strict ingest: malformed uploads leave no trace
// ---------------------------------------------------------------------

#[test]
fn malformed_uploads_are_rejected_without_side_effects() {
    let (server, addr) = start("malformed", 8);
    let good = bt4_text();

    // Truncated JSONL (cut mid-line) → 400 with a line diagnostic.
    let truncated = &good[..good.len() / 2];
    let (status, body) = post(&addr, "/runs/trunc/journal", truncated.as_bytes());
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("journal line"), "line diagnostic: {body}");

    // Flipped CKPT1 CRC → 400 naming the mismatch.
    let mut blob = mini_ckpt(7).encode();
    let last = blob.len() - 1;
    blob[last] ^= 0xff;
    let (status, body) = post(&addr, "/runs/flip/checkpoint", &blob);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("CRC mismatch"), "CRC diagnostic: {body}");

    // Non-UTF-8 journal body and hostile run IDs.
    let (status, _) = post(&addr, "/runs/bin/journal", &[0xff, 0xfe, 0x00]);
    assert_eq!(status, 400);
    let (status, body) = post(&addr, "/runs/..%2Fetc/journal", good.as_bytes());
    assert_eq!(status, 400, "{body}");

    // None of the rejects left a session (or a spilled file) behind.
    let (status, listing) = get(&addr, "/runs");
    assert_eq!(status, 200);
    assert_eq!(listing, "{\"service\":\"chamserve\",\"runs\":[]}\n");
    for id in ["trunc", "flip", "bin"] {
        let (status, _) = get(&addr, &format!("/runs/{id}/summarize"));
        assert_eq!(status, 404, "session {id} must not exist");
    }

    // A good upload still works after the rejects; a checkpoint-only
    // session answers 404 for journal queries but lists its sketch.
    let (status, _) = post(&addr, "/runs/good/checkpoint", &mini_ckpt(7).encode());
    assert_eq!(status, 200);
    let (status, body) = get(&addr, "/runs/good/summarize");
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("no journal"), "{body}");
    let (status, listing) = get(&addr, "/runs");
    assert_eq!(status, 200);
    assert!(listing.contains("\"id\":\"good\""), "{listing}");
    assert!(listing.contains("\"ckpt_markers\":[7]"), "{listing}");

    server.shutdown();
}

// ---------------------------------------------------------------------
// 4. Self-telemetry and the journal cache
// ---------------------------------------------------------------------

/// Pull one `"key":number` value out of a flat canonical JSON object.
fn json_u64(body: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let at = body.find(&pat).unwrap_or_else(|| panic!("{key} in {body}"));
    body[at + pat.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("number")
}

#[test]
fn daemon_observes_itself_and_bounds_the_cache() {
    // Cache capacity 2 forces evictions across three runs.
    let (server, addr) = start("telemetry", 2);
    for tag in 0..3u64 {
        let id = format!("run{tag}");
        push_journal(&addr, &id, mini_journal(tag).to_jsonl().as_bytes()).expect("push");
        push_checkpoint(&addr, &id, &mini_ckpt(tag).encode()).expect("ckpt");
    }
    // Touch every run's queries; run0 was evicted, so at least one miss.
    for tag in 0..3u64 {
        let (status, _) = get(&addr, &format!("/runs/run{tag}/summarize"));
        assert_eq!(status, 200);
        let (status, _) = get(&addr, &format!("/runs/run{tag}/anomalies"));
        assert_eq!(status, 200);
    }
    let (status, _) = get(&addr, "/runs/missing/spans"); // one 404
    assert_eq!(status, 404);

    let (status, m) = get(&addr, "/metrics");
    assert_eq!(status, 200);
    assert!(m.starts_with("{\"service\":\"chamserve\""), "{m}");
    assert_eq!(json_u64(&m, "sessions_live"), 3);
    assert!(json_u64(&m, "cached_journals") <= 2, "cache bounded: {m}");
    assert_eq!(json_u64(&m, "journals_ingested"), 3);
    assert_eq!(json_u64(&m, "ckpts_ingested"), 3);
    assert!(json_u64(&m, "http_requests") >= 13, "{m}");
    assert!(json_u64(&m, "http_4xx") >= 1, "{m}");
    assert_eq!(json_u64(&m, "queries_served"), 6);
    assert!(json_u64(&m, "cache_hits") >= 1, "{m}");
    assert!(json_u64(&m, "cache_misses") >= 1, "{m}");
    assert!(json_u64(&m, "cache_evictions") >= 1, "{m}");
    assert!(json_u64(&m, "ingest_bytes") > 0, "{m}");
    // The latency sketch saw every request on this very connection's
    // plane — count is one per request already answered.
    let lat = m
        .find("\"request_latency_ns\":{\"count\":")
        .expect("latency digest");
    let count: u64 = m[lat + "\"request_latency_ns\":{\"count\":".len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap();
    assert!(count >= 13, "latency digest counts requests: {m}");
    server.shutdown();
}

// ---------------------------------------------------------------------
// 5. Spill-and-rehydrate across daemon restarts
// ---------------------------------------------------------------------

#[test]
fn restarted_daemon_serves_spilled_runs() {
    let data = scratch("restart");
    let cfg = ServeConfig {
        data_dir: data.clone(),
        cache_entries: 4,
        threads: 2,
        ..ServeConfig::default()
    };
    let text = bt4_text();
    let journal = RunJournal::from_jsonl(&text).unwrap();
    let first = Server::start("127.0.0.1:0", cfg.clone()).unwrap();
    let addr = first.addr().to_string();
    push_journal(&addr, "bt4", text.as_bytes()).unwrap();
    push_checkpoint(&addr, "bt4", &mini_ckpt(3).encode()).unwrap();
    let (_, listing_before) = get(&addr, "/runs");
    first.shutdown();

    let second = Server::start("127.0.0.1:0", cfg).unwrap();
    let addr = second.addr().to_string();
    let (status, listing_after) = get(&addr, "/runs");
    assert_eq!(status, 200);
    assert_eq!(listing_after, listing_before, "rehydrated state drifted");
    let (status, body) = get(&addr, "/runs/bt4/summarize");
    assert_eq!(status, 200);
    assert_eq!(body, query::summarize_json(&journal));
    second.shutdown();
}

// ---------------------------------------------------------------------
// 6. Graceful shutdown over the wire
// ---------------------------------------------------------------------

#[test]
fn post_shutdown_stops_the_daemon() {
    let (server, addr) = start("shutdown", 4);
    let (status, body) = post(&addr, "/shutdown", &[]);
    assert_eq!(status, 200);
    assert_eq!(body, "{\"ok\":true,\"stopping\":true}\n");
    // All workers exit; wait() returns rather than hanging the test.
    let handle = std::thread::spawn(move || server.wait());
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while !handle.is_finished() {
        assert!(
            std::time::Instant::now() < deadline,
            "wait() hung after shutdown"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    handle.join().unwrap();
}

// ---------------------------------------------------------------------
// 7. Rehydration corruption table
// ---------------------------------------------------------------------

/// Each row of the table damages exactly one on-disk artifact; restart
/// must quarantine that artifact alone (with the right typed reason in
/// `/metrics`), and every undamaged session keeps serving.
#[test]
fn rehydration_quarantines_each_corruption_and_serves_the_rest() {
    let data = scratch("corruption");
    let cfg = ServeConfig {
        data_dir: data.clone(),
        cache_entries: 4,
        threads: 2,
        ..ServeConfig::default()
    };
    let first = Server::start("127.0.0.1:0", cfg.clone()).unwrap();
    let addr = first.addr().to_string();
    let ids = [
        "r-badmani",
        "r-flip",
        "r-okay",
        "r-orphan",
        "r-trunc",
        "r-zero",
    ];
    for id in ids {
        push_journal(&addr, id, mini_journal(1).to_jsonl().as_bytes()).unwrap();
        push_checkpoint(&addr, id, &mini_ckpt(2).encode()).unwrap();
    }
    first.shutdown();

    let runs = data.join("runs");
    // Truncated journal (manifest length mismatch → torn).
    let p = runs.join("r-trunc/journal.jsonl");
    let b = std::fs::read(&p).unwrap();
    std::fs::write(&p, &b[..b.len() / 3]).unwrap();
    // Zero-byte checkpoint (length mismatch → torn).
    std::fs::write(runs.join("r-zero/ckpt-2.bin"), b"").unwrap();
    // Bit-flipped checkpoint: length intact, CRC wrong → corrupt.
    let p = runs.join("r-flip/ckpt-2.bin");
    let mut b = std::fs::read(&p).unwrap();
    let mid = b.len() / 2;
    b[mid] ^= 0x01;
    std::fs::write(&p, &b).unwrap();
    // A leftover staging file (torn) and an uncommitted blob (orphaned).
    std::fs::write(runs.join("r-orphan/ckpt-9.bin.tmp"), b"torn prefi").unwrap();
    std::fs::write(runs.join("r-orphan/ckpt-8.bin"), b"never committed").unwrap();
    // A garbled MANIFEST condemns everything under it.
    std::fs::write(runs.join("r-badmani/MANIFEST"), "not a manifest\n").unwrap();

    let second = Server::start("127.0.0.1:0", cfg).unwrap();
    let addr = second.addr().to_string();

    // Sessions whose journal survived serve it byte-identically.
    let want = query::summarize_json(&mini_journal(1));
    for id in ["r-flip", "r-okay", "r-orphan", "r-zero"] {
        let (status, body) = get(&addr, &format!("/runs/{id}/summarize"));
        assert_eq!(status, 200, "{id}: {body}");
        assert_eq!(body, want, "{id} journal bytes drifted through recovery");
    }
    // r-trunc lost its journal but not its checkpoint sketch.
    let (status, body) = get(&addr, "/runs/r-trunc/summarize");
    assert_eq!(status, 404, "truncated journal must not be served: {body}");
    // r-badmani is gone entirely.
    let (status, _) = get(&addr, "/runs/r-badmani/summarize");
    assert_eq!(status, 404);
    let (status, listing) = get(&addr, "/runs");
    assert_eq!(status, 200);
    assert!(!listing.contains("r-badmani"), "{listing}");
    assert!(
        listing.contains("r-trunc"),
        "ckpt-only session listed: {listing}"
    );

    // The typed quarantine ledger: truncated journal + zeroed ckpt +
    // leftover .tmp are torn; the bit-flip is corrupt; the uncommitted
    // blob is orphaned; the garbled manifest condemns its whole dir.
    let (_, m) = get(&addr, "/metrics");
    assert_eq!(json_u64(&m, "torn"), 3, "{m}");
    assert_eq!(json_u64(&m, "corrupt"), 1, "{m}");
    assert_eq!(json_u64(&m, "orphaned"), 1, "{m}");
    assert_eq!(json_u64(&m, "bad_manifest"), 3, "{m}");
    assert_eq!(json_u64(&m, "total"), 8, "{m}");
    assert_eq!(json_u64(&m, "sessions_live"), 5, "{m}");

    // Quarantined bytes are moved aside (`quarantine/<run>/<file>`),
    // not deleted.
    let mut moved = 0usize;
    for run in std::fs::read_dir(data.join("quarantine")).unwrap() {
        moved += std::fs::read_dir(run.unwrap().path()).unwrap().count();
    }
    assert_eq!(moved, 8, "quarantine/ holds every condemned file");
    second.shutdown();
}

// ---------------------------------------------------------------------
// 8. Torn-write crash simulation: restart serves committed goldens
// ---------------------------------------------------------------------

#[test]
fn torn_mid_ingest_crash_recovers_committed_sessions_byte_identical() {
    let data = scratch("crashsim");
    let clean = ServeConfig {
        data_dir: data.clone(),
        cache_entries: 4,
        threads: 2,
        ..ServeConfig::default()
    };
    let text = bt4_text();
    let first = Server::start("127.0.0.1:0", clean.clone()).unwrap();
    push_journal(&first.addr().to_string(), "bt4", text.as_bytes()).unwrap();
    first.shutdown();

    // Second daemon tears every spill write — each ingest dies exactly
    // as a crash mid-`write(2)` would, leaving a partial `.tmp` behind.
    let faulty = ServeConfig {
        faults: Some(SvcFaultPlan {
            torn_per_mille: 1000,
            ..SvcFaultPlan::new(0xC4A5)
        }),
        ..clean.clone()
    };
    let second = Server::start("127.0.0.1:0", faulty).unwrap();
    let err = push_journal_with(
        &second.addr().to_string(),
        "victim",
        mini_journal(9).to_jsonl().as_bytes(),
        &RetryPolicy::once(),
    )
    .expect_err("torn spill cannot commit");
    assert!(
        matches!(err, PushError::Transport { .. }),
        "torn spill surfaces as a retryable server error: {err}"
    );
    second.shutdown();
    assert!(
        data.join("runs/victim/journal.jsonl.tmp").exists(),
        "the tear left its staging file"
    );

    // Clean restart: the torn staging file is quarantined, the victim
    // session never existed, and the committed session's bytes match
    // the goldens pinned by test 1 exactly.
    let third = Server::start("127.0.0.1:0", clean).unwrap();
    let addr = third.addr().to_string();
    let (status, body) = get(&addr, "/runs/bt4/summarize");
    assert_eq!(status, 200, "{body}");
    assert_golden("serve/bt4_summarize.json", &body);
    let (status, body) = get(&addr, "/runs/bt4/metrics");
    assert_eq!(status, 200);
    assert_golden("serve/bt4_metrics.json", &body);
    let (status, _) = get(&addr, "/runs/victim/summarize");
    assert_eq!(status, 404, "uncommitted ingest must not resurrect");
    let (_, m) = get(&addr, "/metrics");
    assert!(json_u64(&m, "torn") >= 1, "{m}");
    third.shutdown();
}

// ---------------------------------------------------------------------
// 9. Seeded fault storm: the retrying push converges idempotently
// ---------------------------------------------------------------------

/// Ten seeds of a fault plan that tears spills and drops connections on
/// both sides of processing. The drop-post case is the acid test: the
/// daemon committed but the client never heard, so the retry re-sends
/// and must land on the content-digest dedupe path, not double-ingest.
/// All coins are seeded, so a failing seed replays exactly.
#[test]
fn seeded_fault_storm_converges_to_successful_idempotent_push() {
    let text = bt4_text();
    let journal = RunJournal::from_jsonl(&text).unwrap();
    let want = query::summarize_json(&journal);
    for seed in 0..10u64 {
        let data = scratch(&format!("storm{seed}"));
        let cfg = ServeConfig {
            data_dir: data.clone(),
            cache_entries: 4,
            threads: 2,
            faults: Some(SvcFaultPlan {
                torn_per_mille: 200,
                drop_pre_per_mille: 200,
                drop_post_per_mille: 200,
                ..SvcFaultPlan::new(seed)
            }),
            ..ServeConfig::default()
        };
        let server = Server::start("127.0.0.1:0", cfg).unwrap();
        let addr = server.addr().to_string();
        let policy = RetryPolicy {
            attempts: 20,
            base: std::time::Duration::from_millis(2),
            cap: std::time::Duration::from_millis(40),
            seed,
        };
        push_journal_with(&addr, "bt4", text.as_bytes(), &policy)
            .unwrap_or_else(|e| panic!("seed {seed}: journal push did not converge: {e}"));
        push_checkpoint_with(&addr, "bt4", &mini_ckpt(5).encode(), &policy)
            .unwrap_or_else(|e| panic!("seed {seed}: ckpt push did not converge: {e}"));
        server.shutdown();

        // What converged is durably committed: a clean restart serves
        // exactly one copy of the run with renderer-identical bytes.
        let clean = ServeConfig {
            data_dir: data,
            cache_entries: 4,
            threads: 2,
            ..ServeConfig::default()
        };
        let check = Server::start("127.0.0.1:0", clean).unwrap();
        let addr = check.addr().to_string();
        let (status, body) = get(&addr, "/runs/bt4/summarize");
        assert_eq!(status, 200, "seed {seed}: {body}");
        assert_eq!(body, want, "seed {seed}: recovered bytes drifted");
        check.shutdown();
    }
}

// ---------------------------------------------------------------------
// 10. Content-digest dedupe and hot-session eviction in /metrics
// ---------------------------------------------------------------------

#[test]
fn dedupe_and_hot_session_eviction_show_in_metrics() {
    let cfg = ServeConfig {
        data_dir: scratch("evict"),
        cache_entries: 8,
        threads: 2,
        hot_sessions: 2,
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", cfg).unwrap();
    let addr = server.addr().to_string();
    let mut receipts = Vec::new();
    for tag in 0..3u64 {
        let (status, r) = post(
            &addr,
            &format!("/runs/run{tag}/journal"),
            mini_journal(tag).to_jsonl().as_bytes(),
        );
        assert_eq!(status, 200, "{r}");
        receipts.push(r);
    }
    // run0's hot state was evicted to its manifest-backed spill by now;
    // re-pushing the same bytes rehydrates it, matches the stored
    // digest, and answers with the byte-identical receipt — a cheap 200
    // that never rewrites the committed artifact.
    let before = std::fs::metadata(server.data_dir().join("runs/run0/journal.jsonl"))
        .unwrap()
        .modified()
        .unwrap();
    let (status, again) = post(
        &addr,
        "/runs/run0/journal",
        mini_journal(0).to_jsonl().as_bytes(),
    );
    assert_eq!(status, 200);
    assert_eq!(again, receipts[0], "dedupe receipt is byte-identical");
    let after = std::fs::metadata(server.data_dir().join("runs/run0/journal.jsonl"))
        .unwrap()
        .modified()
        .unwrap();
    assert_eq!(before, after, "dedupe must not rewrite the spill");

    let (_, m) = get(&addr, "/metrics");
    assert_eq!(json_u64(&m, "journals_ingested"), 3, "{m}");
    assert!(json_u64(&m, "ingest_deduped") >= 1, "{m}");
    assert!(json_u64(&m, "sessions_evicted") >= 1, "{m}");
    assert!(json_u64(&m, "sessions_rehydrated") >= 1, "{m}");
    // Eviction is not forgetting: all three sessions stay queryable.
    assert_eq!(json_u64(&m, "sessions_live"), 3, "{m}");
    for tag in 0..3u64 {
        let (status, body) = get(&addr, &format!("/runs/run{tag}/summarize"));
        assert_eq!(status, 200, "{body}");
        assert_eq!(body, query::summarize_json(&mini_journal(tag)));
    }
    server.shutdown();
}

// ---------------------------------------------------------------------
// 11. ENOSPC degrades to read-only: ingest 503, queries keep serving
// ---------------------------------------------------------------------

#[test]
fn injected_enospc_degrades_to_read_only_but_keeps_queries() {
    let cfg = ServeConfig {
        data_dir: scratch("enospc"),
        cache_entries: 4,
        threads: 2,
        faults: Some(SvcFaultPlan {
            enospc_after_bytes: Some(4096),
            ..SvcFaultPlan::new(1)
        }),
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", cfg).unwrap();
    let addr = server.addr().to_string();
    // The small run fits under the budget…
    push_journal(&addr, "small", mini_journal(7).to_jsonl().as_bytes()).unwrap();
    // …bt4 (≈18 KiB) blows it: the disk "fills" and the store flips
    // read-only instead of crashing or half-writing.
    let (status, body) = post(&addr, "/runs/big/journal", bt4_text().as_bytes());
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("read-only"), "{body}");
    let (status, _) = post(&addr, "/runs/small/checkpoint", &mini_ckpt(1).encode());
    assert_eq!(status, 503, "read-only rejects all ingest");
    // Queries on already-committed state still serve.
    let (status, body) = get(&addr, "/runs/small/summarize");
    assert_eq!(status, 200, "{body}");
    assert_eq!(body, query::summarize_json(&mini_journal(7)));
    let (status, m) = get(&addr, "/metrics");
    assert_eq!(status, 200);
    assert!(m.contains("\"read_only\":true"), "{m}");
    assert!(json_u64(&m, "read_only_rejects_503") >= 2, "{m}");
    server.shutdown();
}

// ---------------------------------------------------------------------
// 12. Slow-loris clients hit the header/body deadlines: 408
// ---------------------------------------------------------------------

#[test]
fn slow_loris_clients_get_408() {
    use std::io::{Read, Write};
    let cfg = ServeConfig {
        data_dir: scratch("loris"),
        cache_entries: 4,
        threads: 2,
        header_deadline: std::time::Duration::from_millis(150),
        body_deadline: std::time::Duration::from_millis(150),
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", cfg).unwrap();
    let addr = server.addr().to_string();

    // Head never finishes.
    let mut s = std::net::TcpStream::connect(&addr).unwrap();
    s.write_all(b"POST /runs/x/journal HTTP/1.1\r\n").unwrap();
    let mut buf = String::new();
    s.read_to_string(&mut buf).unwrap();
    assert!(buf.starts_with("HTTP/1.1 408"), "stalled head: {buf}");

    // Head complete, promised body never arrives.
    let mut s = std::net::TcpStream::connect(&addr).unwrap();
    s.write_all(b"POST /runs/x/journal HTTP/1.1\r\ncontent-length: 10\r\n\r\n")
        .unwrap();
    let mut buf = String::new();
    s.read_to_string(&mut buf).unwrap();
    assert!(buf.starts_with("HTTP/1.1 408"), "stalled body: {buf}");

    let (_, m) = get(&addr, "/metrics");
    assert!(json_u64(&m, "request_timeouts_408") >= 2, "{m}");
    server.shutdown();
}

// ---------------------------------------------------------------------
// 13. Full accept backlog sheds load with 429
// ---------------------------------------------------------------------

#[test]
fn full_backlog_sheds_with_429() {
    // One worker, a one-deep queue, and a 200 ms injected delay per
    // response: a burst of 8 concurrent probes cannot all fit, so the
    // acceptor sheds the overflow with 429 + retry-after instead of
    // queueing unboundedly.
    let cfg = ServeConfig {
        data_dir: scratch("shed"),
        cache_entries: 4,
        threads: 1,
        backlog: 1,
        faults: Some(SvcFaultPlan {
            delay_ms: 200,
            ..SvcFaultPlan::new(0)
        }),
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", cfg).unwrap();
    let addr = server.addr().to_string();
    let statuses: Vec<u16> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let addr = addr.clone();
                scope.spawn(move || get(&addr, "/healthz").0)
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert!(statuses.contains(&200), "{statuses:?}");
    assert!(statuses.contains(&429), "{statuses:?}");
    // Every probe got an answer — shed, not hung.
    assert_eq!(statuses.len(), 8);
    let (_, m) = get(&addr, "/metrics");
    assert!(json_u64(&m, "load_shed_429") >= 1, "{m}");
    server.shutdown();
}
