//! Differential suite: online Chameleon vs offline ScalaTrace.
//!
//! On a fault-free run, Chameleon's incrementally grown online trace must
//! be *observationally equivalent* to the offline full-merge ScalaTrace
//! produces at finalize: every rank extracts the same dynamic event stream
//! (operation, endpoints, call-site) from either trace, and both traces
//! replay to completion with identical event counts.
//!
//! Two deliberate exclusions, both properties of the approach rather than
//! defects:
//!
//! - **Timing statistics.** Chameleon merges only the lead ranks' traces,
//!   so its `count=`/time aggregates draw from a different sample set than
//!   the all-rank offline merge.
//! - **Payload sizes within a cluster.** A lead's trace *represents* its
//!   cluster members; where a workload gives cluster members slightly
//!   different message sizes (BT's `count_jitter` models 2-D decomposition
//!   remainders), the online trace reports the lead's size for everyone.
//!   The test quantifies this: deviations may only appear in the `count`
//!   field and must stay within the jitter spread.

use std::sync::Arc;

use chameleon_repro::mpisim::CostModel;
use chameleon_repro::scalareplay::replay;
use chameleon_repro::scalatrace::CompressedTrace;
use chameleon_repro::workloads::driver::{run, Mode, Overrides, ScaledWorkload};
use chameleon_repro::workloads::{bt::Bt, emf::Emf, lu::Lu, Class, Workload};

/// Rank `rank`'s dynamic event stream in replay order, as
/// `(projection-without-count, count)` pairs. Timing stats are excluded by
/// construction.
fn stream_of(trace: &CompressedTrace, rank: usize) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    trace.walk(&mut |e| {
        if e.ranks.contains(rank) {
            let op = &e.op;
            out.push((
                format!(
                    "{:?} src={:?} dest={:?} tag={:?}/{:?} comm={:?} sig={:?}",
                    op.kind, op.src, op.dest, op.tag, op.recv_tag, op.comm, e.stack_sig
                ),
                op.count,
            ));
        }
    });
    out
}

/// `count_tolerance` is the workload's intra-cluster payload spread: 0
/// demands byte-exact equality, a positive bound permits the documented
/// lead-represents-member approximation on the `count` field only.
fn assert_equivalent(workload: Arc<dyn Workload>, class: Class, p: usize, count_tolerance: usize) {
    let name = workload.name();
    let online = run(
        workload.clone(),
        class,
        p,
        Mode::Chameleon,
        Overrides::default(),
    );
    let offline = run(workload, class, p, Mode::ScalaTrace, Overrides::default());
    let on = online.global_trace.expect("online trace on rank 0");
    let off = offline.global_trace.expect("offline trace on rank 0");

    for rank in 0..p {
        let a = stream_of(&on, rank);
        let b = stream_of(&off, rank);
        assert!(!b.is_empty(), "{name}: rank {rank} traced nothing offline");
        assert_eq!(
            a.len(),
            b.len(),
            "{name}: rank {rank} has a different number of dynamic events"
        );
        for (i, ((op_a, count_a), (op_b, count_b))) in a.iter().zip(&b).enumerate() {
            assert_eq!(
                op_a, op_b,
                "{name}: rank {rank} event {i} diverged structurally"
            );
            assert!(
                count_a.abs_diff(*count_b) <= count_tolerance,
                "{name}: rank {rank} event {i} count {count_a} vs {count_b} \
                 exceeds the cluster-representative tolerance {count_tolerance}"
            );
        }
    }

    let rp_on = replay(&on, p, CostModel::default()).expect("online trace replays");
    let rp_off = replay(&off, p, CostModel::default()).expect("offline trace replays");
    assert_eq!(
        rp_on.dropped_events, 0,
        "{name}: online replay dropped events"
    );
    assert_eq!(
        rp_off.dropped_events, 0,
        "{name}: offline replay dropped events"
    );
    assert_eq!(
        rp_on.events_executed, rp_off.events_executed,
        "{name}: replays executed different event counts"
    );
}

#[test]
fn bt_online_matches_offline_up_to_cluster_representation() {
    // BT's count_jitter gives interior cluster members payload sizes that
    // differ by one 8-byte size class at p=4 — the lead's size stands in
    // for its member's, bounded by exactly that spread.
    assert_equivalent(Arc::new(ScaledWorkload::new(Bt, 5)), Class::A, 4, 8);
}

#[test]
fn lu_online_matches_offline() {
    assert_equivalent(
        Arc::new(ScaledWorkload::new(Lu::strong(), 5)),
        Class::D,
        4,
        0,
    );
}

#[test]
fn emf_online_matches_offline() {
    assert_equivalent(Arc::new(Emf), Class::A, 5, 0);
}
