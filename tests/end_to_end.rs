//! End-to-end integration: workload → Chameleon → trace file → replay,
//! across crate boundaries, for every benchmark skeleton.

use std::sync::Arc;

use chameleon_repro::mpisim::{Comm, CostModel, SrcSel, TagSel, World, WorldConfig};
use chameleon_repro::scalareplay::{accuracy, replay};
use chameleon_repro::scalatrace::{format, RankSet};
use chameleon_repro::workloads::driver::{run, Mode, Overrides, ScaledWorkload};
use chameleon_repro::workloads::{
    bt::Bt, cg::Cg, emf::Emf, lu::Lu, pop::Pop, sp::Sp, sweep3d::Sweep3d, Class, Workload,
};

fn scaled<W: Workload + 'static>(w: W) -> Arc<dyn Workload> {
    Arc::new(ScaledWorkload::new(w, 25))
}

fn all_workloads() -> Vec<Arc<dyn Workload>> {
    vec![
        scaled(Bt),
        scaled(Sp),
        scaled(Lu::strong()),
        scaled(Lu::weak()),
        scaled(Pop),
        scaled(Sweep3d::strong()),
        scaled(Cg),
        Arc::new(Emf),
    ]
}

#[test]
fn large_world_4096_rank_spmd_ring() {
    // Thread-per-rank capped worlds at a few hundred ranks: P free-running
    // threads all polling their mailboxes thrash the host scheduler. The
    // event scheduler parks blocked rank tasks without polling and runs at
    // most `workers` of them at once, so a 4096-rank world is just 4096
    // parked continuations — bounded memory, bounded runnable set. This
    // smoke test pins that capability (nextest enforces the wall-clock
    // bound; see .config/nextest.toml).
    const P: usize = 4096;
    const ROUNDS: u64 = 3;
    let report = World::new(WorldConfig::new(P))
        .run(|proc| {
            let p = proc.size();
            let me = proc.rank();
            let right = (me + 1) % p;
            let left = (me + p - 1) % p;
            // SPMD ring: token accumulates every rank it passes through.
            let mut acc = 0u64;
            for round in 0..ROUNDS {
                proc.compute(1e-6);
                proc.send_u64(right, round as u32, Comm::WORLD, acc + me as u64);
                let (_, v) =
                    proc.recv_u64(SrcSel::Rank(left), TagSel::Tag(round as u32), Comm::WORLD);
                acc = v;
            }
            proc.allreduce_sum(acc % 1024)
        })
        .unwrap();
    assert_eq!(report.ranks, P);
    // Every rank's final allreduce agrees, so all 4096 tasks reached their
    // final state (no starvation, no lost wakeups at scale).
    let first = report.results[0];
    assert!(report.results.iter().all(|&r| r == first));
    // Virtual time advanced through all ring rounds on every rank.
    assert!(report.rank_vtimes.iter().all(|&t| t > 0.0));
}

#[test]
fn every_workload_produces_a_complete_online_trace() {
    for w in all_workloads() {
        let name = w.name();
        let p = if name == "EMF" { 9 } else { 16 };
        let rep = run(w, Class::A, p, Mode::Chameleon, Overrides::default());
        let trace = rep
            .global_trace
            .as_ref()
            .unwrap_or_else(|| panic!("{name}: no online trace"));
        assert!(trace.dynamic_size() > 0, "{name}: empty trace");
        // Every rank appears in the trace via cluster ranklists.
        let mut covered = RankSet::empty();
        trace.visit_events(&mut |e| covered = covered.union(&e.ranks));
        assert_eq!(covered.len(), p, "{name}: ranks missing from trace");
    }
}

#[test]
fn online_traces_roundtrip_through_the_file_format() {
    for w in all_workloads() {
        let name = w.name();
        let p = if name == "EMF" { 5 } else { 9 };
        let rep = run(w, Class::A, p, Mode::Chameleon, Overrides::default());
        let trace = rep.global_trace.expect("trace");
        let text = format::to_text(&trace);
        let back =
            format::from_text(&text).unwrap_or_else(|e| panic!("{name}: reparse failed: {e}"));
        assert_eq!(back, trace, "{name}: file format round-trip");
    }
}

#[test]
fn clustered_replay_accuracy_meets_paper_band() {
    // The paper reports 87-98% accuracy across benchmarks. Require >= 80%
    // for the scaled-down configurations (smaller intervals are noisier).
    for w in [scaled(Bt), scaled(Sp), scaled(Lu::strong()), scaled(Pop)] {
        let name = w.name();
        let p = 16;
        let st = run(
            Arc::clone(&w),
            Class::A,
            p,
            Mode::ScalaTrace,
            Overrides::default(),
        );
        let ch = run(w, Class::A, p, Mode::Chameleon, Overrides::default());
        let t = replay(&st.global_trace.expect("st trace"), p, CostModel::default())
            .expect("st replay");
        let t_prime = replay(&ch.global_trace.expect("ch trace"), p, CostModel::default())
            .expect("ch replay");
        let acc = accuracy(t.replay_vtime, t_prime.replay_vtime);
        assert!(
            acc >= 0.80,
            "{name}: clustered replay accuracy {acc:.3} below band \
             (t={}, t'={})",
            t.replay_vtime,
            t_prime.replay_vtime
        );
    }
}

#[test]
fn chameleon_never_misses_call_path_groups() {
    // "Chameleon does not miss any MPI event by selecting at least one
    // representative from each callpath cluster."
    let cases: Vec<(Arc<dyn Workload>, usize, u64)> = vec![
        (scaled(Bt), 16, 3),
        (scaled(Lu::strong()), 16, 9),
        (scaled(Sweep3d::strong()), 16, 9),
        (scaled(Pop), 16, 3),
        (Arc::new(Emf), 9, 2),
    ];
    for (w, p, expected_groups) in cases {
        let name = w.name();
        let rep = run(w, Class::A, p, Mode::Chameleon, Overrides::default());
        let s = &rep.cham_stats[0];
        assert_eq!(
            s.call_paths, expected_groups,
            "{name}: observed Call-Path groups"
        );
        assert!(
            s.leads >= expected_groups,
            "{name}: at least one lead per group"
        );
    }
}

#[test]
fn table2_state_shapes_hold_for_all_benchmarks() {
    // (name, p, C, L, AT) — the scaled runs preserve the paper's state
    // tallies exactly (Table II).
    // LU couples timestep count to the input class (Figure 11), so the
    // Table II shape is asserted at class D — the paper's configuration.
    type Case = (Arc<dyn Workload>, Class, usize, u64, u64, u64);
    let cases: Vec<Case> = vec![
        (scaled(Bt), Class::A, 8, 1, 8, 1),
        (scaled(Lu::strong()), Class::D, 8, 1, 11, 3),
        (scaled(Sp), Class::A, 8, 1, 21, 3),
        (scaled(Pop), Class::A, 8, 1, 16, 3),
        (scaled(Sweep3d::strong()), Class::A, 8, 1, 7, 2),
        (scaled(Lu::weak()), Class::A, 8, 1, 8, 1),
        (Arc::new(Emf), Class::A, 9, 1, 6, 2),
    ];
    for (w, class, p, c, l, at) in cases {
        let name = w.name();
        let rep = run(w, class, p, Mode::Chameleon, Overrides::default());
        let s = &rep.cham_stats[0].states;
        assert_eq!((s.c, s.l, s.at), (c, l, at), "{name}: Table II shape");
    }
}

#[test]
fn non_leads_hold_zero_trace_bytes_in_lead_state() {
    let rep = run(
        scaled(Bt),
        Class::A,
        16,
        Mode::Chameleon,
        Overrides::default(),
    );
    let dark = rep
        .cham_stats
        .iter()
        .filter(|s| s.mem.get("L").1 == 0)
        .count();
    // K=3 leads; everyone else dark.
    assert!(dark >= 16 - 3 - 1, "expected most ranks dark, got {dark}");
}

#[test]
fn clustered_trace_is_a_compact_summary_of_the_full_merge() {
    // The clustered trace keeps one representative per behavior group, so
    // it is never larger than the full ScalaTrace merge (which also holds
    // the per-rank parameter variants the clusters absorb), yet it still
    // replays every rank's role via the cluster ranklists.
    let p = 16;
    let st = run(
        scaled(Lu::strong()),
        Class::A,
        p,
        Mode::ScalaTrace,
        Overrides::default(),
    );
    let ch = run(
        scaled(Lu::strong()),
        Class::A,
        p,
        Mode::Chameleon,
        Overrides::default(),
    );
    let st_trace = st.global_trace.expect("st");
    let ch_trace = ch.global_trace.expect("ch");
    assert!(ch_trace.dynamic_size() > 0);
    assert!(
        ch_trace.dynamic_size() <= st_trace.dynamic_size(),
        "clustered {} vs full {}",
        ch_trace.dynamic_size(),
        st_trace.dynamic_size()
    );
    assert!(
        ch_trace.compressed_size() <= st_trace.compressed_size(),
        "clustered trace must not be larger than the full merge"
    );
    let mut covered = RankSet::empty();
    ch_trace.visit_events(&mut |e| covered = covered.union(&e.ranks));
    assert_eq!(covered.len(), p);
}
