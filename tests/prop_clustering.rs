//! Property-based clustering suite (xrand-seeded).
//!
//! Randomized instances pin down the clustering layer's contracts:
//!
//! - relabeling ranks permutes the partition, nothing more (on
//!   well-separated data, where the partition is unique);
//! - ranks with byte-identical signatures always share a cluster;
//! - `reelect_leads` always hands an orphaned cluster to its minimum
//!   surviving member, exactly once;
//! - duplicate distances cannot destabilize the top-K partition.
//!
//! The separation caveat on the first property is load-bearing: greedy
//! farthest-point selection is seed-dependent on ambiguous data (points on
//! a line can split either way), so permutation invariance is only a
//! theorem when every inter-cluster gap dwarfs every intra-cluster one.
//! The generators construct exactly that regime: centers ~1e6 apart,
//! jitter within ±500.

use chameleon_repro::clusterkit::{find_top_k, ClusterEntry, ClusterMap, KFarthest, LeadSelection};
use chameleon_repro::mpisim::Rank;
use chameleon_repro::sigkit::{CallPathSig, SignatureTriple};
use xrand::Xoshiro256;

fn triple(call_path: u64, src: u64, dest: u64) -> SignatureTriple {
    SignatureTriple {
        call_path: CallPathSig(call_path),
        src,
        dest,
    }
}

/// Well-separated instance: `m` centers ~1e6 apart, each point jittered
/// within ±500 of its center. Returns each rank's center index and triple.
fn separated_instance(
    rng: &mut Xoshiro256,
    m: usize,
    n: usize,
) -> (Vec<usize>, Vec<SignatureTriple>) {
    let centers: Vec<(u64, u64)> = (0..m)
        .map(|i| {
            (
                1_000_000 * (i as u64 + 1),
                1_000_000 * (m as u64 - i as u64),
            )
        })
        .collect();
    let mut owner = Vec::with_capacity(n);
    let mut triples = Vec::with_capacity(n);
    for i in 0..n {
        // Every center owns at least one rank; the rest land randomly.
        let c = if i < m { i } else { rng.usize_below(m) };
        let (sx, sy) = centers[c];
        owner.push(c);
        triples.push(triple(
            7,
            sx - 500 + rng.below(1000),
            sy - 500 + rng.below(1000),
        ));
    }
    (owner, triples)
}

/// Cluster `triples` (rank i holds `triples[i]`) and return the partition
/// as sorted ranklists, sorted by first member.
fn cluster_partition(triples: &[SignatureTriple], k: usize) -> Vec<Vec<Rank>> {
    let mut map = ClusterMap::new();
    for (rank, t) in triples.iter().enumerate() {
        map.merge(ClusterMap::from_rank(rank, t));
    }
    let sel = LeadSelection::select(map, k, &KFarthest);
    let mut partition: Vec<Vec<Rank>> = sel
        .map
        .groups()
        .flat_map(|(_, entries)| entries.iter().map(|e| e.members.expand()))
        .collect();
    partition.sort();
    partition
}

#[test]
fn relabeling_ranks_permutes_the_partition() {
    let mut rng = Xoshiro256::seed_from_u64(0x5E9A);
    for _case in 0..100 {
        let m = rng.range_usize(2, 5);
        let n = rng.range_usize(m + 2, 24);
        let (_, triples) = separated_instance(&mut rng, m, n);
        let base = cluster_partition(&triples, m);

        // Relabel: rank r in the permuted instance holds the signature
        // originally held by perm[r].
        let mut perm: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut perm);
        let permuted: Vec<SignatureTriple> = perm.iter().map(|&p| triples[p]).collect();
        let got = cluster_partition(&permuted, m);

        // Push the base partition through the relabeling: original rank p
        // is now called inv[p].
        let mut inv = vec![0usize; n];
        for (r, &p) in perm.iter().enumerate() {
            inv[p] = r;
        }
        let mut want: Vec<Vec<Rank>> = base
            .iter()
            .map(|group| {
                let mut g: Vec<Rank> = group.iter().map(|&p| inv[p]).collect();
                g.sort_unstable();
                g
            })
            .collect();
        want.sort();
        assert_eq!(got, want, "partition must commute with rank relabeling");
    }
}

#[test]
fn equal_signatures_share_a_cluster() {
    let mut rng = Xoshiro256::seed_from_u64(0x5165);
    for _case in 0..200 {
        // Signatures drawn from a small pool guarantee collisions; n > k
        // guarantees the pruning path actually runs.
        let n = rng.range_usize(8, 30);
        let k = rng.range_usize(1, 6);
        let pool: Vec<(u64, u64)> = (0..rng.range_usize(2, 6))
            .map(|_| (rng.below(5000), rng.below(5000)))
            .collect();
        let picks: Vec<(u64, u64)> = (0..n).map(|_| pool[rng.usize_below(pool.len())]).collect();
        let singletons: Vec<ClusterEntry> = picks
            .iter()
            .enumerate()
            .map(|(r, &(s, d))| ClusterEntry::singleton(r, &triple(1, s, d)))
            .collect();
        let out = find_top_k(singletons, k, &KFarthest);
        let cluster_of = |rank: Rank| {
            out.iter()
                .position(|e| e.members.contains(rank))
                .expect("partition covers every rank")
        };
        for a in 0..n {
            for b in a + 1..n {
                if picks[a] == picks[b] {
                    assert_eq!(
                        cluster_of(a),
                        cluster_of(b),
                        "ranks {a} and {b} have identical signatures"
                    );
                }
            }
        }
    }
}

#[test]
fn reelection_hands_orphans_to_minimum_survivor() {
    let mut rng = Xoshiro256::seed_from_u64(0xDEAD);
    for _case in 0..200 {
        let n = rng.range_usize(4, 16);
        let (_, triples) = separated_instance(&mut rng, 2, n);
        let mut map = ClusterMap::new();
        for (rank, t) in triples.iter().enumerate() {
            map.merge(ClusterMap::from_rank(rank, t));
        }
        let sel = LeadSelection::select(map, 2, &KFarthest);
        let mut m = sel.map;
        let before: Vec<(Rank, Vec<Rank>)> = m
            .groups()
            .flat_map(|(_, es)| es.iter().map(|e| (e.lead, e.members.expand())))
            .collect();

        // Kill a random subset (possibly including leads).
        let alive: Vec<Rank> = (0..n).filter(|_| rng.gen_bool(0.6)).collect();
        let reelections = m.reelect_leads(&alive);

        for (old_lead, members) in &before {
            let survivors: Vec<Rank> = members
                .iter()
                .copied()
                .filter(|r| alive.contains(r))
                .collect();
            let entry = m
                .groups()
                .flat_map(|(_, es)| es.iter())
                .find(|e| e.members.expand() == *members)
                .expect("entries are only re-led, never removed")
                .clone();
            if alive.contains(old_lead) {
                assert_eq!(entry.lead, *old_lead, "living leads keep their seat");
            } else if let Some(&min_survivor) = survivors.first() {
                assert_eq!(entry.lead, min_survivor, "minimum survivor takes over");
                assert!(reelections
                    .iter()
                    .any(|re| re.old == *old_lead && re.new == min_survivor));
            } else {
                assert_eq!(entry.lead, *old_lead, "extinct clusters keep dead leads");
            }
        }
        // Exactly one reelection per orphaned-but-survivable cluster, and
        // a second pass finds nothing left to do.
        let orphaned = before
            .iter()
            .filter(|(lead, members)| {
                !alive.contains(lead) && members.iter().any(|r| alive.contains(r))
            })
            .count();
        assert_eq!(reelections.len(), orphaned);
        assert!(
            m.reelect_leads(&alive).is_empty(),
            "re-election is idempotent"
        );
    }
}

#[test]
fn topk_is_stable_under_duplicate_distances() {
    let mut rng = Xoshiro256::seed_from_u64(0xD0BB1E);
    for _case in 0..200 {
        // m well-separated coordinate values, each duplicated many times:
        // every pairwise distance is one of a handful of tied values, the
        // adversarial case for greedy selection. The partition must still
        // be exactly "group by coordinate", whatever the input order.
        let m = rng.range_usize(2, 5);
        let n = rng.range_usize(m + 3, 28);
        let coord = |c: usize| 1_000_000u64 * (c as u64 + 1);
        let owner: Vec<usize> = (0..n)
            .map(|i| if i < m { i } else { rng.usize_below(m) })
            .collect();
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);
        let singletons: Vec<ClusterEntry> = order
            .iter()
            .map(|&r| ClusterEntry::singleton(r, &triple(1, coord(owner[r]), 0)))
            .collect();
        let out = find_top_k(singletons, m, &KFarthest);
        assert_eq!(out.len(), m, "one cluster per distinct coordinate");
        for e in &out {
            let members = e.members.expand();
            let c = owner[members[0]];
            assert!(
                members.iter().all(|&r| owner[r] == c),
                "cluster mixes coordinates: {members:?}"
            );
            assert_eq!(e.src, coord(c), "representative sits on the coordinate");
        }
    }
}
