//! Thread-vs-event scheduler differential suite.
//!
//! The event scheduler (the default) multiplexes rank tasks over a
//! bounded worker pool with event wakeups; the pre-refactor free-running
//! thread scheduler survives behind `WorldConfig::with_thread_scheduler`
//! (`Overrides::thread_sched` at the driver level) exactly so it can act
//! as the oracle here: every simulation-visible output — gathered
//! journals (byte-for-byte), trace digests, Chameleon stats, fault
//! counters, survivor sets — must be identical between the two engines
//! over the same seed × workload × fault-plan grid.
//!
//! This is the correctness story of the scheduler refactor: the
//! simulation's determinism was already scheduler-independent by design
//! (eager sends, arrival-stamped envelopes, deferred clock accounting,
//! death flags published before unwinding, canonical journal gather), so
//! any divergence caught here is a scheduler bug, not an expected drift.

use chameleon_repro::chameleon::ChameleonConfig;
use chameleon_repro::obs::query::{fnv64, journal_digest};
use chameleon_repro::scalatrace::format as trace_format;
use chameleon_repro::workloads::chaos::{
    chaos_plan, marker_entry_ops, root_crash_plan, run_chaos_result_on,
};
use chameleon_repro::workloads::degraded::{degraded_detector, straggler_plan};
use chameleon_repro::workloads::driver::{run, Mode, Overrides};
use chameleon_repro::workloads::registry::workload;
use chameleon_repro::workloads::Class;

/// Run one driver-level configuration on both schedulers and assert
/// every simulation-visible output agrees.
fn assert_driver_parity(name: &str, p: usize, mode: Mode, overrides: Overrides, label: &str) {
    let on = |thread_sched: bool| {
        let mut o = overrides.clone();
        o.thread_sched = thread_sched;
        run(workload(name, 25), Class::A, p, mode.clone(), o)
    };
    let events = on(false);
    let threads = on(true);

    assert_eq!(
        events.app_vtime, threads.app_vtime,
        "{label}: app vtime must be bit-identical"
    );
    assert_eq!(
        events.crashed, threads.crashed,
        "{label}: survivor sets must agree"
    );
    assert_eq!(
        events.fault_stats, threads.fault_stats,
        "{label}: fault counters must agree"
    );
    assert_eq!(
        events.cham_stats, threads.cham_stats,
        "{label}: per-rank Chameleon stats must agree"
    );
    match (&events.global_trace, &threads.global_trace) {
        (Some(a), Some(b)) => {
            let da = fnv64(trace_format::to_text(a).as_bytes());
            let db = fnv64(trace_format::to_text(b).as_bytes());
            assert_eq!(da, db, "{label}: trace digests must agree");
        }
        (None, None) => {}
        _ => panic!("{label}: one scheduler produced a trace, the other did not"),
    }
    match (&events.journal, &threads.journal) {
        (Some(a), Some(b)) => {
            assert_eq!(
                a.to_jsonl(),
                b.to_jsonl(),
                "{label}: journals must be byte-identical"
            );
        }
        (None, None) => {}
        _ => panic!("{label}: one scheduler gathered a journal, the other did not"),
    }
}

#[test]
fn bt_fault_free_and_armed_parity() {
    for seed_journal in [false, true] {
        assert_driver_parity(
            "BT",
            8,
            Mode::Chameleon,
            Overrides {
                journal: seed_journal,
                ..Default::default()
            },
            &format!("BT p=8 journal={seed_journal}"),
        );
    }
}

#[test]
fn lu_lossy_link_parity() {
    // A crash-free lossy plan: corruption and duplication exercise the
    // reliable layer's retransmit loop on both engines.
    for seed in [3u64, 11] {
        assert_driver_parity(
            "LU",
            8,
            Mode::Chameleon,
            Overrides {
                journal: true,
                faults: Some(
                    chameleon_repro::mpisim::FaultPlan::new(seed)
                        .corrupt_per_mille(150)
                        .duplicate_per_mille(40),
                ),
                retry_budget: Some(3),
                ..Default::default()
            },
            &format!("LU p=8 lossy seed={seed}"),
        );
    }
}

#[test]
fn degraded_straggler_with_detector_parity() {
    // DRING with a straggler plan and the anomaly detector armed: the
    // closed-loop health plane (OBS-plane gathers, mitigation ladder)
    // must behave identically under both schedulers.
    let seed = 5u64;
    let p = 8;
    assert_driver_parity(
        "DRING",
        p,
        Mode::Chameleon,
        Overrides {
            journal: true,
            faults: Some(straggler_plan(seed, p)),
            detector: Some(degraded_detector()),
            ..Default::default()
        },
        &format!("DRING p={p} straggler seed={seed}"),
    );
}

/// Run one chaos configuration on both schedulers and compare outcomes.
fn assert_chaos_parity(
    p: usize,
    steps: usize,
    plan: chameleon_repro::mpisim::FaultPlan,
    label: &str,
) {
    let on = |thread_sched: bool| {
        run_chaos_result_on(
            p,
            steps,
            plan.clone(),
            true,
            ChameleonConfig::with_k(p),
            thread_sched,
        )
        .unwrap_or_else(|e| panic!("{label}: chaos run failed: {e}"))
    };
    let events = on(false);
    let threads = on(true);
    assert_eq!(events.crashed, threads.crashed, "{label}: survivor sets");
    assert_eq!(
        events.fault_stats, threads.fault_stats,
        "{label}: fault counters"
    );
    assert_eq!(events.stats, threads.stats, "{label}: per-rank stats");
    assert_eq!(
        fnv64(trace_format::to_text(&events.online_trace).as_bytes()),
        fnv64(trace_format::to_text(&threads.online_trace).as_bytes()),
        "{label}: online trace digests"
    );
    let (ja, jb) = (
        events.journal.expect("recorded"),
        threads.journal.expect("recorded"),
    );
    assert_eq!(
        journal_digest(&ja),
        journal_digest(&jb),
        "{label}: journal digests"
    );
    assert_eq!(
        ja.to_jsonl(),
        jb.to_jsonl(),
        "{label}: journals byte-identical"
    );
}

#[test]
fn chaos_crash_grid_parity() {
    // Mid-run non-root crash + lossy link across several seeds: the
    // shrink-and-continue stack (death detection, re-election, degraded
    // slices) must agree between engines.
    for seed in [1u64, 7, 19] {
        assert_chaos_parity(4, 40, chaos_plan(seed, 4), &format!("chaos seed={seed}"));
    }
}

#[test]
fn rootcrash_deputy_promotion_parity() {
    // Rank 0 dies on a marker boundary; the deputy promotion path (OBS
    // replica install, lock-step promotion counting) must agree.
    let seed = 3u64;
    let p = 4;
    let steps = 24;
    let ops = marker_entry_ops(p, steps, root_crash_plan(seed, 0));
    let mid = ops[steps / 2];
    assert_chaos_parity(
        p,
        steps,
        root_crash_plan(seed, mid),
        &format!("rootcrash seed={seed} at_op={mid}"),
    );
}

#[test]
fn parity_holds_across_worker_pool_sizes() {
    // The thread oracle is one fixed point; the event scheduler must also
    // agree with itself across pool sizes (full invariance grid lives in
    // tests/prop_sched.rs — this pins the driver-level plumbing).
    let base = run(
        workload("BT", 25),
        Class::A,
        8,
        Mode::Chameleon,
        Overrides {
            journal: true,
            workers: 1,
            ..Default::default()
        },
    );
    for workers in [2usize, 8] {
        let other = run(
            workload("BT", 25),
            Class::A,
            8,
            Mode::Chameleon,
            Overrides {
                journal: true,
                workers,
                ..Default::default()
            },
        );
        assert_eq!(
            base.journal.as_ref().unwrap().to_jsonl(),
            other.journal.as_ref().unwrap().to_jsonl(),
            "workers={workers}: journal must not depend on pool size"
        );
        assert_eq!(base.app_vtime, other.app_vtime);
        assert_eq!(base.cham_stats, other.cham_stats);
    }
}
