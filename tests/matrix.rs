//! Scenario-matrix runner: end-to-end determinism and the stored-baseline
//! regression gate.
//!
//! The committed fixtures under `tests/fixtures/` pin the *entire
//! canonical result table* of two plans byte-for-byte:
//!
//! - `matrix_chaos.baseline.json` — the ported chaos 10-seed suite
//!   (`plans/chaos10.plan.json`);
//! - `matrix_smoke.baseline.json` — the small CI smoke plan
//!   (`plans/ci_smoke.plan.json`), the baseline the `matrix-smoke` CI job
//!   gates against;
//! - `matrix_degraded.baseline.json` — the detect-and-mitigate suite
//!   (`plans/degraded.plan.json`), the baseline the `degraded-matrix` CI
//!   job gates against: every trial's precision/recall/latency against
//!   the injected ground truth is pinned alongside the usual digests.
//!
//! Every digest, counter, and partition field in those tables is a pure
//! function of the plan, so any drift — in the simulator, the fault
//! layer, the clustering runtime, the journal encoding, or the matrix
//! runner itself — shows up as a named (trial, metric) divergence. On
//! intentional changes regenerate with:
//!
//! ```text
//! REGEN_GOLDEN=1 cargo test --test matrix
//! ```
//!
//! and review the fixture diff like source code.

use std::path::PathBuf;

use chameleon_repro::workloads::matrix::{diff_results, run_plan, MatrixPlan, MatrixResults};

fn repo_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn load_plan(file: &str) -> MatrixPlan {
    MatrixPlan::load(&repo_path("plans").join(file)).expect("committed plan loads")
}

/// Fresh per-test scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cham_matrix_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Compare `text` against the named fixture, or rewrite the fixture when
/// `REGEN_GOLDEN` is set (same convention as `golden_traces.rs`).
fn assert_golden(name: &str, text: &str) {
    let path = repo_path("tests/fixtures").join(name);
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, text).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); regenerate with REGEN_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        text, want,
        "{name} drifted from its golden fixture; if the change is \
         intentional, regenerate with REGEN_GOLDEN=1 and review the diff"
    );
}

#[test]
fn chaos_plan_results_match_committed_baseline() {
    let plan = load_plan("chaos10.plan.json");
    let out = scratch("chaos_golden");
    let (results, timings) = run_plan(&plan, &out, 3).expect("chaos plan runs");
    assert_eq!(results.trials.len(), 10);
    assert!(
        results.trials.iter().all(|t| t.ok),
        "every chaos trial passes"
    );
    assert_eq!(timings.len(), 10, "every trial is timed");
    assert_golden("matrix_chaos.baseline.json", &results.to_json());
    // The on-disk table is exactly the canonical serialization.
    let disk = std::fs::read_to_string(out.join(&plan.name).join("results.json")).unwrap();
    assert_eq!(disk, results.to_json());
    let _ = std::fs::remove_dir_all(out);
}

#[test]
fn smoke_plan_results_match_committed_baseline() {
    let plan = load_plan("ci_smoke.plan.json");
    let out = scratch("smoke_golden");
    let (results, _) = run_plan(&plan, &out, 2).expect("smoke plan runs");
    assert_eq!(results.trials.len(), 4, "2 workloads x 2 seeds");
    assert!(
        results.trials.iter().all(|t| t.ok),
        "every smoke trial passes"
    );
    assert_golden("matrix_smoke.baseline.json", &results.to_json());
    let _ = std::fs::remove_dir_all(out);
}

#[test]
#[ignore = "full 16k merge sweep (tens of minutes even in release — the offline \
            fold is O(P²) in ranklist work): run by the scheduled merge-matrix \
            CI job, or explicitly via --ignored"]
fn merge_scaling_plan_results_match_committed_baseline() {
    // The committed sweep behind the `merge-matrix` CI gate: identical /
    // near-identical / disjoint folds, classes A-D, rank axis 4..16384.
    // Regenerate with
    //   REGEN_GOLDEN=1 cargo test --release --test matrix -- --ignored merge_scaling
    let plan = load_plan("merge_scaling.plan.json");
    let out = scratch("merge_scaling_golden");
    let (results, _) = run_plan(&plan, &out, 2).expect("merge plan runs");
    assert_eq!(
        results.trials.len(),
        3 * 4 * 7,
        "workloads x classes x ranks"
    );
    assert!(
        results.trials.iter().all(|t| t.ok),
        "every merge trial passes"
    );
    // Every row records its fold width; the disjoint widths are capped
    // (class-independent alignment work), identical/near rows reach the
    // full rank axis — the 16384-wide folds are really in the table.
    for t in &results.trials {
        let width: usize = t.fields["fold_width"]
            .parse()
            .expect("fold_width row field");
        let p: usize =
            t.id.split('-')
                .find_map(|seg| seg.strip_prefix('p'))
                .and_then(|digits| digits.parse().ok())
                .expect("trial id encodes the rank coordinate");
        if t.id.contains("DISJOINT") {
            assert!(width <= p && width >= 2, "{}: capped width {width}", t.id);
        } else {
            assert_eq!(width, p, "{}: uncapped fold reaches the rank axis", t.id);
        }
    }
    assert!(
        results
            .trials
            .iter()
            .any(|t| t.fields["fold_width"] == "16384"),
        "the sweep reaches 16384-wide folds"
    );
    assert_golden("matrix_merge_scaling.baseline.json", &results.to_json());
    let _ = std::fs::remove_dir_all(out);
}

#[test]
fn rerun_is_byte_stable_across_worker_counts() {
    // The acceptance criterion: same plan, same seeds → byte-identical
    // result tables, no matter how the worker pool schedules trials and
    // where the artifacts land.
    let plan = load_plan("ci_smoke.plan.json");
    let out_a = scratch("stable_a");
    let out_b = scratch("stable_b");
    let (a, _) = run_plan(&plan, &out_a, 1).unwrap();
    let (b, _) = run_plan(&plan, &out_b, 4).unwrap();
    assert_eq!(
        a.to_json(),
        b.to_json(),
        "worker-pool parallelism or output location leaked into the table"
    );
    // Per-trial journals are byte-stable too.
    for trial in &a.trials {
        let read = |root: &PathBuf| {
            std::fs::read_to_string(root.join(&plan.name).join(&trial.id).join("journal.jsonl"))
                .expect("journal artifact exists")
        };
        assert_eq!(read(&out_a), read(&out_b), "journal drift in {}", trial.id);
    }
    let _ = std::fs::remove_dir_all(out_a);
    let _ = std::fs::remove_dir_all(out_b);
}

#[test]
fn rootcrash_plan_replays_supervised_recovery() {
    // The ported 3×3 root-crash matrix, through the runner itself: every
    // trial restarts from a durable checkpoint (or fails over in place)
    // and completes with the deputy promoted.
    let plan = load_plan("rootcrash.plan.json");
    let out = scratch("rootcrash_plan");
    let (results, _) = run_plan(&plan, &out, 3).expect("rootcrash plan runs");
    assert_eq!(results.trials.len(), 9, "3 seeds x 3 crash points");
    for t in &results.trials {
        assert!(t.ok, "trial {} failed: {:?}", t.id, t.fields.get("error"));
        assert_eq!(t.fields["crashed"], "[0]", "trial {}", t.id);
        assert_eq!(t.fields["promotions"], "1", "trial {}", t.id);
        assert!(t.fields.contains_key("restarts"), "trial {}", t.id);
    }
    let _ = std::fs::remove_dir_all(out);
}

#[test]
fn degraded_plan_detects_every_injected_degradation() {
    // The closed-loop acceptance criterion: across straggler / ramp /
    // imbalance × both scenario workloads × 3 seeds, the streaming
    // detector recovers the injected ground truth with high precision and
    // recall, and the mitigation ladder pays for itself on flaky links.
    let plan = load_plan("degraded.plan.json");
    let out = scratch("degraded_golden");
    let (results, _) = run_plan(&plan, &out, 3).expect("degraded plan runs");
    assert_eq!(results.trials.len(), 18, "2 workloads x 3 faults x 3 seeds");
    let (mut ramp_on, mut ramp_off) = (0u64, 0u64);
    for t in &results.trials {
        assert!(t.ok, "trial {} failed: {:?}", t.id, t.fields.get("error"));
        let metric = |k: &str| -> f64 {
            t.fields[k]
                .parse()
                .unwrap_or_else(|_| panic!("trial {}: bad {k} {:?}", t.id, t.fields[k]))
        };
        assert!(metric("precision") >= 0.9, "trial {}: {:?}", t.id, t.fields);
        assert!(metric("recall") >= 0.8, "trial {}: {:?}", t.id, t.fields);
        assert_ne!(t.fields["detection_latency"], "none", "trial {}", t.id);
        if t.id.contains("-ramp-") {
            // Demoting the flagged rank from lead duty steers runtime
            // traffic off the flaky link, so the armed run never
            // retransmits more than the un-mitigated one. Whether a
            // given (workload, seed) pays *strictly* depends on whether
            // the election had that rank as a lead, so the strict payoff
            // is asserted on the suite aggregate below.
            let on: u64 = t.fields["retransmits_on"].parse().unwrap();
            let off: u64 = t.fields["retransmits_off"].parse().unwrap();
            assert!(on <= off, "trial {}: mitigation hurt ({on} vs {off})", t.id);
            ramp_on += on;
            ramp_off += off;
        }
    }
    assert!(
        ramp_on < ramp_off,
        "mitigation did not pay across the ramp trials ({ramp_on} vs {ramp_off})"
    );
    assert_golden("matrix_degraded.baseline.json", &results.to_json());
    let _ = std::fs::remove_dir_all(out);
}

#[test]
fn diff_gate_flags_tampered_determinism_fields() {
    // Gate semantics on the committed chaos baseline itself: identical
    // tables pass; perturbing any determinism field names the trial and
    // the metric.
    let text = std::fs::read_to_string(repo_path("tests/fixtures/matrix_chaos.baseline.json"))
        .expect("committed baseline exists (REGEN_GOLDEN=1 cargo test --test matrix)");
    let base = MatrixResults::from_json(&text).expect("baseline parses");
    assert_eq!(diff_results(&base, &base), None, "self-diff is clean");

    for metric in ["journal_digest", "trace_digest", "states"] {
        let mut cur = base.clone();
        let victim = cur.trials.len() / 2;
        cur.trials[victim]
            .fields
            .insert(metric.to_string(), "tampered".to_string());
        let d = diff_results(&base, &cur).expect("tampering must be caught");
        assert_eq!(d.trial, base.trials[victim].id);
        assert_eq!(d.metric, metric);
        assert_eq!(d.got, "tampered");
    }

    // Dropping a trial is a presence divergence.
    let mut cur = base.clone();
    cur.trials.pop();
    assert_eq!(diff_results(&base, &cur).unwrap().metric, "presence");
}
