//! Umbrella crate for the Chameleon reproduction workspace.
//!
//! Re-exports the component crates so examples and integration tests can
//! use a single dependency. See the individual crates for the real APIs:
//! [`chameleon`] (the paper's contribution), [`scalatrace`] (the tracing
//! substrate), [`mpisim`] (the simulated MPI runtime), [`clusterkit`],
//! [`sigkit`], [`scalareplay`] and [`workloads`].
pub use chameleon;
pub use clusterkit;
pub use mpisim;
pub use obs;
pub use scalareplay;
pub use scalatrace;
pub use sigkit;
pub use workloads;
