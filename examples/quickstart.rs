//! Quickstart: trace a small SPMD stencil with Chameleon.
//!
//! Runs an 8-rank simulated MPI job whose ranks exchange halos in a ring
//! and reduce a residual each timestep, with a Chameleon marker at every
//! timestep boundary. Prints the transition-graph statistics and the
//! resulting online global trace.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use chameleon::{Chameleon, ChameleonConfig};
use mpisim::{World, WorldConfig};
use scalatrace::{format, TracedProc};

fn main() {
    let ranks = 8;
    let timesteps = 20;

    let report = World::new(WorldConfig::new(ranks))
        .run(move |proc| {
            let mut tp = TracedProc::new(proc);
            let mut cham = Chameleon::new(ChameleonConfig::with_k(3));
            let me = tp.rank();
            let p = tp.size();
            for _ in 0..timesteps {
                tp.frame("timestep", |tp| {
                    // Halo exchange with ring neighbors.
                    tp.send("halo_up", (me + 1) % p, 1, &[0u8; 256]);
                    tp.recv("halo_down", (me + p - 1) % p, 1, 256);
                    // Convergence check.
                    tp.allreduce_sum("residual", 1);
                });
                tp.compute(1e-4);
                cham.marker(&mut tp);
            }
            cham.finalize(&mut tp)
        })
        .expect("simulation failed");

    let outcome = &report.results[0];
    let stats = &outcome.stats;
    println!("=== Chameleon quickstart ===");
    println!("ranks:              {ranks}");
    println!("timesteps:          {timesteps}");
    println!("marker calls:       {}", stats.marker_calls);
    println!(
        "states:             AT={} C={} L={} F={}",
        stats.states.at, stats.states.c, stats.states.l, stats.states.f
    );
    println!("call-path groups:   {}", stats.call_paths);
    println!("lead processes:     {}", stats.leads);
    println!(
        "tool overhead:      {:.3} ms (signatures {:?}, vote {:?}, clustering {:?}, inter-compression {:?})",
        stats.total_overhead().as_secs_f64() * 1e3,
        stats.signature_time,
        stats.vote_time,
        stats.clustering_time,
        stats.intercomp_time,
    );

    let trace = outcome
        .online_trace
        .as_ref()
        .expect("rank 0 holds the online trace");
    println!(
        "\nonline trace: {} compressed nodes representing {} dynamic events",
        trace.compressed_size(),
        trace.dynamic_size()
    );
    println!("\n--- trace file ---\n{}", format::to_text(trace));
}
