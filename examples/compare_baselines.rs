//! Compare tracing systems head-to-head on one workload: plain ScalaTrace
//! (all-rank merge at finalize), ACURDION (clustering at finalize), and
//! Chameleon (online clustering) — the paper's three-way comparison.
//!
//! ```text
//! cargo run --release --example compare_baselines [P]
//! ```

use std::sync::Arc;

use workloads::driver::{run, Mode, Overrides, ScaledWorkload};
use workloads::sp::Sp;
use workloads::Class;

fn main() {
    let p: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(32);
    let workload = || Arc::new(ScaledWorkload::new(Sp, 20));
    println!("SP skeleton, {p} ranks, class B\n");

    let app = run(workload(), Class::B, p, Mode::AppOnly, Overrides::default());
    println!("application virtual time: {:.4}s\n", app.app_vtime);

    println!(
        "{:<12} {:>14} {:>14} {:>14} {:>12}",
        "system", "clustering", "inter-comp", "total", "trace bytes"
    );
    println!("{}", "-".repeat(70));

    let st = run(
        workload(),
        Class::B,
        p,
        Mode::ScalaTrace,
        Overrides::default(),
    );
    let st_bytes: usize = st.baseline.iter().map(|b| b.trace_bytes).sum();
    println!(
        "{:<12} {:>13.6}s {:>13.6}s {:>13.6}s {:>12}",
        "ScalaTrace",
        st.clustering_overhead().as_secs_f64(),
        st.intercomp_overhead().as_secs_f64(),
        st.total_overhead().as_secs_f64(),
        st_bytes
    );

    let ac = run(
        workload(),
        Class::B,
        p,
        Mode::Acurdion,
        Overrides::default(),
    );
    let ac_bytes: usize = ac.baseline.iter().map(|b| b.trace_bytes).sum();
    println!(
        "{:<12} {:>13.6}s {:>13.6}s {:>13.6}s {:>12}",
        "ACURDION",
        ac.clustering_overhead().as_secs_f64(),
        ac.intercomp_overhead().as_secs_f64(),
        ac.total_overhead().as_secs_f64(),
        ac_bytes
    );

    let ch = run(
        workload(),
        Class::B,
        p,
        Mode::Chameleon,
        Overrides::default(),
    );
    // Chameleon: trace bytes at finalize are only held by leads.
    let ch_bytes: u64 = ch.cham_stats.iter().map(|s| s.mem.get("F").1).sum();
    println!(
        "{:<12} {:>13.6}s {:>13.6}s {:>13.6}s {:>12}",
        "Chameleon",
        ch.clustering_overhead().as_secs_f64(),
        ch.intercomp_overhead().as_secs_f64(),
        ch.total_overhead().as_secs_f64(),
        ch_bytes
    );

    println!(
        "\nglobal trace sizes (compressed nodes): ScalaTrace {}, ACURDION {}, Chameleon {}",
        st.global_trace
            .as_ref()
            .map(|t| t.compressed_size())
            .unwrap_or(0),
        ac.global_trace
            .as_ref()
            .map(|t| t.compressed_size())
            .unwrap_or(0),
        ch.global_trace
            .as_ref()
            .map(|t| t.compressed_size())
            .unwrap_or(0),
    );
}
