//! Demonstrate the transition graph: an application that switches between
//! two computation phases, showing AT → C → L, the flush on each phase
//! change, and re-clustering — the paper's Figure 3 walk-through.
//!
//! ```text
//! cargo run --release --example phase_changes
//! ```

use chameleon::{Chameleon, ChameleonConfig};
use mpisim::{World, WorldConfig};
use scalatrace::TracedProc;

fn main() {
    let ranks = 4;
    // Phase A: ring exchange. Phase B: butterfly reduction pattern.
    // Four blocks of 5 timesteps each: A A B B ... wait, alternate blocks.
    let report = World::new(WorldConfig::new(ranks))
        .run(|proc| {
            let mut tp = TracedProc::new(proc);
            let mut cham = Chameleon::new(ChameleonConfig::with_k(2));
            let me = tp.rank();
            let p = tp.size();
            let mut state_log: Vec<(u64, String)> = Vec::new();
            for block in 0..4 {
                for _ in 0..5 {
                    if block % 2 == 0 {
                        tp.frame("ring_phase", |tp| {
                            tp.send("ring_send", (me + 1) % p, 1, &[0u8; 64]);
                            tp.recv("ring_recv", (me + p - 1) % p, 1, 64);
                        });
                    } else {
                        tp.frame("reduce_phase", |tp| {
                            tp.allreduce_sum("global_sum", me as u64);
                            tp.barrier("sync_point");
                        });
                    }
                    let before = cham.stats().clone();
                    cham.marker(&mut tp);
                    let after = cham.stats();
                    // Classify what this marker did from the tallies.
                    let label = if after.states.c > before.states.c {
                        "C  (clustering: leads elected, traces merged)"
                    } else if after.states.l > before.states.l {
                        "L  (stable lead phase: non-leads dark)"
                    } else {
                        "AT (all tracing: first marker or phase change)"
                    };
                    state_log.push((after.marker_calls, label.to_string()));
                }
            }
            let outcome = cham.finalize(&mut tp);
            (state_log, outcome)
        })
        .expect("simulation failed");

    let (log, outcome) = &report.results[0];
    println!("=== transition graph walk-through (rank 0's view) ===");
    for (call, label) in log {
        println!("marker {call:>2}: {label}");
    }
    let s = &outcome.stats;
    println!(
        "\ntotals: AT={} C={} L={} — {} re-clusterings across {} phase blocks",
        s.states.at, s.states.c, s.states.l, s.reclusterings, 4
    );
    let trace = outcome.online_trace.as_ref().expect("online trace");
    println!(
        "online trace captured {} dynamic events in {} compressed nodes",
        trace.dynamic_size(),
        trace.compressed_size()
    );
}
