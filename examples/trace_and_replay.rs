//! Trace LU with Chameleon, write the online trace to a file, read it
//! back, replay it, and report the paper's accuracy metric.
//!
//! ```text
//! cargo run --release --example trace_and_replay
//! ```

use std::sync::Arc;

use mpisim::CostModel;
use scalareplay::{accuracy, replay};
use scalatrace::format;
use workloads::driver::{run, Mode, Overrides, ScaledWorkload};
use workloads::lu::Lu;
use workloads::Class;

fn main() {
    let p = 16;
    let workload = || Arc::new(ScaledWorkload::new(Lu::strong(), 10));

    println!("running LU on {p} simulated ranks (uninstrumented)...");
    let app = run(workload(), Class::B, p, Mode::AppOnly, Overrides::default());
    println!("  app virtual time: {:.4}s", app.app_vtime);

    println!("running LU under plain ScalaTrace...");
    let st = run(
        workload(),
        Class::B,
        p,
        Mode::ScalaTrace,
        Overrides::default(),
    );
    let st_trace = st.global_trace.expect("global trace at rank 0");

    println!("running LU under Chameleon...");
    let ch = run(
        workload(),
        Class::B,
        p,
        Mode::Chameleon,
        Overrides::default(),
    );
    let ch_trace = ch.global_trace.expect("online trace at rank 0");

    // Round-trip the online trace through the text format, as a real
    // deployment would (write at job end, replay later).
    let path = std::env::temp_dir().join("chameleon_lu_trace.txt");
    std::fs::write(&path, format::to_text(&ch_trace)).expect("write trace file");
    let loaded = format::from_text(&std::fs::read_to_string(&path).expect("read trace file"))
        .expect("parse trace file");
    assert_eq!(loaded, ch_trace, "trace file round-trips exactly");
    println!(
        "online trace written to {} ({} compressed nodes, {} dynamic events)",
        path.display(),
        loaded.compressed_size(),
        loaded.dynamic_size()
    );

    println!("replaying both traces...");
    let t = replay(&st_trace, p, CostModel::default()).expect("ScalaTrace replay");
    let t_prime = replay(&loaded, p, CostModel::default()).expect("Chameleon replay");

    println!("  ScalaTrace replay time: {:.4}s (virtual)", t.replay_vtime);
    println!(
        "  Chameleon  replay time: {:.4}s (virtual)",
        t_prime.replay_vtime
    );
    println!(
        "  ACC = 1 - |t - t'|/t  = {:.2}%",
        accuracy(t.replay_vtime, t_prime.replay_vtime) * 100.0
    );
    println!(
        "  events replayed: {} (dropped at cluster boundaries: {})",
        t_prime.events_executed, t_prime.dropped_events
    );
    std::fs::remove_file(&path).ok();
}
