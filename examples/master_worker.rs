//! Master–worker clustering: the EMF scenario.
//!
//! A master rank farms tasks to workers; Chameleon discovers the two
//! behavioral groups (master vs workers) from their Call-Path signatures
//! and elects one lead per group, so the online trace holds exactly two
//! behavioral descriptions no matter how many workers run.
//!
//! ```text
//! cargo run --release --example master_worker
//! ```

use std::sync::Arc;

use scalatrace::RankSet;
use workloads::driver::{run, Mode, Overrides};
use workloads::emf::Emf;
use workloads::Class;

fn main() {
    let p = 9; // 1 master + 8 workers
    println!(
        "running EMF pipeline on {p} ranks (1 master, {} workers)...",
        p - 1
    );
    let rep = run(
        Arc::new(Emf),
        Class::A,
        p,
        Mode::Chameleon,
        Overrides::default(),
    );

    let s = &rep.cham_stats[0];
    println!(
        "marker calls: {} (C={} L={} AT={})",
        s.marker_calls, s.states.c, s.states.l, s.states.at
    );
    println!("call-path groups discovered: {}", s.call_paths);
    println!("leads elected:               {}", s.leads);

    let trace = rep.global_trace.as_ref().expect("online trace");
    println!("\nonline trace events and their cluster ranklists:");
    let mut seen = Vec::new();
    trace.visit_events(&mut |e| {
        seen.push((e.op.kind.mnemonic(), e.ranks.clone()));
    });
    // Summarize: which rank sets appear?
    let mut groups: Vec<RankSet> = Vec::new();
    for (_, ranks) in &seen {
        if !groups.contains(ranks) {
            groups.push(ranks.clone());
        }
    }
    for g in &groups {
        let n_events = seen.iter().filter(|(_, r)| r == g).count();
        let kind = if g.contains(0) && g.len() == 1 {
            "master cluster"
        } else if !g.contains(0) {
            "worker cluster"
        } else {
            "mixed"
        };
        println!("  {kind}: ranklist {g} covers {n_events} event records");
    }
    assert!(
        groups.len() >= 2,
        "master and workers must cluster separately"
    );
    println!("\nper-rank trace memory at the markers (Table IV story):");
    for (rank, st) in rep.cham_stats.iter().enumerate() {
        let (calls, bytes) = st.mem.get("L");
        println!(
            "  rank {rank}: {} bytes across {} Lead-state markers{}",
            bytes,
            calls,
            if bytes == 0 {
                "  <- dark (follows its lead)"
            } else {
                ""
            }
        );
    }
}
