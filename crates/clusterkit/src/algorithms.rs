//! Interchangeable representative-selection algorithms.
//!
//! The paper: "Users could select any clustering algorithm (e.g.
//! K-Medoid, K-Furthest, K-Random selection). Bahmani and Mueller [3]
//! compared K-Medoid and K-Furthest clustering and observed that the
//! accuracy of traces is very close for these clustering algorithms."
//!
//! All three are provided behind one trait so the ablation bench can swap
//! them. Selection operates on an arbitrary point set with a caller-
//! supplied distance; outputs are *indices* of the selected
//! representatives. All algorithms are deterministic ([`KRandom`] takes an
//! explicit seed) so experiments are reproducible.

use xrand::Xoshiro256;

/// A representative-selection algorithm over a point set.
pub trait ClusterAlgorithm {
    /// Select up to `k` representative indices out of `n` points with the
    /// given pairwise distance function. Returns fewer than `k` indices
    /// only when `n < k`. The result is sorted and duplicate-free.
    fn select(&self, n: usize, k: usize, dist: &dyn Fn(usize, usize) -> f64) -> Vec<usize>;

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// Farthest-point (maximin) selection — the paper's "K-Furthest". Greedy:
/// start from point 0, repeatedly add the point maximizing its minimum
/// distance to the already-selected set. O(k·n) distance evaluations.
#[derive(Debug, Clone, Copy, Default)]
pub struct KFarthest;

impl ClusterAlgorithm for KFarthest {
    fn select(&self, n: usize, k: usize, dist: &dyn Fn(usize, usize) -> f64) -> Vec<usize> {
        if n == 0 || k == 0 {
            return Vec::new();
        }
        let mut selected = vec![0usize];
        // min distance from each point to the selected set
        let mut min_d: Vec<f64> = (0..n).map(|i| dist(0, i)).collect();
        while selected.len() < k.min(n) {
            let (next, &d) = min_d
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN distance"))
                .expect("non-empty");
            if d == 0.0 {
                // All remaining points coincide with a selected one; more
                // representatives add nothing.
                break;
            }
            selected.push(next);
            for (i, d) in min_d.iter_mut().enumerate() {
                *d = d.min(dist(next, i));
            }
        }
        selected.sort_unstable();
        selected.dedup();
        selected
    }

    fn name(&self) -> &'static str {
        "k-farthest"
    }
}

/// K-medoids via PAM-style swap refinement seeded with farthest-point.
/// Cost = Σ distance(point, nearest medoid); swaps until no improving swap
/// exists or the iteration cap hits. The paper cites K³ complexity — fine,
/// because Chameleon only ever clusters at most 2K+1 items per tree node.
#[derive(Debug, Clone, Copy)]
pub struct KMedoids {
    /// Refinement iteration cap.
    pub max_iters: usize,
}

impl Default for KMedoids {
    fn default() -> Self {
        KMedoids { max_iters: 16 }
    }
}

impl KMedoids {
    fn cost(n: usize, medoids: &[usize], dist: &dyn Fn(usize, usize) -> f64) -> f64 {
        (0..n)
            .map(|i| {
                medoids
                    .iter()
                    .map(|&m| dist(m, i))
                    .fold(f64::INFINITY, f64::min)
            })
            .sum()
    }
}

impl ClusterAlgorithm for KMedoids {
    fn select(&self, n: usize, k: usize, dist: &dyn Fn(usize, usize) -> f64) -> Vec<usize> {
        if n == 0 || k == 0 {
            return Vec::new();
        }
        let mut medoids = KFarthest.select(n, k, dist);
        let mut cost = Self::cost(n, &medoids, dist);
        for _ in 0..self.max_iters {
            let mut improved = false;
            for mi in 0..medoids.len() {
                for candidate in 0..n {
                    if medoids.contains(&candidate) {
                        continue;
                    }
                    let mut trial = medoids.clone();
                    trial[mi] = candidate;
                    let trial_cost = Self::cost(n, &trial, dist);
                    if trial_cost + 1e-12 < cost {
                        medoids = trial;
                        cost = trial_cost;
                        improved = true;
                    }
                }
            }
            if !improved {
                break;
            }
        }
        medoids.sort_unstable();
        medoids.dedup();
        medoids
    }

    fn name(&self) -> &'static str {
        "k-medoids"
    }
}

/// Uniform random selection with an explicit seed (reproducible baseline).
#[derive(Debug, Clone, Copy)]
pub struct KRandom {
    /// RNG seed.
    pub seed: u64,
}

impl Default for KRandom {
    fn default() -> Self {
        KRandom { seed: 0x5eed }
    }
}

impl ClusterAlgorithm for KRandom {
    fn select(&self, n: usize, k: usize, _dist: &dyn Fn(usize, usize) -> f64) -> Vec<usize> {
        if n == 0 || k == 0 {
            return Vec::new();
        }
        let mut rng = Xoshiro256::seed_from_u64(self.seed);
        let mut out: Vec<usize> = rng.sample_indices(n, k.min(n));
        out.sort_unstable();
        out
    }

    fn name(&self) -> &'static str {
        "k-random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Points on a line at the given coordinates.
    fn line_dist(coords: &[f64]) -> impl Fn(usize, usize) -> f64 + '_ {
        move |a, b| (coords[a] - coords[b]).abs()
    }

    #[test]
    fn farthest_picks_extremes() {
        let coords = [0.0, 1.0, 2.0, 100.0];
        let sel = KFarthest.select(4, 2, &line_dist(&coords));
        assert_eq!(sel, vec![0, 3], "seed plus the farthest point");
    }

    #[test]
    fn farthest_stops_early_when_points_coincide() {
        let coords = [0.0, 0.0, 0.0, 5.0];
        let sel = KFarthest.select(4, 3, &line_dist(&coords));
        // Only two distinct locations exist; a third pick adds nothing.
        assert_eq!(sel.len(), 2);
    }

    #[test]
    fn all_algorithms_respect_k_and_n() {
        let coords: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let algos: Vec<Box<dyn ClusterAlgorithm>> = vec![
            Box::new(KFarthest),
            Box::new(KMedoids::default()),
            Box::new(KRandom::default()),
        ];
        for algo in &algos {
            for k in [1, 3, 10, 20] {
                let sel = algo.select(10, k, &line_dist(&coords));
                assert!(sel.len() <= k.min(10), "{} k={k}", algo.name());
                assert!(!sel.is_empty(), "{} k={k}", algo.name());
                let mut sorted = sel.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted, sel, "{}: sorted+deduped", algo.name());
                assert!(sel.iter().all(|&i| i < 10), "{}", algo.name());
            }
        }
    }

    #[test]
    fn empty_input() {
        let d = |_: usize, _: usize| 0.0;
        assert!(KFarthest.select(0, 3, &d).is_empty());
        assert!(KMedoids::default().select(0, 3, &d).is_empty());
        assert!(KRandom::default().select(0, 3, &d).is_empty());
        assert!(KFarthest.select(5, 0, &d).is_empty());
    }

    #[test]
    fn medoids_finds_cluster_centers() {
        // Two tight clusters around 0 and 100: medoids must pick one point
        // from each.
        let coords = [0.0, 1.0, 2.0, 99.0, 100.0, 101.0];
        let sel = KMedoids::default().select(6, 2, &line_dist(&coords));
        assert_eq!(sel.len(), 2);
        let (low, high) = (sel[0], sel[1]);
        assert!(coords[low] <= 2.0, "one medoid in the low cluster");
        assert!(coords[high] >= 99.0, "one medoid in the high cluster");
        // And they should be the true centers (1.0 and 100.0).
        assert_eq!(coords[low], 1.0);
        assert_eq!(coords[high], 100.0);
    }

    #[test]
    fn medoids_better_or_equal_cost_than_farthest() {
        let coords = [0.0, 0.5, 1.0, 10.0, 10.5, 11.0, 50.0];
        let d = line_dist(&coords);
        let f = KFarthest.select(7, 3, &d);
        let m = KMedoids::default().select(7, 3, &d);
        let cost = |sel: &[usize]| {
            (0..7)
                .map(|i| sel.iter().map(|&s| d(s, i)).fold(f64::INFINITY, f64::min))
                .sum::<f64>()
        };
        assert!(cost(&m) <= cost(&f) + 1e-9);
    }

    #[test]
    fn random_deterministic_per_seed() {
        let d = |_: usize, _: usize| 1.0;
        let a = KRandom { seed: 42 }.select(20, 5, &d);
        let b = KRandom { seed: 42 }.select(20, 5, &d);
        assert_eq!(a, b);
        let c = KRandom { seed: 43 }.select(20, 5, &d);
        // Different seeds *almost certainly* differ; tolerate collision by
        // only checking set validity.
        assert_eq!(c.len(), 5);
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use xrand::Xoshiro256;

    /// Selection invariants for all algorithms over random point sets.
    #[test]
    fn selection_invariants() {
        let mut rng = Xoshiro256::seed_from_u64(0xA160);
        for _case in 0..200 {
            let n = rng.range_usize(1, 40);
            let k = rng.range_usize(1, 10);
            let coords: Vec<f64> = (0..n).map(|_| rng.f64_unit() * 1e6).collect();
            let d = |a: usize, b: usize| (coords[a] - coords[b]).abs();
            for algo in [
                &KFarthest as &dyn ClusterAlgorithm,
                &KMedoids::default(),
                &KRandom::default(),
            ] {
                let sel = algo.select(n, k, &d);
                assert!(!sel.is_empty());
                assert!(sel.len() <= k.min(n));
                assert!(
                    sel.windows(2).all(|w| w[0] < w[1]),
                    "{} strictly sorted",
                    algo.name()
                );
                assert!(sel.iter().all(|&i| i < n));
            }
        }
    }

    /// Farthest-point selection covers spread data: with k >= distinct
    /// cluster count, every well-separated cluster gets a pick.
    #[test]
    fn farthest_covers_separated_clusters() {
        let mut rng = Xoshiro256::seed_from_u64(0xC07E);
        for _case in 0..200 {
            let len = rng.range_usize(2, 5);
            let centers: Vec<u32> = (0..len).map(|_| rng.below(8) as u32).collect();
            let mut distinct: Vec<u32> = centers.clone();
            distinct.sort_unstable();
            distinct.dedup();
            // Build points at center*1000 + tiny jitter by index.
            let coords: Vec<f64> = centers
                .iter()
                .enumerate()
                .map(|(i, &c)| c as f64 * 1000.0 + i as f64 * 0.001)
                .collect();
            let d = |a: usize, b: usize| (coords[a] - coords[b]).abs();
            let sel = KFarthest.select(coords.len(), distinct.len(), &d);
            let mut covered: Vec<u32> = sel.iter().map(|&i| centers[i]).collect();
            covered.sort_unstable();
            covered.dedup();
            assert_eq!(covered, distinct);
        }
    }
}
