//! Algorithm 2 — "Find Top K".
//!
//! Paper pseudocode:
//!
//! ```text
//! Input : K and SRC/DEST signatures
//! Output: TopK list
//! Calculate distance matrix for Top K list based on SRC and DEST
//! TopK list = {}
//! while Size of TopK list < K { Find farthest cluster to TopK list }
//! foreach cluster in AllNode list - TopK list {
//!     Find closest cluster; Assign cluster to closest one
//! }
//! ```
//!
//! [`find_top_k`] implements exactly this: select up to K representative
//! clusters with the configured algorithm (farthest-point by default),
//! then fold every non-selected cluster into its nearest representative
//! (unioning member ranklists).

use crate::algorithms::ClusterAlgorithm;
use crate::entry::ClusterEntry;

/// Reduce `clusters` to at most `k` clusters: the selected representatives
/// absorb the members of everything else. Returns the surviving entries
/// (selection order normalized to ascending lead rank for determinism).
///
/// With `clusters.len() <= k` the input is returned unchanged (already
/// within budget).
pub fn find_top_k(
    clusters: Vec<ClusterEntry>,
    k: usize,
    algo: &dyn ClusterAlgorithm,
) -> Vec<ClusterEntry> {
    assert!(k >= 1, "find_top_k needs k >= 1");
    if clusters.len() <= k {
        return clusters;
    }
    let n = clusters.len();
    let dist = |a: usize, b: usize| clusters[a].distance(&clusters[b]);
    let selected = algo.select(n, k, &dist);
    debug_assert!(!selected.is_empty());

    let mut survivors: Vec<ClusterEntry> = selected.iter().map(|&i| clusters[i].clone()).collect();
    for (i, cluster) in clusters.iter().enumerate() {
        if selected.contains(&i) {
            continue;
        }
        // Assign to the closest surviving representative.
        let closest = selected
            .iter()
            .enumerate()
            .min_by(|(_, &a), (_, &b)| dist(a, i).partial_cmp(&dist(b, i)).expect("NaN distance"))
            .map(|(pos, _)| pos)
            .expect("non-empty selection");
        survivors[closest].absorb(cluster);
    }
    survivors.sort_by_key(|e| e.lead);
    survivors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{KFarthest, KMedoids};
    use mpisim::Rank;
    use sigkit::{CallPathSig, SignatureTriple};

    fn entry(lead: Rank, src: u64, dest: u64) -> ClusterEntry {
        ClusterEntry::singleton(
            lead,
            &SignatureTriple {
                call_path: CallPathSig(1),
                src,
                dest,
            },
        )
    }

    #[test]
    fn under_budget_unchanged() {
        let clusters = vec![entry(0, 1, 1), entry(1, 2, 2)];
        let out = find_top_k(clusters.clone(), 5, &KFarthest);
        assert_eq!(out, clusters);
    }

    #[test]
    fn reduces_to_k_and_covers_all_ranks() {
        let clusters: Vec<ClusterEntry> = (0..10).map(|r| entry(r, r as u64 * 100, 0)).collect();
        let out = find_top_k(clusters, 3, &KFarthest);
        assert_eq!(out.len(), 3);
        // Every input rank must appear in exactly one surviving cluster.
        let mut all: Vec<Rank> = out.iter().flat_map(|e| e.members.expand()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn nearest_assignment() {
        // Two far-apart groups; k=2 must split them along the gap.
        let clusters = vec![
            entry(0, 0, 0),
            entry(1, 10, 0),
            entry(2, 1_000_000, 0),
            entry(3, 1_000_010, 0),
        ];
        let out = find_top_k(clusters, 2, &KFarthest);
        assert_eq!(out.len(), 2);
        let low = out.iter().find(|e| e.src < 500_000).unwrap();
        let high = out.iter().find(|e| e.src >= 500_000).unwrap();
        assert_eq!(low.members.expand(), vec![0, 1]);
        assert_eq!(high.members.expand(), vec![2, 3]);
    }

    #[test]
    fn k_one_absorbs_everything() {
        let clusters: Vec<ClusterEntry> = (0..6).map(|r| entry(r, r as u64, r as u64)).collect();
        let out = find_top_k(clusters, 1, &KFarthest);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].members.expand(), (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn identical_points_collapse() {
        // All ranks have identical signatures: one representative suffices
        // no matter what k is requested.
        let clusters: Vec<ClusterEntry> = (0..8).map(|r| entry(r, 42, 42)).collect();
        let out = find_top_k(clusters, 3, &KFarthest);
        assert_eq!(out.len(), 1, "coincident points need one lead");
        assert_eq!(out[0].members.expand(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn medoids_variant_also_covers() {
        let clusters: Vec<ClusterEntry> =
            (0..9).map(|r| entry(r, (r as u64 % 3) * 1000, 0)).collect();
        let out = find_top_k(clusters, 3, &KMedoids::default());
        let mut all: Vec<Rank> = out.iter().flat_map(|e| e.members.expand()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..9).collect::<Vec<_>>());
        assert!(out.len() <= 3);
    }

    #[test]
    fn output_sorted_by_lead() {
        let clusters: Vec<ClusterEntry> =
            (0..10).rev().map(|r| entry(r, r as u64 * 7, 3)).collect();
        let out = find_top_k(clusters, 4, &KFarthest);
        assert!(out.windows(2).all(|w| w[0].lead < w[1].lead));
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use crate::algorithms::KFarthest;
    use sigkit::{CallPathSig, SignatureTriple};
    use xrand::Xoshiro256;

    fn random_singletons(rng: &mut Xoshiro256, max_len: usize, bound: u64) -> Vec<ClusterEntry> {
        (0..rng.range_usize(1, max_len))
            .map(|r| {
                ClusterEntry::singleton(
                    r,
                    &SignatureTriple {
                        call_path: CallPathSig(1),
                        src: rng.below(bound),
                        dest: rng.below(bound),
                    },
                )
            })
            .collect()
    }

    /// Partition property: top-K never loses or duplicates a rank.
    #[test]
    fn partition_preserved() {
        let mut rng = Xoshiro256::seed_from_u64(0x709A);
        for _case in 0..200 {
            let clusters = random_singletons(&mut rng, 30, 1000);
            let k = rng.range_usize(1, 8);
            let n = clusters.len();
            let out = find_top_k(clusters, k, &KFarthest);
            assert!(out.len() <= k.min(n));
            let mut all: Vec<usize> = out.iter().flat_map(|e| e.members.expand()).collect();
            all.sort_unstable();
            let before_dedup = all.len();
            all.dedup();
            assert_eq!(all.len(), before_dedup, "no duplicates");
            assert_eq!(all, (0..n).collect::<Vec<_>>());
        }
    }

    /// Every surviving lead is a member of its own cluster.
    #[test]
    fn leads_belong_to_their_clusters() {
        let mut rng = Xoshiro256::seed_from_u64(0x1EAD);
        for _case in 0..200 {
            let clusters = random_singletons(&mut rng, 20, 100);
            let k = rng.range_usize(1, 5);
            for e in find_top_k(clusters, k, &KFarthest) {
                assert!(e.members.contains(e.lead));
            }
        }
    }
}
