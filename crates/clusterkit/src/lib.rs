//! # clusterkit — signature-space clustering for trace analysis
//!
//! Chameleon clusters *processes*, not traces: each rank is a point in the
//! low-dimensional space of its interval signatures (Call-Path, SRC, DEST;
//! see `sigkit`). Clustering is hierarchical over the reduction tree — each
//! tree node merges its children's cluster summaries with its own and
//! re-selects at most K representatives — so the paper's Algorithm 2
//! ("Find Top K") runs on at most `2K + 1` items per node and the whole
//! clustering costs O(n log P).
//!
//! Modules:
//!
//! * [`entry`] — the `<lead rank, ranklist, signatures>` cluster summary
//!   exchanged over the tree;
//! * [`algorithms`] — K-medoids, K-farthest (maximin) and K-random
//!   selection, interchangeable per the paper ("Users could select any
//!   clustering algorithm");
//! * [`topk`] — Algorithm 2: farthest-point selection of the top K
//!   clusters plus nearest-cluster assignment of the rest;
//! * [`map`] — the per-Call-Path cluster map
//!   (`hashmap<signature, ranklist>` in the paper), its merge operation,
//!   lead selection with dynamic K growth, and its wire encoding.

pub mod algorithms;
pub mod entry;
pub mod map;
pub mod topk;

pub use algorithms::{ClusterAlgorithm, KFarthest, KMedoids, KRandom};
pub use entry::ClusterEntry;
pub use map::{ClusterMap, LeadSelection, Reelection, WireError};
pub use topk::find_top_k;
