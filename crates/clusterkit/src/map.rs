//! The per-Call-Path cluster map.
//!
//! Paper: "If a process has any child, it receives the signatures from
//! left and right children, and merges them with its own map of signatures
//! (i.e., the data structure is a hashmap of `<signature, ranklist>`).
//! Then, to cover all the events, it picks K/Num_CallPath lead processes
//! from each Call-Path cluster. […] Chameleon does not miss any MPI event
//! by selecting at least one representative from each callpath cluster. It
//! dynamically increases the value of K should the number of different
//! Call-Path signatures exceed K."
//!
//! [`ClusterMap`] is that hashmap (ordered for determinism); merging and
//! pruning to the top K happen at every node of the reduction tree, so no
//! node ever holds more than (children + 1) × K entries.

use std::collections::BTreeMap;

use mpisim::Rank;
use scalatrace::RankSet;
use sigkit::{CallPathSig, SignatureTriple};

use crate::algorithms::ClusterAlgorithm;
use crate::entry::ClusterEntry;
use crate::topk::find_top_k;

/// A malformed wire payload: what failed to parse and where in the buffer.
///
/// Decoding used to return a bare `Option`, which call sites turned into
/// panics — under a fault plan a corrupted byte must instead surface as a
/// recoverable error the protocol layer can retry or degrade on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Which structure was being decoded.
    pub what: &'static str,
    /// Byte offset the decoder had reached when it gave up.
    pub offset: usize,
    /// Total payload length, for context.
    pub len: usize,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "malformed {} payload at byte {} of {}",
            self.what, self.offset, self.len
        )
    }
}

impl std::error::Error for WireError {}

/// One lead re-election performed by [`ClusterMap::reelect_leads`]:
/// which cluster changed hands, from whom, to whom.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reelection {
    /// Call-Path signature of the affected cluster.
    pub call_path: u64,
    /// The dead lead that was replaced.
    pub old: Rank,
    /// The minimum surviving member, now lead.
    pub new: Rank,
}

/// Cluster entries grouped by Call-Path signature.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ClusterMap {
    groups: BTreeMap<u64, Vec<ClusterEntry>>,
}

impl ClusterMap {
    /// Empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// The map a leaf rank starts from: one singleton cluster under its
    /// own Call-Path signature.
    pub fn from_rank(rank: Rank, triple: &SignatureTriple) -> Self {
        let mut m = Self::new();
        m.insert(triple.call_path, ClusterEntry::singleton(rank, triple));
        m
    }

    /// Insert one entry under a Call-Path group.
    pub fn insert(&mut self, call_path: CallPathSig, entry: ClusterEntry) {
        self.groups.entry(call_path.0).or_default().push(entry);
    }

    /// Number of distinct Call-Path signatures (the paper's
    /// `Num_CallPath`).
    pub fn num_call_paths(&self) -> usize {
        self.groups.len()
    }

    /// Total cluster entries across all groups.
    pub fn total_clusters(&self) -> usize {
        self.groups.values().map(Vec::len).sum()
    }

    /// Total ranks covered.
    pub fn total_ranks(&self) -> usize {
        self.groups
            .values()
            .flat_map(|v| v.iter())
            .map(ClusterEntry::len)
            .sum()
    }

    /// Iterate `(call_path, entries)` groups in deterministic order.
    pub fn groups(&self) -> impl Iterator<Item = (CallPathSig, &[ClusterEntry])> {
        self.groups
            .iter()
            .map(|(&k, v)| (CallPathSig(k), v.as_slice()))
    }

    /// Fold another map into this one (tree-node merge: children's maps +
    /// own).
    pub fn merge(&mut self, other: ClusterMap) {
        for (key, mut entries) in other.groups {
            self.groups.entry(key).or_default().append(&mut entries);
        }
    }

    /// Prune to at most `k` clusters overall (Algorithm 3 lines 12–18),
    /// distributing the budget over Call-Path groups and growing K
    /// dynamically when there are more Call-Paths than K. Returns the
    /// *effective* K (≥ requested when growth kicked in).
    pub fn prune(&mut self, k: usize, algo: &dyn ClusterAlgorithm) -> usize {
        assert!(k >= 1, "cluster budget must be at least 1");
        let ncp = self.num_call_paths();
        if ncp == 0 {
            return k;
        }
        // Dynamic K growth: at least one lead per Call-Path group.
        let k_eff = k.max(ncp);
        let per_group = (k_eff / ncp).max(1);
        for entries in self.groups.values_mut() {
            if entries.len() > per_group {
                let taken = std::mem::take(entries);
                *entries = find_top_k(taken, per_group, algo);
            }
        }
        k_eff
    }

    /// Re-elect leads for clusters orphaned by rank death: any entry whose
    /// lead is not in `alive` gets its smallest surviving member as the new
    /// lead. A pure function of the agreed alive set, so every survivor
    /// elects identically without further communication. Entries with no
    /// surviving member keep their dead lead — callers drop extinct
    /// clusters by intersecting [`ClusterMap::leads`] with the alive set.
    /// Returns the re-elections performed, in map order — each one names
    /// the cluster, the dead lead, and its successor, so callers can count
    /// them *and* journal them.
    pub fn reelect_leads(&mut self, alive: &[Rank]) -> Vec<Reelection> {
        let mut reelected = Vec::new();
        for (&call_path, entries) in self.groups.iter_mut() {
            for e in entries.iter_mut() {
                if alive.contains(&e.lead) {
                    continue;
                }
                if let Some(&new_lead) = e.members.expand().iter().find(|m| alive.contains(m)) {
                    reelected.push(Reelection {
                        call_path,
                        old: e.lead,
                        new: new_lead,
                    });
                    e.lead = new_lead;
                }
            }
        }
        reelected
    }

    /// Demote leads the health plane has flagged: any entry whose lead is
    /// in `avoid` hands the lead to its smallest member *not* in `avoid`.
    /// An entry whose every member is flagged keeps its lead — someone has
    /// to represent the cluster. Like [`ClusterMap::reelect_leads`] this
    /// is a pure function of its arguments, so every rank applying it to
    /// the same selection with the same flagged set demotes identically.
    pub fn reelect_leads_avoiding(&mut self, avoid: &[Rank]) -> Vec<Reelection> {
        let mut reelected = Vec::new();
        for (&call_path, entries) in self.groups.iter_mut() {
            for e in entries.iter_mut() {
                if !avoid.contains(&e.lead) {
                    continue;
                }
                if let Some(&new_lead) = e.members.expand().iter().find(|m| !avoid.contains(m)) {
                    reelected.push(Reelection {
                        call_path,
                        old: e.lead,
                        new: new_lead,
                    });
                    e.lead = new_lead;
                }
            }
        }
        reelected
    }

    /// Wall a sustained-degradation rank off into its own singleton
    /// cluster: it is removed from whatever entry held it (the smallest
    /// remaining member takes over if it led) and re-inserted as a
    /// singleton under the same Call-Path with the entry's signature
    /// coordinates. Its trace then represents only itself — a degraded
    /// rank can no longer stand in for healthy peers in merges. No-op if
    /// the rank is already alone (or absent).
    pub fn quarantine(&mut self, rank: Rank) {
        for (_, entries) in self.groups.iter_mut() {
            let Some(e) = entries.iter_mut().find(|e| e.members.contains(rank)) else {
                continue;
            };
            if e.len() <= 1 {
                return;
            }
            let rest: Vec<Rank> = e
                .members
                .expand()
                .into_iter()
                .filter(|&m| m != rank)
                .collect();
            e.members = RankSet::from_ranks(rest.iter().copied());
            if e.lead == rank {
                e.lead = rest[0];
            }
            let walled = ClusterEntry {
                lead: rank,
                members: RankSet::singleton(rank),
                src: e.src,
                dest: e.dest,
            };
            entries.push(walled);
            return;
        }
    }

    /// All lead ranks, ascending.
    pub fn leads(&self) -> Vec<Rank> {
        let mut out: Vec<Rank> = self
            .groups
            .values()
            .flat_map(|v| v.iter().map(|e| e.lead))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Find the cluster containing `rank`, if any.
    pub fn cluster_of(&self, rank: Rank) -> Option<&ClusterEntry> {
        self.groups
            .values()
            .flat_map(|v| v.iter())
            .find(|e| e.members.contains(rank))
    }

    /// Wire encoding: group count, then per group the call-path key,
    /// entry count and entries.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 * self.total_clusters() + 16);
        buf.extend_from_slice(&(self.groups.len() as u64).to_le_bytes());
        for (key, entries) in &self.groups {
            buf.extend_from_slice(&key.to_le_bytes());
            buf.extend_from_slice(&(entries.len() as u64).to_le_bytes());
            for e in entries {
                e.encode(&mut buf);
            }
        }
        buf
    }

    /// Decode a map previously produced by [`ClusterMap::encode`].
    pub fn decode(buf: &[u8]) -> Result<ClusterMap, WireError> {
        let err = |offset: usize| WireError {
            what: "cluster map",
            offset,
            len: buf.len(),
        };
        let mut cursor = 0usize;
        let take_u64 = |c: &mut usize| -> Option<u64> {
            let v = u64::from_le_bytes(buf.get(*c..*c + 8)?.try_into().ok()?);
            *c += 8;
            Some(v)
        };
        let ngroups = take_u64(&mut cursor).ok_or_else(|| err(cursor))? as usize;
        let mut map = ClusterMap::new();
        for _ in 0..ngroups {
            let key = take_u64(&mut cursor).ok_or_else(|| err(cursor))?;
            let nentries = take_u64(&mut cursor).ok_or_else(|| err(cursor))? as usize;
            for _ in 0..nentries {
                let entry = ClusterEntry::decode(buf, &mut cursor).ok_or_else(|| err(cursor))?;
                map.insert(CallPathSig(key), entry);
            }
        }
        if cursor == buf.len() {
            Ok(map)
        } else {
            Err(err(cursor))
        }
    }
}

/// The outcome of clustering: the pruned map plus the elected lead ranks —
/// what the root broadcasts after Algorithm 3's clustering phase
/// ("MPI_Bcast (Top K) by root").
#[derive(Debug, Clone, PartialEq)]
pub struct LeadSelection {
    /// The pruned cluster map.
    pub map: ClusterMap,
    /// Elected leads, ascending (the paper's "Top K list").
    pub leads: Vec<Rank>,
    /// Effective K after dynamic growth.
    pub effective_k: usize,
}

impl LeadSelection {
    /// Run the final prune + lead extraction on a fully merged map.
    pub fn select(mut map: ClusterMap, k: usize, algo: &dyn ClusterAlgorithm) -> Self {
        let effective_k = map.prune(k, algo);
        let leads = map.leads();
        LeadSelection {
            map,
            leads,
            effective_k,
        }
    }

    /// Is `rank` one of the leads?
    pub fn is_lead(&self, rank: Rank) -> bool {
        self.leads.binary_search(&rank).is_ok()
    }

    /// Wire encoding (map + leads are both derivable from the map, so
    /// just ship the map and the effective K).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = (self.effective_k as u64).to_le_bytes().to_vec();
        buf.extend(self.map.encode());
        buf
    }

    /// Decode a selection shipped by the root.
    pub fn decode(buf: &[u8]) -> Result<LeadSelection, WireError> {
        let k = buf
            .get(..8)
            .and_then(|b| b.try_into().ok())
            .map(u64::from_le_bytes)
            .ok_or(WireError {
                what: "lead selection",
                offset: 0,
                len: buf.len(),
            })? as usize;
        let map = ClusterMap::decode(&buf[8..]).map_err(|e| WireError {
            what: "lead selection",
            offset: e.offset + 8,
            len: buf.len(),
        })?;
        let leads = map.leads();
        Ok(LeadSelection {
            map,
            leads,
            effective_k: k,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::KFarthest;

    fn triple(cp: u64, src: u64, dest: u64) -> SignatureTriple {
        SignatureTriple {
            call_path: CallPathSig(cp),
            src,
            dest,
        }
    }

    #[test]
    fn from_rank_single_group() {
        let m = ClusterMap::from_rank(3, &triple(7, 1, 2));
        assert_eq!(m.num_call_paths(), 1);
        assert_eq!(m.total_clusters(), 1);
        assert_eq!(m.leads(), vec![3]);
        assert_eq!(m.total_ranks(), 1);
    }

    #[test]
    fn merge_groups_by_callpath() {
        let mut a = ClusterMap::from_rank(0, &triple(1, 0, 0));
        let b = ClusterMap::from_rank(1, &triple(1, 5, 5));
        let c = ClusterMap::from_rank(2, &triple(2, 0, 0));
        a.merge(b);
        a.merge(c);
        assert_eq!(a.num_call_paths(), 2);
        assert_eq!(a.total_clusters(), 3);
        assert_eq!(a.total_ranks(), 3);
    }

    #[test]
    fn prune_respects_budget_per_group() {
        let mut m = ClusterMap::new();
        for r in 0..12 {
            m.merge(ClusterMap::from_rank(r, &triple(1, r as u64 * 100, 0)));
        }
        let k_eff = m.prune(3, &KFarthest);
        assert_eq!(k_eff, 3);
        assert!(m.total_clusters() <= 3);
        assert_eq!(m.total_ranks(), 12, "pruning never drops ranks");
    }

    #[test]
    fn dynamic_k_growth() {
        // 5 distinct Call-Paths but K=2: every Call-Path still gets a lead.
        let mut m = ClusterMap::new();
        for r in 0..5 {
            m.merge(ClusterMap::from_rank(r, &triple(r as u64 + 1, 0, 0)));
        }
        let k_eff = m.prune(2, &KFarthest);
        assert_eq!(k_eff, 5, "K grew to the Call-Path count");
        assert_eq!(m.leads().len(), 5);
    }

    #[test]
    fn budget_splits_across_callpaths() {
        // 2 call paths, K=6: 3 leads each.
        let mut m = ClusterMap::new();
        for r in 0..10 {
            let cp = (r % 2) as u64 + 1;
            m.merge(ClusterMap::from_rank(r, &triple(cp, r as u64 * 1000, 0)));
        }
        m.prune(6, &KFarthest);
        for (_, entries) in m.groups() {
            assert!(entries.len() <= 3);
        }
        assert_eq!(m.total_ranks(), 10);
    }

    #[test]
    fn cluster_of_finds_member() {
        let mut m = ClusterMap::new();
        for r in 0..8 {
            m.merge(ClusterMap::from_rank(
                r,
                &triple(1, (r as u64 / 4) * 10_000, 0),
            ));
        }
        m.prune(2, &KFarthest);
        for r in 0..8 {
            let c = m.cluster_of(r).unwrap_or_else(|| panic!("rank {r} lost"));
            assert!(c.members.contains(r));
        }
        assert!(m.cluster_of(99).is_none());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut m = ClusterMap::new();
        for r in 0..6 {
            m.merge(ClusterMap::from_rank(
                r,
                &triple((r % 3) as u64 + 1, r as u64 * 7, r as u64 * 13),
            ));
        }
        m.prune(4, &KFarthest);
        let back = ClusterMap::decode(&m.encode()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn decode_rejects_garbage() {
        let err = ClusterMap::decode(&[1, 2, 3]).unwrap_err();
        assert_eq!(err.what, "cluster map");
        assert_eq!(err.len, 3);
        let mut valid = ClusterMap::from_rank(0, &triple(1, 0, 0)).encode();
        valid.push(0xff); // trailing junk
        assert!(ClusterMap::decode(&valid).is_err());
        assert!(LeadSelection::decode(&[9]).is_err());
    }

    #[test]
    fn lead_selection_roundtrip_and_is_lead() {
        let mut m = ClusterMap::new();
        for r in 0..9 {
            m.merge(ClusterMap::from_rank(r, &triple(1, r as u64 * 50, 0)));
        }
        let sel = LeadSelection::select(m, 3, &KFarthest);
        assert!(sel.leads.len() <= 3);
        for &l in &sel.leads {
            assert!(sel.is_lead(l));
        }
        assert!(!sel.is_lead(1234));
        let back = LeadSelection::decode(&sel.encode()).unwrap();
        assert_eq!(back, sel);
    }

    #[test]
    fn reelection_picks_min_surviving_member() {
        // One cluster {2,5,9} led by 2; rank 2 dies -> 5 takes over.
        let mut m = ClusterMap::new();
        for r in [2, 5, 9] {
            m.merge(ClusterMap::from_rank(r, &triple(1, 0, 0)));
        }
        m.prune(1, &KFarthest);
        assert_eq!(m.total_clusters(), 1);
        let lead = m.leads()[0];
        let alive: Vec<Rank> = [2, 5, 9].into_iter().filter(|&r| r != lead).collect();
        let re = m.reelect_leads(&alive);
        assert_eq!(
            re,
            vec![Reelection {
                call_path: 1,
                old: lead,
                new: alive[0],
            }]
        );
        assert_eq!(m.leads(), vec![alive[0]], "smallest survivor leads");
        // Idempotent: the new lead is alive, nothing more to do.
        assert!(m.reelect_leads(&alive).is_empty());
    }

    #[test]
    fn reelection_leaves_extinct_cluster_lead() {
        let mut m = ClusterMap::from_rank(3, &triple(1, 0, 0));
        assert!(m.reelect_leads(&[0, 1]).is_empty(), "no survivor to elect");
        assert_eq!(m.leads(), vec![3], "dead lead kept for caller filtering");
    }

    #[test]
    fn avoiding_demotes_flagged_lead() {
        // Cluster {2,5,9} led by its smallest member; flagging the lead
        // hands the cluster to the smallest unflagged member.
        let mut m = ClusterMap::new();
        for r in [2, 5, 9] {
            m.merge(ClusterMap::from_rank(r, &triple(1, 0, 0)));
        }
        m.prune(1, &KFarthest);
        let lead = m.leads()[0];
        let re = m.reelect_leads_avoiding(&[lead]);
        assert_eq!(re.len(), 1);
        assert_eq!(re[0].old, lead);
        assert_ne!(m.leads()[0], lead, "flagged rank no longer leads");
        // Idempotent: the new lead is not flagged.
        assert!(m.reelect_leads_avoiding(&[lead]).is_empty());
        // Healthy leads are untouched.
        assert!(m.reelect_leads_avoiding(&[1234]).is_empty());
    }

    #[test]
    fn avoiding_keeps_lead_when_all_members_flagged() {
        let mut m = ClusterMap::new();
        for r in [2, 5] {
            m.merge(ClusterMap::from_rank(r, &triple(1, 0, 0)));
        }
        m.prune(1, &KFarthest);
        let lead = m.leads()[0];
        assert!(m.reelect_leads_avoiding(&[2, 5]).is_empty());
        assert_eq!(m.leads(), vec![lead], "someone must represent the cluster");
    }

    #[test]
    fn quarantine_walls_rank_into_singleton() {
        let mut m = ClusterMap::new();
        for r in [2, 5, 9] {
            m.merge(ClusterMap::from_rank(r, &triple(1, 40, 60)));
        }
        m.prune(1, &KFarthest);
        assert_eq!(m.total_clusters(), 1);
        m.quarantine(9);
        assert_eq!(
            m.total_clusters(),
            2,
            "quarantined rank got its own cluster"
        );
        assert_eq!(m.total_ranks(), 3, "no rank lost");
        let solo = m.cluster_of(9).unwrap();
        assert_eq!(solo.lead, 9);
        assert_eq!(solo.members.expand(), vec![9]);
        assert_eq!((solo.src, solo.dest), (40, 60), "keeps host coordinates");
        let rest = m.cluster_of(2).unwrap();
        assert!(!rest.members.contains(9));
        // Already alone: nothing changes.
        m.quarantine(9);
        assert_eq!(m.total_clusters(), 2);
        // Absent rank: nothing changes.
        m.quarantine(77);
        assert_eq!(m.total_clusters(), 2);
    }

    #[test]
    fn quarantine_reelects_if_lead_walled() {
        let mut m = ClusterMap::new();
        for r in [2, 5, 9] {
            m.merge(ClusterMap::from_rank(r, &triple(1, 0, 0)));
        }
        m.prune(1, &KFarthest);
        let lead = m.leads()[0];
        m.quarantine(lead);
        let host = m
            .cluster_of(if lead == 2 { 5 } else { 2 })
            .expect("remaining members still covered");
        assert_ne!(host.lead, lead, "host cluster re-led");
        assert!(host.members.contains(host.lead));
        assert_eq!(m.total_ranks(), 3);
    }

    #[test]
    fn selection_covers_all_ranks() {
        let mut m = ClusterMap::new();
        for r in 0..16 {
            let cp = if r < 8 { 1 } else { 2 };
            m.merge(ClusterMap::from_rank(r, &triple(cp, r as u64, r as u64)));
        }
        let sel = LeadSelection::select(m, 4, &KFarthest);
        for r in 0..16 {
            assert!(
                sel.map.cluster_of(r).is_some(),
                "rank {r} must stay covered"
            );
        }
        // At least one lead per call path.
        for (_, entries) in sel.map.groups() {
            assert!(!entries.is_empty());
        }
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use crate::algorithms::KFarthest;
    use xrand::Xoshiro256;

    /// Merging then pruning never loses a rank, regardless of how the
    /// ranks are spread over call paths and coordinates.
    #[test]
    fn prune_preserves_coverage() {
        let mut rng = Xoshiro256::seed_from_u64(0x94E5);
        for _case in 0..200 {
            let npoints = rng.range_usize(1, 40);
            let k = rng.range_usize(1, 6);
            let mut m = ClusterMap::new();
            for r in 0..npoints {
                m.merge(ClusterMap::from_rank(
                    r,
                    &SignatureTriple {
                        call_path: CallPathSig(rng.range_u64(1, 5)),
                        src: rng.below(1000),
                        dest: 0,
                    },
                ));
            }
            let before = m.total_ranks();
            m.prune(k, &KFarthest);
            assert_eq!(m.total_ranks(), before);
            for r in 0..npoints {
                assert!(m.cluster_of(r).is_some());
            }
        }
    }

    /// Encode/decode is the identity.
    #[test]
    fn codec_roundtrip() {
        let mut rng = Xoshiro256::seed_from_u64(0xC0DE);
        for _case in 0..200 {
            let npoints = rng.usize_below(20);
            let mut m = ClusterMap::new();
            for r in 0..npoints {
                m.merge(ClusterMap::from_rank(
                    r,
                    &SignatureTriple {
                        call_path: CallPathSig(rng.range_u64(1, 4)),
                        src: rng.below(100),
                        dest: rng.below(100),
                    },
                ));
            }
            assert_eq!(ClusterMap::decode(&m.encode()), Ok(m));
        }
    }
}
