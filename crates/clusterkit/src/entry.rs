//! Cluster summaries exchanged over the reduction tree.
//!
//! The paper's Algorithm 3 ships two things between tree nodes: the list
//! of clusters (`<lead rank, ranklist>` tuples) and "the signature of the
//! head of" each cluster. A [`ClusterEntry`] bundles both: who leads the
//! cluster, which ranks it covers, and the lead's SRC/DEST parameter
//! signatures (the coordinates clustering distances are computed on).

use mpisim::Rank;
use scalatrace::RankSet;
use sigkit::{CallPathSig, SignatureTriple};

/// One cluster: a lead rank, the member set it represents, and the lead's
/// signature coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterEntry {
    /// Representative (lead) rank whose trace stands for the cluster.
    pub lead: Rank,
    /// All ranks belonging to the cluster (including the lead).
    pub members: RankSet,
    /// The lead's SRC parameter signature.
    pub src: u64,
    /// The lead's DEST parameter signature.
    pub dest: u64,
}

impl ClusterEntry {
    /// Singleton cluster for one rank with its interval signatures.
    pub fn singleton(rank: Rank, triple: &SignatureTriple) -> Self {
        ClusterEntry {
            lead: rank,
            members: RankSet::singleton(rank),
            src: triple.src,
            dest: triple.dest,
        }
    }

    /// Euclidean distance in (SRC, DEST) space — the metric of the
    /// paper's Algorithm 2.
    pub fn distance(&self, other: &ClusterEntry) -> f64 {
        let ds = self.src.abs_diff(other.src) as f64;
        let dd = self.dest.abs_diff(other.dest) as f64;
        (ds * ds + dd * dd).sqrt()
    }

    /// Absorb another cluster: union members, keep this entry's lead and
    /// coordinates (the paper: "other non-selected clusters are merged
    /// with the closest clusters").
    pub fn absorb(&mut self, other: &ClusterEntry) {
        self.members = self.members.union(&other.members);
    }

    /// Member count.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the cluster is empty (never true in practice: entries are
    /// built from at least their lead).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Wire encoding: lead, src, dest, member count, members.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&(self.lead as u64).to_le_bytes());
        buf.extend_from_slice(&self.src.to_le_bytes());
        buf.extend_from_slice(&self.dest.to_le_bytes());
        let members = self.members.expand();
        buf.extend_from_slice(&(members.len() as u64).to_le_bytes());
        for m in members {
            buf.extend_from_slice(&(m as u32).to_le_bytes());
        }
    }

    /// Decode one entry, advancing the cursor. Returns `None` on malformed
    /// input.
    pub fn decode(buf: &[u8], cursor: &mut usize) -> Option<ClusterEntry> {
        let take_u64 = |buf: &[u8], c: &mut usize| -> Option<u64> {
            let v = u64::from_le_bytes(buf.get(*c..*c + 8)?.try_into().ok()?);
            *c += 8;
            Some(v)
        };
        let lead = take_u64(buf, cursor)? as Rank;
        let src = take_u64(buf, cursor)?;
        let dest = take_u64(buf, cursor)?;
        let n = take_u64(buf, cursor)? as usize;
        // Validate the declared count against the bytes actually present
        // BEFORE allocating: a corrupted length field must fail the
        // decode, not abort the process on a absurd reservation.
        if n.checked_mul(4)
            .is_none_or(|need| buf.len() - *cursor < need)
        {
            return None;
        }
        let mut members = Vec::with_capacity(n);
        for _ in 0..n {
            let v = u32::from_le_bytes(buf.get(*cursor..*cursor + 4)?.try_into().ok()?);
            *cursor += 4;
            members.push(v as Rank);
        }
        Some(ClusterEntry {
            lead,
            members: RankSet::from_ranks(members),
            src,
            dest,
        })
    }
}

/// Key under which entries are grouped: the Call-Path signature. Processes
/// are only ever clustered *within* a Call-Path group — the paper found
/// the Call-Path count ("usually below 9") to be the key accuracy lever,
/// and Chameleon "does not miss any MPI event by selecting at least one
/// representative from each callpath cluster."
pub type CallPathKey = CallPathSig;

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(lead: Rank, src: u64, dest: u64) -> ClusterEntry {
        ClusterEntry::singleton(
            lead,
            &SignatureTriple {
                call_path: CallPathSig(1),
                src,
                dest,
            },
        )
    }

    #[test]
    fn singleton_contains_lead() {
        let e = entry(5, 10, 20);
        assert_eq!(e.lead, 5);
        assert_eq!(e.members.expand(), vec![5]);
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn distance_euclidean() {
        let a = entry(0, 0, 0);
        let b = entry(1, 3, 4);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance(&a), 0.0);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn absorb_unions_members_keeps_lead() {
        let mut a = entry(0, 1, 1);
        let b = entry(7, 9, 9);
        a.absorb(&b);
        assert_eq!(a.lead, 0);
        assert_eq!(a.members.expand(), vec![0, 7]);
        assert_eq!(a.src, 1, "coordinates stay the lead's");
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut e = entry(3, 0xdeadbeef, 0xfeedface);
        e.absorb(&entry(9, 0, 0));
        e.absorb(&entry(4, 0, 0));
        let mut buf = Vec::new();
        e.encode(&mut buf);
        let mut cursor = 0;
        let back = ClusterEntry::decode(&buf, &mut cursor).unwrap();
        assert_eq!(back, e);
        assert_eq!(cursor, buf.len());
    }

    #[test]
    fn decode_rejects_truncated() {
        let e = entry(1, 2, 3);
        let mut buf = Vec::new();
        e.encode(&mut buf);
        for cut in [1, 8, 16, buf.len() - 1] {
            let mut cursor = 0;
            assert!(
                ClusterEntry::decode(&buf[..cut], &mut cursor).is_none(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn decode_rejects_absurd_member_count_without_allocating() {
        // A corrupted length field must fail the decode before the member
        // vector is reserved — `with_capacity(u64::MAX)` would abort.
        let e = entry(1, 2, 3);
        let mut buf = Vec::new();
        e.encode(&mut buf);
        buf[24..32].copy_from_slice(&u64::MAX.to_le_bytes());
        let mut cursor = 0;
        assert!(ClusterEntry::decode(&buf, &mut cursor).is_none());
        buf[24..32].copy_from_slice(&(1u64 << 40).to_le_bytes());
        let mut cursor = 0;
        assert!(ClusterEntry::decode(&buf, &mut cursor).is_none());
    }

    #[test]
    fn multiple_entries_sequential_decode() {
        let mut buf = Vec::new();
        entry(1, 10, 10).encode(&mut buf);
        entry(2, 20, 20).encode(&mut buf);
        let mut cursor = 0;
        let a = ClusterEntry::decode(&buf, &mut cursor).unwrap();
        let b = ClusterEntry::decode(&buf, &mut cursor).unwrap();
        assert_eq!(a.lead, 1);
        assert_eq!(b.lead, 2);
        assert_eq!(cursor, buf.len());
    }
}
