//! Streaming per-cluster anomaly detection over health samples.
//!
//! At every marker the runtime star-gathers one [`HealthSample`] per rank
//! to rank 0 (over the passive OBS plane) and hands the batch to
//! [`detect`]: per cluster, a robust center (median) and scale (MAD) are
//! computed for each signal, and a rank is flagged when its deviation
//! above the center exceeds `threshold` floored robust sigmas. Two
//! signals, two [`AnomalyKind`]s:
//!
//! - **slow** — locally-consumed compute nanoseconds. The app clock
//!   cannot carry this signal: blocking receives and the marker barrier
//!   drag every clock up to the straggler's, so only the strictly-local
//!   compute counter attributes slowness to the rank that burned it.
//! - **flaky** — reliable-protocol retransmissions. A degrading link
//!   drops the target's outgoing frames, so *its* retry counter spikes
//!   while its peers' stay near the cluster median.
//!
//! The scale is *floored*: `score = dev / max(1.4826·MAD, floor)` where
//! the floor is an absolute quantum (plus a relative fraction of the
//! median for compute). Without the floor, a cluster whose members are
//! byte-identical (MAD = 0) would flag any epsilon of deviation; with it,
//! fault-free SPMD runs — where every member's deltas agree exactly —
//! score 0.0 everywhere and emit nothing, which is what keeps armed
//! fault-free journals byte-identical to detector-off goldens.
//!
//! Everything is a pure function of the sample batch: samples are grouped
//! and sorted internally, so scores are invariant under permutation of
//! the input, and all arithmetic is deterministic IEEE f64 — same seed,
//! same journal bytes.

use std::collections::BTreeMap;

use crate::event::AnomalyKind;

/// Consistency constant relating MAD to the standard deviation of a
/// normal distribution (1/Φ⁻¹(3/4)).
const MAD_SIGMA: f64 = 1.4826;

/// One rank's per-marker health delta, tagged with its scoring cohort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthSample {
    /// The sampled rank.
    pub rank: u64,
    /// Cohort the rank is scored against (its cluster lead, or
    /// `u64::MAX` before any selection exists — the whole world).
    pub cluster: u64,
    /// Locally-consumed compute nanoseconds since the previous marker.
    pub compute_ns: u64,
    /// Reliable-protocol retransmissions since the previous marker.
    pub retransmits: u64,
}

/// Detector tuning. [`DetectorConfig::default`] is calibrated so that
/// byte-identical cohort members never flag and the degraded scenarios in
/// `plans/degraded.plan.json` flag within a few markers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// Flag when `dev > threshold × max(1.4826·MAD, floor)`.
    pub threshold: f64,
    /// Absolute scale floor for the compute signal, nanoseconds.
    pub abs_floor_ns: u64,
    /// Relative scale floor for the compute signal, as a fraction of the
    /// cohort median (guards against tiny absolute intervals).
    pub rel_floor: f64,
    /// Absolute scale floor for the retransmit signal, frames.
    pub retry_floor: u64,
    /// Consecutive flagged markers before a rank counts as *sustained*
    /// (the quarantine trigger, see [`SustainTracker`]).
    pub sustain: u64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            threshold: 4.0,
            abs_floor_ns: 10_000,
            rel_floor: 0.2,
            retry_floor: 3,
            sustain: 3,
        }
    }
}

/// One flagged rank at one marker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Flag {
    /// The flagged rank.
    pub rank: u64,
    /// Cohort it was scored against.
    pub cluster: u64,
    /// Which signal fired.
    pub kind: AnomalyKind,
    /// Floored robust z-score of the deviation (always > threshold).
    pub score: f64,
}

/// Median of an ascending slice (mean of the middle pair when even;
/// 0.0 when empty).
fn median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

/// Robust center and scale: sorts in place, returns `(median, MAD)`.
fn robust_stats(values: &mut [f64]) -> (f64, f64) {
    values.sort_by(f64::total_cmp);
    let med = median(values);
    let mut devs: Vec<f64> = values.iter().map(|v| (v - med).abs()).collect();
    devs.sort_by(f64::total_cmp);
    (med, median(&devs))
}

/// Score one batch of samples. Returns flags sorted by `(rank, kind)`;
/// a rank may carry both a `slow` and a `flaky` flag in the same batch.
///
/// Only *positive* deviation flags: a rank faster (or quieter) than its
/// cohort's center is healthy, not anomalous. A singleton cohort can
/// never flag — its own value is the median, so its deviation is zero;
/// this is what makes quarantined ranks go quiet instead of re-flagging
/// forever.
pub fn detect(cfg: &DetectorConfig, samples: &[HealthSample]) -> Vec<Flag> {
    let mut by_cluster: BTreeMap<u64, Vec<&HealthSample>> = BTreeMap::new();
    for s in samples {
        by_cluster.entry(s.cluster).or_default().push(s);
    }
    let mut flags = Vec::new();
    for (&cluster, members) in &by_cluster {
        let mut compute: Vec<f64> = members.iter().map(|s| s.compute_ns as f64).collect();
        let (med_c, mad_c) = robust_stats(&mut compute);
        let floor_c = (cfg.abs_floor_ns as f64).max(cfg.rel_floor * med_c);
        let denom_c = (MAD_SIGMA * mad_c).max(floor_c);

        let mut retries: Vec<f64> = members.iter().map(|s| s.retransmits as f64).collect();
        let (med_r, mad_r) = robust_stats(&mut retries);
        let denom_r = (MAD_SIGMA * mad_r).max(cfg.retry_floor as f64);

        for s in members {
            let score = (s.compute_ns as f64 - med_c) / denom_c;
            if score > cfg.threshold {
                flags.push(Flag {
                    rank: s.rank,
                    cluster,
                    kind: AnomalyKind::Slow,
                    score,
                });
            }
            let score = (s.retransmits as f64 - med_r) / denom_r;
            if score > cfg.threshold {
                flags.push(Flag {
                    rank: s.rank,
                    cluster,
                    kind: AnomalyKind::Flaky,
                    score,
                });
            }
        }
    }
    flags.sort_by(|a, b| (a.rank, a.kind.label()).cmp(&(b.rank, b.kind.label())));
    flags
}

/// Consecutive-flag streak tracking: the quarantine trigger.
///
/// One transient flag (a single noisy marker) should escalate backoff at
/// most; only a rank flagged at `sustain` *consecutive* markers is
/// degraded enough to wall off into a singleton cluster. The tracker is
/// plain state over flag batches, so the runtime can drive it in
/// lock-step on every rank from the root's shipped flag set.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SustainTracker {
    streak: BTreeMap<u64, u64>,
}

impl SustainTracker {
    /// Fresh tracker with no history.
    pub fn new() -> Self {
        SustainTracker::default()
    }

    /// Fold in one marker's flagged ranks (any kind): flagged ranks
    /// extend their streak, unflagged ranks reset to zero.
    pub fn observe(&mut self, flagged: &[u64]) {
        self.streak.retain(|rank, _| flagged.contains(rank));
        for &rank in flagged {
            *self.streak.entry(rank).or_insert(0) += 1;
        }
    }

    /// Ranks whose current streak has reached `need`, ascending.
    pub fn sustained(&self, need: u64) -> Vec<u64> {
        self.streak
            .iter()
            .filter(|(_, &n)| n >= need.max(1))
            .map(|(&r, _)| r)
            .collect()
    }

    /// Current streak length for one rank.
    pub fn streak(&self, rank: u64) -> u64 {
        self.streak.get(&rank).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rank: u64, cluster: u64, compute_ns: u64, retransmits: u64) -> HealthSample {
        HealthSample {
            rank,
            cluster,
            compute_ns,
            retransmits,
        }
    }

    #[test]
    fn identical_cohort_scores_zero_everywhere() {
        let cfg = DetectorConfig::default();
        let samples: Vec<HealthSample> = (0..8).map(|r| sample(r, 0, 100_000, 0)).collect();
        assert!(detect(&cfg, &samples).is_empty());
    }

    #[test]
    fn straggler_flags_slow_and_ramp_target_flags_flaky() {
        let cfg = DetectorConfig::default();
        let mut samples: Vec<HealthSample> = (0..8).map(|r| sample(r, 0, 100_000, 0)).collect();
        samples[3].compute_ns = 400_000; // 4x straggler
        samples[5].retransmits = 40; // ramped link target
        let flags = detect(&cfg, &samples);
        assert_eq!(flags.len(), 2, "{flags:?}");
        assert_eq!((flags[0].rank, flags[0].kind), (3, AnomalyKind::Slow));
        assert!(flags[0].score > cfg.threshold);
        assert_eq!((flags[1].rank, flags[1].kind), (5, AnomalyKind::Flaky));
    }

    #[test]
    fn scoring_is_per_cluster_not_global() {
        // Two cohorts with very different baselines: a member that is
        // normal for its own cohort must not flag just because the other
        // cohort is cheaper.
        let cfg = DetectorConfig::default();
        let mut samples: Vec<HealthSample> = (0..4).map(|r| sample(r, 0, 50_000, 0)).collect();
        samples.extend((4..8).map(|r| sample(r, 4, 900_000, 0)));
        assert!(detect(&cfg, &samples).is_empty());
        // But a deviation inside the expensive cohort still flags.
        samples[6].compute_ns = 3_600_000;
        let flags = detect(&cfg, &samples);
        assert_eq!(flags.len(), 1);
        assert_eq!(flags[0].rank, 6);
        assert_eq!(flags[0].cluster, 4);
    }

    #[test]
    fn singleton_cohort_never_flags() {
        let cfg = DetectorConfig::default();
        let samples = [sample(2, 2, 9_000_000, 500)];
        assert!(detect(&cfg, &samples).is_empty());
    }

    #[test]
    fn negative_deviation_is_healthy() {
        let cfg = DetectorConfig::default();
        let mut samples: Vec<HealthSample> = (0..8).map(|r| sample(r, 0, 400_000, 0)).collect();
        samples[1].compute_ns = 1_000; // much faster than the cohort
        assert!(detect(&cfg, &samples).is_empty());
    }

    #[test]
    fn permutation_of_samples_is_invisible() {
        let cfg = DetectorConfig::default();
        let mut samples: Vec<HealthSample> = (0..8).map(|r| sample(r, 0, 100_000, 0)).collect();
        samples[3].compute_ns = 500_000;
        samples[6].retransmits = 25;
        let forward = detect(&cfg, &samples);
        samples.reverse();
        let backward = detect(&cfg, &samples);
        assert_eq!(forward, backward, "flags and scores must not see order");
    }

    #[test]
    fn raising_threshold_only_removes_flags() {
        let mut samples: Vec<HealthSample> = (0..8).map(|r| sample(r, 0, 100_000, 0)).collect();
        samples[2].compute_ns = 180_000;
        samples[3].compute_ns = 400_000;
        let mut prev: Option<Vec<(u64, AnomalyKind)>> = None;
        for threshold in [1.0, 2.0, 4.0, 8.0, 16.0] {
            let cfg = DetectorConfig {
                threshold,
                ..DetectorConfig::default()
            };
            let now: Vec<(u64, AnomalyKind)> = detect(&cfg, &samples)
                .iter()
                .map(|f| (f.rank, f.kind))
                .collect();
            if let Some(prev) = &prev {
                assert!(
                    now.iter().all(|f| prev.contains(f)),
                    "threshold {threshold}: {now:?} not within {prev:?}"
                );
            }
            prev = Some(now);
        }
    }

    #[test]
    fn sustain_tracker_requires_consecutive_markers() {
        let mut t = SustainTracker::new();
        t.observe(&[3]);
        t.observe(&[3, 5]);
        assert_eq!(t.streak(3), 2);
        assert_eq!(t.streak(5), 1);
        assert!(t.sustained(3).is_empty());
        t.observe(&[3]);
        assert_eq!(t.sustained(3), vec![3]);
        assert_eq!(t.streak(5), 0, "a missed marker resets the streak");
        t.observe(&[]);
        assert!(t.sustained(1).is_empty());
    }
}
