//! # obs — a deterministic flight recorder for the Chameleon stack
//!
//! Every simulated rank carries a [`Recorder`]: a buffer of typed
//! [`Event`]s (state transitions, marker hits, signature computations,
//! cluster selections, lead re-elections, per-level merge spans,
//! reliable-protocol retries/NACKs, fault firings) stamped with the two
//! virtual clocks — application time and tool time — and a per-rank
//! monotonic sequence number. At world finalize the per-rank logs are
//! gathered into a [`RunJournal`] that serializes to JSONL with a stable
//! field order and *virtual timestamps only*, so two runs with the same
//! seed — fault-free or armed — produce byte-identical journals.
//!
//! The journal is therefore a first-class test oracle: suites assert on
//! event *sequences* ("exactly one re-election in this cluster after the
//! victim dies at op 40") instead of only on end-state counters. See
//! `OBSERVABILITY.md` at the repository root for the event taxonomy, the
//! journal schema, and grep/assert recipes.
//!
//! The recorder is zero-cost when disabled: [`Recorder::emit`] takes the
//! event payload as a closure and never runs it unless a log is armed,
//! mirroring the fault-plan idiom in `mpisim` (an `Option` check and an
//! early return on the hot path).

pub mod detect;
pub mod event;
pub mod journal;
pub mod metrics;
pub mod query;
pub mod recorder;

pub use detect::{DetectorConfig, Flag, HealthSample, SustainTracker};
pub use event::{AnomalyKind, Event, EventKind, FaultKind};
pub use journal::{JournalError, RunJournal};
pub use metrics::{Counter, HistId, Histogram, MetricSet};
pub use recorder::{RankLog, Recorder};
