//! The journal query engine: a journal file is an artifact to *query*,
//! not a grep target.
//!
//! Everything here is a pure function over a parsed [`RunJournal`]:
//!
//! - [`filter`] — event selection by rank and/or label;
//! - [`timeline`] — one rank's events in sequence, human-readable;
//! - [`merge_spans`] / [`span_report`] — per-level merge spans and the
//!   critical path of the reduction wave, off `merge_level` events;
//! - [`snapshots`] / [`metrics_report`] — the metrics plane's per-marker
//!   `snapshot` deltas, decoded back into labeled counters and histogram
//!   digests;
//! - [`diff`] — structural comparison of two journals reporting the
//!   *first divergence* (rank, seq, and both sides), the tool for "these
//!   two runs were supposed to be identical — where did they fork?".
//!
//! All report strings are deterministic: iteration orders are fixed
//! (rank-major, slot order) and floats print with `{:?}` exactly as the
//! journal serializes them.

use crate::event::{Event, EventKind};
use crate::journal::RunJournal;
use crate::metrics::{Counter, HistId, HIST_DIGEST_STRIDE};

/// 64-bit FNV-1a over a byte string. Used to digest deterministic
/// artifacts (canonical journals, trace text) into a single comparable
/// word for regression tables — not a cryptographic hash.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Digest of a journal's canonical JSONL form. Two journals share a
/// digest iff [`RunJournal::to_jsonl`] produces identical bytes — the
/// same relation [`diff`] decides, collapsed to one word. When a digest
/// comparison fails, run [`diff`] on the two journals for the first
/// diverging event.
pub fn journal_digest(journal: &RunJournal) -> u64 {
    fnv64(journal.to_jsonl().as_bytes())
}

/// One-line human description of an event payload.
pub fn describe(kind: &EventKind) -> String {
    match kind {
        EventKind::Marker { n } => format!("marker n={n}"),
        EventKind::Signature { events, call_path } => {
            format!("signature events={events} cp={call_path:#x}")
        }
        EventKind::ClusterSel {
            marker,
            effective_k,
            lead,
            leads,
        } => format!("cluster marker={marker} k={effective_k} lead={lead} leads={leads:?}"),
        EventKind::State {
            marker,
            state,
            decision,
        } => format!("state marker={marker} state={state} decision={decision}"),
        EventKind::Degraded { marker } => format!("degraded marker={marker}"),
        EventKind::Reelect {
            call_path,
            old,
            new,
        } => format!("reelect cp={call_path:#x} old={old} new={new}"),
        EventKind::MergeLevel {
            level,
            merges,
            dp_cells,
            fast_path,
            t0,
            t1,
        } => format!(
            "merge_level level={level} merges={merges} dp_cells={dp_cells} fast_path={fast_path} t0={t0:?} t1={t1:?}"
        ),
        EventKind::Retry { peer, tag } => format!("retry peer={peer} tag={tag}"),
        EventKind::Nack { peer, tag } => format!("nack peer={peer} tag={tag}"),
        EventKind::GiveUp { peer, tag } => format!("giveup peer={peer} tag={tag}"),
        EventKind::Fault { kind, dest, tag } => {
            format!("fault kind={} dest={dest} tag={tag}", kind.label())
        }
        EventKind::Snapshot { marker, ranks, .. } => {
            format!("snapshot marker={marker} ranks={ranks}")
        }
        EventKind::Crash { op } => format!("crash op={op}"),
        EventKind::PeerDead { peer } => format!("peer_dead peer={peer}"),
        EventKind::Timeout { peer, tag, waited } => {
            format!("timeout peer={peer} tag={tag} waited={waited}ms")
        }
        EventKind::Checkpoint {
            marker,
            bytes,
            deputy,
        } => format!("checkpoint marker={marker} bytes={bytes} deputy={deputy}"),
        EventKind::Promote {
            marker,
            old_root,
            restored,
        } => format!("promote marker={marker} old_root={old_root} restored={restored}"),
        EventKind::Anomaly {
            rank,
            marker,
            kind,
            score,
            cluster,
        } => format!(
            "anomaly rank={rank} marker={marker} kind={} score={score:?} cluster={cluster}",
            kind.label()
        ),
        EventKind::Resume { marker, hwm } => format!("resume marker={marker} hwm={hwm}"),
    }
}

/// Events matching an optional rank and an optional label, rank-major.
pub fn filter<'a>(
    journal: &'a RunJournal,
    rank: Option<usize>,
    label: Option<&str>,
) -> Vec<(usize, &'a Event)> {
    journal
        .events()
        .filter(|(r, e)| {
            rank.is_none_or(|want| *r == want) && label.is_none_or(|want| e.kind.label() == want)
        })
        .collect()
}

/// One rank's events in sequence order, one line each.
pub fn timeline(journal: &RunJournal, rank: usize) -> Result<String, String> {
    let log = journal
        .rank_log(rank)
        .ok_or_else(|| format!("rank {rank} out of range (world size {})", journal.ranks))?;
    let mut out = format!("rank {rank}: {} events\n", log.events.len());
    for e in &log.events {
        out.push_str(&format!(
            "  seq {:>4}  vt {:?}  tt {:?}  {}\n",
            e.seq,
            e.vt,
            e.tt,
            describe(&e.kind)
        ));
    }
    Ok(out)
}

/// One rank's completed merge level, spanning tool time `t0..t1`.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeSpan {
    /// Rank that folded this level.
    pub rank: usize,
    /// Tree level (0 = leaves).
    pub level: u64,
    /// Pairwise merges folded.
    pub merges: u64,
    /// LCS cells touched.
    pub dp_cells: u64,
    /// Merges served by the fast path.
    pub fast_path: u64,
    /// Tool time the level began.
    pub t0: f64,
    /// Tool time the level ended.
    pub t1: f64,
}

/// All `merge_level` events as spans, rank-major.
pub fn merge_spans(journal: &RunJournal) -> Vec<MergeSpan> {
    journal
        .events()
        .filter_map(|(rank, e)| match &e.kind {
            EventKind::MergeLevel {
                level,
                merges,
                dp_cells,
                fast_path,
                t0,
                t1,
            } => Some(MergeSpan {
                rank,
                level: *level,
                merges: *merges,
                dp_cells: *dp_cells,
                fast_path: *fast_path,
                t0: *t0,
                t1: *t1,
            }),
            _ => None,
        })
        .collect()
}

/// Per-level aggregation plus the critical path of the merge waves: the
/// wall between the earliest level start and the latest level end, and
/// the single slowest rank-level span that bounds it from below.
pub fn span_report(journal: &RunJournal) -> String {
    let spans = merge_spans(journal);
    if spans.is_empty() {
        return "no merge_level spans recorded\n".to_string();
    }
    let mut levels: Vec<u64> = spans.iter().map(|s| s.level).collect();
    levels.sort_unstable();
    levels.dedup();
    let mut out = format!("{} merge spans over {} levels\n", spans.len(), levels.len());
    for lvl in &levels {
        let at: Vec<&MergeSpan> = spans.iter().filter(|s| s.level == *lvl).collect();
        let merges: u64 = at.iter().map(|s| s.merges).sum();
        let dp: u64 = at.iter().map(|s| s.dp_cells).sum();
        let fast: u64 = at.iter().map(|s| s.fast_path).sum();
        let t0 = at.iter().map(|s| s.t0).fold(f64::INFINITY, f64::min);
        let t1 = at.iter().map(|s| s.t1).fold(f64::NEG_INFINITY, f64::max);
        out.push_str(&format!(
            "  level {lvl}: ranks={} merges={merges} dp_cells={dp} fast_path={fast} t0={t0:?} t1={t1:?} width={:?}\n",
            at.len(),
            t1 - t0
        ));
    }
    let first = spans.iter().map(|s| s.t0).fold(f64::INFINITY, f64::min);
    let last = spans.iter().map(|s| s.t1).fold(f64::NEG_INFINITY, f64::max);
    let slowest = spans
        .iter()
        .max_by(|a, b| (a.t1 - a.t0).total_cmp(&(b.t1 - b.t0)))
        .expect("non-empty spans");
    out.push_str(&format!(
        "  critical path: {:?} (first t0 to last t1); slowest span rank {} level {} at {:?}\n",
        last - first,
        slowest.rank,
        slowest.level,
        slowest.t1 - slowest.t0
    ));
    out
}

/// One decoded `snapshot` event: the world's metric delta for one marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotRow {
    /// Rank the snapshot was recorded on (the reduction root).
    pub rank: usize,
    /// Marker invocation the snapshot closed.
    pub marker: u64,
    /// Ranks whose deltas were merged in.
    pub ranks: u64,
    /// Counter values in [`Counter`] slot order.
    pub ctrs: Vec<u64>,
    /// Histogram digests, [`HIST_DIGEST_STRIDE`] slots per [`HistId`].
    pub hists: Vec<u64>,
}

/// All `snapshot` events in journal order.
pub fn snapshots(journal: &RunJournal) -> Vec<SnapshotRow> {
    journal
        .events()
        .filter_map(|(rank, e)| match &e.kind {
            EventKind::Snapshot {
                marker,
                ranks,
                ctrs,
                hists,
            } => Some(SnapshotRow {
                rank,
                marker: *marker,
                ranks: *ranks,
                ctrs: ctrs.clone(),
                hists: hists.clone(),
            }),
            _ => None,
        })
        .collect()
}

/// The metrics plane over markers: per-snapshot deltas with labeled
/// counters (non-zero only, to stay readable), histogram digests, and a
/// cumulative totals line.
pub fn metrics_report(journal: &RunJournal) -> String {
    let rows = snapshots(journal);
    if rows.is_empty() {
        return "no snapshot events recorded (run with the recorder on)\n".to_string();
    }
    let mut out = format!("{} snapshots\n", rows.len());
    let mut totals = [0u64; Counter::COUNT];
    for row in &rows {
        out.push_str(&format!("  marker {} (ranks={}):", row.marker, row.ranks));
        let mut any = false;
        for c in Counter::ALL {
            let v = row.ctrs.get(c as usize).copied().unwrap_or(0);
            totals[c as usize] = totals[c as usize].saturating_add(v);
            if v != 0 {
                out.push_str(&format!(" {}={v}", c.label()));
                any = true;
            }
        }
        if !any {
            out.push_str(" (quiet)");
        }
        out.push('\n');
        for h in HistId::ALL {
            let base = (h as usize) * HIST_DIGEST_STRIDE;
            if let Some([count, p50, p99, max]) = row.hists.get(base..base + HIST_DIGEST_STRIDE) {
                if *count != 0 {
                    out.push_str(&format!(
                        "    {}: count={count} p50={p50} p99={p99} max={max}\n",
                        h.label()
                    ));
                }
            }
        }
    }
    out.push_str("  totals:");
    for c in Counter::ALL {
        out.push_str(&format!(" {}={}", c.label(), totals[c as usize]));
    }
    out.push('\n');
    out
}

/// One decoded `anomaly` event: a health-detector flag.
#[derive(Debug, Clone, PartialEq)]
pub struct AnomalyRow {
    /// The flagged rank.
    pub rank: u64,
    /// Marker invocation the flagged delta closed.
    pub marker: u64,
    /// Signal that fired (`slow` or `flaky`).
    pub kind: crate::event::AnomalyKind,
    /// Floored robust z-score.
    pub score: f64,
    /// Cohort the rank was scored against.
    pub cluster: u64,
}

/// All `anomaly` events in journal order (the detector host emits them
/// marker-ascending, so this is also marker order).
pub fn anomalies(journal: &RunJournal) -> Vec<AnomalyRow> {
    journal
        .events()
        .filter_map(|(_, e)| match &e.kind {
            EventKind::Anomaly {
                rank,
                marker,
                kind,
                score,
                cluster,
            } => Some(AnomalyRow {
                rank: *rank,
                marker: *marker,
                kind: *kind,
                score: *score,
                cluster: *cluster,
            }),
            _ => None,
        })
        .collect()
}

/// The health plane over markers: every flag in journal order, then a
/// per-rank rollup (flag count, kinds seen, first flagged marker —
/// the detection-latency number the matrix scorer uses).
pub fn anomaly_report(journal: &RunJournal) -> String {
    let rows = anomalies(journal);
    if rows.is_empty() {
        return "no anomaly events recorded (fault-free run, or detector off)\n".to_string();
    }
    let mut out = format!("{} anomaly flags\n", rows.len());
    for r in &rows {
        out.push_str(&format!(
            "  marker {:>4}: rank {} {} score={:?} cluster={}\n",
            r.marker,
            r.rank,
            r.kind.label(),
            r.score,
            r.cluster
        ));
    }
    let mut ranks: Vec<u64> = rows.iter().map(|r| r.rank).collect();
    ranks.sort_unstable();
    ranks.dedup();
    out.push_str("  per rank:\n");
    for rank in ranks {
        let mine: Vec<&AnomalyRow> = rows.iter().filter(|r| r.rank == rank).collect();
        let first = mine.iter().map(|r| r.marker).min().expect("non-empty");
        let mut kinds: Vec<&str> = mine.iter().map(|r| r.kind.label()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        out.push_str(&format!(
            "    rank {rank}: flags={} kinds={} first_marker={first}\n",
            mine.len(),
            kinds.join("+")
        ));
    }
    out
}

/// Structural diff: `None` when the journals are identical, otherwise a
/// description of the *first* divergence (header, then rank-major by
/// event, then counters implied by events).
pub fn diff(a: &RunJournal, b: &RunJournal) -> Option<String> {
    if a.ranks != b.ranks {
        return Some(format!("world size differs: {} vs {}", a.ranks, b.ranks));
    }
    if a.armed != b.armed {
        return Some(format!("armed flag differs: {} vs {}", a.armed, b.armed));
    }
    for rank in 0..a.ranks {
        let (la, lb) = (a.rank_log(rank), b.rank_log(rank));
        let ea: &[Event] = la.map(|l| l.events.as_slice()).unwrap_or(&[]);
        let eb: &[Event] = lb.map(|l| l.events.as_slice()).unwrap_or(&[]);
        for (i, (x, y)) in ea.iter().zip(eb.iter()).enumerate() {
            if x == y {
                continue;
            }
            let what = if x.kind != y.kind {
                format!("{} vs {}", describe(&x.kind), describe(&y.kind))
            } else {
                format!(
                    "same event ({}), timestamps differ: vt {:?} vs {:?}, tt {:?} vs {:?}",
                    describe(&x.kind),
                    x.vt,
                    y.vt,
                    x.tt,
                    y.tt
                )
            };
            return Some(format!("rank {rank} seq {i}: {what}"));
        }
        if ea.len() != eb.len() {
            let (short, long, which) = if ea.len() < eb.len() {
                (ea.len(), eb.len(), "second")
            } else {
                (eb.len(), ea.len(), "first")
            };
            return Some(format!(
                "rank {rank}: logs fork at seq {short}: the {which} journal has {} more event(s) (first extra: {})",
                long - short,
                describe(
                    &if ea.len() > eb.len() { &ea[short] } else { &eb[short] }.kind
                )
            ));
        }
    }
    None
}

// ---------------------------------------------------------------------
// Canonical JSON renderers
// ---------------------------------------------------------------------
//
// Machine-readable twins of the text reports above. Every renderer
// produces one canonical JSON object terminated by a newline: fixed key
// order, `{:?}` floats (shortest round-trip, valid JSON), iteration in
// deterministic orders only. The `chamtrace journal * --json` CLI and
// the `chamtrace serve` HTTP endpoints both print these bytes verbatim,
// which is what makes CLI-vs-daemon answers diffable at the byte level
// and lets endpoint goldens live next to journal goldens.

/// Escape a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// `summarize` as canonical JSON: header fields, per-label event totals,
/// and the per-rank event counts.
pub fn summarize_json(journal: &RunJournal) -> String {
    let mut totals: std::collections::BTreeMap<&'static str, u64> =
        std::collections::BTreeMap::new();
    let mut events = 0usize;
    for log in &journal.logs {
        events += log.events.len();
        for (label, n) in log.counters() {
            *totals.entry(label).or_insert(0) += n;
        }
    }
    let mut out = format!(
        "{{\"query\":\"summarize\",\"ranks\":{},\"armed\":{},\"events\":{events},\"counters\":{{",
        journal.ranks, journal.armed
    );
    for (i, (label, n)) in totals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{label}\":{n}"));
    }
    out.push_str("},\"per_rank\":[");
    for (i, log) in journal.logs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&log.events.len().to_string());
    }
    out.push_str("]}\n");
    out
}

/// `timeline` as canonical JSON: one rank's events, each embedded as the
/// exact object its journal line carries.
pub fn timeline_json(journal: &RunJournal, rank: usize) -> Result<String, String> {
    let log = journal
        .rank_log(rank)
        .ok_or_else(|| format!("rank {rank} out of range (world size {})", journal.ranks))?;
    let mut out = format!("{{\"query\":\"timeline\",\"rank\":{rank},\"events\":[");
    for (i, e) in log.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&crate::journal::event_json(rank, e));
    }
    out.push_str("]}\n");
    Ok(out)
}

/// `spans` as canonical JSON: per-level aggregates plus the critical
/// path (`null` when no merge spans were recorded).
pub fn spans_json(journal: &RunJournal) -> String {
    let spans = merge_spans(journal);
    let mut out = format!(
        "{{\"query\":\"spans\",\"spans\":{},\"levels\":[",
        spans.len()
    );
    let mut levels: Vec<u64> = spans.iter().map(|s| s.level).collect();
    levels.sort_unstable();
    levels.dedup();
    for (i, lvl) in levels.iter().enumerate() {
        let at: Vec<&MergeSpan> = spans.iter().filter(|s| s.level == *lvl).collect();
        let merges: u64 = at.iter().map(|s| s.merges).sum();
        let dp: u64 = at.iter().map(|s| s.dp_cells).sum();
        let fast: u64 = at.iter().map(|s| s.fast_path).sum();
        let t0 = at.iter().map(|s| s.t0).fold(f64::INFINITY, f64::min);
        let t1 = at.iter().map(|s| s.t1).fold(f64::NEG_INFINITY, f64::max);
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"level\":{lvl},\"ranks\":{},\"merges\":{merges},\"dp_cells\":{dp},\"fast_path\":{fast},\"t0\":{t0:?},\"t1\":{t1:?},\"width\":{:?}}}",
            at.len(),
            t1 - t0
        ));
    }
    out.push_str("],\"critical_path\":");
    match spans
        .iter()
        .max_by(|a, b| (a.t1 - a.t0).total_cmp(&(b.t1 - b.t0)))
    {
        None => out.push_str("null"),
        Some(slowest) => {
            let first = spans.iter().map(|s| s.t0).fold(f64::INFINITY, f64::min);
            let last = spans.iter().map(|s| s.t1).fold(f64::NEG_INFINITY, f64::max);
            out.push_str(&format!(
                "{{\"wall\":{:?},\"slowest_rank\":{},\"slowest_level\":{},\"slowest_width\":{:?}}}",
                last - first,
                slowest.rank,
                slowest.level,
                slowest.t1 - slowest.t0
            ));
        }
    }
    out.push_str("}\n");
    out
}

/// `metrics` as canonical JSON: every snapshot delta with labeled
/// counters and histogram digests, plus the cumulative totals.
pub fn metrics_json(journal: &RunJournal) -> String {
    let rows = snapshots(journal);
    let mut totals = [0u64; Counter::COUNT];
    let mut out = String::from("{\"query\":\"metrics\",\"snapshots\":[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rank\":{},\"marker\":{},\"ranks\":{},\"ctrs\":{{",
            row.rank, row.marker, row.ranks
        ));
        for (k, c) in Counter::ALL.iter().enumerate() {
            let v = row.ctrs.get(*c as usize).copied().unwrap_or(0);
            totals[*c as usize] = totals[*c as usize].saturating_add(v);
            if k > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", c.label()));
        }
        out.push_str("},\"hists\":{");
        for (k, h) in HistId::ALL.iter().enumerate() {
            let base = (*h as usize) * HIST_DIGEST_STRIDE;
            let slot = |off: usize| row.hists.get(base + off).copied().unwrap_or(0);
            if k > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"p50\":{},\"p99\":{},\"max\":{}}}",
                h.label(),
                slot(0),
                slot(1),
                slot(2),
                slot(3)
            ));
        }
        out.push_str("}}");
    }
    out.push_str("],\"totals\":{");
    for (k, c) in Counter::ALL.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", c.label(), totals[*c as usize]));
    }
    out.push_str("}}\n");
    out
}

/// `anomalies` as canonical JSON: every flag in journal order plus the
/// per-rank rollup the text report prints.
pub fn anomalies_json(journal: &RunJournal) -> String {
    let rows = anomalies(journal);
    let mut out = String::from("{\"query\":\"anomalies\",\"flags\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rank\":{},\"marker\":{},\"kind\":\"{}\",\"score\":{:?},\"cluster\":{}}}",
            r.rank,
            r.marker,
            r.kind.label(),
            r.score,
            r.cluster
        ));
    }
    out.push_str("],\"per_rank\":[");
    let mut ranks: Vec<u64> = rows.iter().map(|r| r.rank).collect();
    ranks.sort_unstable();
    ranks.dedup();
    for (i, rank) in ranks.iter().enumerate() {
        let mine: Vec<&AnomalyRow> = rows.iter().filter(|r| r.rank == *rank).collect();
        let first = mine.iter().map(|r| r.marker).min().expect("non-empty");
        let mut kinds: Vec<&str> = mine.iter().map(|r| r.kind.label()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        if i > 0 {
            out.push(',');
        }
        let kind_list: Vec<String> = kinds.iter().map(|k| format!("\"{k}\"")).collect();
        out.push_str(&format!(
            "{{\"rank\":{rank},\"flags\":{},\"kinds\":[{}],\"first_marker\":{first}}}",
            mine.len(),
            kind_list.join(",")
        ));
    }
    out.push_str("]}\n");
    out
}

/// `diff` as canonical JSON: identity verdict plus, on divergence, the
/// same first-divergence description the text report prints.
pub fn diff_json(a: &RunJournal, b: &RunJournal) -> String {
    match diff(a, b) {
        None => "{\"query\":\"diff\",\"identical\":true}\n".to_string(),
        Some(d) => format!(
            "{{\"query\":\"diff\",\"identical\":false,\"divergence\":\"{}\"}}\n",
            json_escape(&d)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricSet;
    use crate::recorder::RankLog;

    fn push(log: &mut RankLog, vt: f64, tt: f64, kind: EventKind) {
        let seq = log.events.len() as u64;
        log.events.push(Event { seq, vt, tt, kind });
    }

    fn sample() -> RunJournal {
        let mut a = RankLog::new(0);
        push(&mut a, 0.0, 0.0, EventKind::Marker { n: 1 });
        push(
            &mut a,
            1e-5,
            1e-7,
            EventKind::MergeLevel {
                level: 0,
                merges: 2,
                dp_cells: 80,
                fast_path: 1,
                t0: 1e-7,
                t1: 3e-7,
            },
        );
        let mut m = MetricSet::new();
        m.add(Counter::Merges, 2);
        m.add(Counter::DpCells, 80);
        m.observe(HistId::DpCellsPerMerge, 40);
        m.observe(HistId::DpCellsPerMerge, 40);
        push(
            &mut a,
            1e-5,
            4e-7,
            EventKind::Snapshot {
                marker: 1,
                ranks: 2,
                ctrs: m.counter_values(),
                hists: m.hist_digest(),
            },
        );
        let mut b = RankLog::new(1);
        push(&mut b, 0.0, 0.0, EventKind::Marker { n: 1 });
        push(
            &mut b,
            1e-5,
            2e-7,
            EventKind::MergeLevel {
                level: 1,
                merges: 1,
                dp_cells: 40,
                fast_path: 0,
                t0: 2e-7,
                t1: 8e-7,
            },
        );
        RunJournal::gather(2, false, vec![a, b])
    }

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn journal_digest_tracks_canonical_bytes() {
        let j = sample();
        assert_eq!(journal_digest(&j), fnv64(j.to_jsonl().as_bytes()));
        let mut other = sample();
        other.logs[0].events[0].kind = EventKind::Marker { n: 2 };
        assert_ne!(journal_digest(&j), journal_digest(&other));
        assert!(diff(&j, &other).is_some(), "digest and diff must agree");
    }

    #[test]
    fn filter_selects_by_rank_and_label() {
        let j = sample();
        assert_eq!(filter(&j, None, Some("marker")).len(), 2);
        assert_eq!(filter(&j, Some(0), Some("marker")).len(), 1);
        assert_eq!(filter(&j, Some(1), Some("snapshot")).len(), 0);
        assert_eq!(filter(&j, None, None).len(), 5);
    }

    #[test]
    fn timeline_lists_each_event_once() {
        let j = sample();
        let t = timeline(&j, 0).unwrap();
        assert_eq!(t.lines().count(), 1 + 3, "{t}");
        assert!(t.contains("snapshot marker=1 ranks=2"), "{t}");
        assert!(timeline(&j, 9).is_err());
    }

    #[test]
    fn span_report_aggregates_levels_and_critical_path() {
        let j = sample();
        let spans = merge_spans(&j);
        assert_eq!(spans.len(), 2);
        let r = span_report(&j);
        assert!(r.contains("level 0: ranks=1 merges=2 dp_cells=80"), "{r}");
        assert!(r.contains("level 1: ranks=1 merges=1"), "{r}");
        // Wave runs 1e-7 .. 8e-7; the slowest single span is rank 1 level 1.
        assert!(r.contains("slowest span rank 1 level 1"), "{r}");
    }

    #[test]
    fn metrics_report_decodes_snapshot_rows() {
        let j = sample();
        let rows = snapshots(&j);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].ctrs[Counter::Merges as usize], 2);
        let r = metrics_report(&j);
        assert!(
            r.contains("marker 1 (ranks=2): merges=2 dp_cells=80"),
            "{r}"
        );
        assert!(r.contains("dp_cells_per_merge: count=2"), "{r}");
        assert!(r.contains("totals:"), "{r}");
    }

    #[test]
    fn anomaly_report_rolls_up_per_rank() {
        use crate::event::AnomalyKind;
        let mut j = sample();
        assert!(anomaly_report(&j).contains("no anomaly events"));
        let log = &mut j.logs[0];
        for (marker, kind, score) in [
            (4u64, AnomalyKind::Slow, 5.5),
            (5, AnomalyKind::Slow, 6.0),
            (5, AnomalyKind::Flaky, 9.0),
        ] {
            push(
                log,
                1e-5,
                1e-6,
                EventKind::Anomaly {
                    rank: 3,
                    marker,
                    kind,
                    score,
                    cluster: 0,
                },
            );
        }
        let rows = anomalies(&j);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].marker, 4);
        let r = anomaly_report(&j);
        assert!(r.contains("3 anomaly flags"), "{r}");
        assert!(
            r.contains("rank 3: flags=3 kinds=flaky+slow first_marker=4"),
            "{r}"
        );
    }

    #[test]
    fn diff_reports_first_divergence_only() {
        let j = sample();
        assert_eq!(diff(&j, &j), None, "self-diff is clean");

        // Mutate one payload: kinds differ at rank 1 seq 0.
        let mut other = sample();
        other.logs[1].events[0].kind = EventKind::Marker { n: 2 };
        let d = diff(&j, &other).unwrap();
        assert!(d.contains("rank 1 seq 0"), "{d}");
        assert!(d.contains("marker n=1 vs marker n=2"), "{d}");

        // Same kind, different stamp.
        let mut other = sample();
        other.logs[0].events[1].tt = 9e-7;
        let d = diff(&j, &other).unwrap();
        assert!(d.contains("timestamps differ"), "{d}");

        // One log is a strict prefix of the other.
        let mut other = sample();
        other.logs[1].events.pop();
        let d = diff(&j, &other).unwrap();
        assert!(d.contains("rank 1: logs fork at seq 1"), "{d}");

        // Header mismatches win over event mismatches.
        let mut other = sample();
        other.armed = true;
        assert!(diff(&j, &other).unwrap().contains("armed flag differs"));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\n\t"), "x\\n\\t");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_renderers_are_canonical_objects() {
        let j = sample();
        let outs = [
            summarize_json(&j),
            timeline_json(&j, 0).unwrap(),
            spans_json(&j),
            metrics_json(&j),
            anomalies_json(&j),
            diff_json(&j, &j),
        ];
        for o in &outs {
            assert!(o.starts_with("{\"query\":\""), "{o}");
            assert!(o.ends_with("}\n"), "{o}");
            assert_eq!(o.matches('\n').count(), 1, "single line: {o}");
        }
        assert!(
            outs[0].contains("\"counters\":{\"marker\":2,"),
            "{}",
            outs[0]
        );
        assert!(outs[0].contains("\"per_rank\":[3,2]"), "{}", outs[0]);
        // Timeline embeds the exact journal-line object for each event.
        let line1 = crate::journal::event_json(0, &j.logs[0].events[0]);
        assert!(outs[1].contains(&line1), "{}", outs[1]);
        assert!(
            outs[2].contains("\"critical_path\":{\"wall\":"),
            "{}",
            outs[2]
        );
        assert!(
            outs[3].contains("\"totals\":{\"signatures\":0,"),
            "{}",
            outs[3]
        );
        assert!(outs[4].contains("\"flags\":[]"), "{}", outs[4]);
        assert_eq!(outs[5], "{\"query\":\"diff\",\"identical\":true}\n");
        assert!(timeline_json(&j, 9).is_err());
    }

    #[test]
    fn diff_json_reports_divergence_with_escaping() {
        let j = sample();
        let mut other = sample();
        other.logs[1].events[0].kind = EventKind::Marker { n: 2 };
        let d = diff_json(&j, &other);
        assert!(d.contains("\"identical\":false"), "{d}");
        assert!(d.contains("rank 1 seq 0"), "{d}");
    }

    #[test]
    fn spans_json_empty_has_null_critical_path() {
        let j = RunJournal::gather(1, false, Vec::new());
        assert_eq!(
            spans_json(&j),
            "{\"query\":\"spans\",\"spans\":0,\"levels\":[],\"critical_path\":null}\n"
        );
    }
}
