//! The run journal: gathered per-rank logs with a canonical JSONL form.
//!
//! The serialization is hand-rolled (the workspace is hermetic — no
//! serde) and *canonical*: fixed field order, `{:?}` float formatting
//! (Rust's shortest round-trip representation, which is valid JSON), and
//! Call-Path signatures as `"0x…"` hex strings so no u64 ever has to
//! survive a float-typed JSON number. Canonical form is what makes the
//! journal a byte-level oracle: `parse(to_jsonl(j)) == j` and
//! `to_jsonl(parse(text)) == text` both hold, and two same-seed runs
//! serialize identically.
//!
//! Schema (one JSON object per line):
//!
//! ```text
//! {"journal":"chameleon-obs-v1","ranks":6,"armed":true}        header
//! {"rank":0,"seq":0,"vt":0.0,"tt":0.0,"ev":"marker","n":1}     event
//! {"rank":0,"ctr":"marker","n":40}                             counter
//! ```
//!
//! Events come grouped by rank (ascending), `seq` ascending from 0;
//! each rank's events are followed by its derived counters (sorted by
//! label). Counter lines are redundant — they are recomputed and checked
//! on parse — but make `grep | wc -l`-style triage trivial.

use std::collections::BTreeMap;

use crate::event::{intern, AnomalyKind, Event, EventKind, FaultKind, DECISIONS, STATES};
use crate::recorder::RankLog;

/// Format-version magic in the header line.
pub const MAGIC: &str = "chameleon-obs-v1";

/// A malformed journal: the line (1-based) and what went wrong there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalError {
    /// 1-based line number.
    pub line: usize,
    /// What failed to parse or validate.
    pub what: String,
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "journal line {}: {}", self.line, self.what)
    }
}

impl std::error::Error for JournalError {}

/// All ranks' flight logs from one run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunJournal {
    /// World size the run was launched with.
    pub ranks: usize,
    /// Whether a fault plan was armed.
    pub armed: bool,
    /// Per-rank logs, ascending by rank. A crashed rank's log ends at its
    /// crash event; ranks are never missing.
    pub logs: Vec<RankLog>,
}

impl RunJournal {
    /// Assemble the journal rank 0 reports at finalize. The result always
    /// holds exactly one log per rank, in rank order: ranks that reported
    /// nothing get an empty log (an empty log serializes to no lines, so
    /// padding here is what keeps `from_jsonl` lossless).
    pub fn gather(ranks: usize, armed: bool, logs: Vec<RankLog>) -> Self {
        let mut full: Vec<RankLog> = (0..ranks).map(RankLog::new).collect();
        for log in logs {
            let rank = log.rank;
            assert!(rank < ranks, "log rank {rank} out of range");
            full[rank] = log;
        }
        RunJournal {
            ranks,
            armed,
            logs: full,
        }
    }

    /// The log of one rank.
    pub fn rank_log(&self, rank: usize) -> Option<&RankLog> {
        self.logs.iter().find(|l| l.rank == rank)
    }

    /// All events with their owning rank, rank-major.
    pub fn events(&self) -> impl Iterator<Item = (usize, &Event)> {
        self.logs
            .iter()
            .flat_map(|l| l.events.iter().map(move |e| (l.rank, e)))
    }

    /// Total occurrences of an event label across all ranks.
    pub fn count(&self, label: &str) -> u64 {
        self.events()
            .filter(|(_, e)| e.kind.label() == label)
            .count() as u64
    }

    /// Canonical JSONL serialization (see the module docs for the schema).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"journal\":\"{MAGIC}\",\"ranks\":{},\"armed\":{}}}\n",
            self.ranks, self.armed
        ));
        for log in &self.logs {
            for e in &log.events {
                write_event(&mut out, log.rank, e);
            }
            for (label, n) in log.counters() {
                out.push_str(&format!(
                    "{{\"rank\":{},\"ctr\":\"{label}\",\"n\":{n}}}\n",
                    log.rank
                ));
            }
        }
        out
    }

    /// Read and strictly parse a journal file — the one loading helper
    /// behind every `chamtrace journal` subcommand and the trace-service
    /// daemon. I/O failures name the path; parse failures additionally
    /// carry the offending line via [`JournalError`]'s display form.
    pub fn load(path: &std::path::Path) -> Result<RunJournal, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        RunJournal::from_jsonl(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Strict parse of the canonical form. Checks the magic, rank
    /// ordering, per-rank `seq` contiguity, and that the counter lines
    /// agree with the events they summarize.
    pub fn from_jsonl(text: &str) -> Result<RunJournal, JournalError> {
        let err = |line: usize, what: String| JournalError { line, what };
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or_else(|| err(1, "empty journal".into()))?;
        let (ranks, armed) = parse_header(header).map_err(|w| err(1, w))?;

        let mut logs: Vec<RankLog> = Vec::new();
        let mut counters_seen: BTreeMap<usize, BTreeMap<String, u64>> = BTreeMap::new();
        for (i, line) in lines {
            let lineno = i + 1;
            match parse_line(line).map_err(|w| err(lineno, w))? {
                Line::Event { rank, event } => {
                    if counters_seen.contains_key(&rank) {
                        return Err(err(
                            lineno,
                            format!("event for rank {rank} after its counters"),
                        ));
                    }
                    if logs.last().is_none_or(|l| l.rank != rank) {
                        if logs.iter().any(|l| l.rank == rank)
                            || logs.last().is_some_and(|l| l.rank > rank)
                        {
                            return Err(err(lineno, format!("rank {rank} out of order")));
                        }
                        logs.push(RankLog::new(rank));
                    }
                    let log = logs.last_mut().expect("just ensured");
                    if event.seq != log.events.len() as u64 {
                        return Err(err(
                            lineno,
                            format!(
                                "rank {rank}: seq {} where {} expected",
                                event.seq,
                                log.events.len()
                            ),
                        ));
                    }
                    log.events.push(event);
                }
                Line::Counter { rank, label, n } => {
                    counters_seen.entry(rank).or_default().insert(label, n);
                }
            }
        }

        if let Some(bad) = logs.iter().find(|l| l.rank >= ranks) {
            return Err(err(0, format!("rank {} out of range", bad.rank)));
        }
        let journal = RunJournal::gather(ranks, armed, logs);
        for log in &journal.logs {
            let derived: BTreeMap<String, u64> = log
                .counters()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect();
            let seen = counters_seen.remove(&log.rank).unwrap_or_default();
            if derived != seen {
                return Err(err(
                    0,
                    format!(
                        "rank {}: counter lines disagree with events (derived {derived:?}, read {seen:?})",
                        log.rank
                    ),
                ));
            }
        }
        if let Some((&rank, _)) = counters_seen.iter().next() {
            return Err(err(0, format!("counters for rank {rank} without events")));
        }
        Ok(journal)
    }

    /// Compact deterministic text summary for bench reports and triage.
    pub fn summary(&self) -> String {
        let mut totals: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut events = 0usize;
        for log in &self.logs {
            events += log.events.len();
            for (label, n) in log.counters() {
                *totals.entry(label).or_insert(0) += n;
            }
        }
        let mut out = format!(
            "obs journal: ranks={} armed={} events={events}\n",
            self.ranks,
            if self.armed { "yes" } else { "no" }
        );
        if !totals.is_empty() {
            out.push_str("  ");
            let parts: Vec<String> = totals.iter().map(|(l, n)| format!("{l}={n}")).collect();
            out.push_str(&parts.join(" "));
            out.push('\n');
        }
        for log in &self.logs {
            out.push_str(&format!(
                "  rank {}: {} events\n",
                log.rank,
                log.events.len()
            ));
        }
        out
    }
}

fn write_event(out: &mut String, rank: usize, e: &Event) {
    out.push_str(&event_json(rank, e));
    out.push('\n');
}

/// One event as its canonical JSON object — exactly the bytes the
/// journal line for it carries, minus the trailing newline. Exposed so
/// the query engine's JSON renderers embed events verbatim.
pub fn event_json(rank: usize, e: &Event) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"rank\":{rank},\"seq\":{},\"vt\":{:?},\"tt\":{:?},\"ev\":\"{}\"",
        e.seq,
        e.vt,
        e.tt,
        e.kind.label()
    ));
    match &e.kind {
        EventKind::Marker { n } => out.push_str(&format!(",\"n\":{n}")),
        EventKind::Signature { events, call_path } => {
            out.push_str(&format!(",\"events\":{events},\"cp\":\"{call_path:#x}\""))
        }
        EventKind::ClusterSel {
            marker,
            effective_k,
            lead,
            leads,
        } => {
            let list: Vec<String> = leads.iter().map(u64::to_string).collect();
            out.push_str(&format!(
                ",\"marker\":{marker},\"k\":{effective_k},\"lead\":{lead},\"leads\":[{}]",
                list.join(",")
            ));
        }
        EventKind::State {
            marker,
            state,
            decision,
        } => out.push_str(&format!(
            ",\"marker\":{marker},\"state\":\"{state}\",\"decision\":\"{decision}\""
        )),
        EventKind::Degraded { marker } => out.push_str(&format!(",\"marker\":{marker}")),
        EventKind::Reelect {
            call_path,
            old,
            new,
        } => out.push_str(&format!(
            ",\"cp\":\"{call_path:#x}\",\"old\":{old},\"new\":{new}"
        )),
        EventKind::MergeLevel {
            level,
            merges,
            dp_cells,
            fast_path,
            t0,
            t1,
        } => out.push_str(&format!(
            ",\"level\":{level},\"merges\":{merges},\"dp_cells\":{dp_cells},\"fast_path\":{fast_path},\"t0\":{t0:?},\"t1\":{t1:?}"
        )),
        EventKind::Retry { peer, tag }
        | EventKind::Nack { peer, tag }
        | EventKind::GiveUp { peer, tag } => {
            out.push_str(&format!(",\"peer\":{peer},\"tag\":{tag}"))
        }
        EventKind::Fault { kind, dest, tag } => out.push_str(&format!(
            ",\"kind\":\"{}\",\"dest\":{dest},\"tag\":{tag}",
            kind.label()
        )),
        EventKind::Snapshot {
            marker,
            ranks,
            ctrs,
            hists,
        } => {
            let c: Vec<String> = ctrs.iter().map(u64::to_string).collect();
            let h: Vec<String> = hists.iter().map(u64::to_string).collect();
            out.push_str(&format!(
                ",\"marker\":{marker},\"ranks\":{ranks},\"ctrs\":[{}],\"hists\":[{}]",
                c.join(","),
                h.join(",")
            ));
        }
        EventKind::Crash { op } => out.push_str(&format!(",\"op\":{op}")),
        EventKind::PeerDead { peer } => out.push_str(&format!(",\"peer\":{peer}")),
        EventKind::Timeout { peer, tag, waited } => {
            out.push_str(&format!(",\"peer\":{peer},\"tag\":{tag},\"waited\":{waited}"))
        }
        EventKind::Checkpoint {
            marker,
            bytes,
            deputy,
        } => out.push_str(&format!(
            ",\"marker\":{marker},\"bytes\":{bytes},\"deputy\":{deputy}"
        )),
        EventKind::Promote {
            marker,
            old_root,
            restored,
        } => out.push_str(&format!(
            ",\"marker\":{marker},\"old_root\":{old_root},\"restored\":{restored}"
        )),
        EventKind::Anomaly {
            rank: flagged,
            marker,
            kind,
            score,
            cluster,
        } => out.push_str(&format!(
            ",\"flagged\":{flagged},\"marker\":{marker},\"kind\":\"{}\",\"score\":{score:?},\"cluster\":{cluster}",
            kind.label()
        )),
        EventKind::Resume { marker, hwm } => {
            out.push_str(&format!(",\"marker\":{marker},\"hwm\":{hwm}"))
        }
    }
    out.push('}');
    out
}

enum Line {
    Event { rank: usize, event: Event },
    Counter { rank: usize, label: String, n: u64 },
}

fn parse_header(line: &str) -> Result<(usize, bool), String> {
    let mut sc = Scan::new(line);
    sc.eat("{\"journal\":\"")?;
    let magic = sc.take_until('"')?;
    if magic != MAGIC {
        return Err(format!("unknown journal magic {magic:?}"));
    }
    sc.eat("\",\"ranks\":")?;
    let ranks = sc.number()?.parse::<usize>().map_err(|e| e.to_string())?;
    sc.eat(",\"armed\":")?;
    let armed = sc.boolean()?;
    sc.eat("}")?;
    sc.done()?;
    Ok((ranks, armed))
}

fn parse_line(line: &str) -> Result<Line, String> {
    let mut sc = Scan::new(line);
    sc.eat("{\"rank\":")?;
    let rank = sc.number()?.parse::<usize>().map_err(|e| e.to_string())?;
    if sc.peek_eat(",\"ctr\":\"") {
        let label = sc.take_until('"')?.to_string();
        sc.eat("\",\"n\":")?;
        let n = sc.u64()?;
        sc.eat("}")?;
        sc.done()?;
        return Ok(Line::Counter { rank, label, n });
    }
    sc.eat(",\"seq\":")?;
    let seq = sc.u64()?;
    sc.eat(",\"vt\":")?;
    let vt = sc.f64()?;
    sc.eat(",\"tt\":")?;
    let tt = sc.f64()?;
    sc.eat(",\"ev\":\"")?;
    let label = sc.take_until('"')?.to_string();
    sc.eat("\"")?;
    let kind = parse_kind(&mut sc, &label)?;
    sc.eat("}")?;
    sc.done()?;
    Ok(Line::Event {
        rank,
        event: Event { seq, vt, tt, kind },
    })
}

fn parse_kind(sc: &mut Scan<'_>, label: &str) -> Result<EventKind, String> {
    Ok(match label {
        "marker" => EventKind::Marker {
            n: sc.field_u64("n")?,
        },
        "signature" => EventKind::Signature {
            events: sc.field_u64("events")?,
            call_path: sc.field_hex("cp")?,
        },
        "cluster" => EventKind::ClusterSel {
            marker: sc.field_u64("marker")?,
            effective_k: sc.field_u64("k")?,
            lead: sc.field_u64("lead")?,
            leads: sc.field_u64_array("leads")?,
        },
        "state" => EventKind::State {
            marker: sc.field_u64("marker")?,
            state: intern(&sc.field_str("state")?, &STATES)
                .ok_or_else(|| "unknown state label".to_string())?,
            decision: intern(&sc.field_str("decision")?, &DECISIONS)
                .ok_or_else(|| "unknown decision label".to_string())?,
        },
        "degraded" => EventKind::Degraded {
            marker: sc.field_u64("marker")?,
        },
        "reelect" => EventKind::Reelect {
            call_path: sc.field_hex("cp")?,
            old: sc.field_u64("old")?,
            new: sc.field_u64("new")?,
        },
        "merge_level" => EventKind::MergeLevel {
            level: sc.field_u64("level")?,
            merges: sc.field_u64("merges")?,
            dp_cells: sc.field_u64("dp_cells")?,
            fast_path: sc.field_u64("fast_path")?,
            t0: sc.field_f64("t0")?,
            t1: sc.field_f64("t1")?,
        },
        "retry" => EventKind::Retry {
            peer: sc.field_u64("peer")?,
            tag: sc.field_u64("tag")?,
        },
        "nack" => EventKind::Nack {
            peer: sc.field_u64("peer")?,
            tag: sc.field_u64("tag")?,
        },
        "giveup" => EventKind::GiveUp {
            peer: sc.field_u64("peer")?,
            tag: sc.field_u64("tag")?,
        },
        "fault" => EventKind::Fault {
            kind: FaultKind::from_label(&sc.field_str("kind")?)
                .ok_or_else(|| "unknown fault kind".to_string())?,
            dest: sc.field_u64("dest")?,
            tag: sc.field_u64("tag")?,
        },
        "snapshot" => EventKind::Snapshot {
            marker: sc.field_u64("marker")?,
            ranks: sc.field_u64("ranks")?,
            ctrs: sc.field_u64_array("ctrs")?,
            hists: sc.field_u64_array("hists")?,
        },
        "crash" => EventKind::Crash {
            op: sc.field_u64("op")?,
        },
        "peer_dead" => EventKind::PeerDead {
            peer: sc.field_u64("peer")?,
        },
        "timeout" => EventKind::Timeout {
            peer: sc.field_u64("peer")?,
            tag: sc.field_u64("tag")?,
            waited: sc.field_u64("waited")?,
        },
        "checkpoint" => EventKind::Checkpoint {
            marker: sc.field_u64("marker")?,
            bytes: sc.field_u64("bytes")?,
            deputy: sc.field_u64("deputy")?,
        },
        "promote" => EventKind::Promote {
            marker: sc.field_u64("marker")?,
            old_root: sc.field_u64("old_root")?,
            restored: sc.field_u64("restored")?,
        },
        "anomaly" => EventKind::Anomaly {
            rank: sc.field_u64("flagged")?,
            marker: sc.field_u64("marker")?,
            kind: AnomalyKind::from_label(&sc.field_str("kind")?)
                .ok_or_else(|| "unknown anomaly kind".to_string())?,
            score: sc.field_f64("score")?,
            cluster: sc.field_u64("cluster")?,
        },
        "resume" => EventKind::Resume {
            marker: sc.field_u64("marker")?,
            hwm: sc.field_u64("hwm")?,
        },
        other => return Err(format!("unknown event label {other:?}")),
    })
}

/// A tiny cursor over one canonical JSON line. The journal grammar is
/// closed and flat, so the "parser" is literal-expectation plus three
/// scalar shapes — no general JSON machinery needed.
struct Scan<'a> {
    s: &'a str,
    pos: usize,
}

impl<'a> Scan<'a> {
    fn new(s: &'a str) -> Self {
        Scan { s, pos: 0 }
    }

    fn rest(&self) -> &'a str {
        &self.s[self.pos..]
    }

    fn eat(&mut self, lit: &str) -> Result<(), String> {
        if self.rest().starts_with(lit) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected {lit:?} at byte {}", self.pos))
        }
    }

    fn peek_eat(&mut self, lit: &str) -> bool {
        if self.rest().starts_with(lit) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn done(&self) -> Result<(), String> {
        if self.rest().is_empty() {
            Ok(())
        } else {
            Err(format!("trailing bytes at {}", self.pos))
        }
    }

    fn take_until(&mut self, stop: char) -> Result<&'a str, String> {
        let rest = self.rest();
        let end = rest
            .find(stop)
            .ok_or_else(|| format!("unterminated token at byte {}", self.pos))?;
        self.pos += end;
        Ok(&rest[..end])
    }

    /// A JSON number token (decimal or float; no hex — those are quoted).
    fn number(&mut self) -> Result<&'a str, String> {
        let rest = self.rest();
        let end = rest
            .find(|c: char| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
            .unwrap_or(rest.len());
        if end == 0 {
            return Err(format!("expected number at byte {}", self.pos));
        }
        self.pos += end;
        Ok(&rest[..end])
    }

    fn u64(&mut self) -> Result<u64, String> {
        self.number()?.parse::<u64>().map_err(|e| e.to_string())
    }

    fn f64(&mut self) -> Result<f64, String> {
        let tok = self.number()?;
        let v = tok.parse::<f64>().map_err(|e| e.to_string())?;
        if !v.is_finite() {
            return Err(format!("non-finite timestamp {tok:?}"));
        }
        Ok(v)
    }

    fn boolean(&mut self) -> Result<bool, String> {
        if self.peek_eat("true") {
            Ok(true)
        } else if self.peek_eat("false") {
            Ok(false)
        } else {
            Err(format!("expected boolean at byte {}", self.pos))
        }
    }

    fn field_u64(&mut self, name: &str) -> Result<u64, String> {
        self.eat(&format!(",\"{name}\":"))?;
        self.u64()
    }

    fn field_f64(&mut self, name: &str) -> Result<f64, String> {
        self.eat(&format!(",\"{name}\":"))?;
        self.f64()
    }

    fn field_str(&mut self, name: &str) -> Result<String, String> {
        self.eat(&format!(",\"{name}\":\""))?;
        let v = self.take_until('"')?.to_string();
        self.eat("\"")?;
        Ok(v)
    }

    fn field_hex(&mut self, name: &str) -> Result<u64, String> {
        self.eat(&format!(",\"{name}\":\"0x"))?;
        let digits = self.take_until('"')?;
        let v = u64::from_str_radix(digits, 16).map_err(|e| e.to_string())?;
        self.eat("\"")?;
        Ok(v)
    }

    fn field_u64_array(&mut self, name: &str) -> Result<Vec<u64>, String> {
        self.eat(&format!(",\"{name}\":["))?;
        let mut out = Vec::new();
        if self.peek_eat("]") {
            return Ok(out);
        }
        loop {
            out.push(self.u64()?);
            if self.peek_eat("]") {
                return Ok(out);
            }
            self.eat(",")?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A journal exercising every event kind and both float shapes.
    fn specimen() -> RunJournal {
        let mut a = RankLog::new(0);
        let push = |log: &mut RankLog, vt: f64, tt: f64, kind: EventKind| {
            let seq = log.events.len() as u64;
            log.events.push(Event { seq, vt, tt, kind });
        };
        push(&mut a, 0.0, 0.0, EventKind::Marker { n: 1 });
        push(
            &mut a,
            1.25e-5,
            3e-7,
            EventKind::Signature {
                events: 42,
                call_path: 0xDEAD_BEEF_u64,
            },
        );
        push(
            &mut a,
            1.25e-5,
            4e-7,
            EventKind::ClusterSel {
                marker: 1,
                effective_k: 2,
                lead: 0,
                leads: vec![0, 3],
            },
        );
        push(
            &mut a,
            1.25e-5,
            5e-7,
            EventKind::State {
                marker: 1,
                state: "C",
                decision: "cluster",
            },
        );
        push(
            &mut a,
            2e-5,
            6e-7,
            EventKind::MergeLevel {
                level: 0,
                merges: 3,
                dp_cells: 120,
                fast_path: 1,
                t0: 5e-7,
                t1: 6e-7,
            },
        );
        push(&mut a, 2e-5, 7e-7, EventKind::Retry { peer: 3, tag: 9 });
        push(&mut a, 2e-5, 8e-7, EventKind::Nack { peer: 3, tag: 9 });
        push(&mut a, 2e-5, 9e-7, EventKind::GiveUp { peer: 3, tag: 9 });
        push(
            &mut a,
            2e-5,
            1e-6,
            EventKind::Reelect {
                call_path: 0x7,
                old: 3,
                new: 1,
            },
        );
        push(&mut a, 3e-5, 1e-6, EventKind::Degraded { marker: 2 });
        push(&mut a, 3e-5, 1e-6, EventKind::PeerDead { peer: 3 });
        push(
            &mut a,
            3e-5,
            2e-6,
            EventKind::Snapshot {
                marker: 2,
                ranks: 3,
                ctrs: vec![1, 0, 3, 120, 1, 1, 1, 1, 1, 1],
                hists: vec![2, 100, 104, 105],
            },
        );
        push(
            &mut a,
            3e-5,
            2e-6,
            EventKind::Checkpoint {
                marker: 2,
                bytes: 512,
                deputy: 1,
            },
        );
        push(
            &mut a,
            3e-5,
            2e-6,
            EventKind::Anomaly {
                rank: 3,
                marker: 2,
                kind: AnomalyKind::Flaky,
                score: 6.25,
                cluster: 1,
            },
        );
        push(&mut a, 3e-5, 2e-6, EventKind::Resume { marker: 2, hwm: 12 });
        let mut b = RankLog::new(3);
        push(
            &mut b,
            1e-5,
            0.0,
            EventKind::Fault {
                kind: FaultKind::Corrupt,
                dest: 0,
                tag: 9,
            },
        );
        push(&mut b, 1.5e-5, 0.0, EventKind::Crash { op: 40 });
        push(
            &mut b,
            1.5e-5,
            0.0,
            EventKind::Timeout {
                peer: 0,
                tag: 9,
                waited: 30000,
            },
        );
        push(
            &mut b,
            1.5e-5,
            0.0,
            EventKind::Promote {
                marker: 2,
                old_root: 0,
                restored: 1,
            },
        );
        RunJournal::gather(4, true, vec![b, a])
    }

    #[test]
    fn gather_pads_and_orders_by_rank() {
        let j = specimen();
        assert_eq!(j.logs.len(), 4, "one log per rank");
        for (r, log) in j.logs.iter().enumerate() {
            assert_eq!(log.rank, r);
        }
        assert!(j.logs[1].events.is_empty(), "silent rank padded empty");
    }

    #[test]
    fn roundtrip_is_byte_identical() {
        let j = specimen();
        let text = j.to_jsonl();
        let parsed = RunJournal::from_jsonl(&text).expect("canonical journal parses");
        assert_eq!(parsed, j, "parse is lossless");
        assert_eq!(parsed.to_jsonl(), text, "re-serialization is stable");
    }

    #[test]
    fn every_line_is_flat_json() {
        // Cheap structural check: each line is one brace-balanced object
        // with no raw control characters — greppable with line tools.
        for line in specimen().to_jsonl().lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert_eq!(line.matches('{').count(), 1, "{line}");
            assert!(!line.contains('\t'));
        }
    }

    #[test]
    fn corruption_is_rejected_not_panicking() {
        let text = specimen().to_jsonl();
        // Whole-line corruptions that must fail loudly.
        for bad in [
            text.replace(MAGIC, "chameleon-obs-v9"),
            text.replace("\"ev\":\"marker\"", "\"ev\":\"meeting\""),
            text.replace("\"seq\":1,", "\"seq\":7,"),
            text.replace("\"state\":\"C\"", "\"state\":\"Q\""),
            text.replace("\"kind\":\"corrupt\"", "\"kind\":\"melt\""),
            text.replace("\"kind\":\"flaky\"", "\"kind\":\"jittery\""),
            text.replace(
                "{\"rank\":0,\"ctr\":\"marker\",\"n\":1}",
                "{\"rank\":0,\"ctr\":\"marker\",\"n\":3}",
            ),
        ] {
            assert_ne!(bad, text, "corruption pattern must apply");
            assert!(RunJournal::from_jsonl(&bad).is_err());
        }
        // Truncation at every line boundary parses-or-errors, never
        // panics; a truncation that still parses (it ended exactly at a
        // rank boundary) must not reconstruct the original journal.
        let original = specimen();
        let lines: Vec<&str> = text.lines().collect();
        for cut in 1..lines.len() {
            let mut t: String = lines[..cut].join("\n");
            t.push('\n');
            if t == text {
                continue;
            }
            if let Ok(j) = RunJournal::from_jsonl(&t) {
                assert_ne!(j, original, "truncation to {cut} lines round-tripped");
            }
        }
    }

    #[test]
    fn counts_and_summary_agree() {
        let j = specimen();
        assert_eq!(j.count("marker"), 1);
        assert_eq!(j.count("fault"), 1);
        assert_eq!(j.count("crash"), 1);
        assert_eq!(j.count("checkpoint"), 1);
        assert_eq!(j.count("promote"), 1);
        assert_eq!(j.count("anomaly"), 1);
        let s = j.summary();
        assert!(s.contains("ranks=4 armed=yes events=19"), "{s}");
        assert!(s.contains("crash=1"), "{s}");
        assert!(s.contains("rank 3: 4 events"), "{s}");
    }

    #[test]
    fn empty_journal_roundtrips() {
        let j = RunJournal::gather(2, false, Vec::new());
        let text = j.to_jsonl();
        assert_eq!(RunJournal::from_jsonl(&text).unwrap(), j);
        assert_eq!(text.lines().count(), 1, "header only");
    }
}
