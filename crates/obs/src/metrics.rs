//! The in-flight metrics plane: mergeable, fixed-memory sketches.
//!
//! A [`MetricSet`] is one rank's worth of observability state between two
//! snapshots: a typed array of u64 [`Counter`]s plus a fixed family of
//! log-bucketed [`Histogram`]s (HDR-style: `SUB_BITS` mantissa bits per
//! power-of-two octave, so any recorded value lands in a bucket whose
//! lower bound is within a `2^-SUB_BITS` = 12.5% relative error of it).
//!
//! Everything here is built for *reduction over the tool plane*:
//!
//! - `merge` is associative, commutative, and has the all-zero set as its
//!   identity (element-wise saturating addition), so a radix tree can fold
//!   deltas in any shape without changing the result;
//! - `encode`/`decode` is a canonical little-endian byte form (sparse,
//!   index-ascending buckets), so equal sketches always serialize to equal
//!   bytes — the property the journal's byte-determinism leans on;
//! - memory is fixed: no allocation ever happens on the record path, and a
//!   histogram is a flat bucket array regardless of how many values it saw.
//!
//! Values are u64. Durations are quantized to integer nanoseconds before
//! recording ([`ns_from_seconds`]) so no float ever enters a sketch.

/// Typed counters, one slot each in a [`MetricSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Signatures computed over closing marker intervals.
    Signatures = 0,
    /// Dynamic events covered by those signature intervals.
    SigEvents = 1,
    /// Pairwise trace merges folded in radix-tree reductions.
    Merges = 2,
    /// LCS dynamic-programming cells touched by those merges.
    DpCells = 3,
    /// Merges fully served by the identical-stream fast path.
    FastPath = 4,
    /// Reliable-protocol frame retransmissions.
    Retries = 5,
    /// Reliable-protocol NACKs sent for corrupt frames.
    Nacks = 6,
    /// Reliable-protocol transfers that exhausted their retry budget.
    GiveUps = 7,
    /// Cluster selections agreed at markers.
    ClusterRounds = 8,
    /// Lead re-elections after a lead died.
    Reelections = 9,
}

impl Counter {
    /// Number of counter slots.
    pub const COUNT: usize = 10;

    /// All counters, in slot order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::Signatures,
        Counter::SigEvents,
        Counter::Merges,
        Counter::DpCells,
        Counter::FastPath,
        Counter::Retries,
        Counter::Nacks,
        Counter::GiveUps,
        Counter::ClusterRounds,
        Counter::Reelections,
    ];

    /// Stable label, used in CLI tables and the bench digest.
    pub fn label(self) -> &'static str {
        match self {
            Counter::Signatures => "signatures",
            Counter::SigEvents => "sig_events",
            Counter::Merges => "merges",
            Counter::DpCells => "dp_cells",
            Counter::FastPath => "fast_path",
            Counter::Retries => "retries",
            Counter::Nacks => "nacks",
            Counter::GiveUps => "giveups",
            Counter::ClusterRounds => "cluster_rounds",
            Counter::Reelections => "reelections",
        }
    }
}

/// The fixed histogram family, one slot each in a [`MetricSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum HistId {
    /// Receive queue waits (arrival minus clock at receive), nanoseconds.
    RecvWaitNs = 0,
    /// LCS cells per pairwise merge.
    DpCellsPerMerge = 1,
    /// Tool-time cost of an All-Tracing marker interval, nanoseconds.
    StateAtNs = 2,
    /// Tool-time cost of a Clustering marker interval, nanoseconds.
    StateCNs = 3,
    /// Tool-time cost of a Lead marker interval, nanoseconds.
    StateLNs = 4,
    /// Tool-time cost of a Final interval (finalize), nanoseconds.
    StateFNs = 5,
}

impl HistId {
    /// Number of histogram slots.
    pub const COUNT: usize = 6;

    /// All histograms, in slot order.
    pub const ALL: [HistId; HistId::COUNT] = [
        HistId::RecvWaitNs,
        HistId::DpCellsPerMerge,
        HistId::StateAtNs,
        HistId::StateCNs,
        HistId::StateLNs,
        HistId::StateFNs,
    ];

    /// Stable label, used in CLI tables and the bench digest.
    pub fn label(self) -> &'static str {
        match self {
            HistId::RecvWaitNs => "recv_wait_ns",
            HistId::DpCellsPerMerge => "dp_cells_per_merge",
            HistId::StateAtNs => "state_at_ns",
            HistId::StateCNs => "state_c_ns",
            HistId::StateLNs => "state_l_ns",
            HistId::StateFNs => "state_f_ns",
        }
    }
}

/// Mantissa bits per octave. 2^3 = 8 sub-buckets per power of two, so a
/// bucket's width is at most `lower_bound >> SUB_BITS` — every recorded
/// value is within 12.5% (relative) above its bucket's lower bound.
pub const SUB_BITS: u32 = 3;

const SUB: usize = 1 << SUB_BITS;

/// Total buckets needed to cover all of `u64`: values below `2*SUB` get
/// exact unit buckets; each of the remaining 63 - SUB_BITS octaves
/// contributes SUB buckets.
pub const NUM_BUCKETS: usize = 2 * SUB + (63 - SUB_BITS as usize) * SUB;

/// The bucket a value lands in.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v < (2 * SUB) as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // >= SUB_BITS + 1
    let mantissa = ((v >> (exp - SUB_BITS)) & (SUB as u64 - 1)) as usize;
    ((exp - SUB_BITS) as usize) * SUB + SUB + mantissa
}

/// Lower bound of a bucket — the value [`Histogram::quantile`] reports.
#[inline]
pub fn bucket_lo(b: usize) -> u64 {
    if b < 2 * SUB {
        return b as u64;
    }
    let oct = (b - SUB) / SUB; // exp - SUB_BITS
    let mantissa = ((b - SUB) % SUB) as u64;
    let exp = oct as u32 + SUB_BITS;
    (1u64 << exp) + (mantissa << (exp - SUB_BITS))
}

/// Quantize a non-negative duration in seconds to integer nanoseconds.
/// Negative and non-finite inputs clamp to 0; the quantization (not the
/// float) is what enters the sketch, keeping reductions integer-exact.
#[inline]
pub fn ns_from_seconds(s: f64) -> u64 {
    if !s.is_finite() || s <= 0.0 {
        return 0;
    }
    (s * 1e9).round() as u64
}

/// A fixed-memory log-bucketed histogram of u64 values.
///
/// The bucket array lives on the heap: rank threads run on deliberately
/// small stacks (256 KiB default), and a by-value ~4 KiB-per-histogram
/// struct moved through a debug-build reduction would overflow them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket occurrence counts (saturating).
    counts: Box<[u64; NUM_BUCKETS]>,
    /// Total values recorded (saturating).
    count: u64,
    /// Sum of recorded values (saturating).
    sum: u64,
    /// Largest recorded value (exact, not bucketed).
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// The empty histogram — the identity of [`Histogram::merge`].
    pub fn new() -> Self {
        Histogram {
            counts: vec![0u64; NUM_BUCKETS]
                .into_boxed_slice()
                .try_into()
                .expect("exact length"),
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Record one value. Fixed cost, no allocation.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let b = bucket_of(v);
        self.counts[b] = self.counts[b].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Element-wise saturating merge: associative, commutative, and
    /// `merge(new())` is a no-op.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Total values recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The q-quantile as the lower bound of the bucket holding it: always
    /// `<=` the true quantile, and within `2^-SUB_BITS` relative error
    /// below it. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return bucket_lo(b);
            }
        }
        self.max
    }

    /// Canonical byte form: count, sum, max, then the non-zero buckets as
    /// ascending `(index, count)` pairs — all little-endian u64.
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&self.sum.to_le_bytes());
        out.extend_from_slice(&self.max.to_le_bytes());
        let nonzero = self.counts.iter().filter(|&&c| c != 0).count() as u64;
        out.extend_from_slice(&nonzero.to_le_bytes());
        for (b, &c) in self.counts.iter().enumerate() {
            if c != 0 {
                out.extend_from_slice(&(b as u64).to_le_bytes());
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
    }

    fn decode_from(cur: &mut Cursor<'_>) -> Result<Histogram, String> {
        let mut h = Histogram::new();
        h.count = cur.u64()?;
        h.sum = cur.u64()?;
        h.max = cur.u64()?;
        let nonzero = cur.u64()?;
        let mut prev: Option<u64> = None;
        for _ in 0..nonzero {
            let b = cur.u64()?;
            let c = cur.u64()?;
            if b >= NUM_BUCKETS as u64 {
                return Err(format!("bucket index {b} out of range"));
            }
            if prev.is_some_and(|p| p >= b) {
                return Err("bucket indices not ascending".into());
            }
            if c == 0 {
                return Err("zero bucket in sparse form".into());
            }
            prev = Some(b);
            h.counts[b as usize] = c;
        }
        Ok(h)
    }
}

/// One rank's full metric state: all counters plus all histograms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSet {
    /// Counter slots, indexed by [`Counter`].
    pub counters: [u64; Counter::COUNT],
    /// Histogram slots, indexed by [`HistId`].
    pub hists: [Histogram; HistId::COUNT],
}

impl Default for MetricSet {
    fn default() -> Self {
        MetricSet::new()
    }
}

impl MetricSet {
    /// The empty set — the identity of [`MetricSet::merge`].
    pub fn new() -> Self {
        MetricSet {
            counters: [0; Counter::COUNT],
            hists: std::array::from_fn(|_| Histogram::new()),
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|&c| c == 0) && self.hists.iter().all(|h| h.count == 0)
    }

    /// Bump a counter by `n` (saturating).
    #[inline]
    pub fn add(&mut self, c: Counter, n: u64) {
        let slot = &mut self.counters[c as usize];
        *slot = slot.saturating_add(n);
    }

    /// One counter's value.
    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Record a value into a histogram.
    #[inline]
    pub fn observe(&mut self, h: HistId, v: u64) {
        self.hists[h as usize].record(v);
    }

    /// One histogram.
    pub fn hist(&self, h: HistId) -> &Histogram {
        &self.hists[h as usize]
    }

    /// Element-wise merge: associative, commutative, identity-respecting.
    pub fn merge(&mut self, other: &MetricSet) {
        for (a, b) in self.counters.iter_mut().zip(other.counters.iter()) {
            *a = a.saturating_add(*b);
        }
        for (a, b) in self.hists.iter_mut().zip(other.hists.iter()) {
            a.merge(b);
        }
    }

    /// Canonical little-endian byte form. Equal sets encode to equal
    /// bytes regardless of how they were merged together.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for &c in &self.counters {
            out.extend_from_slice(&c.to_le_bytes());
        }
        for h in &self.hists {
            h.encode_into(&mut out);
        }
        out
    }

    /// Inverse of [`MetricSet::encode`]; validates structure.
    pub fn decode(bytes: &[u8]) -> Result<MetricSet, String> {
        let mut cur = Cursor { bytes, pos: 0 };
        let set = MetricSet::decode_cursor(&mut cur)?;
        if cur.pos != bytes.len() {
            return Err("trailing bytes".into());
        }
        Ok(set)
    }

    fn decode_cursor(cur: &mut Cursor<'_>) -> Result<MetricSet, String> {
        let mut set = MetricSet::new();
        for c in set.counters.iter_mut() {
            *c = cur.u64()?;
        }
        for h in set.hists.iter_mut() {
            *h = Histogram::decode_from(cur)?;
        }
        Ok(set)
    }

    /// Wire form for the tool-plane reduction: a contribution count
    /// followed by the canonical set encoding.
    pub fn encode_with_count(&self, ranks: u64) -> Vec<u8> {
        let mut out = ranks.to_le_bytes().to_vec();
        out.extend_from_slice(&self.encode());
        out
    }

    /// Inverse of [`MetricSet::encode_with_count`].
    pub fn decode_with_count(bytes: &[u8]) -> Result<(MetricSet, u64), String> {
        let mut cur = Cursor { bytes, pos: 0 };
        let ranks = cur.u64()?;
        let set = MetricSet::decode_cursor(&mut cur)?;
        if cur.pos != bytes.len() {
            return Err("trailing bytes".into());
        }
        Ok((set, ranks))
    }

    /// Counter values in slot order — the `snapshot` event's `ctrs` array.
    pub fn counter_values(&self) -> Vec<u64> {
        self.counters.to_vec()
    }

    /// Bounded histogram digest — the `snapshot` event's `hists` array:
    /// `(count, p50, p99, max)` per histogram, in slot order.
    pub fn hist_digest(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(HistId::COUNT * 4);
        for h in &self.hists {
            out.push(h.count());
            out.push(h.quantile(0.5));
            out.push(h.quantile(0.99));
            out.push(h.max());
        }
        out
    }
}

/// Number of u64 slots per histogram in [`MetricSet::hist_digest`].
pub const HIST_DIGEST_STRIDE: usize = 4;

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn u64(&mut self) -> Result<u64, String> {
        let end = self.pos.checked_add(8).ok_or("overflow")?;
        let chunk = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| "truncated metric bytes".to_string())?;
        self.pos = end;
        Ok(u64::from_le_bytes(chunk.try_into().expect("8-byte slice")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_hold_across_the_range() {
        // lo(bucket(v)) <= v, and the gap is at most lo >> SUB_BITS.
        for v in (0u64..4096).chain([u64::MAX, u64::MAX - 1, 1 << 40, (1 << 40) + 12345]) {
            let b = bucket_of(v);
            let lo = bucket_lo(b);
            assert!(lo <= v, "v={v} b={b} lo={lo}");
            assert!(v - lo <= lo >> SUB_BITS, "v={v} b={b} lo={lo}");
            // Buckets are monotone: the next bucket's lower bound is above v.
            if b + 1 < NUM_BUCKETS {
                assert!(bucket_lo(b + 1) > v, "v={v} b={b}");
            }
        }
        assert_eq!(bucket_of(u64::MAX) + 1, NUM_BUCKETS);
    }

    #[test]
    fn quantiles_of_a_point_mass() {
        let mut h = Histogram::new();
        for _ in 0..10 {
            h.record(1000);
        }
        let lo = bucket_lo(bucket_of(1000));
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), lo);
        }
        assert_eq!(h.max(), 1000);
        assert_eq!(h.sum(), 10_000);
    }

    #[test]
    fn merge_identity_and_empty_roundtrip() {
        let mut h = Histogram::new();
        h.record(7);
        h.record(7_000_000);
        let before = h.clone();
        h.merge(&Histogram::new());
        assert_eq!(h, before, "empty histogram is a merge identity");

        let empty = MetricSet::new();
        assert!(empty.is_empty());
        assert_eq!(MetricSet::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn set_roundtrips_and_rejects_corruption() {
        let mut m = MetricSet::new();
        m.add(Counter::DpCells, 12345);
        m.add(Counter::Retries, 2);
        m.observe(HistId::RecvWaitNs, 0);
        m.observe(HistId::RecvWaitNs, 31);
        m.observe(HistId::DpCellsPerMerge, 1 << 20);
        let bytes = m.encode();
        assert_eq!(MetricSet::decode(&bytes).unwrap(), m);
        let (set, n) = MetricSet::decode_with_count(&m.encode_with_count(5)).unwrap();
        assert_eq!((set, n), (m.clone(), 5));

        assert!(MetricSet::decode(&bytes[..bytes.len() - 1]).is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(MetricSet::decode(&extra).is_err());
    }

    #[test]
    fn ns_quantization_clamps() {
        assert_eq!(ns_from_seconds(-1.0), 0);
        assert_eq!(ns_from_seconds(f64::NAN), 0);
        assert_eq!(ns_from_seconds(1.5e-9), 2);
        assert_eq!(ns_from_seconds(2.0), 2_000_000_000);
    }

    #[test]
    fn digest_shape_is_bounded() {
        let m = MetricSet::new();
        assert_eq!(m.counter_values().len(), Counter::COUNT);
        assert_eq!(m.hist_digest().len(), HistId::COUNT * HIST_DIGEST_STRIDE);
    }

    #[test]
    fn counter_and_hist_labels_are_distinct() {
        let mut labels: Vec<&str> = Counter::ALL.iter().map(|c| c.label()).collect();
        labels.extend(HistId::ALL.iter().map(|h| h.label()));
        let n = labels.len();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), n);
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i, "slot order matches ALL order");
        }
        for (i, h) in HistId::ALL.iter().enumerate() {
            assert_eq!(*h as usize, i, "slot order matches ALL order");
        }
    }
}
