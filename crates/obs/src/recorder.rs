//! The per-rank recorder: an append-only event buffer behind an `Option`.

use std::collections::BTreeMap;

use crate::event::{Event, EventKind};

/// One rank's complete flight log.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RankLog {
    /// The rank that wrote this log.
    pub rank: usize,
    /// Events in emission order; `events[i].seq == i`.
    pub events: Vec<Event>,
}

impl RankLog {
    /// Empty log for `rank`.
    pub fn new(rank: usize) -> Self {
        RankLog {
            rank,
            events: Vec::new(),
        }
    }

    /// Monotonic per-label counters, derived from the events. Derived
    /// rather than stored so a log can never disagree with itself.
    pub fn counters(&self) -> BTreeMap<&'static str, u64> {
        let mut out = BTreeMap::new();
        for e in &self.events {
            *out.entry(e.kind.label()).or_insert(0) += 1;
        }
        out
    }
}

/// A zero-cost-when-disabled handle every rank writes through.
///
/// Disabled is the default and costs one pointer-sized `None` check per
/// [`Recorder::emit`]; the event payload is built inside a closure that is
/// never invoked, so the hot paths allocate nothing. This mirrors the
/// fault-plan gating idiom in `mpisim::proc`.
#[derive(Debug, Default)]
pub struct Recorder {
    log: Option<Box<RankLog>>,
}

impl Recorder {
    /// A recorder that drops everything (the default for ordinary runs).
    pub fn disabled() -> Self {
        Recorder { log: None }
    }

    /// An armed recorder buffering into a fresh [`RankLog`] for `rank`.
    pub fn enabled(rank: usize) -> Self {
        Recorder {
            log: Some(Box::new(RankLog::new(rank))),
        }
    }

    /// Whether events are being kept.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.log.is_some()
    }

    /// Record one event stamped with the caller's two virtual clocks.
    /// `make` runs only when the recorder is enabled.
    #[inline]
    pub fn emit(&mut self, vt: f64, tt: f64, make: impl FnOnce() -> EventKind) {
        let Some(log) = &mut self.log else { return };
        let seq = log.events.len() as u64;
        log.events.push(Event {
            seq,
            vt,
            tt,
            kind: make(),
        });
    }

    /// Number of events buffered so far (0 when disabled). Checkpoints
    /// record this as the journal high-water mark, so a resumed run can
    /// state how much flight history the pre-kill run had logged.
    #[inline]
    pub fn len(&self) -> usize {
        self.log.as_ref().map_or(0, |l| l.events.len())
    }

    /// Whether no events are buffered (always true when disabled).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Surrender the buffered log (leaving the recorder disabled), or
    /// `None` if recording was never armed.
    pub fn take_log(&mut self) -> Option<RankLog> {
        self.log.take().map(|b| *b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_never_runs_the_closure() {
        let mut r = Recorder::disabled();
        assert!(!r.is_enabled());
        r.emit(0.0, 0.0, || panic!("payload built while disabled"));
        assert!(r.take_log().is_none());
    }

    #[test]
    fn enabled_buffers_in_order_with_seq() {
        let mut r = Recorder::enabled(3);
        assert!(r.is_enabled());
        r.emit(1.0, 0.5, || EventKind::Marker { n: 1 });
        r.emit(2.0, 0.75, || EventKind::Crash { op: 40 });
        let log = r.take_log().expect("armed");
        assert_eq!(log.rank, 3);
        assert_eq!(log.events.len(), 2);
        assert_eq!(log.events[0].seq, 0);
        assert_eq!(log.events[1].seq, 1);
        assert_eq!(log.events[1].kind, EventKind::Crash { op: 40 });
        assert!(!r.is_enabled(), "take_log disarms");
    }

    #[test]
    fn counters_derive_from_events() {
        let mut r = Recorder::enabled(0);
        for n in 1..=3 {
            r.emit(0.0, 0.0, || EventKind::Marker { n });
        }
        r.emit(0.0, 0.0, || EventKind::Degraded { marker: 3 });
        let log = r.take_log().unwrap();
        let c = log.counters();
        assert_eq!(c.get("marker"), Some(&3));
        assert_eq!(c.get("degraded"), Some(&1));
        assert_eq!(c.get("crash"), None);
    }
}
