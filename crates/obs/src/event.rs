//! The event taxonomy: everything the stack considers worth witnessing.
//!
//! Events are deliberately *flat* — small copyable integers plus interned
//! `&'static str` labels — so recording is a `Vec` push and serialization
//! needs no escaping. Ranks, peers, and tags are widened to `u64` so the
//! journal has a single integer shape.

/// Interned marker-state labels (`State::state`), in counting order:
/// All-Tracing, Clustering, Lead, Final.
pub const STATES: [&str; 4] = ["AT", "C", "L", "F"];

/// Interned decision labels (`State::decision`): why the state machine
/// landed where it did at this marker.
pub const DECISIONS: [&str; 6] = [
    "first",
    "all_tracing",
    "stable_lead",
    "cluster",
    "flush_lead",
    "finalize",
];

/// Re-intern a parsed label against a closed table, so parsed events carry
/// the same `&'static str`s the live recorder produced.
pub(crate) fn intern(s: &str, table: &'static [&'static str]) -> Option<&'static str> {
    table.iter().find(|t| **t == s).copied()
}

/// Which fault an armed plan fired on an outbound tool payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The payload was silently dropped.
    Drop,
    /// One payload byte was flipped.
    Corrupt,
    /// Delivery was delayed.
    Delay,
    /// The payload was delivered twice.
    Duplicate,
}

impl FaultKind {
    /// Stable wire label.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Delay => "delay",
            FaultKind::Duplicate => "duplicate",
        }
    }

    /// Inverse of [`FaultKind::label`].
    pub fn from_label(s: &str) -> Option<Self> {
        Some(match s {
            "drop" => FaultKind::Drop,
            "corrupt" => FaultKind::Corrupt,
            "delay" => FaultKind::Delay,
            "duplicate" => FaultKind::Duplicate,
            _ => return None,
        })
    }
}

/// Which degradation signature the health detector flagged a rank for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AnomalyKind {
    /// The rank's locally-consumed compute diverged above its cluster's
    /// robust center (straggler or load-imbalance signature).
    Slow,
    /// The rank's reliable-protocol retransmissions diverged above its
    /// cluster's robust center (degrading-link signature).
    Flaky,
}

impl AnomalyKind {
    /// Stable wire label.
    pub fn label(self) -> &'static str {
        match self {
            AnomalyKind::Slow => "slow",
            AnomalyKind::Flaky => "flaky",
        }
    }

    /// Inverse of [`AnomalyKind::label`].
    pub fn from_label(s: &str) -> Option<Self> {
        Some(match s {
            "slow" => AnomalyKind::Slow,
            "flaky" => AnomalyKind::Flaky,
            _ => return None,
        })
    }
}

/// One typed observation. The variant names the journal's `ev` field; the
/// per-variant fields serialize in declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// Marker invocation `n` (1-based) began on this rank.
    Marker {
        /// Invocation number.
        n: u64,
    },
    /// A signature was computed over the closing marker interval.
    Signature {
        /// Dynamic events the interval covered.
        events: u64,
        /// The interval's Call-Path signature.
        call_path: u64,
    },
    /// A cluster selection was agreed at a marker.
    ClusterSel {
        /// Marker invocation that triggered the clustering.
        marker: u64,
        /// Effective K after dynamic growth.
        effective_k: u64,
        /// This rank's own lead under the agreed selection.
        lead: u64,
        /// All agreed lead ranks, ascending.
        leads: Vec<u64>,
    },
    /// The marker state counted for this interval, with the state-machine
    /// decision that produced it.
    State {
        /// Marker invocation (or the final invocation count at finalize).
        marker: u64,
        /// One of [`STATES`].
        state: &'static str,
        /// One of [`DECISIONS`].
        decision: &'static str,
    },
    /// A slice closed degraded (fault fallout was absorbed into it).
    Degraded {
        /// Marker invocation whose slice degraded.
        marker: u64,
    },
    /// A cluster lead was re-elected after its lead died.
    Reelect {
        /// Call-Path signature of the affected cluster.
        call_path: u64,
        /// The dead lead.
        old: u64,
        /// The minimum surviving member, now lead.
        new: u64,
    },
    /// One completed level of the radix-tree merge on this rank, spanning
    /// tool time `t0..t1`.
    MergeLevel {
        /// Tree level (0 = leaves).
        level: u64,
        /// Pairwise merges folded at this level.
        merges: u64,
        /// LCS dynamic-programming cells touched.
        dp_cells: u64,
        /// Merges served by the structural fast path.
        fast_path: u64,
        /// Tool-clock time when the level began.
        t0: f64,
        /// Tool-clock time when the level ended.
        t1: f64,
    },
    /// Reliable-protocol sender retransmitted a frame.
    Retry {
        /// The receiving peer.
        peer: u64,
        /// Protocol tag of the transfer.
        tag: u64,
    },
    /// Reliable-protocol receiver NACKed a corrupt frame.
    Nack {
        /// The sending peer.
        peer: u64,
        /// Protocol tag of the transfer.
        tag: u64,
    },
    /// Reliable-protocol receiver exhausted its retry budget and degraded.
    GiveUp {
        /// The sending peer.
        peer: u64,
        /// Protocol tag of the transfer.
        tag: u64,
    },
    /// The armed fault plan fired on an outbound payload of this rank.
    Fault {
        /// What the plan did to the payload.
        kind: FaultKind,
        /// Intended receiver.
        dest: u64,
        /// Message tag.
        tag: u64,
    },
    /// A reduced metrics-plane snapshot landed at the tree root (rank 0):
    /// the world's metric *delta* since the previous snapshot, merged over
    /// the tool plane. Bounded size by construction — the arrays are fixed
    /// slot-order digests, never per-value data.
    Snapshot {
        /// Marker invocation the snapshot closed (the final invocation
        /// count for the finalize snapshot).
        marker: u64,
        /// Ranks whose deltas were merged in (a dead subtree drops out
        /// deterministically for that marker).
        ranks: u64,
        /// Counter values in [`crate::metrics::Counter`] slot order.
        ctrs: Vec<u64>,
        /// Histogram digests in [`crate::metrics::HistId`] slot order:
        /// `(count, p50, p99, max)` per histogram.
        hists: Vec<u64>,
    },
    /// This rank's planned crash fired.
    Crash {
        /// Operation count at which the crash struck.
        op: u64,
    },
    /// A blocking receive observed that its peer died.
    PeerDead {
        /// The dead peer.
        peer: u64,
    },
    /// The hang backstop fired: a blocking receive exceeded the plan's
    /// real-time budget and aborted with a typed timeout.
    Timeout {
        /// The peer that never answered.
        peer: u64,
        /// The tag the receive was stuck on.
        tag: u64,
        /// How long the receive waited, in milliseconds.
        waited: u64,
    },
    /// The online-trace root encoded and replicated a durable checkpoint.
    Checkpoint {
        /// Marker invocation the checkpoint closed.
        marker: u64,
        /// Encoded checkpoint size in bytes.
        bytes: u64,
        /// The deputy the replica was shipped to (`u64::MAX` when the
        /// root had no living deputy to ship to).
        deputy: u64,
    },
    /// This rank was promoted to online-trace root after the old root
    /// died.
    Promote {
        /// Marker invocation at which the promotion was agreed.
        marker: u64,
        /// The dead root.
        old_root: u64,
        /// Whether the promoted deputy restored the trace from its
        /// checkpoint replica (0 = no replica, started empty).
        restored: u64,
    },
    /// The health detector flagged a rank at a marker: its per-marker
    /// delta diverged from its cluster's robust (median/MAD) center.
    /// Emitted on the detector host (rank 0) only.
    Anomaly {
        /// The flagged rank.
        rank: u64,
        /// Marker invocation the flagged delta closed.
        marker: u64,
        /// Which degradation signature fired.
        kind: AnomalyKind,
        /// Floored robust z-score of the deviation (dimensionless; the
        /// flag threshold is the detector config's `threshold`).
        score: f64,
        /// Cluster the rank was scored against (`u64::MAX` before any
        /// selection exists, when the whole world is one cohort).
        cluster: u64,
    },
    /// A run resumed from a durable checkpoint (supervisor restart): the
    /// replay fast-forwards to the checkpoint marker, then continues.
    Resume {
        /// Marker invocation the checkpoint was taken at.
        marker: u64,
        /// The journal high-water mark recorded in the checkpoint (events
        /// the pre-kill run had logged on the root).
        hwm: u64,
    },
}

impl EventKind {
    /// Stable wire label; doubles as the per-rank counter key.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::Marker { .. } => "marker",
            EventKind::Signature { .. } => "signature",
            EventKind::ClusterSel { .. } => "cluster",
            EventKind::State { .. } => "state",
            EventKind::Degraded { .. } => "degraded",
            EventKind::Reelect { .. } => "reelect",
            EventKind::MergeLevel { .. } => "merge_level",
            EventKind::Retry { .. } => "retry",
            EventKind::Nack { .. } => "nack",
            EventKind::GiveUp { .. } => "giveup",
            EventKind::Fault { .. } => "fault",
            EventKind::Snapshot { .. } => "snapshot",
            EventKind::Crash { .. } => "crash",
            EventKind::PeerDead { .. } => "peer_dead",
            EventKind::Timeout { .. } => "timeout",
            EventKind::Checkpoint { .. } => "checkpoint",
            EventKind::Promote { .. } => "promote",
            EventKind::Anomaly { .. } => "anomaly",
            EventKind::Resume { .. } => "resume",
        }
    }
}

/// One recorded event: a per-rank monotonic sequence number, both virtual
/// clocks at emission time, and the typed payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Per-rank monotonic sequence number, starting at 0.
    pub seq: u64,
    /// Application virtual time at emission.
    pub vt: f64,
    /// Tool virtual time at emission.
    pub tt: f64,
    /// The typed observation.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_labels_roundtrip() {
        for k in [
            FaultKind::Drop,
            FaultKind::Corrupt,
            FaultKind::Delay,
            FaultKind::Duplicate,
        ] {
            assert_eq!(FaultKind::from_label(k.label()), Some(k));
        }
        assert_eq!(FaultKind::from_label("melt"), None);
    }

    #[test]
    fn anomaly_labels_roundtrip() {
        for k in [AnomalyKind::Slow, AnomalyKind::Flaky] {
            assert_eq!(AnomalyKind::from_label(k.label()), Some(k));
        }
        assert_eq!(AnomalyKind::from_label("jittery"), None);
    }

    #[test]
    fn labels_are_distinct() {
        let kinds = [
            EventKind::Marker { n: 1 },
            EventKind::Signature {
                events: 0,
                call_path: 0,
            },
            EventKind::ClusterSel {
                marker: 1,
                effective_k: 1,
                lead: 0,
                leads: vec![0],
            },
            EventKind::State {
                marker: 1,
                state: STATES[0],
                decision: DECISIONS[0],
            },
            EventKind::Degraded { marker: 1 },
            EventKind::Reelect {
                call_path: 0,
                old: 1,
                new: 2,
            },
            EventKind::MergeLevel {
                level: 0,
                merges: 0,
                dp_cells: 0,
                fast_path: 0,
                t0: 0.0,
                t1: 0.0,
            },
            EventKind::Retry { peer: 0, tag: 0 },
            EventKind::Nack { peer: 0, tag: 0 },
            EventKind::GiveUp { peer: 0, tag: 0 },
            EventKind::Fault {
                kind: FaultKind::Drop,
                dest: 0,
                tag: 0,
            },
            EventKind::Snapshot {
                marker: 1,
                ranks: 4,
                ctrs: vec![0],
                hists: vec![0],
            },
            EventKind::Crash { op: 0 },
            EventKind::PeerDead { peer: 0 },
            EventKind::Timeout {
                peer: 0,
                tag: 0,
                waited: 1,
            },
            EventKind::Checkpoint {
                marker: 1,
                bytes: 64,
                deputy: 1,
            },
            EventKind::Promote {
                marker: 1,
                old_root: 0,
                restored: 1,
            },
            EventKind::Anomaly {
                rank: 3,
                marker: 5,
                kind: AnomalyKind::Slow,
                score: 7.5,
                cluster: 0,
            },
            EventKind::Resume { marker: 1, hwm: 9 },
        ];
        let mut labels: Vec<&str> = kinds.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), kinds.len());
    }
}
