//! Inter-node compression: structural merging of compressed traces.
//!
//! ScalaTrace consolidates per-rank traces into one global trace by
//! pairwise merging along a reduction tree: "internal nodes combine their
//! traces with other task-level traces that they receive from child nodes"
//! (paper §I). The pairwise step aligns two PRSD streams, merging nodes
//! that represent the same call sites (unioning their ranklists and time
//! statistics) and interleaving the rest in order. Alignment is a longest
//! common subsequence over top-level nodes — the O(n²) factor in the
//! paper's O(n² log P) inter-node compression cost, which is precisely the
//! bottleneck Chameleon attacks by shrinking P to K.
//!
//! In SPMD codes the per-rank traces are structurally near-identical, so
//! the merged trace stays near-constant size: matched nodes collapse into
//! one with a wider ranklist.
//!
//! # The canonical merge order
//!
//! Both implementations here produce the *same* output, defined by one
//! canonical alignment:
//!
//! 1. orient so the x side is the longer input (ties keep argument order);
//! 2. greedily fold the common prefix, then the common suffix — structural
//!    matching is an equivalence relation, so trimming never loses LCS
//!    optimality;
//! 3. align the remaining middles by LCS, walking the (suffix-)table with
//!    the leftmost tie-break: advance x whenever that preserves
//!    optimality, else fold a structural match (always optimal at a match
//!    corner), else advance y.
//!
//! [`merge_traces_reference`] realizes this with the full quadratic LCS
//! table and is kept as the differential-testing oracle. The fast path
//! ([`merge_traces`], [`merge_into`]) reproduces the identical alignment
//! with a Hirschberg-style divide-and-conquer that only ever materializes
//! O(min(n, m)) DP cells at a time: split x in half, score the halves with
//! two rolling rows, cut y at the *smallest* column maximizing the
//! combined score (which is exactly where the leftmost table walk crosses
//! the split row), and recurse. Prefilters — per-node structural hashes
//! and an identical-stream fast path where trimming consumes everything —
//! make the SPMD common case linear with small constants.

use crate::trace::{CompressedTrace, TraceNode};

/// Counters describing how one pairwise merge executed. Returned by
/// [`merge_traces_with_metrics`] and [`merge_into`]; the reduction layer
/// aggregates them into per-level statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeMetrics {
    /// The whole alignment was resolved by prefix/suffix folding alone —
    /// the identical-stream (SPMD) case. No DP ran.
    pub fast_path: bool,
    /// Node pairs folded by the common-prefix trim.
    pub prefix_matched: usize,
    /// Node pairs folded by the common-suffix trim.
    pub suffix_matched: usize,
    /// Longer-side middle length handed to the aligner after trimming.
    pub mid_long: usize,
    /// Shorter-side middle length handed to the aligner after trimming.
    pub mid_short: usize,
    /// LCS cells evaluated (≈ 2·`mid_long`·`mid_short` for the
    /// divide-and-conquer aligner; the reference table pays the full
    /// product once).
    pub dp_cells: u64,
    /// Largest single DP buffer allocated, in cells. The fast path rows
    /// over the shorter middle, so this stays ≤ min(n, m) + 1 — the
    /// linear-memory guarantee (asserted by unit test). The reference
    /// oracle reports its full table here.
    pub peak_dp_alloc: usize,
}

/// One step of an alignment plan, in output order. Indices refer to the
/// two original top-level node sequences.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// Fold y\[j\] into x\[i\] (structural match).
    Fold(usize, usize),
    /// Emit x\[i\] alone.
    TakeX(usize),
    /// Emit y\[j\] alone.
    TakeY(usize),
}

/// Merge two compressed traces into one that represents the union of
/// their ranks' behavior.
///
/// Matched nodes (same sites, same loop structure) fold together; nodes
/// unique to either input are kept in order. The relative order of events
/// within each input is preserved.
pub fn merge_traces(a: &CompressedTrace, b: &CompressedTrace) -> CompressedTrace {
    merge_traces_with_metrics(a, b).0
}

/// [`merge_traces`] plus execution counters.
pub fn merge_traces_with_metrics(
    a: &CompressedTrace,
    b: &CompressedTrace,
) -> (CompressedTrace, MergeMetrics) {
    let mut met = MergeMetrics::default();
    let steps = plan_merge(a.nodes(), b.nodes(), true, &mut met);
    let nodes = emit_cloned(&steps, a.nodes(), b.nodes());
    (CompressedTrace::from_nodes(nodes), met)
}

/// Buffer-reusing merge: consumes the accumulator and moves its nodes into
/// the output, absorbing matches in place instead of cloning. This is the
/// reduction's hot path — the accumulator (typically the larger side after
/// a few merges) is never deep-copied.
pub fn merge_into(acc: CompressedTrace, b: &CompressedTrace) -> (CompressedTrace, MergeMetrics) {
    let mut met = MergeMetrics::default();
    let steps = plan_merge(acc.nodes(), b.nodes(), true, &mut met);
    let nodes = emit_owned(&steps, acc.into_nodes(), b.nodes());
    (CompressedTrace::from_nodes(nodes), met)
}

/// Reference merge: the same canonical alignment computed with the full
/// quadratic LCS table and an explicit backtrack. Kept as the oracle the
/// fast path is differentially tested against (see
/// `tests/merge_invariants.rs`), and as the cost the complexity-model
/// baselines assume.
pub fn merge_traces_reference(a: &CompressedTrace, b: &CompressedTrace) -> CompressedTrace {
    let mut met = MergeMetrics::default();
    let steps = plan_merge(a.nodes(), b.nodes(), false, &mut met);
    CompressedTrace::from_nodes(emit_cloned(&steps, a.nodes(), b.nodes()))
}

/// The pre-optimization merge, kept verbatim for before/after
/// benchmarking (`benches/merge_scaling.rs`): full quadratic LCS table,
/// no prefiltering, match-first backtrack. It pays the n·m table even
/// when the traces are identical — the cost profile this PR's fast path
/// removes.
///
/// Its output is *equivalent* to the canonical merge (same matched-node
/// count, same per-input orderings, same rank/time mass) but not always
/// byte-identical: with repeated call sites the match-first backtrack can
/// attach a fold's payload to a different (structurally equal) node than
/// the canonical leftmost walk does. Differential correctness tests use
/// [`merge_traces_reference`] instead.
pub fn merge_traces_baseline(a: &CompressedTrace, b: &CompressedTrace) -> CompressedTrace {
    let (x, y) = (a.nodes(), b.nodes());
    let (n, m) = (x.len(), y.len());
    let mut dp = vec![vec![0u32; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            dp[i][j] = if x[i].matches(&y[j]) {
                dp[i + 1][j + 1] + 1
            } else {
                dp[i + 1][j].max(dp[i][j + 1])
            };
        }
    }
    let mut out = Vec::with_capacity(n.max(m));
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if x[i].matches(&y[j]) && dp[i][j] == dp[i + 1][j + 1] + 1 {
            let mut merged = x[i].clone();
            merged.absorb(&y[j]);
            out.push(merged);
            i += 1;
            j += 1;
        } else if dp[i + 1][j] >= dp[i][j + 1] {
            out.push(x[i].clone());
            i += 1;
        } else {
            out.push(y[j].clone());
            j += 1;
        }
    }
    out.extend(x[i..].iter().cloned());
    out.extend(y[j..].iter().cloned());
    CompressedTrace::from_nodes(out)
}

/// Merge many traces left-to-right (the order the reduction tree produces).
pub fn merge_all<'a>(traces: impl IntoIterator<Item = &'a CompressedTrace>) -> CompressedTrace {
    let mut iter = traces.into_iter();
    let mut acc = match iter.next() {
        Some(t) => t.clone(),
        None => return CompressedTrace::new(),
    };
    for t in iter {
        acc = merge_into(acc, t).0;
    }
    acc
}

fn node_hashes(nodes: &[TraceNode]) -> Vec<u64> {
    nodes.iter().map(TraceNode::structural_hash).collect()
}

/// Build the alignment plan for x against y under the canonical merge
/// order. `fast` selects the Hirschberg aligner for the middle; `false`
/// selects the quadratic-memory reference table. Both produce the same
/// plan. Step indices are always in (x, y) space regardless of the
/// internal orientation.
fn plan_merge(x: &[TraceNode], y: &[TraceNode], fast: bool, met: &mut MergeMetrics) -> Vec<Step> {
    if y.len() > x.len() {
        let mut steps = plan_oriented(y, x, fast, met);
        for s in &mut steps {
            *s = match *s {
                Step::Fold(i, j) => Step::Fold(j, i),
                Step::TakeX(i) => Step::TakeY(i),
                Step::TakeY(j) => Step::TakeX(j),
            };
        }
        steps
    } else {
        plan_oriented(x, y, fast, met)
    }
}

/// Plan with the orientation fixed: `y` is the shorter (or equal) side, so
/// every DP row buffer below is sized by a slice of `y`.
fn plan_oriented(
    x: &[TraceNode],
    y: &[TraceNode],
    fast: bool,
    met: &mut MergeMetrics,
) -> Vec<Step> {
    debug_assert!(y.len() <= x.len());
    let hx = node_hashes(x);
    let hy = node_hashes(y);
    let eq = |i: usize, j: usize| hx[i] == hy[j] && x[i].matches(&y[j]);

    let mut steps = Vec::with_capacity(x.len() + y.len());
    // Common-prefix trim.
    let mut lo = 0;
    while lo < y.len() && eq(lo, lo) {
        steps.push(Step::Fold(lo, lo));
        lo += 1;
    }
    // Common-suffix trim (never crossing the prefix).
    let (mut xhi, mut yhi) = (x.len(), y.len());
    while xhi > lo && yhi > lo && eq(xhi - 1, yhi - 1) {
        xhi -= 1;
        yhi -= 1;
    }
    met.prefix_matched = lo;
    met.suffix_matched = y.len() - yhi;
    met.mid_long = xhi - lo;
    met.mid_short = yhi - lo;

    if lo == xhi && lo == yhi {
        // Trimming consumed everything: structurally identical streams.
        met.fast_path = true;
    } else if fast {
        hirschberg(x, y, &hx, &hy, (lo, xhi), (lo, yhi), &mut steps, met);
    } else {
        reference_table(x, y, &hx, &hy, (lo, xhi), (lo, yhi), &mut steps, met);
    }

    for t in 0..(x.len() - xhi) {
        steps.push(Step::Fold(xhi + t, yhi + t));
    }
    steps
}

/// Canonical alignment of the middles via the full suffix-LCS table.
/// dp\[i\]\[j\] = LCS(x\[i..x1\], y\[j..y1\]); the forward walk prefers
/// x-advance whenever dp\[i+1\]\[j\] == dp\[i\]\[j\] (it preserves
/// optimality), else folds a match (always optimal at a match corner by
/// the LCS corner lemma), else advances y.
#[allow(clippy::too_many_arguments)]
fn reference_table(
    x: &[TraceNode],
    y: &[TraceNode],
    hx: &[u64],
    hy: &[u64],
    (x0, x1): (usize, usize),
    (y0, y1): (usize, usize),
    steps: &mut Vec<Step>,
    met: &mut MergeMetrics,
) {
    let n = x1 - x0;
    let m = y1 - y0;
    let eq = |i: usize, j: usize| hx[x0 + i] == hy[y0 + j] && x[x0 + i].matches(&y[y0 + j]);
    let w = m + 1;
    let mut dp = vec![0u32; (n + 1) * w];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            dp[i * w + j] = if eq(i, j) {
                dp[(i + 1) * w + j + 1] + 1
            } else {
                dp[(i + 1) * w + j].max(dp[i * w + j + 1])
            };
        }
    }
    met.dp_cells += (n as u64) * (m as u64);
    met.peak_dp_alloc = met.peak_dp_alloc.max((n + 1) * w);

    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if dp[(i + 1) * w + j] == dp[i * w + j] {
            steps.push(Step::TakeX(x0 + i));
            i += 1;
        } else if eq(i, j) {
            steps.push(Step::Fold(x0 + i, y0 + j));
            i += 1;
            j += 1;
        } else {
            steps.push(Step::TakeY(y0 + j));
            j += 1;
        }
    }
    for i in i..n {
        steps.push(Step::TakeX(x0 + i));
    }
    for j in j..m {
        steps.push(Step::TakeY(y0 + j));
    }
}

/// Canonical alignment of the middles in O(min(n, m)) memory: Hirschberg's
/// divide-and-conquer with the split column chosen as the *smallest*
/// maximizer, which reproduces the reference walk's leftmost path exactly.
#[allow(clippy::too_many_arguments)]
fn hirschberg(
    x: &[TraceNode],
    y: &[TraceNode],
    hx: &[u64],
    hy: &[u64],
    (x0, x1): (usize, usize),
    (y0, y1): (usize, usize),
    steps: &mut Vec<Step>,
    met: &mut MergeMetrics,
) {
    let n = x1 - x0;
    let m = y1 - y0;
    if n == 0 {
        for j in y0..y1 {
            steps.push(Step::TakeY(j));
        }
        return;
    }
    if m == 0 {
        for i in x0..x1 {
            steps.push(Step::TakeX(i));
        }
        return;
    }
    if n == 1 {
        // Single x node: the canonical walk folds it into the *first*
        // structural match in y, or emits it before all of y if none.
        let hit = (y0..y1).find(|&j| hx[x0] == hy[j] && x[x0].matches(&y[j]));
        match hit {
            Some(p) => {
                for j in y0..p {
                    steps.push(Step::TakeY(j));
                }
                steps.push(Step::Fold(x0, p));
                for j in p + 1..y1 {
                    steps.push(Step::TakeY(j));
                }
            }
            None => {
                steps.push(Step::TakeX(x0));
                for j in y0..y1 {
                    steps.push(Step::TakeY(j));
                }
            }
        }
        return;
    }

    let mid = x0 + n / 2;
    // f[t] = LCS(x[x0..mid], y[y0..y0+t]); b[t] = LCS(x[mid..x1], y[y0+t..y1]).
    let f = lcs_row_forward(x, y, hx, hy, (x0, mid), (y0, y1), met);
    let b = lcs_row_backward(x, y, hx, hy, (mid, x1), (y0, y1), met);
    // Smallest cut maximizing the combined score: where the leftmost
    // optimal path enters the split row.
    let mut best_t = 0;
    let mut best = 0u32;
    for (t, s) in f.iter().zip(b.iter()).map(|(a, b)| a + b).enumerate() {
        if s > best {
            best = s;
            best_t = t;
        }
    }
    let ymid = y0 + best_t;
    hirschberg(x, y, hx, hy, (x0, mid), (y0, ymid), steps, met);
    hirschberg(x, y, hx, hy, (mid, x1), (ymid, y1), steps, met);
}

/// Rolling forward LCS row: returns f with f\[t\] = LCS(x\[x0..x1\],
/// y\[y0..y0+t\]).
#[allow(clippy::too_many_arguments)]
fn lcs_row_forward(
    x: &[TraceNode],
    y: &[TraceNode],
    hx: &[u64],
    hy: &[u64],
    (x0, x1): (usize, usize),
    (y0, y1): (usize, usize),
    met: &mut MergeMetrics,
) -> Vec<u32> {
    let m = y1 - y0;
    let mut prev = vec![0u32; m + 1];
    let mut cur = vec![0u32; m + 1];
    for i in x0..x1 {
        cur[0] = 0;
        for t in 1..=m {
            let j = y0 + t - 1;
            cur[t] = if hx[i] == hy[j] && x[i].matches(&y[j]) {
                prev[t - 1] + 1
            } else {
                prev[t].max(cur[t - 1])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    met.dp_cells += ((x1 - x0) as u64) * (m as u64);
    met.peak_dp_alloc = met.peak_dp_alloc.max(m + 1);
    prev
}

/// Rolling backward LCS row: returns b with b\[t\] = LCS(x\[x0..x1\],
/// y\[y0+t..y1\]).
#[allow(clippy::too_many_arguments)]
fn lcs_row_backward(
    x: &[TraceNode],
    y: &[TraceNode],
    hx: &[u64],
    hy: &[u64],
    (x0, x1): (usize, usize),
    (y0, y1): (usize, usize),
    met: &mut MergeMetrics,
) -> Vec<u32> {
    let m = y1 - y0;
    let mut prev = vec![0u32; m + 1];
    let mut cur = vec![0u32; m + 1];
    for i in (x0..x1).rev() {
        cur[m] = 0;
        for t in (0..m).rev() {
            let j = y0 + t;
            cur[t] = if hx[i] == hy[j] && x[i].matches(&y[j]) {
                prev[t + 1] + 1
            } else {
                prev[t].max(cur[t + 1])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    met.dp_cells += ((x1 - x0) as u64) * (m as u64);
    met.peak_dp_alloc = met.peak_dp_alloc.max(m + 1);
    prev
}

/// Execute a plan, cloning from both (borrowed) inputs.
fn emit_cloned(steps: &[Step], x: &[TraceNode], y: &[TraceNode]) -> Vec<TraceNode> {
    let mut out = Vec::with_capacity(steps.len());
    for &s in steps {
        match s {
            Step::Fold(i, j) => {
                let mut node = x[i].clone();
                node.absorb(&y[j]);
                out.push(node);
            }
            Step::TakeX(i) => out.push(x[i].clone()),
            Step::TakeY(j) => out.push(y[j].clone()),
        }
    }
    out
}

/// Execute a plan taking x-side nodes by value (no clone of the
/// accumulator side); only y-side nodes are cloned.
fn emit_owned(steps: &[Step], x: Vec<TraceNode>, y: &[TraceNode]) -> Vec<TraceNode> {
    let mut slots: Vec<Option<TraceNode>> = x.into_iter().map(Some).collect();
    let mut out = Vec::with_capacity(steps.len());
    for &s in steps {
        match s {
            Step::Fold(i, j) => {
                let mut node = slots[i].take().expect("plan visits each x node once");
                node.absorb(&y[j]);
                out.push(node);
            }
            Step::TakeX(i) => {
                out.push(slots[i].take().expect("plan visits each x node once"));
            }
            Step::TakeY(j) => out.push(y[j].clone()),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventRecord;
    use crate::op::{Endpoint, MpiOp};
    use crate::ranklist::RankSet;
    use mpisim::Comm;
    use sigkit::StackSig;

    fn ev(sig: u64, rank: usize) -> EventRecord {
        EventRecord::new(
            MpiOp::send(Endpoint::Relative(1), 0, 8, Comm::WORLD),
            StackSig(sig),
            rank,
            1.0,
        )
    }

    fn trace_of(rank: usize, sigs: &[u64]) -> CompressedTrace {
        let mut t = CompressedTrace::new();
        for &s in sigs {
            t.append(ev(s, rank));
        }
        t
    }

    #[test]
    fn identical_traces_collapse() {
        let a = trace_of(0, &[1, 2, 3]);
        let b = trace_of(1, &[1, 2, 3]);
        let m = merge_traces(&a, &b);
        assert_eq!(m.compressed_size(), 3, "same structure folds completely");
        let mut ranks = Vec::new();
        m.visit_events(&mut |e| ranks.push(e.ranks.expand()));
        assert!(ranks.iter().all(|r| r == &vec![0, 1]));
    }

    #[test]
    fn disjoint_traces_concatenate() {
        let a = trace_of(0, &[1, 2]);
        let b = trace_of(1, &[3, 4]);
        let m = merge_traces(&a, &b);
        assert_eq!(m.compressed_size(), 4);
        let mut sigs = Vec::new();
        m.visit_events(&mut |e| sigs.push(e.stack_sig.0));
        assert_eq!(sigs, vec![1, 2, 3, 4]);
    }

    #[test]
    fn partial_overlap_aligns() {
        // Both share the 1,3 backbone; each has a private event between.
        let a = trace_of(0, &[1, 2, 3]);
        let b = trace_of(1, &[1, 9, 3]);
        let m = merge_traces(&a, &b);
        let mut sigs = Vec::new();
        let mut ranks = Vec::new();
        m.visit_events(&mut |e| {
            sigs.push(e.stack_sig.0);
            ranks.push(e.ranks.expand());
        });
        // Backbone events carry both ranks; private events carry one.
        assert_eq!(sigs.len(), 4);
        assert!(sigs.contains(&2) && sigs.contains(&9));
        let idx1 = sigs.iter().position(|&s| s == 1).unwrap();
        let idx3 = sigs.iter().position(|&s| s == 3).unwrap();
        assert_eq!(ranks[idx1], vec![0, 1]);
        assert_eq!(ranks[idx3], vec![0, 1]);
    }

    #[test]
    fn loops_with_same_structure_fold() {
        let a = trace_of(0, &[1, 2, 1, 2, 1, 2]); // Loop{3,[1,2]}
        let b = trace_of(5, &[1, 2, 1, 2, 1, 2]);
        let m = merge_traces(&a, &b);
        assert_eq!(m.nodes().len(), 1);
        match &m.nodes()[0] {
            TraceNode::Loop { iters, body } => {
                assert_eq!(*iters, 3);
                assert_eq!(body.len(), 2);
            }
            other => panic!("expected loop, got {other:?}"),
        }
        let mut ranks = Vec::new();
        m.visit_events(&mut |e| ranks.push(e.ranks.expand()));
        assert!(ranks.iter().all(|r| r == &vec![0, 5]));
    }

    #[test]
    fn loops_with_different_iters_kept_separate() {
        let a = trace_of(0, &[1, 1, 1]); // Loop{3,[1]}
        let b = trace_of(1, &[1, 1, 1, 1, 1]); // Loop{5,[1]}
        let m = merge_traces(&a, &b);
        // Different trip counts cannot fold; both loops survive.
        assert_eq!(m.nodes().len(), 2);
        assert_eq!(m.dynamic_size(), 8);
    }

    #[test]
    fn merge_all_many_ranks_near_constant() {
        // 64 SPMD ranks with identical structure merge into a trace the
        // same size as one rank's — the headline ScalaTrace property.
        let traces: Vec<CompressedTrace> = (0..64).map(|r| trace_of(r, &[1, 2, 1, 2, 3])).collect();
        let single_size = traces[0].compressed_size();
        let m = merge_all(traces.iter());
        assert_eq!(m.compressed_size(), single_size);
        let mut all_ranks = RankSet::empty();
        m.visit_events(&mut |e| all_ranks = all_ranks.union(&e.ranks));
        assert_eq!(all_ranks.len(), 64);
    }

    #[test]
    fn merge_empty_identity() {
        let a = trace_of(0, &[1, 2]);
        let e = CompressedTrace::new();
        assert_eq!(merge_traces(&a, &e), a);
        assert_eq!(merge_traces(&e, &a), a);
        assert_eq!(merge_all(std::iter::empty()), e);
    }

    #[test]
    fn time_mass_additive_across_merge() {
        let a = trace_of(0, &[1, 2]); // total pre-time 2.0
        let b = trace_of(1, &[1, 2]); // total pre-time 2.0
        let m = merge_traces(&a, &b);
        let mut total = 0.0;
        m.visit_events(&mut |e| total += e.pre_time.total());
        assert!((total - 4.0).abs() < 1e-9);
    }

    #[test]
    fn merge_preserves_each_input_order() {
        let a = trace_of(0, &[1, 5, 2]);
        let b = trace_of(1, &[5, 9]);
        let m = merge_traces(&a, &b);
        let mut sigs = Vec::new();
        m.visit_events(&mut |e| sigs.push(e.stack_sig.0));
        // Order of a's events preserved.
        let pos = |v: u64| sigs.iter().position(|&s| s == v).unwrap();
        assert!(pos(1) < pos(5));
        assert!(pos(5) < pos(2));
        // Order of b's events preserved.
        assert!(pos(5) < pos(9));
    }

    #[test]
    fn identical_streams_take_fast_path() {
        let a = trace_of(0, &[1, 2, 1, 2, 3, 4]);
        let b = trace_of(1, &[1, 2, 1, 2, 3, 4]);
        let (m, met) = merge_traces_with_metrics(&a, &b);
        assert!(met.fast_path, "identical streams must skip the DP");
        assert_eq!(met.dp_cells, 0);
        assert_eq!(met.mid_long, 0);
        assert_eq!(m.compressed_size(), a.compressed_size());
    }

    #[test]
    fn dp_memory_linear_in_shorter_input() {
        // A long trace of distinct sites against a short disjoint one:
        // nothing trims, so the aligner sees the full middles — yet every
        // DP buffer must be sized by the *short* side, whichever argument
        // order is used.
        let long: Vec<u64> = (0..300).map(|i| 1000 + 7 * i).collect();
        let short: Vec<u64> = (0..5).map(|i| 10 + i).collect();
        let a = trace_of(0, &long);
        let b = trace_of(1, &short);
        for (p, q) in [(&a, &b), (&b, &a)] {
            let (_, met) = merge_traces_with_metrics(p, q);
            assert!(
                met.peak_dp_alloc <= short.len() + 1,
                "peak DP buffer {} exceeds min-side bound {}",
                met.peak_dp_alloc,
                short.len() + 1
            );
            assert!(met.dp_cells > 0, "this case cannot trim away");
        }
    }

    #[test]
    fn trims_reported_in_metrics() {
        // Shared prefix [1,2], shared suffix [8], disjoint middles.
        let a = trace_of(0, &[1, 2, 30, 31, 8]);
        let b = trace_of(1, &[1, 2, 40, 8]);
        let (_, met) = merge_traces_with_metrics(&a, &b);
        assert_eq!(met.prefix_matched, 2);
        assert_eq!(met.suffix_matched, 1);
        assert_eq!(met.mid_long, 2);
        assert_eq!(met.mid_short, 1);
        assert!(!met.fast_path);
    }

    #[test]
    fn fast_matches_reference_on_repeat_heavy_cases() {
        // Hand-picked shapes that distinguish backtrack tie-break rules.
        let cases: &[(&[u64], &[u64])] = &[
            (&[1, 1], &[1]),
            (&[1], &[1, 1]),
            (&[3, 1], &[1, 3]),
            (&[1, 3], &[3, 1]),
            (&[1, 2, 1, 2], &[2, 1]),
            (&[2, 1], &[1, 2, 1, 2]),
            (&[1, 1, 2, 2], &[2, 2, 1, 1]),
            (&[5, 1, 6], &[7, 1, 8]),
            (&[1, 2, 3, 1, 2, 3], &[3, 2, 1]),
        ];
        for (xs, ys) in cases {
            let a = trace_of(0, xs);
            let b = trace_of(1, ys);
            assert_eq!(
                merge_traces(&a, &b),
                merge_traces_reference(&a, &b),
                "fast/reference diverge on {xs:?} vs {ys:?}"
            );
        }
    }

    #[test]
    fn merge_into_equals_merge_traces() {
        let a = trace_of(0, &[1, 5, 2, 2, 7]);
        let b = trace_of(1, &[5, 9, 2, 7, 7]);
        let (by_ref, met1) = merge_traces_with_metrics(&a, &b);
        let (by_move, met2) = merge_into(a.clone(), &b);
        assert_eq!(by_ref, by_move);
        assert_eq!(met1, met2);
    }

    #[test]
    fn structural_hash_agrees_with_matches() {
        let a = trace_of(0, &[1, 2, 1, 2, 9]);
        let b = trace_of(3, &[1, 2, 1, 2, 9]);
        for (na, nb) in a.nodes().iter().zip(b.nodes()) {
            assert!(na.matches(nb));
            assert_eq!(na.structural_hash(), nb.structural_hash());
        }
        // Different sites (almost surely) hash apart.
        let c = trace_of(0, &[4]);
        assert_ne!(
            a.nodes()[0].structural_hash(),
            c.nodes()[0].structural_hash()
        );
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use crate::event::EventRecord;
    use crate::op::{Endpoint, MpiOp};
    use mpisim::Comm;
    use sigkit::StackSig;
    use xrand::Xoshiro256;

    fn trace_of(rank: usize, sigs: &[u64]) -> CompressedTrace {
        let mut t = CompressedTrace::new();
        for &s in sigs {
            t.append(EventRecord::new(
                MpiOp::send(Endpoint::Relative(1), 0, 8, Comm::WORLD),
                StackSig(s),
                rank,
                1.0,
            ));
        }
        t
    }

    fn random_sigs(rng: &mut Xoshiro256, alphabet: u64, max_len: usize) -> Vec<u64> {
        let len = rng.usize_below(max_len + 1);
        (0..len).map(|_| rng.below(alphabet)).collect()
    }

    /// The fast Hirschberg path and the full-table reference oracle produce
    /// byte-identical traces, across alphabet densities from "every node
    /// matches" to "nothing repeats". Loop folding in `append` makes these
    /// inputs exercise Loop-vs-Event and Loop-vs-Loop alignment too.
    #[test]
    fn fast_equals_reference() {
        let mut rng = Xoshiro256::seed_from_u64(0xFA57);
        for alphabet in [1, 2, 3, 5, 16] {
            for _case in 0..400 {
                let xs = random_sigs(&mut rng, alphabet, 60);
                let ys = random_sigs(&mut rng, alphabet, 60);
                let a = trace_of(0, &xs);
                let b = trace_of(1, &ys);
                assert_eq!(
                    merge_traces(&a, &b),
                    merge_traces_reference(&a, &b),
                    "divergence: alphabet={alphabet} xs={xs:?} ys={ys:?}"
                );
            }
        }
    }

    /// The merged trace is never larger than the concatenation, and its
    /// dynamic size brackets between max and sum of the inputs'.
    #[test]
    fn merged_size_bounded() {
        let mut rng = Xoshiro256::seed_from_u64(0x512E);
        for _case in 0..300 {
            let xs = random_sigs(&mut rng, 5, 40);
            let ys = random_sigs(&mut rng, 5, 40);
            let a = trace_of(0, &xs);
            let b = trace_of(1, &ys);
            let m = merge_traces(&a, &b);
            assert!(m.compressed_size() <= a.compressed_size() + b.compressed_size());
            assert!(m.dynamic_size() >= a.dynamic_size().max(b.dynamic_size()));
            assert!(m.dynamic_size() <= a.dynamic_size() + b.dynamic_size());
        }
    }

    /// Time mass is exactly additive.
    #[test]
    fn time_mass_additive() {
        let mut rng = Xoshiro256::seed_from_u64(0x71ED);
        for _case in 0..300 {
            let a = trace_of(0, &random_sigs(&mut rng, 5, 40));
            let b = trace_of(1, &random_sigs(&mut rng, 5, 40));
            let m = merge_traces(&a, &b);
            let sum = |t: &CompressedTrace| {
                let mut total = 0.0;
                t.visit_events(&mut |e| total += e.pre_time.total());
                total
            };
            assert!((sum(&m) - (sum(&a) + sum(&b))).abs() < 1e-6);
        }
    }

    /// Merging a trace with itself (different rank) is a perfect fold and
    /// always takes the trim-only fast path.
    #[test]
    fn self_merge_perfect() {
        let mut rng = Xoshiro256::seed_from_u64(0x5E1F);
        for _case in 0..300 {
            let xs = random_sigs(&mut rng, 5, 60);
            let a = trace_of(0, &xs);
            let b = trace_of(1, &xs);
            let (m, met) = merge_traces_with_metrics(&a, &b);
            assert_eq!(m.compressed_size(), a.compressed_size());
            assert_eq!(m.dynamic_size(), a.dynamic_size());
            assert!(met.fast_path || a.is_empty());
            assert_eq!(met.dp_cells, 0);
        }
    }

    /// merge_into is just merge_traces without the accumulator clone.
    #[test]
    fn merge_into_equivalent() {
        let mut rng = Xoshiro256::seed_from_u64(0x1A70);
        for _case in 0..300 {
            let a = trace_of(0, &random_sigs(&mut rng, 4, 50));
            let b = trace_of(1, &random_sigs(&mut rng, 4, 50));
            let expect = merge_traces(&a, &b);
            let (got, _) = merge_into(a.clone(), &b);
            assert_eq!(expect, got);
        }
    }

    /// Peak DP allocation is bounded by the shorter input in all cases.
    #[test]
    fn dp_memory_bounded_by_min_side() {
        let mut rng = Xoshiro256::seed_from_u64(0x0A11);
        for _case in 0..300 {
            let xs = random_sigs(&mut rng, 6, 80);
            let ys = random_sigs(&mut rng, 6, 20);
            let a = trace_of(0, &xs);
            let b = trace_of(1, &ys);
            let (_, met) = merge_traces_with_metrics(&a, &b);
            let min_side = a.nodes().len().min(b.nodes().len());
            assert!(
                met.peak_dp_alloc <= min_side + 1,
                "peak {} > min side {}",
                met.peak_dp_alloc,
                min_side
            );
        }
    }
}
