//! Inter-node compression: structural merging of compressed traces.
//!
//! ScalaTrace consolidates per-rank traces into one global trace by
//! pairwise merging along a reduction tree: "internal nodes combine their
//! traces with other task-level traces that they receive from child nodes"
//! (paper §I). The pairwise step aligns two PRSD streams, merging nodes
//! that represent the same call sites (unioning their ranklists and time
//! statistics) and interleaving the rest in order. Alignment is a longest
//! common subsequence over top-level nodes — the O(n²) factor in the
//! paper's O(n² log P) inter-node compression cost, which is precisely the
//! bottleneck Chameleon attacks by shrinking P to K.
//!
//! In SPMD codes the per-rank traces are structurally near-identical, so
//! the merged trace stays near-constant size: matched nodes collapse into
//! one with a wider ranklist.

use crate::trace::{CompressedTrace, TraceNode};

/// Merge two compressed traces into one that represents the union of
/// their ranks' behavior.
///
/// Matched nodes (same sites, same loop structure) fold together; nodes
/// unique to either input are kept in order. The relative order of events
/// within each input is preserved.
pub fn merge_traces(a: &CompressedTrace, b: &CompressedTrace) -> CompressedTrace {
    CompressedTrace::from_nodes(merge_node_seqs(a.nodes(), b.nodes()))
}

/// Merge many traces left-to-right (the order the reduction tree produces).
pub fn merge_all<'a>(traces: impl IntoIterator<Item = &'a CompressedTrace>) -> CompressedTrace {
    let mut iter = traces.into_iter();
    let mut acc = match iter.next() {
        Some(t) => t.clone(),
        None => return CompressedTrace::new(),
    };
    for t in iter {
        acc = merge_traces(&acc, t);
    }
    acc
}

fn merge_node_seqs(x: &[TraceNode], y: &[TraceNode]) -> Vec<TraceNode> {
    let (n, m) = (x.len(), y.len());
    // LCS table over structural matches.
    let mut dp = vec![vec![0u32; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            dp[i][j] = if x[i].matches(&y[j]) {
                dp[i + 1][j + 1] + 1
            } else {
                dp[i + 1][j].max(dp[i][j + 1])
            };
        }
    }
    // Backtrack, emitting merged nodes.
    let mut out = Vec::with_capacity(n.max(m));
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if x[i].matches(&y[j]) && dp[i][j] == dp[i + 1][j + 1] + 1 {
            let mut merged = x[i].clone();
            merged.absorb(&y[j]);
            out.push(merged);
            i += 1;
            j += 1;
        } else if dp[i + 1][j] >= dp[i][j + 1] {
            out.push(x[i].clone());
            i += 1;
        } else {
            out.push(y[j].clone());
            j += 1;
        }
    }
    out.extend(x[i..].iter().cloned());
    out.extend(y[j..].iter().cloned());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventRecord;
    use crate::op::{Endpoint, MpiOp};
    use crate::ranklist::RankSet;
    use mpisim::Comm;
    use sigkit::StackSig;

    fn ev(sig: u64, rank: usize) -> EventRecord {
        EventRecord::new(
            MpiOp::send(Endpoint::Relative(1), 0, 8, Comm::WORLD),
            StackSig(sig),
            rank,
            1.0,
        )
    }

    fn trace_of(rank: usize, sigs: &[u64]) -> CompressedTrace {
        let mut t = CompressedTrace::new();
        for &s in sigs {
            t.append(ev(s, rank));
        }
        t
    }

    #[test]
    fn identical_traces_collapse() {
        let a = trace_of(0, &[1, 2, 3]);
        let b = trace_of(1, &[1, 2, 3]);
        let m = merge_traces(&a, &b);
        assert_eq!(m.compressed_size(), 3, "same structure folds completely");
        let mut ranks = Vec::new();
        m.visit_events(&mut |e| ranks.push(e.ranks.expand()));
        assert!(ranks.iter().all(|r| r == &vec![0, 1]));
    }

    #[test]
    fn disjoint_traces_concatenate() {
        let a = trace_of(0, &[1, 2]);
        let b = trace_of(1, &[3, 4]);
        let m = merge_traces(&a, &b);
        assert_eq!(m.compressed_size(), 4);
        let mut sigs = Vec::new();
        m.visit_events(&mut |e| sigs.push(e.stack_sig.0));
        assert_eq!(sigs, vec![1, 2, 3, 4]);
    }

    #[test]
    fn partial_overlap_aligns() {
        // Both share the 1,3 backbone; each has a private event between.
        let a = trace_of(0, &[1, 2, 3]);
        let b = trace_of(1, &[1, 9, 3]);
        let m = merge_traces(&a, &b);
        let mut sigs = Vec::new();
        let mut ranks = Vec::new();
        m.visit_events(&mut |e| {
            sigs.push(e.stack_sig.0);
            ranks.push(e.ranks.expand());
        });
        // Backbone events carry both ranks; private events carry one.
        assert_eq!(sigs.len(), 4);
        assert!(sigs.contains(&2) && sigs.contains(&9));
        let idx1 = sigs.iter().position(|&s| s == 1).unwrap();
        let idx3 = sigs.iter().position(|&s| s == 3).unwrap();
        assert_eq!(ranks[idx1], vec![0, 1]);
        assert_eq!(ranks[idx3], vec![0, 1]);
    }

    #[test]
    fn loops_with_same_structure_fold() {
        let a = trace_of(0, &[1, 2, 1, 2, 1, 2]); // Loop{3,[1,2]}
        let b = trace_of(5, &[1, 2, 1, 2, 1, 2]);
        let m = merge_traces(&a, &b);
        assert_eq!(m.nodes().len(), 1);
        match &m.nodes()[0] {
            TraceNode::Loop { iters, body } => {
                assert_eq!(*iters, 3);
                assert_eq!(body.len(), 2);
            }
            other => panic!("expected loop, got {other:?}"),
        }
        let mut ranks = Vec::new();
        m.visit_events(&mut |e| ranks.push(e.ranks.expand()));
        assert!(ranks.iter().all(|r| r == &vec![0, 5]));
    }

    #[test]
    fn loops_with_different_iters_kept_separate() {
        let a = trace_of(0, &[1, 1, 1]); // Loop{3,[1]}
        let b = trace_of(1, &[1, 1, 1, 1, 1]); // Loop{5,[1]}
        let m = merge_traces(&a, &b);
        // Different trip counts cannot fold; both loops survive.
        assert_eq!(m.nodes().len(), 2);
        assert_eq!(m.dynamic_size(), 8);
    }

    #[test]
    fn merge_all_many_ranks_near_constant() {
        // 64 SPMD ranks with identical structure merge into a trace the
        // same size as one rank's — the headline ScalaTrace property.
        let traces: Vec<CompressedTrace> =
            (0..64).map(|r| trace_of(r, &[1, 2, 1, 2, 3])).collect();
        let single_size = traces[0].compressed_size();
        let m = merge_all(traces.iter());
        assert_eq!(m.compressed_size(), single_size);
        let mut all_ranks = RankSet::empty();
        m.visit_events(&mut |e| all_ranks = all_ranks.union(&e.ranks));
        assert_eq!(all_ranks.len(), 64);
    }

    #[test]
    fn merge_empty_identity() {
        let a = trace_of(0, &[1, 2]);
        let e = CompressedTrace::new();
        assert_eq!(merge_traces(&a, &e), a);
        assert_eq!(merge_traces(&e, &a), a);
        assert_eq!(merge_all(std::iter::empty()), e);
    }

    #[test]
    fn time_mass_additive_across_merge() {
        let a = trace_of(0, &[1, 2]); // total pre-time 2.0
        let b = trace_of(1, &[1, 2]); // total pre-time 2.0
        let m = merge_traces(&a, &b);
        let mut total = 0.0;
        m.visit_events(&mut |e| total += e.pre_time.total());
        assert!((total - 4.0).abs() < 1e-9);
    }

    #[test]
    fn merge_preserves_each_input_order() {
        let a = trace_of(0, &[1, 5, 2]);
        let b = trace_of(1, &[5, 9]);
        let m = merge_traces(&a, &b);
        let mut sigs = Vec::new();
        m.visit_events(&mut |e| sigs.push(e.stack_sig.0));
        // Order of a's events preserved.
        let pos = |v: u64| sigs.iter().position(|&s| s == v).unwrap();
        assert!(pos(1) < pos(5));
        assert!(pos(5) < pos(2));
        // Order of b's events preserved.
        assert!(pos(5) < pos(9));
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use crate::event::EventRecord;
    use crate::op::{Endpoint, MpiOp};
    use mpisim::Comm;
    use proptest::prelude::*;
    use sigkit::StackSig;

    fn trace_of(rank: usize, sigs: &[u64]) -> CompressedTrace {
        let mut t = CompressedTrace::new();
        for &s in sigs {
            t.append(EventRecord::new(
                MpiOp::send(Endpoint::Relative(1), 0, 8, Comm::WORLD),
                StackSig(s),
                rank,
                1.0,
            ));
        }
        t
    }

    proptest! {
        /// The merged trace is never larger than the concatenation and
        /// never smaller than the larger input's compressed size... the
        /// latter only when one input's sites subsume the other's; the
        /// robust invariant is the upper bound plus dynamic-size bounds.
        #[test]
        fn merged_size_bounded(
            xs in proptest::collection::vec(0u64..5, 0..40),
            ys in proptest::collection::vec(0u64..5, 0..40),
        ) {
            let a = trace_of(0, &xs);
            let b = trace_of(1, &ys);
            let m = merge_traces(&a, &b);
            prop_assert!(m.compressed_size() <= a.compressed_size() + b.compressed_size());
            // Every dynamic instance of both inputs is represented.
            prop_assert!(m.dynamic_size() >= a.dynamic_size().max(b.dynamic_size()));
            prop_assert!(m.dynamic_size() <= a.dynamic_size() + b.dynamic_size());
        }

        /// Time mass is exactly additive.
        #[test]
        fn time_mass_additive(
            xs in proptest::collection::vec(0u64..5, 0..40),
            ys in proptest::collection::vec(0u64..5, 0..40),
        ) {
            let a = trace_of(0, &xs);
            let b = trace_of(1, &ys);
            let m = merge_traces(&a, &b);
            let sum = |t: &CompressedTrace| {
                let mut total = 0.0;
                t.visit_events(&mut |e| total += e.pre_time.total());
                total
            };
            prop_assert!((sum(&m) - (sum(&a) + sum(&b))).abs() < 1e-6);
        }

        /// Merging a trace with itself (different rank) is a perfect fold.
        #[test]
        fn self_merge_perfect(xs in proptest::collection::vec(0u64..5, 0..60)) {
            let a = trace_of(0, &xs);
            let b = trace_of(1, &xs);
            let m = merge_traces(&a, &b);
            prop_assert_eq!(m.compressed_size(), a.compressed_size());
            prop_assert_eq!(m.dynamic_size(), a.dynamic_size());
        }
    }
}
