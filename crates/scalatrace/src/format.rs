//! The trace-file text format.
//!
//! ScalaTrace writes its global trace as a structured text file that the
//! replay engine (and humans) read back. This module defines an equivalent
//! line-oriented format for [`CompressedTrace`]:
//!
//! ```text
//! SCALATRACE v1
//! L <iters> <body-node-count>
//! E <op> sig=<hex> src=<ep> dest=<ep> tag=<tag> count=<n> comm=<id> ranks=<spec> time=<spec>
//! ```
//!
//! Loop bodies follow their `L` header in preorder. Endpoints are
//! `r<offset>` (relative), `a<rank>` (absolute), `any`, or `-` (absent).
//! Rank sets are `+`-joined sections `start(/iters,stride)*`. Time specs
//! are `count,sum,min,max[,bin:count...]` with only non-zero histogram
//! bins listed.
//!
//! The format is self-contained and round-trips exactly (up to float
//! formatting, which uses Rust's shortest-roundtrip representation and is
//! therefore lossless).

use mpisim::Comm;
use sigkit::StackSig;

use crate::event::EventRecord;
use crate::hist::{TimeStats, BINS};
use crate::op::{Endpoint, MpiOp, OpKind};
use crate::ranklist::{RankList, RankSet};
use crate::trace::{CompressedTrace, TraceNode};

/// Magic first line of a trace file.
pub const HEADER: &str = "SCALATRACE v1";

/// Serialization/parsing error with a line-oriented message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormatError(pub String);

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace format error: {}", self.0)
    }
}

impl std::error::Error for FormatError {}

fn err<T>(msg: impl Into<String>) -> Result<T, FormatError> {
    Err(FormatError(msg.into()))
}

/// Serialize a trace to its text representation.
pub fn to_text(trace: &CompressedTrace) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str(HEADER);
    out.push('\n');
    for node in trace.nodes() {
        write_node(node, &mut out);
    }
    out
}

fn write_node(node: &TraceNode, out: &mut String) {
    match node {
        TraceNode::Loop { iters, body } => {
            out.push_str(&format!("L {iters} {}\n", body.len()));
            for n in body {
                write_node(n, out);
            }
        }
        TraceNode::Event(e) => {
            out.push_str(&format!(
                "E {} sig={:016x} src={} dest={} tag={} tag2={} count={} comm={} ranks={} time={}\n",
                e.op.kind.mnemonic(),
                e.stack_sig.0,
                fmt_endpoint(&e.op.src),
                fmt_endpoint(&e.op.dest),
                e.op.tag.map_or("-".to_string(), |t| t.to_string()),
                e.op.recv_tag.map_or("-".to_string(), |t| t.to_string()),
                e.op.count,
                e.op.comm.0,
                fmt_rankset(&e.ranks),
                fmt_time(&e.pre_time),
            ));
        }
    }
}

fn fmt_endpoint(ep: &Option<Endpoint>) -> String {
    match ep {
        None => "-".to_string(),
        Some(Endpoint::Relative(off)) => format!("r{off}"),
        Some(Endpoint::Absolute(r)) => format!("a{r}"),
        Some(Endpoint::Any) => "any".to_string(),
    }
}

fn fmt_rankset(rs: &RankSet) -> String {
    if rs.is_empty() {
        return "-".to_string();
    }
    rs.sections()
        .iter()
        .map(|s| {
            let mut part = s.start().to_string();
            for (iters, stride) in s.dims() {
                part.push_str(&format!("/{iters},{stride}"));
            }
            part
        })
        .collect::<Vec<_>>()
        .join("+")
}

fn fmt_time(ts: &TimeStats) -> String {
    let mut s = format!("{},{},{},{}", ts.count(), ts.total(), ts.min(), ts.max());
    for (i, &b) in ts.bins().iter().enumerate() {
        if b != 0 {
            s.push_str(&format!(",{i}:{b}"));
        }
    }
    s
}

/// Parse a trace from its text representation.
///
/// Errors carry the 1-based line number of the offending *original* line
/// and a truncated snippet of its content, so degraded-path logs point at
/// the exact wire bytes that failed.
pub fn from_text(text: &str) -> Result<CompressedTrace, FormatError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == HEADER => {}
        Some((_, other)) => return err(format!("line 1: bad header {:?}", snippet(other))),
        None => return err("empty input: missing header"),
    }
    // Keep each surviving line's original (1-based) number through the
    // comment/blank filter.
    let body: Vec<(usize, &str)> = lines
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'))
        .collect();
    let mut pos = 0;
    let mut nodes = Vec::new();
    while pos < body.len() {
        let (node, next) = parse_node(&body, pos)?;
        nodes.push(node);
        pos = next;
    }
    Ok(CompressedTrace::from_nodes(nodes))
}

/// Truncate a line for inclusion in an error message.
fn snippet(line: &str) -> String {
    const MAX: usize = 60;
    if line.chars().count() > MAX {
        let cut: String = line.chars().take(MAX).collect();
        format!("{cut}…")
    } else {
        line.to_string()
    }
}

/// Attach line context to an error bubbling out of a field-level parser.
fn at_line(lineno: usize, line: &str, e: FormatError) -> FormatError {
    FormatError(format!("line {lineno}: {} in {:?}", e.0, snippet(line)))
}

fn parse_node(lines: &[(usize, &str)], pos: usize) -> Result<(TraceNode, usize), FormatError> {
    let &(lineno, line) = lines.get(pos).ok_or_else(|| {
        let last = lines.last().map_or(1, |&(n, _)| n);
        FormatError(format!(
            "unexpected end of trace after line {last} (loop body shorter than declared)"
        ))
    })?;
    if let Some(rest) = line.strip_prefix("L ") {
        let mut parts = rest.split_whitespace();
        let iters: u64 =
            parse_num(parts.next(), "loop iters").map_err(|e| at_line(lineno, line, e))?;
        let body_len: usize =
            parse_num(parts.next(), "loop body length").map_err(|e| at_line(lineno, line, e))?;
        if iters == 0 {
            return Err(at_line(
                lineno,
                line,
                FormatError("loop with zero iterations".into()),
            ));
        }
        let mut body = Vec::with_capacity(body_len);
        let mut cursor = pos + 1;
        for _ in 0..body_len {
            let (node, next) = parse_node(lines, cursor)?;
            body.push(node);
            cursor = next;
        }
        Ok((TraceNode::Loop { iters, body }, cursor))
    } else if let Some(rest) = line.strip_prefix("E ") {
        let event = parse_event(rest).map_err(|e| at_line(lineno, line, e))?;
        Ok((TraceNode::Event(event), pos + 1))
    } else {
        Err(at_line(
            lineno,
            line,
            FormatError("unrecognized trace line".into()),
        ))
    }
}

fn parse_num<T: std::str::FromStr>(field: Option<&str>, what: &str) -> Result<T, FormatError> {
    field
        .ok_or_else(|| FormatError(format!("missing {what}")))?
        .parse()
        .map_err(|_| FormatError(format!("invalid {what}: {field:?}")))
}

fn parse_event(rest: &str) -> Result<EventRecord, FormatError> {
    let mut parts = rest.split_whitespace();
    let kind = parts
        .next()
        .and_then(OpKind::from_mnemonic)
        .ok_or_else(|| FormatError(format!("bad op in event line: {rest:?}")))?;
    let mut src = None;
    let mut dest = None;
    let mut tag = None;
    let mut recv_tag = None;
    let mut count = 0usize;
    let mut comm = Comm::WORLD;
    let mut sig = None;
    let mut ranks = RankSet::empty();
    let mut time = TimeStats::new();
    for field in parts {
        let (key, value) = field
            .split_once('=')
            .ok_or_else(|| FormatError(format!("bad field {field:?}")))?;
        match key {
            "sig" => {
                sig = Some(StackSig(
                    u64::from_str_radix(value, 16)
                        .map_err(|_| FormatError(format!("bad sig {value:?}")))?,
                ));
            }
            "src" => src = parse_endpoint(value)?,
            "dest" => dest = parse_endpoint(value)?,
            "tag" => {
                tag = if value == "-" {
                    None
                } else {
                    Some(
                        value
                            .parse()
                            .map_err(|_| FormatError(format!("bad tag {value:?}")))?,
                    )
                };
            }
            "tag2" => {
                recv_tag = if value == "-" {
                    None
                } else {
                    Some(
                        value
                            .parse()
                            .map_err(|_| FormatError(format!("bad tag2 {value:?}")))?,
                    )
                };
            }
            "count" => {
                count = value
                    .parse()
                    .map_err(|_| FormatError(format!("bad count {value:?}")))?;
            }
            "comm" => {
                comm = Comm(
                    value
                        .parse()
                        .map_err(|_| FormatError(format!("bad comm {value:?}")))?,
                );
            }
            "ranks" => ranks = parse_rankset(value)?,
            "time" => time = parse_time(value)?,
            other => return err(format!("unknown field {other:?}")),
        }
    }
    let sig = sig.ok_or_else(|| FormatError("event missing sig".into()))?;
    Ok(EventRecord {
        op: MpiOp {
            kind,
            src,
            dest,
            tag,
            recv_tag,
            count,
            comm,
        },
        stack_sig: sig,
        ranks,
        pre_time: time,
    })
}

fn parse_endpoint(s: &str) -> Result<Option<Endpoint>, FormatError> {
    Ok(match s {
        "-" => None,
        "any" => Some(Endpoint::Any),
        _ if s.starts_with('r') => {
            Some(Endpoint::Relative(s[1..].parse().map_err(|_| {
                FormatError(format!("bad relative endpoint {s:?}"))
            })?))
        }
        _ if s.starts_with('a') => {
            Some(Endpoint::Absolute(s[1..].parse().map_err(|_| {
                FormatError(format!("bad absolute endpoint {s:?}"))
            })?))
        }
        _ => return err(format!("bad endpoint {s:?}")),
    })
}

fn parse_rankset(s: &str) -> Result<RankSet, FormatError> {
    if s == "-" {
        return Ok(RankSet::empty());
    }
    let mut sections = Vec::new();
    for part in s.split('+') {
        let mut pieces = part.split('/');
        let start: usize = pieces
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| FormatError(format!("bad rank section {part:?}")))?;
        let mut dims = Vec::new();
        for dim in pieces {
            let (iters, stride) = dim
                .split_once(',')
                .ok_or_else(|| FormatError(format!("bad rank dim {dim:?}")))?;
            dims.push((
                iters
                    .parse()
                    .map_err(|_| FormatError(format!("bad iters {iters:?}")))?,
                stride
                    .parse()
                    .map_err(|_| FormatError(format!("bad stride {stride:?}")))?,
            ));
        }
        sections.push(RankList::from_parts(start, dims).map_err(FormatError)?);
    }
    Ok(RankSet::from_sections(sections))
}

fn parse_time(s: &str) -> Result<TimeStats, FormatError> {
    let mut fields = s.split(',');
    let count: u64 = parse_num(fields.next(), "time count")?;
    let sum: f64 = parse_num(fields.next(), "time sum")?;
    let min: f64 = parse_num(fields.next(), "time min")?;
    let max: f64 = parse_num(fields.next(), "time max")?;
    let mut bins = [0u32; BINS];
    for pair in fields {
        let (idx, c) = pair
            .split_once(':')
            .ok_or_else(|| FormatError(format!("bad histogram pair {pair:?}")))?;
        let idx: usize = idx
            .parse()
            .map_err(|_| FormatError(format!("bad bin index {idx:?}")))?;
        if idx >= BINS {
            return err(format!("bin index {idx} out of range"));
        }
        bins[idx] = c
            .parse()
            .map_err(|_| FormatError(format!("bad bin count {c:?}")))?;
    }
    Ok(TimeStats::from_parts(count, sum, min, max, bins))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(sig: u64, rank: usize) -> EventRecord {
        EventRecord::new(
            MpiOp::send(Endpoint::Relative(1), 3, 64, Comm::WORLD),
            StackSig(sig),
            rank,
            1.25,
        )
    }

    fn sample_trace() -> CompressedTrace {
        let mut t = CompressedTrace::new();
        for _ in 0..10 {
            t.append(ev(0xabc, 0));
            t.append(EventRecord::new(
                MpiOp::recv(Endpoint::Relative(-1), 3, 64, Comm::WORLD),
                StackSig(0xdef),
                0,
                0.5,
            ));
        }
        t.append(EventRecord::new(
            MpiOp::barrier(Comm::WORLD),
            StackSig(0x111),
            0,
            2.0,
        ));
        t
    }

    #[test]
    fn roundtrip_simple() {
        let t = sample_trace();
        let text = to_text(&t);
        let back = from_text(&text).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn roundtrip_nested_loops() {
        let mut t = CompressedTrace::new();
        for _ in 0..5 {
            for _ in 0..4 {
                t.append(ev(1, 0));
                t.append(ev(2, 0));
            }
            t.append(ev(3, 0));
        }
        let back = from_text(&to_text(&t)).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.dynamic_size(), t.dynamic_size());
    }

    #[test]
    fn roundtrip_all_op_kinds() {
        let mut t = CompressedTrace::new();
        t.append(ev(1, 0));
        t.append(EventRecord::new(
            MpiOp::recv(Endpoint::Any, 7, 16, Comm::WORLD),
            StackSig(2),
            0,
            0.0,
        ));
        t.append(EventRecord::new(
            MpiOp::rooted(OpKind::Reduce, 0, 8, Comm::WORLD),
            StackSig(3),
            0,
            0.1,
        ));
        t.append(EventRecord::new(
            MpiOp::rooted(OpKind::Bcast, 5, 8, Comm::WORLD),
            StackSig(4),
            0,
            0.1,
        ));
        t.append(EventRecord::new(
            MpiOp::barrier(Comm::MARKER),
            StackSig(5),
            0,
            0.0,
        ));
        t.append(EventRecord::new(
            MpiOp {
                kind: OpKind::Allreduce,
                src: None,
                dest: None,
                tag: None,
                recv_tag: None,
                count: 8,
                comm: Comm::WORLD,
            },
            StackSig(6),
            0,
            0.2,
        ));
        let back = from_text(&to_text(&t)).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn roundtrip_merged_rankset() {
        use crate::merge::merge_traces;
        let a = {
            let mut t = CompressedTrace::new();
            t.append(ev(9, 0));
            t
        };
        let b = {
            let mut t = CompressedTrace::new();
            t.append(ev(9, 17));
            t
        };
        let m = merge_traces(&a, &b);
        let back = from_text(&to_text(&m)).unwrap();
        assert_eq!(back, m);
        let mut ranks = Vec::new();
        back.visit_events(&mut |e| ranks.push(e.ranks.expand()));
        assert_eq!(ranks, vec![vec![0, 17]]);
    }

    #[test]
    fn roundtrip_sendrecv_with_two_tags() {
        let mut t = CompressedTrace::new();
        t.append(EventRecord::new(
            MpiOp {
                kind: OpKind::SendRecv,
                src: Some(Endpoint::Relative(-1)),
                dest: Some(Endpoint::Relative(1)),
                tag: Some(7),
                recv_tag: Some(9),
                count: 128,
                comm: Comm::WORLD,
            },
            StackSig(0x51),
            0,
            0.5,
        ));
        let back = from_text(&to_text(&t)).unwrap();
        assert_eq!(back, t);
        back.visit_events(&mut |e| {
            assert_eq!(e.op.tag, Some(7));
            assert_eq!(e.op.recv_tag, Some(9));
        });
    }

    #[test]
    fn rejects_bad_header() {
        assert!(from_text("GARBAGE\nE send").is_err());
        assert!(from_text("").is_err());
    }

    #[test]
    fn rejects_truncated_loop() {
        let text = format!("{HEADER}\nL 5 2\nE send sig=0000000000000001 src=- dest=r1 tag=0 count=8 comm=0 ranks=0 time=1,0,0,0\n");
        assert!(from_text(&text).is_err(), "loop body shorter than declared");
    }

    #[test]
    fn rejects_zero_iteration_loop() {
        let text = format!("{HEADER}\nL 0 0\n");
        assert!(from_text(&text).is_err());
    }

    #[test]
    fn rejects_unknown_lines_and_fields() {
        assert!(from_text(&format!("{HEADER}\nX what\n")).is_err());
        assert!(from_text(&format!(
            "{HEADER}\nE send sig=1 bogus=3 ranks=0 time=0,0,0,0\n"
        ))
        .is_err());
    }

    #[test]
    fn errors_cite_line_number_and_snippet() {
        // Line 1 is the header, line 2 a comment, line 3 the bad event.
        let text = format!(
            "{HEADER}\n# a comment\nE send sig=ZZZ src=- dest=r1 tag=0 tag2=- count=8 comm=0 ranks=0 time=1,0,0,0\n"
        );
        let e = from_text(&text).unwrap_err();
        assert!(e.0.contains("line 3:"), "got: {}", e.0);
        assert!(e.0.contains("sig"), "got: {}", e.0);
        assert!(e.0.contains("E send"), "snippet of the line, got: {}", e.0);
    }

    #[test]
    fn long_offending_lines_are_truncated() {
        let junk = "X".repeat(500);
        let e = from_text(&format!("{HEADER}\n{junk}\n")).unwrap_err();
        assert!(e.0.contains("line 2:"), "got: {}", e.0);
        assert!(e.0.len() < 200, "snippet must be truncated, got: {}", e.0);
        assert!(e.0.contains('…'));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let t = sample_trace();
        let mut text = to_text(&t);
        text.push_str("\n# trailing comment\n\n");
        assert_eq!(from_text(&text).unwrap(), t);
    }

    #[test]
    fn empty_trace_roundtrip() {
        let t = CompressedTrace::new();
        assert_eq!(from_text(&to_text(&t)).unwrap(), t);
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use xrand::Xoshiro256;

    fn random_event(rng: &mut Xoshiro256) -> EventRecord {
        let sig = rng.next_u64();
        let off = rng.range_u64(0, 16) as i64 - 8;
        let count = rng.usize_below(64);
        let op = match rng.below(4) {
            0 => MpiOp::send(Endpoint::Relative(off), 1, count, Comm::WORLD),
            1 => MpiOp::recv(Endpoint::Relative(off), 1, count, Comm::WORLD),
            2 => MpiOp::barrier(Comm::WORLD),
            _ => MpiOp {
                kind: OpKind::Allreduce,
                src: None,
                dest: None,
                tag: None,
                recv_tag: None,
                count,
                comm: Comm::WORLD,
            },
        };
        let dt = rng.f64_unit() * 10.0;
        let mut e = EventRecord::new(op, StackSig(sig), 0, dt);
        let nranks = rng.range_usize(1, 6);
        let ranks: Vec<usize> = {
            let mut rs: Vec<usize> = (0..nranks).map(|_| rng.usize_below(64)).collect();
            rs.sort_unstable();
            rs.dedup();
            rs
        };
        e.set_ranks(RankSet::from_ranks(ranks));
        e
    }

    /// Arbitrary single-level traces round-trip exactly.
    #[test]
    fn roundtrip_arbitrary() {
        let mut rng = Xoshiro256::seed_from_u64(0x4011D);
        for _case in 0..256 {
            let mut t = CompressedTrace::new();
            for _ in 0..rng.usize_below(30) {
                t.append(random_event(&mut rng));
            }
            let back = from_text(&to_text(&t)).unwrap();
            assert_eq!(back, t);
        }
    }
}
