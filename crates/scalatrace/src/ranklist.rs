//! Communication-group encoding: ranklists.
//!
//! ScalaTrace property (3) (paper §II): "it leverages a special data
//! structure called ranklist to represent a communication group. Using
//! EBNF notation, a rank list is represented as
//! `<dimension, start_rank, iteration_length, stride>`, which denotes the
//! dimension of the group, the rank of the starting node, and the
//! iteration and stride of the corresponding dimension."
//!
//! A [`RankList`] is one such multi-dimensional arithmetic section; a
//! [`RankSet`] is a normalized union of them, able to represent any set of
//! ranks while staying compact (near-constant size) for the structured
//! sets SPMD codes produce — contiguous blocks, strided columns, and
//! row-major subgrids.

use mpisim::Rank;

/// One multi-dimensional regular section of ranks.
///
/// The member set is `{ start + Σ_d i_d · stride_d : 0 ≤ i_d < iters_d }`.
/// Dimension order is outermost-first. A singleton is `dims = []`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RankList {
    start: Rank,
    /// `(iteration_length, stride)` per dimension, outermost first.
    dims: Vec<(usize, i64)>,
}

impl RankList {
    /// The section containing exactly `rank`.
    pub fn singleton(rank: Rank) -> Self {
        RankList {
            start: rank,
            dims: Vec::new(),
        }
    }

    /// A 1-D section `start, start+stride, …` of `iters` members.
    ///
    /// Panics if any member would be negative, or `iters == 0`.
    pub fn strided(start: Rank, iters: usize, stride: i64) -> Self {
        assert!(iters >= 1, "empty ranklist section");
        if iters == 1 {
            return Self::singleton(start);
        }
        let last = start as i64 + (iters as i64 - 1) * stride;
        assert!(last >= 0, "ranklist member underflows zero");
        RankList {
            start,
            dims: vec![(iters, stride)],
        }
    }

    /// Contiguous block `[start, start+len)`.
    pub fn contiguous(start: Rank, len: usize) -> Self {
        Self::strided(start, len, 1)
    }

    /// Reassemble a section from its serialized parts. Used by the trace
    /// file parser; validates that no member is negative.
    pub fn from_parts(start: Rank, dims: Vec<(usize, i64)>) -> Result<Self, String> {
        let mut min = start as i64;
        for &(iters, stride) in &dims {
            if iters == 0 {
                return Err("ranklist dimension with zero iterations".into());
            }
            if stride < 0 {
                min += (iters as i64 - 1) * stride;
            }
        }
        if min < 0 {
            return Err(format!("ranklist member underflows zero (min {min})"));
        }
        Ok(RankList { start, dims })
    }

    /// Number of dimensions (0 for a singleton).
    pub fn dimension(&self) -> usize {
        self.dims.len()
    }

    /// First (lowest-index position) member.
    pub fn start(&self) -> Rank {
        self.start
    }

    /// The `(iters, stride)` pairs, outermost first.
    pub fn dims(&self) -> &[(usize, i64)] {
        &self.dims
    }

    /// Total member count (product of iteration lengths).
    pub fn len(&self) -> usize {
        self.dims.iter().map(|&(n, _)| n).product::<usize>().max(1)
    }

    /// Always false: sections are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Enumerate members in section order (outer dims slowest).
    pub fn iter(&self) -> impl Iterator<Item = Rank> + '_ {
        let total = self.len();
        (0..total).map(move |mut idx| {
            let mut r = self.start as i64;
            // Decompose idx in mixed radix, innermost dimension fastest.
            for d in (0..self.dims.len()).rev() {
                let (n, stride) = self.dims[d];
                let i = idx % n;
                idx /= n;
                r += i as i64 * stride;
            }
            debug_assert!(r >= 0, "ranklist member underflow");
            r as Rank
        })
    }

    /// Membership test.
    pub fn contains(&self, rank: Rank) -> bool {
        // Sections are small-dimensional; solve by recursive descent over
        // dimensions rather than enumerating all members.
        fn rec(target: i64, base: i64, dims: &[(usize, i64)]) -> bool {
            match dims.split_first() {
                None => target == base,
                Some((&(n, stride), rest)) => {
                    (0..n as i64).any(|i| rec(target, base + i * stride, rest))
                }
            }
        }
        rec(rank as i64, self.start as i64, &self.dims)
    }
}

/// A normalized union of [`RankList`] sections: can represent any finite
/// set of ranks. Canonical form: the greedy AP decomposition of the sorted
/// member list with grid folding, so equal sets compare equal.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct RankSet {
    sections: Vec<RankList>,
}

impl RankSet {
    /// The empty set.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Set containing exactly one rank.
    pub fn singleton(rank: Rank) -> Self {
        RankSet {
            sections: vec![RankList::singleton(rank)],
        }
    }

    /// Build the canonical compact representation of an arbitrary set of
    /// ranks (duplicates tolerated).
    pub fn from_ranks(ranks: impl IntoIterator<Item = Rank>) -> Self {
        let mut sorted: Vec<Rank> = ranks.into_iter().collect();
        sorted.sort_unstable();
        sorted.dedup();
        Self::from_sorted_unique(&sorted)
    }

    fn from_sorted_unique(ranks: &[Rank]) -> Self {
        if ranks.is_empty() {
            return Self::empty();
        }
        // Phase 1: greedy maximal arithmetic progressions.
        let mut sections: Vec<RankList> = Vec::new();
        let mut i = 0;
        while i < ranks.len() {
            if i + 1 == ranks.len() {
                sections.push(RankList::singleton(ranks[i]));
                break;
            }
            let stride = (ranks[i + 1] - ranks[i]) as i64;
            let mut j = i + 1;
            while j + 1 < ranks.len() && (ranks[j + 1] - ranks[j]) as i64 == stride {
                j += 1;
            }
            let iters = j - i + 1;
            if iters >= 3 || (iters == 2 && stride == 1) {
                sections.push(RankList::strided(ranks[i], iters, stride));
                i = j + 1;
            } else {
                // A 2-element "run" with a large stride is usually noise;
                // emit the first element alone and rescan from the second,
                // which may start a better run.
                sections.push(RankList::singleton(ranks[i]));
                i += 1;
            }
        }
        // Phase 2: fold rows into grids until fixpoint (1D -> 2D -> 3D...).
        loop {
            let folded = fold_sections(&sections);
            if folded.len() == sections.len() {
                break;
            }
            sections = folded;
        }
        RankSet { sections }
    }

    /// Reassemble from parsed sections (trace file parser). The input is
    /// trusted to be in canonical order; membership/expansion remain
    /// correct regardless.
    pub fn from_sections(sections: Vec<RankList>) -> Self {
        RankSet { sections }
    }

    /// The sections composing the set.
    pub fn sections(&self) -> &[RankList] {
        &self.sections
    }

    /// Total member count.
    pub fn len(&self) -> usize {
        self.sections.iter().map(|s| s.len()).sum()
    }

    /// True when the set has no members.
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, rank: Rank) -> bool {
        self.sections.iter().any(|s| s.contains(rank))
    }

    /// Enumerate all members in ascending order.
    pub fn expand(&self) -> Vec<Rank> {
        let mut out: Vec<Rank> = self.sections.iter().flat_map(|s| s.iter()).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Set union, renormalized to canonical form.
    ///
    /// Like ScalaTrace's ranklist merge this costs O(|a| + |b|) in member
    /// count — acceptable because it runs on tool-side merge paths, not in
    /// the application's critical path — and re-compresses structured
    /// results back to a handful of sections.
    pub fn union(&self, other: &RankSet) -> RankSet {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        let mut all = self.expand();
        all.extend(other.expand());
        Self::from_ranks(all)
    }

    /// Smallest member, if any.
    pub fn min(&self) -> Option<Rank> {
        self.sections.iter().map(|s| s.iter().min().unwrap()).min()
    }

    /// Approximate serialized size in bytes, for the memory accounting of
    /// Table IV (a section is dimension + start + per-dim pair).
    pub fn byte_size(&self) -> usize {
        self.sections.iter().map(|s| 16 + s.dims.len() * 16).sum()
    }
}

/// Fold runs of sections that share `(dims)` and whose starts form an AP
/// into one higher-dimensional section.
fn fold_sections(sections: &[RankList]) -> Vec<RankList> {
    let mut out: Vec<RankList> = Vec::with_capacity(sections.len());
    let mut i = 0;
    while i < sections.len() {
        // Find the longest run starting at i foldable into one grid.
        let mut best_j = i; // inclusive end of run
        if i + 1 < sections.len() && sections[i].dims == sections[i + 1].dims {
            let outer_stride = sections[i + 1].start as i64 - sections[i].start as i64;
            if outer_stride > 0 {
                let mut j = i + 1;
                while j + 1 < sections.len()
                    && sections[j + 1].dims == sections[i].dims
                    && sections[j + 1].start as i64 - sections[j].start as i64 == outer_stride
                {
                    j += 1;
                }
                // Only fold runs of >= 3 rows (or 2 rows of non-singletons:
                // a pair of singletons is already optimal as one 1D AP and
                // phase 1 would have caught it).
                let rows = j - i + 1;
                if rows >= 2 && !(rows == 2 && sections[i].dims.is_empty()) {
                    let mut dims = vec![(rows, outer_stride)];
                    dims.extend_from_slice(&sections[i].dims);
                    out.push(RankList {
                        start: sections[i].start,
                        dims,
                    });
                    best_j = j;
                }
            }
        }
        if best_j == i {
            out.push(sections[i].clone());
        }
        i = best_j + 1;
    }
    out
}

impl std::fmt::Display for RankList {
    /// EBNF-ish rendering: `<dim start (iters,stride)...>`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "<{} {}", self.dims.len(), self.start)?;
        for (n, s) in &self.dims {
            write!(f, " ({n},{s})")?;
        }
        write!(f, ">")
    }
}

impl std::fmt::Display for RankSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, s) in self.sections.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_basics() {
        let s = RankList::singleton(7);
        assert_eq!(s.len(), 1);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![7]);
        assert!(s.contains(7));
        assert!(!s.contains(8));
        assert_eq!(s.dimension(), 0);
    }

    #[test]
    fn strided_members() {
        let s = RankList::strided(2, 4, 3); // 2, 5, 8, 11
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![2, 5, 8, 11]);
        assert!(s.contains(8));
        assert!(!s.contains(9));
    }

    #[test]
    fn two_dimensional_grid() {
        // 2x3 subgrid of a row-major 2D mesh with row stride 8:
        // rows start at 0 and 8; columns stride 1.
        let s = RankList {
            start: 0,
            dims: vec![(2, 8), (3, 1)],
        };
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 1, 2, 8, 9, 10]);
        assert_eq!(s.len(), 6);
        assert!(s.contains(9));
        assert!(!s.contains(3));
        assert!(!s.contains(16));
    }

    #[test]
    fn from_ranks_contiguous() {
        let set = RankSet::from_ranks(0..64);
        assert_eq!(set.sections().len(), 1, "contiguous block is one section");
        assert_eq!(set.len(), 64);
        assert_eq!(set.expand(), (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn from_ranks_strided_column() {
        // Column of a 8x8 grid: 3, 11, 19, ..., 59.
        let col: Vec<Rank> = (0..8).map(|i| 3 + 8 * i).collect();
        let set = RankSet::from_ranks(col.clone());
        assert_eq!(set.sections().len(), 1);
        assert_eq!(set.expand(), col);
    }

    #[test]
    fn from_ranks_grid_folds_to_2d() {
        // 4x4 subgrid of a 16-wide mesh: rows {0..4}, {16..20}, ...
        let mut ranks = Vec::new();
        for row in 0..4 {
            for col in 0..4 {
                ranks.push(row * 16 + col);
            }
        }
        let set = RankSet::from_ranks(ranks.clone());
        assert_eq!(set.expand(), ranks);
        assert_eq!(
            set.sections().len(),
            1,
            "regular subgrid folds into one 2-D section, got {set}"
        );
        assert_eq!(set.sections()[0].dimension(), 2);
    }

    #[test]
    fn from_ranks_irregular() {
        let ranks = vec![0, 1, 2, 10, 50, 51];
        let set = RankSet::from_ranks(ranks.clone());
        assert_eq!(set.expand(), ranks);
        assert!(set.contains(10));
        assert!(!set.contains(3));
    }

    #[test]
    fn from_ranks_dedups() {
        let set = RankSet::from_ranks(vec![5, 5, 5, 6, 6]);
        assert_eq!(set.expand(), vec![5, 6]);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn union_disjoint_blocks() {
        let a = RankSet::from_ranks(0..8);
        let b = RankSet::from_ranks(8..16);
        let u = a.union(&b);
        assert_eq!(u.expand(), (0..16).collect::<Vec<_>>());
        assert_eq!(u.sections().len(), 1, "adjacent blocks coalesce");
    }

    #[test]
    fn union_overlapping() {
        let a = RankSet::from_ranks(0..10);
        let b = RankSet::from_ranks(5..15);
        assert_eq!(a.union(&b).expand(), (0..15).collect::<Vec<_>>());
    }

    #[test]
    fn union_with_empty() {
        let a = RankSet::from_ranks([3, 4]);
        assert_eq!(a.union(&RankSet::empty()), a);
        assert_eq!(RankSet::empty().union(&a), a);
    }

    #[test]
    fn canonical_equality() {
        // Same set built two different ways compares equal.
        let a = RankSet::from_ranks(vec![0, 2, 4, 6]);
        let b = RankSet::from_ranks(vec![6, 4, 2, 0]);
        assert_eq!(a, b);
        let c = RankSet::from_ranks(vec![0, 1]).union(&RankSet::from_ranks(vec![2, 3]));
        let d = RankSet::from_ranks(0..4);
        assert_eq!(c, d);
    }

    #[test]
    fn min_member() {
        assert_eq!(RankSet::empty().min(), None);
        assert_eq!(RankSet::from_ranks([9, 3, 7]).min(), Some(3));
    }

    #[test]
    fn display_ebnf() {
        let s = RankList::strided(1, 4, 2);
        assert_eq!(format!("{s}"), "<1 1 (4,2)>");
        assert_eq!(format!("{}", RankList::singleton(5)), "<0 5>");
    }

    #[test]
    fn byte_size_compact_for_structured_sets() {
        // 1024 contiguous ranks: one section, a few dozen bytes — the
        // "near-constant size" property the paper relies on.
        let set = RankSet::from_ranks(0..1024);
        assert!(set.byte_size() <= 64, "got {}", set.byte_size());
    }

    #[test]
    #[should_panic(expected = "empty ranklist")]
    fn zero_iters_panics() {
        RankList::strided(0, 0, 1);
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use std::collections::BTreeSet;
    use xrand::Xoshiro256;

    fn random_set(rng: &mut Xoshiro256, bound: usize, max_len: usize) -> BTreeSet<Rank> {
        (0..rng.usize_below(max_len))
            .map(|_| rng.usize_below(bound))
            .collect()
    }

    /// from_ranks -> expand is the identity on sorted unique input.
    #[test]
    fn roundtrip() {
        let mut rng = Xoshiro256::seed_from_u64(0x4071);
        for _case in 0..256 {
            let ranks = random_set(&mut rng, 2000, 200);
            let sorted: Vec<Rank> = ranks.iter().cloned().collect();
            let set = RankSet::from_ranks(sorted.clone());
            assert_eq!(set.expand(), sorted);
        }
    }

    /// Membership agrees with expansion.
    #[test]
    fn contains_agrees() {
        let mut rng = Xoshiro256::seed_from_u64(0xC074);
        for _case in 0..256 {
            let ranks = random_set(&mut rng, 500, 60);
            let probe = rng.usize_below(500);
            let set = RankSet::from_ranks(ranks.iter().cloned());
            assert_eq!(set.contains(probe), ranks.contains(&probe));
        }
    }

    /// Union is the set union.
    #[test]
    fn union_is_set_union() {
        let mut rng = Xoshiro256::seed_from_u64(0x0410);
        for _case in 0..256 {
            let a = random_set(&mut rng, 300, 40);
            let b = random_set(&mut rng, 300, 40);
            let sa = RankSet::from_ranks(a.iter().cloned());
            let sb = RankSet::from_ranks(b.iter().cloned());
            let expect: Vec<Rank> = a.union(&b).cloned().collect();
            assert_eq!(sa.union(&sb).expand(), expect);
        }
    }

    /// len always equals the number of distinct members.
    #[test]
    fn len_consistent() {
        let mut rng = Xoshiro256::seed_from_u64(0x1E4C);
        for _case in 0..256 {
            let ranks = random_set(&mut rng, 1000, 120);
            let set = RankSet::from_ranks(ranks.iter().cloned());
            assert_eq!(set.len(), ranks.len());
        }
    }

    /// Canonical form: building from any permutation yields equal sets.
    #[test]
    fn permutation_invariant() {
        let mut rng = Xoshiro256::seed_from_u64(0x9E4A);
        for _case in 0..256 {
            let ranks: Vec<Rank> = (0..rng.usize_below(50))
                .map(|_| rng.usize_below(400))
                .collect();
            let fwd = RankSet::from_ranks(ranks.clone());
            let rev = RankSet::from_ranks(ranks.iter().rev().cloned());
            assert_eq!(fwd, rev);
        }
    }
}
