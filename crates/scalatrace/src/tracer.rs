//! The PMPI-style interposition layer.
//!
//! Real ScalaTrace interposes on MPI through the PMPI profiling interface:
//! every `MPI_*` call enters a wrapper that records the event (with its
//! stack backtrace) before/after invoking the real operation.
//! [`TracedProc`] plays that role over [`mpisim::Proc`]: workloads issue
//! their communication through it, and each call
//!
//! 1. computes the event's stack signature from the synthetic call stack
//!    plus the call-site label (the stand-in for the call's return
//!    address),
//! 2. feeds the signature and the SRC/DEST parameters into the current
//!    marker-interval signature accumulators (always — signatures are
//!    needed for clustering votes even when tracing is off),
//! 3. appends a compressed event to the partial intra-node trace — but
//!    only while tracing is enabled (non-lead ranks in the Lead state turn
//!    this off, which is where Chameleon's memory saving comes from), and
//! 4. performs the real operation on the underlying simulated MPI.

use mpisim::{Comm, Proc, Rank, RecvInfo, SrcSel, Tag, TagSel, VirtualTime};
use sigkit::{CallPathAccumulator, CallStack, ParamEstimator, SignatureTriple, StackSig};

use crate::event::EventRecord;
use crate::op::{Endpoint, MpiOp, OpKind};
use crate::trace::CompressedTrace;

/// A call-site label: the stand-in for the MPI call's return address.
/// Distinct source locations must use distinct labels (they would have
/// distinct return addresses in a real binary).
pub type CallSite = &'static str;

/// Per-marker-interval signature accumulators: Call-Path plus SRC/DEST
/// parameter averages (the three signatures Chameleon clusters on).
#[derive(Debug, Clone, Default)]
pub struct IntervalSignatures {
    callpath: CallPathAccumulator,
    src: ParamEstimator,
    dest: ParamEstimator,
}

impl IntervalSignatures {
    /// Fresh accumulators.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one event's contribution.
    pub fn record(&mut self, sig: StackSig, op: &MpiOp) {
        self.callpath.record(sig);
        if let Some(src) = &op.src {
            self.src.add(src.param_sig());
        }
        if let Some(dest) = &op.dest {
            self.dest.add(dest.param_sig());
        }
    }

    /// Number of events recorded this interval.
    pub fn event_count(&self) -> u64 {
        self.callpath.len()
    }

    /// Produce the interval's signature triple.
    pub fn finish(&self) -> SignatureTriple {
        SignatureTriple {
            call_path: self.callpath.finish(),
            src: self.src.estimate(),
            dest: self.dest.estimate(),
        }
    }

    /// Reset for the next interval.
    pub fn reset(&mut self) {
        self.callpath.reset();
        self.src.reset();
        self.dest.reset();
    }
}

/// Tracing state carried by one rank: call stack, partial compressed
/// trace, interval signatures, and accounting.
#[derive(Debug, Clone)]
pub struct Tracer {
    enabled: bool,
    stack: CallStack,
    trace: CompressedTrace,
    interval: IntervalSignatures,
    last_event_vt: VirtualTime,
    /// Running peak of the partial-trace allocation, for Table IV.
    peak_trace_bytes: usize,
    /// Total events observed (traced or not).
    events_seen: u64,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// Fresh tracer with tracing enabled (the All-Tracing state).
    pub fn new() -> Self {
        Tracer {
            enabled: true,
            stack: CallStack::new(),
            trace: CompressedTrace::new(),
            interval: IntervalSignatures::new(),
            last_event_vt: 0.0,
            peak_trace_bytes: 0,
            events_seen: 0,
        }
    }

    /// Whether events are currently recorded into the trace.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Turn trace recording on/off (the "lead" flag). Signature
    /// accumulation continues regardless — every rank votes.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// The partial intra-node trace.
    pub fn trace(&self) -> &CompressedTrace {
        &self.trace
    }

    /// Take the partial trace out, leaving an empty one (Algorithm 3:
    /// lead traces are shipped into the merge, then "delete your partial
    /// trace").
    pub fn take_trace(&mut self) -> CompressedTrace {
        std::mem::take(&mut self.trace)
    }

    /// Drop the partial trace (non-lead ranks after a merge).
    pub fn clear_trace(&mut self) {
        self.trace.clear();
    }

    /// Current interval signatures (read side).
    pub fn interval(&self) -> &IntervalSignatures {
        &self.interval
    }

    /// Finish the interval: produce the signature triple and reset the
    /// accumulators for the next interval.
    pub fn rotate_interval(&mut self) -> SignatureTriple {
        let triple = self.interval.finish();
        self.interval.reset();
        triple
    }

    /// Current partial-trace allocation in bytes; 0 when empty.
    pub fn trace_bytes(&self) -> usize {
        if self.trace.is_empty() {
            0
        } else {
            self.trace.byte_size()
        }
    }

    /// Peak partial-trace allocation observed so far.
    pub fn peak_trace_bytes(&self) -> usize {
        self.peak_trace_bytes
    }

    /// Total events seen (traced or untraced).
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }
}

/// A rank's MPI handle with ScalaTrace interposition.
pub struct TracedProc<'a> {
    proc: &'a mut Proc,
    tracer: Tracer,
}

impl<'a> TracedProc<'a> {
    /// Wrap a raw process handle with a fresh tracer.
    pub fn new(proc: &'a mut Proc) -> Self {
        TracedProc {
            proc,
            tracer: Tracer::new(),
        }
    }

    /// Rank shortcut.
    pub fn rank(&self) -> Rank {
        self.proc.rank()
    }

    /// World-size shortcut.
    pub fn size(&self) -> usize {
        self.proc.size()
    }

    /// Current virtual time.
    pub fn now(&self) -> VirtualTime {
        self.proc.now()
    }

    /// Direct access to the underlying untraced process handle — the
    /// tool-internal side channel (clustering votes, trace shipping). Real
    /// ScalaTrace likewise talks PMPI_* directly inside its wrappers so
    /// tool traffic never shows up in traces.
    pub fn inner(&mut self) -> &mut Proc {
        self.proc
    }

    /// The tracer state.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Mutable tracer state (Chameleon flips the lead flag, rotates
    /// intervals, takes traces).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Enter a synthetic stack frame for the duration of `f` — the
    /// workload's way of declaring its call structure.
    pub fn frame<R>(&mut self, label: CallSite, f: impl FnOnce(&mut Self) -> R) -> R {
        self.tracer.stack.push(sigkit::stack::frame_addr(label));
        let out = f(self);
        self.tracer.stack.pop();
        out
    }

    /// Simulated computation (advances virtual time; not an MPI event).
    pub fn compute(&mut self, dt: VirtualTime) {
        self.proc.compute(dt);
    }

    fn site_sig(&self, site: CallSite) -> StackSig {
        self.tracer
            .stack
            .signature_with(sigkit::stack::frame_addr(site))
    }

    /// PMPI-wrapper core: record the event, then let the caller run the
    /// real operation.
    fn record(&mut self, site: CallSite, op: MpiOp) {
        let sig = self.site_sig(site);
        let pre = (self.proc.now() - self.tracer.last_event_vt).max(0.0);
        self.tracer.events_seen += 1;
        self.tracer.interval.record(sig, &op);
        if self.tracer.enabled {
            self.tracer
                .trace
                .append(EventRecord::new(op, sig, self.proc.rank(), pre));
            self.tracer.peak_trace_bytes = self
                .tracer
                .peak_trace_bytes
                .max(self.tracer.trace.byte_size());
        }
    }

    fn mark_event_end(&mut self) {
        self.tracer.last_event_vt = self.proc.now();
    }

    /// Traced `MPI_Send`.
    pub fn send(&mut self, site: CallSite, dest: Rank, tag: Tag, payload: &[u8]) {
        let op = MpiOp::send(
            Endpoint::encode(self.proc.rank(), dest),
            tag,
            payload.len(),
            Comm::WORLD,
        );
        self.record(site, op);
        self.proc.send(dest, tag, Comm::WORLD, payload);
        self.mark_event_end();
    }

    /// Traced `MPI_Send` with an endpoint the workload knows to be
    /// structurally absolute (e.g. a fixed master rank) — recorded
    /// absolutely so clustered replay does not transpose it.
    pub fn send_absolute(&mut self, site: CallSite, dest: Rank, tag: Tag, payload: &[u8]) {
        let op = MpiOp::send(Endpoint::Absolute(dest), tag, payload.len(), Comm::WORLD);
        self.record(site, op);
        self.proc.send(dest, tag, Comm::WORLD, payload);
        self.mark_event_end();
    }

    /// Traced `MPI_Recv` from a concrete source.
    pub fn recv(&mut self, site: CallSite, src: Rank, tag: Tag, expected_len: usize) -> RecvInfo {
        let op = MpiOp::recv(
            Endpoint::encode(self.proc.rank(), src),
            tag,
            expected_len,
            Comm::WORLD,
        );
        self.record(site, op);
        let info = self
            .proc
            .recv(SrcSel::Rank(src), TagSel::Tag(tag), Comm::WORLD);
        self.mark_event_end();
        info
    }

    /// Traced `MPI_Recv` that tolerates a dead sender under an armed
    /// fault plan: the event is recorded *unconditionally* (every rank's
    /// recorded call-path must stay identical whether or not its
    /// particular neighbor died — the clustering votes depend on it), then
    /// the receive either completes or reports the peer's death as `None`.
    pub fn recv_dead_aware(
        &mut self,
        site: CallSite,
        src: Rank,
        tag: Tag,
        expected_len: usize,
    ) -> Option<RecvInfo> {
        let op = MpiOp::recv(
            Endpoint::encode(self.proc.rank(), src),
            tag,
            expected_len,
            Comm::WORLD,
        );
        self.record(site, op);
        let info = self.proc.recv_or_dead(src, tag, Comm::WORLD);
        self.mark_event_end();
        info
    }

    /// Traced `MPI_Recv` from a source the workload knows to be
    /// structurally absolute (a fixed master/root) — recorded absolutely
    /// so clustered replay does not transpose it.
    pub fn recv_absolute(
        &mut self,
        site: CallSite,
        src: Rank,
        tag: Tag,
        expected_len: usize,
    ) -> RecvInfo {
        let op = MpiOp::recv(Endpoint::Absolute(src), tag, expected_len, Comm::WORLD);
        self.record(site, op);
        let info = self
            .proc
            .recv(SrcSel::Rank(src), TagSel::Tag(tag), Comm::WORLD);
        self.mark_event_end();
        info
    }

    /// Traced wildcard receive (`MPI_ANY_SOURCE`) — the master–worker
    /// idiom.
    pub fn recv_any(&mut self, site: CallSite, tag: Tag, expected_len: usize) -> RecvInfo {
        let op = MpiOp::recv(Endpoint::Any, tag, expected_len, Comm::WORLD);
        self.record(site, op);
        let info = self.proc.recv(SrcSel::Any, TagSel::Tag(tag), Comm::WORLD);
        self.mark_event_end();
        info
    }

    /// Traced `MPI_Sendrecv`: the stencil halo-exchange workhorse.
    pub fn sendrecv(
        &mut self,
        site: CallSite,
        dest: Rank,
        send_tag: Tag,
        payload: &[u8],
        src: Rank,
        recv_tag: Tag,
    ) -> RecvInfo {
        let me = self.proc.rank();
        let op = MpiOp {
            kind: OpKind::SendRecv,
            src: Some(Endpoint::encode(me, src)),
            dest: Some(Endpoint::encode(me, dest)),
            tag: Some(send_tag),
            recv_tag: Some(recv_tag),
            count: payload.len(),
            comm: Comm::WORLD,
        };
        self.record(site, op);
        let info = self.proc.sendrecv(
            dest,
            send_tag,
            payload,
            SrcSel::Rank(src),
            TagSel::Tag(recv_tag),
            Comm::WORLD,
        );
        self.mark_event_end();
        info
    }

    /// Traced `MPI_Barrier` on the world communicator.
    pub fn barrier(&mut self, site: CallSite) {
        self.record(site, MpiOp::barrier(Comm::WORLD));
        self.proc.barrier(Comm::WORLD);
        self.mark_event_end();
    }

    /// Traced `MPI_Allreduce` (sum of one u64).
    pub fn allreduce_sum(&mut self, site: CallSite, value: u64) -> u64 {
        let op = MpiOp {
            kind: OpKind::Allreduce,
            src: None,
            dest: None,
            tag: None,
            recv_tag: None,
            count: 8,
            comm: Comm::WORLD,
        };
        self.record(site, op);
        let out = self.proc.allreduce_sum(value);
        self.mark_event_end();
        out
    }

    /// Traced `MPI_Reduce` (sum of one u64) to `root`.
    pub fn reduce_sum(&mut self, site: CallSite, value: u64, root: Rank) -> Option<u64> {
        self.record(site, MpiOp::rooted(OpKind::Reduce, root, 8, Comm::WORLD));
        let out =
            self.proc
                .reduce_u64(value, mpisim::collectives::ReduceOp::Sum, root, Comm::WORLD);
        self.mark_event_end();
        out
    }

    /// Traced `MPI_Bcast` from `root`.
    pub fn bcast(&mut self, site: CallSite, payload: &[u8], root: Rank) -> Vec<u8> {
        self.record(
            site,
            MpiOp::rooted(OpKind::Bcast, root, payload.len(), Comm::WORLD),
        );
        let out = self.proc.bcast(payload, root, Comm::WORLD);
        self.mark_event_end();
        out
    }

    /// Traced `MPI_Gather` to `root`.
    pub fn gather(&mut self, site: CallSite, payload: &[u8], root: Rank) -> Option<Vec<Vec<u8>>> {
        self.record(
            site,
            MpiOp::rooted(OpKind::Gather, root, payload.len(), Comm::WORLD),
        );
        let out = self.proc.gather(payload, root, Comm::WORLD);
        self.mark_event_end();
        out
    }

    /// Record the `MPI_Finalize` event (traced so the final interval is
    /// never empty; the paper's finalize path relies on this).
    pub fn record_finalize(&mut self, site: CallSite) {
        let op = MpiOp {
            kind: OpKind::Finalize,
            src: None,
            dest: None,
            tag: None,
            recv_tag: None,
            count: 0,
            comm: Comm::WORLD,
        };
        self.record(site, op);
        self.mark_event_end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::{World, WorldConfig};

    #[test]
    fn traced_ring_builds_trace() {
        let report = World::new(WorldConfig::for_tests(4))
            .run(|proc| {
                let mut tp = TracedProc::new(proc);
                let me = tp.rank();
                let p = tp.size();
                for _ in 0..10 {
                    tp.send("ring_send", (me + 1) % p, 0, &[0u8; 8]);
                    tp.recv("ring_recv", (me + p - 1) % p, 0, 8);
                }
                let t = tp.tracer().trace().clone();
                (t.compressed_size(), t.dynamic_size())
            })
            .unwrap();
        for &(csize, dsize) in &report.results {
            assert_eq!(dsize, 20, "10 sends + 10 recvs");
            assert!(csize <= 3, "loop compression must kick in, got {csize}");
        }
    }

    #[test]
    fn interval_signatures_match_across_spmd_ranks() {
        let report = World::new(WorldConfig::for_tests(4))
            .run(|proc| {
                let mut tp = TracedProc::new(proc);
                let me = tp.rank();
                let p = tp.size();
                tp.frame("timestep", |tp| {
                    tp.send("s", (me + 1) % p, 0, &[0u8; 8]);
                    tp.recv("r", (me + p - 1) % p, 0, 8);
                    tp.barrier("b");
                });
                tp.tracer_mut().rotate_interval()
            })
            .unwrap();
        let first = report.results[0];
        for (rank, trip) in report.results.iter().enumerate() {
            assert_eq!(
                trip.call_path, first.call_path,
                "rank {rank} call-path differs"
            );
        }
    }

    #[test]
    fn different_behavior_different_callpath() {
        let report = World::new(WorldConfig::for_tests(2))
            .run(|proc| {
                let mut tp = TracedProc::new(proc);
                if tp.rank() == 0 {
                    tp.send("master_send", 1, 0, &[1]);
                } else {
                    tp.recv("worker_recv", 0, 0, 1);
                }
                tp.tracer_mut().rotate_interval()
            })
            .unwrap();
        assert_ne!(report.results[0].call_path, report.results[1].call_path);
    }

    #[test]
    fn disabled_tracer_records_signatures_but_no_trace() {
        let report = World::new(WorldConfig::for_tests(2))
            .run(|proc| {
                let mut tp = TracedProc::new(proc);
                tp.tracer_mut().set_enabled(false);
                tp.barrier("b1");
                tp.barrier("b2");
                let sig = tp.tracer_mut().rotate_interval();
                let empty = tp.tracer().trace().is_empty();
                let bytes = tp.tracer().trace_bytes();
                (sig, empty, bytes)
            })
            .unwrap();
        for (sig, empty, bytes) in &report.results {
            assert!(!sig.call_path.is_none(), "signatures still accumulate");
            assert!(*empty, "no trace recorded while disabled");
            assert_eq!(*bytes, 0, "zero allocation while disabled — Table IV");
        }
    }

    #[test]
    fn frames_distinguish_call_contexts() {
        let report = World::new(WorldConfig::for_tests(1))
            .run(|proc| {
                let mut tp = TracedProc::new(proc);
                tp.frame("phase_a", |tp| tp.record_finalize("x"));
                let a = tp.tracer_mut().rotate_interval();
                tp.frame("phase_b", |tp| tp.record_finalize("x"));
                let b = tp.tracer_mut().rotate_interval();
                (a.call_path, b.call_path)
            })
            .unwrap();
        let (a, b) = report.results[0];
        assert_ne!(a, b, "same site under different frames must differ");
    }

    #[test]
    fn repeated_interval_same_callpath() {
        // The transition graph's core assumption: re-executing the same
        // code between markers reproduces the same Call-Path signature.
        let report = World::new(WorldConfig::for_tests(2))
            .run(|proc| {
                let mut tp = TracedProc::new(proc);
                let mut sigs = Vec::new();
                for _step in 0..3 {
                    tp.frame("timestep", |tp| {
                        tp.barrier("halo");
                        tp.allreduce_sum("residual", 1);
                    });
                    sigs.push(tp.tracer_mut().rotate_interval().call_path);
                }
                sigs
            })
            .unwrap();
        for sigs in &report.results {
            assert_eq!(sigs[0], sigs[1]);
            assert_eq!(sigs[1], sigs[2]);
        }
    }

    #[test]
    fn sendrecv_records_both_tags() {
        // Regression: a SendRecv's send and receive tags differ; replay
        // needs both (a single recorded tag mispairs boundary exchanges).
        let report = World::new(WorldConfig::for_tests(2))
            .run(|proc| {
                let mut tp = TracedProc::new(proc);
                let peer = 1 - tp.rank();
                let (t_out, t_in) = if tp.rank() == 0 { (7, 9) } else { (9, 7) };
                tp.sendrecv("exchange", peer, t_out, &[0u8; 8], peer, t_in);
                let mut tags = None;
                tp.tracer().trace().visit_events(&mut |e| {
                    tags = Some((e.op.tag, e.op.recv_tag));
                });
                tags
            })
            .unwrap();
        assert_eq!(report.results[0], Some((Some(7), Some(9))));
        assert_eq!(report.results[1], Some((Some(9), Some(7))));
    }

    #[test]
    fn pre_time_captures_compute() {
        let report = World::new(WorldConfig::for_tests(1))
            .run(|proc| {
                let mut tp = TracedProc::new(proc);
                tp.compute(2.0);
                tp.record_finalize("end");
                let mut total = 0.0;
                tp.tracer()
                    .trace()
                    .visit_events(&mut |e| total += e.pre_time.total());
                total
            })
            .unwrap();
        assert!((report.results[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn take_trace_leaves_empty() {
        let report = World::new(WorldConfig::for_tests(1))
            .run(|proc| {
                let mut tp = TracedProc::new(proc);
                tp.record_finalize("x");
                let taken = tp.tracer_mut().take_trace();
                (taken.dynamic_size(), tp.tracer().trace().is_empty())
            })
            .unwrap();
        assert_eq!(report.results[0], (1, true));
    }

    #[test]
    fn peak_bytes_monotone() {
        let report = World::new(WorldConfig::for_tests(1))
            .run(|proc| {
                let mut tp = TracedProc::new(proc);
                for i in 0..20u64 {
                    // Distinct sites so the trace actually grows.
                    let site: CallSite = Box::leak(format!("site{i}").into_boxed_str());
                    tp.frame(site, |tp| tp.record_finalize("e"));
                }
                let peak = tp.tracer().peak_trace_bytes();
                tp.tracer_mut().clear_trace();
                (peak, tp.tracer().trace_bytes())
            })
            .unwrap();
        let (peak, after_clear) = report.results[0];
        assert!(peak > 0);
        assert_eq!(after_clear, 0);
    }
}
