//! Distributed trace consolidation over a radix tree.
//!
//! Plain ScalaTrace runs this across **all P ranks** inside the
//! `MPI_Finalize` wrapper; Chameleon runs the *same* reduction online, but
//! only among the **K lead ranks** ("assign a temp rank from Top K",
//! Algorithm 3) — which is how the O(n² log P) finalize cost becomes
//! O(n² log K) per merge.
//!
//! The reduction is position-based: `participants[i]` is the rank sitting
//! at tree position `i`; position 0 is the root. Each participant receives
//! its children's (already merged) traces, merges them with its own
//! ([`crate::merge::merge_into`] — the pairwise step), and ships the
//! result to its parent. Traces travel serialized in the trace text
//! format over the tool communicator, so they never appear in any trace.
//!
//! The reduction is **pipelined**: an interior rank takes child traces in
//! *arrival* order ([`mpisim::Proc::recv_from_set`]) instead of blocking
//! on a fixed receive order, so merge work at one tree level overlaps
//! with children still reducing their own subtrees. Arrivals that jump
//! the queue are buffered and *folded* in canonical child order — the
//! merged trace must be bit-identical run to run (the determinism suite
//! holds the simulator to that), so fold order cannot depend on thread
//! scheduling; each child is folded the moment it and all its
//! left siblings are in. Each fold's cost is charged from the merge's
//! *measured* counters ([`crate::merge::MergeMetrics`] via
//! [`WorkModel::merge_measured`]), and per-level timings come back in the
//! [`MergeOutcome`] for aggregation.

use std::time::Duration;

use mpisim::{Comm, Proc, ProtocolError, RadixTree, Rank, RetryPolicy, Tag, WorkModel};

use crate::format;
use crate::merge::merge_into;
use crate::trace::CompressedTrace;

/// Tag used by trace-merge traffic on [`Comm::TOOL`]. Below the collective
/// tag space, above plausible application tags.
pub const TRACE_MERGE_TAG: Tag = 1 << 29;

/// Default radix of the reduction tree. The paper speaks of left/right
/// children (radix 2); larger radices trade tree depth for per-node merge
/// work.
pub const DEFAULT_RADIX: usize = 2;

/// Merge work performed by one rank at one reduction-tree level.
///
/// A rank at depth *d* folds the traces of its children (depth *d* + 1);
/// `level` records *d*, so aggregating these across ranks yields a
/// per-level profile of where a reduction's merge time goes (the root
/// levels see the widest, most-divergent traces).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LevelTiming {
    /// Tree depth at which the folds happened (root = 0).
    pub level: usize,
    /// Pairwise merges this rank performed at that depth.
    pub merges: usize,
    /// Modeled seconds of codec + merge work for those folds.
    pub seconds: f64,
    /// LCS cells the aligner actually evaluated.
    pub dp_cells: u64,
    /// Folds fully resolved by the identical-stream fast path.
    pub fast_path_hits: usize,
}

/// Result of one rank's participation in a tree reduction.
#[derive(Debug, Clone)]
pub struct MergeOutcome {
    /// The fully merged trace — `Some` only on `participants[0]`.
    pub merged: Option<CompressedTrace>,
    /// Modeled cost of this rank's local merge work (parsing, structural
    /// merging, serialization) under [`WorkModel`]. Also registered on the
    /// rank's tool clock, so critical paths through the reduction tree
    /// propagate to waiting partners.
    pub compute: Duration,
    /// Per-level merge timing at this rank — empty for leaves, one entry
    /// (this rank's depth) for interior positions.
    pub timings: Vec<LevelTiming>,
    /// Subtree contributions lost at this rank: a dead child, a payload
    /// still corrupt after the retry budget, trace text that failed to
    /// decode, or a dead parent that could not accept this rank's ship-up.
    /// Zero on every rank means the merge is complete and exact.
    pub degraded: u64,
}

/// Run one radix-tree trace reduction among `participants`.
///
/// Every rank in `participants` must call this (with its partial trace);
/// ranks not in the list must **not** call it. The merged trace comes back
/// on `participants[0]` (the tree root).
///
/// Panics if the calling rank is not in `participants` — that is a
/// protocol error in the caller.
pub fn radix_tree_merge(
    proc: &mut Proc,
    radix: usize,
    participants: &[Rank],
    my_trace: &CompressedTrace,
) -> MergeOutcome {
    assert!(!participants.is_empty(), "merge with no participants");
    let me = proc.rank();
    let my_pos = participants
        .iter()
        .position(|&r| r == me)
        .unwrap_or_else(|| panic!("rank {me} called radix_tree_merge without being a participant"));
    let tree = RadixTree::new(radix, participants.len());
    let obs_t0 = proc.tool_time();

    // Receive children's subtree traces in arrival order (pipelining:
    // this rank works on an early subtree while a slow sibling subtree is
    // still reducing below), but fold them in canonical child order so the
    // merged trace never depends on scheduling. Out-of-order arrivals are
    // buffered until their left siblings are in.
    let work = WorkModel::calibrated();
    let mut compute = 0.0f64;
    let mut acc = my_trace.clone();
    let mut degraded = 0u64;
    let children: Vec<Rank> = tree
        .children(my_pos)
        .into_iter()
        .map(|pos| participants[pos])
        .collect();
    let mut timing = LevelTiming {
        level: tree.depth(my_pos),
        ..LevelTiming::default()
    };
    let mut fold = |proc: &mut Proc,
                    acc: &mut CompressedTrace,
                    payload: &[u8],
                    compute: &mut f64,
                    degraded: &mut u64| {
        match decode_wire_trace(payload) {
            Ok(child_trace) => {
                let touched = acc.compressed_size() + child_trace.compressed_size();
                let (folded, met) =
                    merge_into(std::mem::replace(acc, CompressedTrace::new()), &child_trace);
                *acc = folded;
                let cost = work.codec(payload.len()) + work.merge_measured(met.dp_cells, touched);
                proc.tool_compute(cost);
                *compute += cost;
                timing.merges += 1;
                timing.seconds += cost;
                timing.dp_cells += met.dp_cells;
                timing.fast_path_hits += met.fast_path as usize;
                proc.metric_add(obs::Counter::Merges, 1);
                proc.metric_add(obs::Counter::DpCells, met.dp_cells);
                proc.metric_add(obs::Counter::FastPath, met.fast_path as u64);
                proc.metric_observe(obs::HistId::DpCellsPerMerge, met.dp_cells);
            }
            Err(_) => {
                // The bytes arrived (CRC-clean when armed) but do not
                // decode: drop this subtree's contribution and continue.
                let cost = work.codec(payload.len());
                proc.tool_compute(cost);
                *compute += cost;
                *degraded += 1;
            }
        }
    };

    if proc.faults_armed() {
        // Armed worlds abandon pipelining for canonical-order reliable
        // receives: each child transfer is CRC-framed with one re-request
        // before degrading, and a dead child costs its whole subtree (no
        // mid-merge rerouting — grandchildren shipped into the dead child
        // are gone, and they count their own loss when their ship-up sees
        // the dead parent).
        for &child in &children {
            match proc.reliable_recv(child, TRACE_MERGE_TAG, Comm::TOOL, RetryPolicy::Bounded(1)) {
                Ok(bytes) => fold(proc, &mut acc, &bytes, &mut compute, &mut degraded),
                Err(_) => degraded += 1,
            }
        }
    } else {
        let mut pending: Vec<Rank> = children.clone();
        let mut buffered: Vec<Option<mpisim::PendingRecv>> = vec![None; children.len()];
        let mut next = 0usize;
        while next < children.len() {
            let Some(msg) = buffered[next].take() else {
                let msg = proc.recv_from_set(&pending, TRACE_MERGE_TAG, Comm::TOOL);
                pending.retain(|&r| r != msg.src);
                let idx = children
                    .iter()
                    .position(|&r| r == msg.src)
                    .expect("sender is one of this position's children");
                buffered[idx] = Some(msg);
                continue;
            };
            // Clock accounting happens here, in canonical child order, so
            // the modeled tool time never encodes the host's dequeue order.
            proc.complete_recv(&msg, Comm::TOOL);
            fold(proc, &mut acc, &msg.payload, &mut compute, &mut degraded);
            next += 1;
        }
    }
    let timings = if timing.merges > 0 {
        vec![timing]
    } else {
        Vec::new()
    };
    if let Some(t) = timings.first() {
        // Span over this rank's fold work: tool time on entry vs after the
        // last fold completed (receive waits included — that is the span a
        // profiler would see).
        let t1 = proc.tool_time();
        proc.record(|| obs::EventKind::MergeLevel {
            level: t.level as u64,
            merges: t.merges as u64,
            dp_cells: t.dp_cells,
            fast_path: t.fast_path_hits as u64,
            t0: obs_t0,
            t1,
        });
    }

    // Ship up or return at the root.
    let merged = match tree.parent(my_pos) {
        Some(parent_pos) => {
            let parent_rank = participants[parent_pos];
            let wire = format::to_text(&acc);
            let cost = work.codec(wire.len());
            proc.tool_compute(cost);
            compute += cost;
            if proc
                .reliable_send(parent_rank, TRACE_MERGE_TAG, Comm::TOOL, wire.as_bytes())
                .is_err()
            {
                // Dead parent (or a receiver that gave up): this rank's
                // whole folded subtree is lost to the reduction.
                degraded += 1;
            }
            None
        }
        None => Some(acc),
    };
    MergeOutcome {
        merged,
        compute: Duration::from_secs_f64(compute),
        timings,
        degraded,
    }
}

/// Decode a wire trace payload (UTF-8 text in the trace format) into a
/// [`CompressedTrace`], with a typed error instead of a panic.
pub fn decode_wire_trace(payload: &[u8]) -> Result<CompressedTrace, ProtocolError> {
    let text = std::str::from_utf8(payload).map_err(|e| ProtocolError::Decode {
        what: "trace payload",
        detail: format!("not UTF-8: {e}"),
    })?;
    format::from_text(text).map_err(|e| ProtocolError::Decode {
        what: "trace text",
        detail: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventRecord;
    use crate::op::{Endpoint, MpiOp};
    use crate::ranklist::RankSet;
    use mpisim::{World, WorldConfig};
    use sigkit::StackSig;

    fn trace_for(rank: usize, sigs: &[u64]) -> CompressedTrace {
        let mut t = CompressedTrace::new();
        for &s in sigs {
            t.append(EventRecord::new(
                MpiOp::send(Endpoint::Relative(1), 0, 8, Comm::WORLD),
                StackSig(s),
                rank,
                1.0,
            ));
        }
        t
    }

    #[test]
    fn all_ranks_merge_to_root() {
        for p in [1usize, 2, 3, 7, 8, 16] {
            let report = World::new(WorldConfig::for_tests(p))
                .run(move |proc| {
                    let me = proc.rank();
                    let participants: Vec<Rank> = (0..proc.size()).collect();
                    let mine = trace_for(me, &[1, 2, 3]);
                    radix_tree_merge(proc, DEFAULT_RADIX, &participants, &mine).merged
                })
                .unwrap();
            let root = report.results[0].as_ref().expect("root gets the merge");
            assert_eq!(
                root.compressed_size(),
                3,
                "SPMD merge stays constant, p={p}"
            );
            let mut ranks = RankSet::empty();
            root.visit_events(&mut |e| ranks = ranks.union(&e.ranks));
            assert_eq!(ranks.len(), p, "all ranks represented, p={p}");
            assert!(report.results[1..].iter().all(|r| r.is_none()));
        }
    }

    #[test]
    fn subset_merge_only_participants() {
        // Only ranks 1, 3, 5 participate; others do unrelated work.
        let report = World::new(WorldConfig::for_tests(6))
            .run(|proc| {
                let me = proc.rank();
                let participants = vec![1, 3, 5];
                if participants.contains(&me) {
                    let mine = trace_for(me, &[7, 8]);
                    radix_tree_merge(proc, 2, &participants, &mine).merged
                } else {
                    None
                }
            })
            .unwrap();
        let root = report.results[1]
            .as_ref()
            .expect("participants[0] == rank 1");
        let mut ranks = RankSet::empty();
        root.visit_events(&mut |e| ranks = ranks.union(&e.ranks));
        assert_eq!(ranks.expand(), vec![1, 3, 5]);
        assert!(report.results[0].is_none());
        assert!(report.results[3].is_none());
    }

    #[test]
    fn divergent_traces_unioned() {
        let report = World::new(WorldConfig::for_tests(4))
            .run(|proc| {
                let me = proc.rank();
                let participants: Vec<Rank> = (0..proc.size()).collect();
                // Ranks 0-1 and 2-3 execute different call sites.
                let sigs: &[u64] = if me < 2 { &[1, 2] } else { &[9] };
                let mine = trace_for(me, sigs);
                radix_tree_merge(proc, 2, &participants, &mine).merged
            })
            .unwrap();
        let root = report.results[0].as_ref().unwrap();
        let mut seen = Vec::new();
        root.visit_events(&mut |e| seen.push((e.stack_sig.0, e.ranks.expand())));
        let find = |sig: u64| {
            seen.iter()
                .find(|(s, _)| *s == sig)
                .unwrap_or_else(|| panic!("sig {sig} missing"))
                .1
                .clone()
        };
        assert_eq!(find(1), vec![0, 1]);
        assert_eq!(find(9), vec![2, 3]);
    }

    #[test]
    fn higher_radix_same_result() {
        for radix in [2usize, 4, 8] {
            let report = World::new(WorldConfig::for_tests(9))
                .run(move |proc| {
                    let me = proc.rank();
                    let participants: Vec<Rank> = (0..proc.size()).collect();
                    let mine = trace_for(me, &[1, 2]);
                    radix_tree_merge(proc, radix, &participants, &mine).merged
                })
                .unwrap();
            let root = report.results[0].as_ref().unwrap();
            assert_eq!(root.compressed_size(), 2, "radix {radix}");
            let mut ranks = RankSet::empty();
            root.visit_events(&mut |e| ranks = ranks.union(&e.ranks));
            assert_eq!(ranks.len(), 9, "radix {radix}");
        }
    }

    #[test]
    fn fold_order_is_deterministic_under_arrival_skew() {
        // Root 0 has children ranks 1 and 2. Whichever child stalls, the
        // merged node order must be identical: arrivals are taken as they
        // land (pipelining), but folds happen in canonical child order, so
        // the output never encodes thread scheduling. With disjoint traces
        // any fold-order leak would be visible in the node order.
        for slow in [1usize, 2] {
            let report = World::new(WorldConfig::for_tests(3))
                .run(move |proc| {
                    let me = proc.rank();
                    let participants: Vec<Rank> = vec![0, 1, 2];
                    if me == slow {
                        std::thread::sleep(std::time::Duration::from_millis(120));
                    }
                    let sigs: &[u64] = match me {
                        0 => &[10],
                        1 => &[20],
                        _ => &[30],
                    };
                    let mine = trace_for(me, sigs);
                    radix_tree_merge(proc, 2, &participants, &mine).merged
                })
                .unwrap();
            let root = report.results[0].as_ref().unwrap();
            let mut sigs = Vec::new();
            root.visit_events(&mut |e| sigs.push(e.stack_sig.0));
            assert_eq!(
                sigs,
                vec![10, 20, 30],
                "canonical fold order regardless of which child (rank {slow}) stalls"
            );
        }
    }

    #[test]
    fn timings_report_levels_and_fast_path() {
        // p = 7, radix 2: interior positions 0 (depth 0), 1 and 2 (depth
        // 1), each folding two children; 3..6 are leaves.
        let report = World::new(WorldConfig::for_tests(7))
            .run(move |proc| {
                let participants: Vec<Rank> = (0..proc.size()).collect();
                let mine = trace_for(proc.rank(), &[1, 2, 3]);
                radix_tree_merge(proc, 2, &participants, &mine).timings
            })
            .unwrap();
        let at = |r: usize| &report.results[r];
        for (rank, depth) in [(0usize, 0usize), (1, 1), (2, 1)] {
            let t = at(rank);
            assert_eq!(t.len(), 1, "one level entry per interior rank");
            assert_eq!(t[0].level, depth, "rank {rank}");
            assert_eq!(t[0].merges, 2, "rank {rank} folds two children");
            assert_eq!(
                t[0].fast_path_hits, 2,
                "SPMD subtree folds are identical-stream fast paths"
            );
            assert_eq!(t[0].dp_cells, 0);
            assert!(t[0].seconds > 0.0, "codec work is still charged");
        }
        for leaf in 3..7 {
            assert!(at(leaf).is_empty(), "leaves perform no merges");
        }
    }

    #[test]
    fn root_can_be_any_participant_order() {
        // The "temp rank" mapping: participants[0] = 2 is the root.
        let report = World::new(WorldConfig::for_tests(4))
            .run(|proc| {
                let me = proc.rank();
                let participants = vec![2, 0, 1, 3];
                let mine = trace_for(me, &[5]);
                radix_tree_merge(proc, 2, &participants, &mine).merged
            })
            .unwrap();
        assert!(report.results[2].is_some(), "rank 2 is the tree root");
        assert!(report.results[0].is_none());
    }
}
