//! A single compressed MPI event record.
//!
//! The unit of ScalaTrace's compressed traces: one *static* MPI call site
//! (identified by its stack signature) with its location-independent
//! parameters, the set of ranks that executed it, and delta-time
//! statistics aggregated over all dynamic instances it stands for.

use sigkit::StackSig;

use crate::hist::TimeStats;
use crate::op::MpiOp;
use crate::ranklist::RankSet;

/// One compressed event.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// The operation with encoded parameters.
    pub op: MpiOp,
    /// Calling-context signature of the call site.
    pub stack_sig: StackSig,
    /// Ranks whose traces contain this event. A fresh intra-node record
    /// holds just the recording rank; inter-node merging unions these.
    pub ranks: RankSet,
    /// Computation time between the previous MPI event and this one,
    /// aggregated over all dynamic instances.
    pub pre_time: TimeStats,
}

impl EventRecord {
    /// Fresh single-instance record for `rank`.
    pub fn new(op: MpiOp, stack_sig: StackSig, rank: mpisim::Rank, pre_dt: f64) -> Self {
        EventRecord {
            op,
            stack_sig,
            ranks: RankSet::singleton(rank),
            pre_time: TimeStats::from_sample(pre_dt),
        }
    }

    /// Structural identity for compression and merging: same call site
    /// issuing the same operation. Time statistics and ranklists are
    /// payload, not identity — they aggregate when records fold.
    pub fn same_site(&self, other: &EventRecord) -> bool {
        self.stack_sig == other.stack_sig && self.op == other.op
    }

    /// Fold another record of the same site into this one (loop
    /// compression: consecutive iterations; inter-node merge: other ranks).
    ///
    /// Panics in debug builds if the records are not the same site.
    pub fn absorb(&mut self, other: &EventRecord) {
        debug_assert!(self.same_site(other), "absorbing a different site");
        self.ranks = self.ranks.union(&other.ranks);
        self.pre_time.merge(&other.pre_time);
    }

    /// Replace the participant set (Chameleon's lead-trace preparation:
    /// "each lead process replaces the ranklist of events with the ranklist
    /// of its cluster", Algorithm 3 step 4).
    pub fn set_ranks(&mut self, ranks: RankSet) {
        self.ranks = ranks;
    }

    /// Approximate in-memory footprint in bytes (Table IV accounting):
    /// op + signature + ranklist + time statistics.
    pub fn byte_size(&self) -> usize {
        64 + self.ranks.byte_size() + self.pre_time.byte_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Endpoint;
    use mpisim::Comm;

    fn send_ev(sig: u64, off: i64, rank: usize) -> EventRecord {
        EventRecord::new(
            MpiOp::send(Endpoint::Relative(off), 1, 8, Comm::WORLD),
            StackSig(sig),
            rank,
            1.0,
        )
    }

    #[test]
    fn same_site_requires_sig_and_op() {
        let a = send_ev(1, 1, 0);
        let b = send_ev(1, 1, 5); // different rank, same site
        let c = send_ev(2, 1, 0); // different signature
        let d = send_ev(1, 2, 0); // different endpoint offset
        assert!(a.same_site(&b));
        assert!(!a.same_site(&c));
        assert!(!a.same_site(&d));
    }

    #[test]
    fn absorb_unions_ranks_and_times() {
        let mut a = send_ev(1, 1, 0);
        let b = send_ev(1, 1, 5);
        a.absorb(&b);
        assert_eq!(a.ranks.expand(), vec![0, 5]);
        assert_eq!(a.pre_time.count(), 2);
    }

    #[test]
    fn set_ranks_replaces() {
        let mut a = send_ev(1, 1, 3);
        a.set_ranks(RankSet::from_ranks(0..6));
        assert_eq!(a.ranks.len(), 6);
    }

    #[test]
    fn barrier_records_match_across_ranks() {
        let mk = |rank| EventRecord::new(MpiOp::barrier(Comm::WORLD), StackSig(0xb), rank, 0.5);
        let (x, y) = (mk(0), mk(1));
        assert!(x.same_site(&y));
    }

    #[test]
    fn byte_size_positive_and_grows_with_ranks() {
        let small = send_ev(1, 1, 0);
        let mut big = send_ev(1, 1, 0);
        big.set_ranks(RankSet::from_ranks(vec![0, 7, 19, 23, 100]));
        assert!(small.byte_size() > 0);
        assert!(big.byte_size() >= small.byte_size());
    }
}
