//! # scalatrace — a re-implementation of the ScalaTrace V2 tracing toolset
//!
//! ScalaTrace (Noeth, Ratn, Mueller, Schulz, de Supinski; JPDC 2009 and
//! Wu & Mueller, ICS 2013) is the substrate Chameleon builds on. It captures
//! MPI events per rank, compresses loops into Regular Section Descriptors
//! (RSDs) and nested loops into power-RSDs (PRSDs), and consolidates the
//! per-rank traces into one near-constant-size global trace in a reduction
//! over a radix tree at `MPI_Finalize`.
//!
//! This crate provides the complete pipeline:
//!
//! * [`op`] — MPI operation descriptors with ScalaTrace's
//!   *location-independent* (relative) endpoint encoding;
//! * [`ranklist`] — the `<dimension, start_rank, iteration_length, stride>`
//!   communication-group encoding and its algebra;
//! * [`hist`] — delta-time statistics/histograms attached to events;
//! * [`event`] — a single compressed MPI event record;
//! * [`trace`] — the PRSD-compressed trace with **online intra-node
//!   compression** (tail matching with loop nesting);
//! * [`merge`] — **inter-node compression**: structural merging of two
//!   compressed traces (the O(n²) pairwise step of the paper's
//!   O(n² log P) radix-tree reduction);
//! * [`format`] — the text trace-file format (serialize + parse);
//! * [`tracer`] — the PMPI-style interposition layer over
//!   [`mpisim::Proc`]: records events with stack signatures, maintains
//!   per-interval Call-Path/SRC/DEST signatures, and supports disabling
//!   tracing on non-lead ranks;
//! * [`reduction`] — the distributed radix-tree trace consolidation used
//!   by plain ScalaTrace at finalize and by Chameleon online.

pub mod event;
pub mod format;
pub mod hist;
pub mod merge;
pub mod op;
pub mod ranklist;
pub mod reduction;
pub mod trace;
pub mod tracer;

pub use event::EventRecord;
pub use hist::TimeStats;
pub use op::{Endpoint, MpiOp, OpKind};
pub use ranklist::{RankList, RankSet};
pub use trace::{CompressedTrace, TraceNode};
pub use tracer::{IntervalSignatures, TracedProc, Tracer};
