//! MPI operation descriptors with location-independent endpoint encoding.
//!
//! ScalaTrace property (1) (paper §II): "Communication end-points (task
//! IDs) in SPMD programs often differ from one node to another. However,
//! their position relative to the MPI task ID often remains constant.
//! Therefore, ScalaTrace leverages relative encodings of communication
//! end-points, i.e., an end-point is denoted as ±c for a constant c
//! relative to the current MPI task ID."
//!
//! Relative encoding is the key to cross-rank trace merging *and* to
//! clustered replay: rank 7's "send to +1" re-instantiates as "send to 8"
//! on rank 7 and "send to 13" on rank 12, letting one lead trace stand in
//! for a whole cluster.

use mpisim::{Comm, Rank, Tag};

/// A communication endpoint in location-independent form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Endpoint {
    /// Offset relative to the issuing rank (`±c`); the common SPMD case.
    Relative(i64),
    /// An absolute rank that does not follow the relative pattern (e.g. a
    /// fixed master in a master–worker code, or a collective root).
    Absolute(Rank),
    /// Wildcard receive (`MPI_ANY_SOURCE`).
    Any,
}

impl Endpoint {
    /// Encode a concrete peer rank relative to `me`.
    ///
    /// ScalaTrace prefers the relative form; callers that know an endpoint
    /// is structurally absolute (masters, roots) use
    /// [`Endpoint::Absolute`] directly.
    pub fn encode(me: Rank, peer: Rank) -> Endpoint {
        Endpoint::Relative(peer as i64 - me as i64)
    }

    /// Re-instantiate the endpoint for a (possibly different) rank `me` in
    /// a world of `size` ranks. Returns `None` for wildcards or when the
    /// transposed endpoint falls outside the world.
    pub fn resolve(&self, me: Rank, size: usize) -> Option<Rank> {
        match *self {
            Endpoint::Relative(off) => {
                let r = me as i64 + off;
                (r >= 0 && (r as usize) < size).then_some(r as Rank)
            }
            Endpoint::Absolute(r) => (r < size).then_some(r),
            Endpoint::Any => None,
        }
    }

    /// A numeric signature of the endpoint for SRC/DEST parameter
    /// averaging (see `sigkit::param`). Nearby offsets map to nearby
    /// values; absolute endpoints are kept in a disjoint band so that
    /// "relative +1" never averages into "absolute rank 1".
    pub fn param_sig(&self) -> u64 {
        match *self {
            Endpoint::Relative(off) => sigkit::param::endpoint_param(off),
            // Absolute endpoints occupy a band near the top of the space.
            Endpoint::Absolute(r) => (3u64 << 62) | (r as u64 & ((1 << 40) - 1)),
            Endpoint::Any => 1u64 << 61,
        }
    }
}

/// Classification of MPI operations recorded in traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpKind {
    /// Point-to-point blocking send.
    Send,
    /// Point-to-point blocking receive.
    Recv,
    /// Combined send+receive exchange.
    SendRecv,
    /// Barrier synchronization.
    Barrier,
    /// Reduction to a root.
    Reduce,
    /// Broadcast from a root.
    Bcast,
    /// All-reduce.
    Allreduce,
    /// Gather to a root.
    Gather,
    /// `MPI_Finalize` (traced so the final interval is non-empty; see
    /// paper §III on finalize handling).
    Finalize,
}

impl OpKind {
    /// Short stable mnemonic used by the trace text format.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            OpKind::Send => "send",
            OpKind::Recv => "recv",
            OpKind::SendRecv => "sendrecv",
            OpKind::Barrier => "barrier",
            OpKind::Reduce => "reduce",
            OpKind::Bcast => "bcast",
            OpKind::Allreduce => "allreduce",
            OpKind::Gather => "gather",
            OpKind::Finalize => "finalize",
        }
    }

    /// Parse a mnemonic back; inverse of [`OpKind::mnemonic`].
    pub fn from_mnemonic(s: &str) -> Option<OpKind> {
        Some(match s {
            "send" => OpKind::Send,
            "recv" => OpKind::Recv,
            "sendrecv" => OpKind::SendRecv,
            "barrier" => OpKind::Barrier,
            "reduce" => OpKind::Reduce,
            "bcast" => OpKind::Bcast,
            "allreduce" => OpKind::Allreduce,
            "gather" => OpKind::Gather,
            "finalize" => OpKind::Finalize,
            _ => return None,
        })
    }

    /// Whether the operation is collective (involves the whole
    /// communicator rather than one peer).
    pub fn is_collective(&self) -> bool {
        matches!(
            self,
            OpKind::Barrier
                | OpKind::Reduce
                | OpKind::Bcast
                | OpKind::Allreduce
                | OpKind::Gather
                | OpKind::Finalize
        )
    }
}

/// A fully-described MPI operation: what the PMPI wrapper sees, in
/// location-independent form. This — together with the stack signature —
/// is the unit of equality for loop compression and inter-node merging.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MpiOp {
    /// Operation kind.
    pub kind: OpKind,
    /// Receive source (for Recv/SendRecv) in encoded form.
    pub src: Option<Endpoint>,
    /// Send destination (for Send/SendRecv) or collective root (for
    /// Reduce/Bcast/Gather) in encoded form.
    pub dest: Option<Endpoint>,
    /// Message tag (send side for SendRecv; None for collectives).
    pub tag: Option<Tag>,
    /// Receive-side tag of a SendRecv exchange (None elsewhere).
    pub recv_tag: Option<Tag>,
    /// Payload byte count ("count" in MPI terms; 0 for barrier).
    pub count: usize,
    /// Communicator.
    pub comm: Comm,
}

impl MpiOp {
    /// Barrier on `comm`.
    pub fn barrier(comm: Comm) -> Self {
        MpiOp {
            kind: OpKind::Barrier,
            src: None,
            dest: None,
            tag: None,
            recv_tag: None,
            count: 0,
            comm,
        }
    }

    /// Send of `count` bytes to `dest` with `tag`.
    pub fn send(dest: Endpoint, tag: Tag, count: usize, comm: Comm) -> Self {
        MpiOp {
            kind: OpKind::Send,
            src: None,
            dest: Some(dest),
            tag: Some(tag),
            recv_tag: None,
            count,
            comm,
        }
    }

    /// Receive of `count` bytes from `src` with `tag`.
    pub fn recv(src: Endpoint, tag: Tag, count: usize, comm: Comm) -> Self {
        MpiOp {
            kind: OpKind::Recv,
            src: Some(src),
            dest: Some(Endpoint::Relative(0)),
            tag: Some(tag),
            recv_tag: None,
            count,
            comm,
        }
    }

    /// Collective with a root (reduce/bcast/gather).
    pub fn rooted(kind: OpKind, root: Rank, count: usize, comm: Comm) -> Self {
        debug_assert!(kind.is_collective());
        MpiOp {
            kind,
            src: None,
            dest: Some(Endpoint::Absolute(root)),
            tag: None,
            recv_tag: None,
            count,
            comm,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_encode_resolve_roundtrip() {
        for me in [0usize, 5, 100] {
            for peer in [0usize, 1, 5, 99, 101] {
                let ep = Endpoint::encode(me, peer);
                assert_eq!(ep.resolve(me, 200), Some(peer));
            }
        }
    }

    #[test]
    fn relative_transposes_across_ranks() {
        // Rank 7 sends to 8 (offset +1). Replayed on rank 12 the same
        // endpoint resolves to 13 — the clustered-replay property.
        let ep = Endpoint::encode(7, 8);
        assert_eq!(ep, Endpoint::Relative(1));
        assert_eq!(ep.resolve(12, 64), Some(13));
    }

    #[test]
    fn resolve_out_of_bounds_is_none() {
        assert_eq!(Endpoint::Relative(-1).resolve(0, 16), None);
        assert_eq!(Endpoint::Relative(1).resolve(15, 16), None);
        assert_eq!(Endpoint::Absolute(16).resolve(3, 16), None);
    }

    #[test]
    fn any_never_resolves() {
        assert_eq!(Endpoint::Any.resolve(5, 16), None);
    }

    #[test]
    fn param_sig_bands_disjoint() {
        // Relative offsets live mid-range; absolute ranks live in the top
        // band; they must never alias for realistic values.
        let rel = Endpoint::Relative(1).param_sig();
        let abs = Endpoint::Absolute(1).param_sig();
        assert_ne!(rel, abs);
        assert!(abs > rel);
    }

    #[test]
    fn param_sig_nearby_offsets_nearby() {
        let a = Endpoint::Relative(-1).param_sig();
        let b = Endpoint::Relative(1).param_sig();
        assert_eq!(b - a, 2);
    }

    #[test]
    fn mnemonic_roundtrip() {
        for kind in [
            OpKind::Send,
            OpKind::Recv,
            OpKind::SendRecv,
            OpKind::Barrier,
            OpKind::Reduce,
            OpKind::Bcast,
            OpKind::Allreduce,
            OpKind::Gather,
            OpKind::Finalize,
        ] {
            assert_eq!(OpKind::from_mnemonic(kind.mnemonic()), Some(kind));
        }
        assert_eq!(OpKind::from_mnemonic("bogus"), None);
    }

    #[test]
    fn collective_classification() {
        assert!(OpKind::Barrier.is_collective());
        assert!(OpKind::Allreduce.is_collective());
        assert!(!OpKind::Send.is_collective());
        assert!(!OpKind::Recv.is_collective());
    }

    #[test]
    fn op_constructors() {
        let b = MpiOp::barrier(Comm::WORLD);
        assert_eq!(b.kind, OpKind::Barrier);
        assert_eq!(b.count, 0);

        let s = MpiOp::send(Endpoint::Relative(1), 9, 1024, Comm::WORLD);
        assert_eq!(s.kind, OpKind::Send);
        assert_eq!(s.dest, Some(Endpoint::Relative(1)));
        assert_eq!(s.tag, Some(9));

        let r = MpiOp::rooted(OpKind::Reduce, 0, 8, Comm::WORLD);
        assert_eq!(r.dest, Some(Endpoint::Absolute(0)));
    }
}
