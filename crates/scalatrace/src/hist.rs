//! Delta-time statistics attached to compressed events.
//!
//! ScalaTrace records the computation time elapsed between consecutive MPI
//! events ("delta times", Wu et al. ICPP 2011) and, because one compressed
//! event stands for many dynamic instances across iterations and ranks,
//! stores them as summary statistics plus a histogram rather than a list.
//! The paper leans on this for load-imbalanced codes: "Sweep3D exhibits
//! load imbalance, but this irregularity does not affect clustering since
//! delta times are represented in histograms for repetitive signatures."

use mpisim::VirtualTime;

/// Number of logarithmic histogram bins. Bin i covers
/// `[2^(i-1), 2^i) * BIN_UNIT` seconds, with bin 0 covering `[0, BIN_UNIT)`.
pub const BINS: usize = 24;

/// Finest histogram granularity: 100 ns.
const BIN_UNIT: f64 = 1e-7;

/// Summary statistics + log-scale histogram of delta times.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimeStats {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    bins: [u32; BINS],
}

impl TimeStats {
    /// No samples yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stats holding a single sample.
    pub fn from_sample(dt: VirtualTime) -> Self {
        let mut s = Self::new();
        s.record(dt);
        s
    }

    /// Reassemble from serialized parts (trace file parser).
    pub fn from_parts(count: u64, sum: f64, min: f64, max: f64, bins: [u32; BINS]) -> Self {
        TimeStats {
            count,
            sum,
            min,
            max,
            bins,
        }
    }

    /// Record one delta-time sample (clamped at 0).
    pub fn record(&mut self, dt: VirtualTime) {
        let dt = dt.max(0.0);
        if self.count == 0 {
            self.min = dt;
            self.max = dt;
        } else {
            self.min = self.min.min(dt);
            self.max = self.max.max(dt);
        }
        self.count += 1;
        self.sum += dt;
        self.bins[Self::bin_of(dt)] += 1;
    }

    fn bin_of(dt: f64) -> usize {
        if dt < BIN_UNIT {
            return 0;
        }
        // Compute in f64 and clamp before converting: dt / BIN_UNIT can
        // overflow to infinity for extreme inputs.
        let b = (dt / BIN_UNIT).log2().floor() + 1.0;
        if b.is_finite() && b < (BINS - 1) as f64 {
            b as usize
        } else {
            BINS - 1
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean delta time (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Total accumulated delta time.
    pub fn total(&self) -> f64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Histogram bins (log scale, see [`BINS`]).
    pub fn bins(&self) -> &[u32; BINS] {
        &self.bins
    }

    /// Merge another set of statistics into this one (event folding during
    /// loop compression and cross-rank merging both land here).
    pub fn merge(&mut self, other: &TimeStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
        for (a, b) in self.bins.iter_mut().zip(other.bins.iter()) {
            *a += *b;
        }
    }

    /// Draw a representative delta time for replay: the histogram-weighted
    /// mean, which matches the total time budget exactly in expectation.
    pub fn replay_sample(&self) -> VirtualTime {
        self.mean()
    }

    /// Approximate in-memory footprint for Table IV accounting.
    pub fn byte_size(&self) -> usize {
        8 * 4 + BINS * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = TimeStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn single_sample() {
        let s = TimeStats::from_sample(2.5);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 2.5);
        assert_eq!(s.min(), 2.5);
        assert_eq!(s.max(), 2.5);
    }

    #[test]
    fn multiple_samples() {
        let mut s = TimeStats::new();
        s.record(1.0);
        s.record(3.0);
        s.record(2.0);
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 3.0);
        assert_eq!(s.total(), 6.0);
    }

    #[test]
    fn negative_clamped() {
        let s = TimeStats::from_sample(-1.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn bins_monotone_assignment() {
        assert_eq!(TimeStats::bin_of(0.0), 0);
        assert_eq!(TimeStats::bin_of(5e-8), 0);
        assert!(TimeStats::bin_of(1e-6) > TimeStats::bin_of(1e-7));
        assert!(TimeStats::bin_of(1.0) > TimeStats::bin_of(1e-3));
        assert_eq!(TimeStats::bin_of(f64::MAX), BINS - 1, "saturates");
    }

    #[test]
    fn histogram_counts_samples() {
        let mut s = TimeStats::new();
        for _ in 0..10 {
            s.record(1e-3);
        }
        let total: u32 = s.bins().iter().sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn merge_combines() {
        let mut a = TimeStats::new();
        a.record(1.0);
        a.record(2.0);
        let mut b = TimeStats::new();
        b.record(10.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 10.0);
        assert_eq!(a.min(), 1.0);
        assert_eq!(a.total(), 13.0);
        let total: u32 = a.bins().iter().sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn merge_with_empty_identity() {
        let mut a = TimeStats::from_sample(5.0);
        let snapshot = a.clone();
        a.merge(&TimeStats::new());
        assert_eq!(a, snapshot);

        let mut e = TimeStats::new();
        e.merge(&snapshot);
        assert_eq!(e, snapshot);
    }

    #[test]
    fn replay_sample_preserves_total_in_expectation() {
        let mut s = TimeStats::new();
        for dt in [0.5, 1.5, 1.0, 1.0] {
            s.record(dt);
        }
        // count * replay_sample == total
        let reconstructed = s.replay_sample() * s.count() as f64;
        assert!((reconstructed - s.total()).abs() < 1e-12);
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use xrand::Xoshiro256;

    /// Merging in any grouping equals recording everything into one.
    #[test]
    fn merge_associative_with_record() {
        let mut rng = Xoshiro256::seed_from_u64(0xA550);
        for _case in 0..256 {
            let xs: Vec<f64> = (0..rng.usize_below(32))
                .map(|_| rng.f64_unit() * 1e3)
                .collect();
            let ys: Vec<f64> = (0..rng.usize_below(32))
                .map(|_| rng.f64_unit() * 1e3)
                .collect();
            let mut lhs = TimeStats::new();
            for &x in &xs {
                lhs.record(x);
            }
            let mut rhs = TimeStats::new();
            for &y in &ys {
                rhs.record(y);
            }
            lhs.merge(&rhs);

            let mut all = TimeStats::new();
            for &v in xs.iter().chain(ys.iter()) {
                all.record(v);
            }

            assert_eq!(lhs.count(), all.count());
            assert!((lhs.total() - all.total()).abs() < 1e-9);
            assert_eq!(lhs.bins(), all.bins());
            assert_eq!(lhs.min(), all.min());
            assert_eq!(lhs.max(), all.max());
        }
    }

    /// Histogram mass always equals the sample count.
    #[test]
    fn histogram_mass() {
        let mut rng = Xoshiro256::seed_from_u64(0x1157);
        for _case in 0..256 {
            let xs: Vec<f64> = (0..rng.usize_below(64))
                .map(|_| rng.f64_unit() * 1e6)
                .collect();
            let mut s = TimeStats::new();
            for &x in &xs {
                s.record(x);
            }
            let mass: u64 = s.bins().iter().map(|&b| b as u64).sum();
            assert_eq!(mass, xs.len() as u64);
        }
    }
}
