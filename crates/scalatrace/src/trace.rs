//! PRSD-compressed traces with online intra-node compression.
//!
//! ScalaTrace captures "MPI events in the innermost loop as Regular
//! Section Descriptors (RSD), while power-RSDs capture RSDs of higher-level
//! loop nests represented as a constant sized data structure" (paper §II).
//! The paper's running example:
//!
//! ```text
//! for i = 0..1000 { for k = 0..100 { MPI_Send; MPI_Recv } MPI_Barrier }
//! ```
//!
//! compresses to `RSD1:<100, Send, Recv>` and
//! `PRSD1:<1000, RSD1, Barrier>`. Here a [`TraceNode::Loop`] is an
//! RSD/PRSD (loops nest, so the two are one type), and compression happens
//! **online**: every [`CompressedTrace::append`] attempts to fold the trace
//! tail into a preceding identical window or into a preceding loop,
//! repeating until a fixpoint — so the in-memory trace stays in compressed
//! form at all times, which is what makes per-marker-interval tracing
//! cheap enough to run online.

use crate::event::EventRecord;

/// Maximum loop-body length (in trace nodes) the tail matcher considers.
/// Real loop bodies in the benchmarked codes are far shorter; the bound
/// keeps `append` O(W²) worst-case.
pub const MAX_WINDOW: usize = 32;

/// One node of a compressed trace: a leaf event or a loop (RSD/PRSD).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceNode {
    /// A single compressed event.
    Event(EventRecord),
    /// `iters` repetitions of `body` — an RSD when the body is all events,
    /// a PRSD when the body contains loops.
    Loop {
        /// Repetition count.
        iters: u64,
        /// The loop body.
        body: Vec<TraceNode>,
    },
}

impl TraceNode {
    /// Structural match for compression: same shape, same call sites, same
    /// iteration counts. Ranklists and time statistics are payload and do
    /// not participate.
    pub fn matches(&self, other: &TraceNode) -> bool {
        match (self, other) {
            (TraceNode::Event(a), TraceNode::Event(b)) => a.same_site(b),
            (
                TraceNode::Loop {
                    iters: ia,
                    body: ba,
                },
                TraceNode::Loop {
                    iters: ib,
                    body: bb,
                },
            ) => ia == ib && ba.len() == bb.len() && ba.iter().zip(bb).all(|(x, y)| x.matches(y)),
            _ => false,
        }
    }

    /// Fold `other` (which must match structurally) into `self`,
    /// aggregating time statistics and ranklists of corresponding events.
    pub fn absorb(&mut self, other: &TraceNode) {
        match (self, other) {
            (TraceNode::Event(a), TraceNode::Event(b)) => a.absorb(b),
            (TraceNode::Loop { body: ba, .. }, TraceNode::Loop { body: bb, .. }) => {
                debug_assert_eq!(ba.len(), bb.len(), "absorbing mismatched loop");
                for (x, y) in ba.iter_mut().zip(bb) {
                    x.absorb(y);
                }
            }
            _ => debug_assert!(false, "absorbing mismatched node kinds"),
        }
    }

    /// Number of compressed nodes (events + loop headers) in this subtree:
    /// the paper's *n*, "the number of MPI events in PRSD compressed
    /// notation".
    pub fn compressed_size(&self) -> usize {
        match self {
            TraceNode::Event(_) => 1,
            TraceNode::Loop { body, .. } => {
                1 + body.iter().map(|n| n.compressed_size()).sum::<usize>()
            }
        }
    }

    /// Number of dynamic event instances this subtree stands for.
    pub fn dynamic_size(&self) -> u64 {
        match self {
            TraceNode::Event(_) => 1,
            TraceNode::Loop { iters, body } => {
                iters * body.iter().map(|n| n.dynamic_size()).sum::<u64>()
            }
        }
    }

    /// Approximate in-memory footprint in bytes.
    pub fn byte_size(&self) -> usize {
        match self {
            TraceNode::Event(e) => e.byte_size(),
            TraceNode::Loop { body, .. } => 16 + body.iter().map(|n| n.byte_size()).sum::<usize>(),
        }
    }

    /// Visit every leaf event without expanding loops.
    pub fn visit_events<'a>(&'a self, f: &mut impl FnMut(&'a EventRecord)) {
        match self {
            TraceNode::Event(e) => f(e),
            TraceNode::Loop { body, .. } => {
                for n in body {
                    n.visit_events(f);
                }
            }
        }
    }

    /// Visit every leaf event mutably.
    pub fn visit_events_mut(&mut self, f: &mut impl FnMut(&mut EventRecord)) {
        match self {
            TraceNode::Event(e) => f(e),
            TraceNode::Loop { body, .. } => {
                for n in body {
                    n.visit_events_mut(f);
                }
            }
        }
    }

    /// Walk the subtree in dynamic order, expanding loop iterations.
    pub fn walk(&self, f: &mut impl FnMut(&EventRecord)) {
        match self {
            TraceNode::Event(e) => f(e),
            TraceNode::Loop { iters, body } => {
                for _ in 0..*iters {
                    for n in body {
                        n.walk(f);
                    }
                }
            }
        }
    }

    /// Structural fingerprint: two nodes that [`TraceNode::matches`] always
    /// hash equal (events: call site + operation; loops: trip count plus
    /// the body's recursive hashes). Payload — ranklists, time statistics —
    /// is deliberately excluded, so the hash is stable across `absorb`.
    /// The merge precomputes one hash per top-level node and uses equality
    /// of hashes as an O(1) prefilter before the full (recursive)
    /// structural comparison.
    pub fn structural_hash(&self) -> u64 {
        use std::hash::Hasher;
        // DefaultHasher::new() uses fixed keys, so hashes are deterministic
        // within a build — all the prefilter needs.
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.hash_structure(&mut h);
        h.finish()
    }

    fn hash_structure(&self, h: &mut impl std::hash::Hasher) {
        use std::hash::Hash;
        match self {
            TraceNode::Event(e) => {
                0u8.hash(h);
                e.stack_sig.hash(h);
                e.op.hash(h);
            }
            TraceNode::Loop { iters, body } => {
                1u8.hash(h);
                iters.hash(h);
                body.len().hash(h);
                for n in body {
                    n.hash_structure(h);
                }
            }
        }
    }
}

/// A PRSD-compressed event trace with online tail compression.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompressedTrace {
    nodes: Vec<TraceNode>,
}

impl CompressedTrace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Construct directly from nodes (deserialization, merging).
    pub fn from_nodes(nodes: Vec<TraceNode>) -> Self {
        CompressedTrace { nodes }
    }

    /// Consume the trace, yielding its top-level nodes. Lets the merge fold
    /// matched nodes into the accumulator's buffers instead of cloning.
    pub fn into_nodes(self) -> Vec<TraceNode> {
        self.nodes
    }

    /// Top-level node sequence.
    pub fn nodes(&self) -> &[TraceNode] {
        &self.nodes
    }

    /// Mutable top-level node sequence (used by the inter-node merge).
    pub fn nodes_mut(&mut self) -> &mut Vec<TraceNode> {
        &mut self.nodes
    }

    /// True if no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Append one event and re-compress the tail to a fixpoint. This is the
    /// *online intra-node compression*: the trace never exists in
    /// uncompressed form.
    pub fn append(&mut self, ev: EventRecord) {
        self.nodes.push(TraceNode::Event(ev));
        while self.try_fold_tail() {}
    }

    /// One folding step. Returns true if the tail shrank.
    fn try_fold_tail(&mut self) -> bool {
        let n = self.nodes.len();
        for w in 1..=MAX_WINDOW {
            // Case A: the node right before the tail window is a loop whose
            // body matches the window — one more iteration of it.
            if n > w {
                let (head, tail) = self.nodes.split_at_mut(n - w);
                if let Some(TraceNode::Loop { iters, body }) = head.last_mut() {
                    if body.len() == w && body.iter().zip(tail.iter()).all(|(b, t)| b.matches(t)) {
                        for (b, t) in body.iter_mut().zip(tail.iter()) {
                            b.absorb(t);
                        }
                        *iters += 1;
                        self.nodes.truncate(n - w);
                        return true;
                    }
                }
            }
            // Case B: the tail window repeats the window right before it —
            // fold both into a fresh 2-iteration loop.
            if n >= 2 * w {
                let (first, second) = (n - 2 * w, n - w);
                let windows_match =
                    (0..w).all(|i| self.nodes[first + i].matches(&self.nodes[second + i]));
                if windows_match {
                    let tail: Vec<TraceNode> = self.nodes.drain(second..).collect();
                    let mut body: Vec<TraceNode> = self.nodes.drain(first..).collect();
                    for (b, t) in body.iter_mut().zip(tail.iter()) {
                        b.absorb(t);
                    }
                    self.nodes.push(TraceNode::Loop { iters: 2, body });
                    return true;
                }
            }
        }
        false
    }

    /// Compressed size *n* (total nodes, the paper's complexity parameter).
    pub fn compressed_size(&self) -> usize {
        self.nodes.iter().map(|n| n.compressed_size()).sum()
    }

    /// Dynamic event-instance count represented by the trace.
    pub fn dynamic_size(&self) -> u64 {
        self.nodes.iter().map(|n| n.dynamic_size()).sum()
    }

    /// Approximate allocation footprint in bytes (Table IV).
    pub fn byte_size(&self) -> usize {
        32 + self.nodes.iter().map(|n| n.byte_size()).sum::<usize>()
    }

    /// Visit every compressed (leaf) event once.
    pub fn visit_events<'a>(&'a self, f: &mut impl FnMut(&'a EventRecord)) {
        for n in &self.nodes {
            n.visit_events(f);
        }
    }

    /// Visit every compressed event mutably (ranklist substitution).
    pub fn visit_events_mut(&mut self, f: &mut impl FnMut(&mut EventRecord)) {
        for n in &mut self.nodes {
            n.visit_events_mut(f);
        }
    }

    /// Walk in dynamic order, expanding loops (replay).
    pub fn walk(&self, f: &mut impl FnMut(&EventRecord)) {
        for n in &self.nodes {
            n.walk(f);
        }
    }

    /// Append one already-compressed node and re-fold the tail. This is how
    /// rank 0 grows the *online* trace: successive phase traces arrive as
    /// node sequences, and repeated phases fold into loops exactly as if
    /// the whole run had been compressed at finalize.
    pub fn append_node(&mut self, node: TraceNode) {
        self.nodes.push(node);
        while self.try_fold_tail() {}
    }

    /// Absorb another trace node-by-node with tail folding — the online
    /// trace's incremental growth (paper: "The online trace incrementally
    /// expands to an equivalent output of MPI_Finalize in the original
    /// ScalaTrace").
    pub fn absorb_trace(&mut self, other: &CompressedTrace) {
        for node in other.nodes() {
            self.append_node(node.clone());
        }
    }

    /// Remove all content (paper, Algorithm 3 step 6: "all processes start
    /// over by removing their partial intra-node trace").
    pub fn clear(&mut self) {
        self.nodes.clear();
    }

    /// Append all nodes of another trace (concatenation *without*
    /// cross-boundary folding; used when stitching interval traces into the
    /// online trace where boundaries are marker-aligned).
    pub fn extend_from(&mut self, other: &CompressedTrace) {
        self.nodes.extend(other.nodes.iter().cloned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Endpoint, MpiOp, OpKind};
    use mpisim::Comm;
    use sigkit::StackSig;

    fn ev(sig: u64) -> EventRecord {
        EventRecord::new(
            MpiOp::send(Endpoint::Relative(1), 0, 8, Comm::WORLD),
            StackSig(sig),
            0,
            1.0,
        )
    }

    fn barrier_ev(sig: u64) -> EventRecord {
        EventRecord::new(MpiOp::barrier(Comm::WORLD), StackSig(sig), 0, 1.0)
    }

    #[test]
    fn single_event_no_fold() {
        let mut t = CompressedTrace::new();
        t.append(ev(1));
        assert_eq!(t.compressed_size(), 1);
        assert_eq!(t.dynamic_size(), 1);
    }

    #[test]
    fn repeated_event_folds_to_loop() {
        let mut t = CompressedTrace::new();
        for _ in 0..100 {
            t.append(ev(1));
        }
        assert_eq!(t.nodes().len(), 1);
        match &t.nodes()[0] {
            TraceNode::Loop { iters, body } => {
                assert_eq!(*iters, 100);
                assert_eq!(body.len(), 1);
            }
            other => panic!("expected loop, got {other:?}"),
        }
        assert_eq!(t.dynamic_size(), 100);
    }

    #[test]
    fn alternating_pair_folds() {
        // send(1), recv(2) repeated: the paper's RSD1 = <100, Send, Recv>.
        let mut t = CompressedTrace::new();
        for _ in 0..100 {
            t.append(ev(1));
            t.append(ev(2));
        }
        assert_eq!(t.nodes().len(), 1);
        match &t.nodes()[0] {
            TraceNode::Loop { iters, body } => {
                assert_eq!(*iters, 100);
                assert_eq!(body.len(), 2);
            }
            other => panic!("expected loop, got {other:?}"),
        }
        assert_eq!(t.dynamic_size(), 200);
        // All 100 instances of each site aggregated into one record.
        let mut counts = Vec::new();
        t.visit_events(&mut |e| counts.push(e.pre_time.count()));
        assert_eq!(counts, vec![100, 100]);
    }

    #[test]
    fn paper_nested_example_forms_prsd() {
        // for 1000 { for 100 { send; recv } barrier } — must compress to
        // PRSD <1000, <100, send, recv>, barrier> with 3 distinct sites.
        let mut t = CompressedTrace::new();
        let outer = 50; // scaled down for test speed; structure identical
        let inner = 20;
        for _ in 0..outer {
            for _ in 0..inner {
                t.append(ev(1));
                t.append(ev(2));
            }
            t.append(barrier_ev(3));
        }
        assert_eq!(t.nodes().len(), 1, "single top-level PRSD: {t:?}");
        match &t.nodes()[0] {
            TraceNode::Loop { iters, body } => {
                assert_eq!(*iters, outer);
                assert_eq!(body.len(), 2, "inner loop + barrier");
                match &body[0] {
                    TraceNode::Loop { iters, body } => {
                        assert_eq!(*iters, inner);
                        assert_eq!(body.len(), 2);
                    }
                    other => panic!("expected inner RSD, got {other:?}"),
                }
            }
            other => panic!("expected PRSD, got {other:?}"),
        }
        assert_eq!(t.compressed_size(), 5, "2 loop headers + 3 events");
        assert_eq!(t.dynamic_size(), outer * (inner * 2 + 1));
    }

    #[test]
    fn distinct_sites_do_not_fold() {
        let mut t = CompressedTrace::new();
        for i in 0..10 {
            t.append(ev(i));
        }
        assert_eq!(t.nodes().len(), 10);
        assert_eq!(t.compressed_size(), 10);
    }

    #[test]
    fn walk_expands_dynamic_order() {
        let mut t = CompressedTrace::new();
        for _ in 0..3 {
            t.append(ev(1));
            t.append(ev(2));
        }
        let mut seq = Vec::new();
        t.walk(&mut |e| seq.push(e.stack_sig.0));
        assert_eq!(seq, vec![1, 2, 1, 2, 1, 2]);
    }

    #[test]
    fn near_constant_size_regardless_of_iterations() {
        let size_for = |iters: usize| {
            let mut t = CompressedTrace::new();
            for _ in 0..iters {
                t.append(ev(1));
                t.append(ev(2));
                t.append(barrier_ev(3));
            }
            t.byte_size()
        };
        let small = size_for(10);
        let large = size_for(10_000);
        assert_eq!(
            small, large,
            "compressed size must not grow with iteration count"
        );
    }

    #[test]
    fn clear_empties() {
        let mut t = CompressedTrace::new();
        t.append(ev(1));
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.byte_size(), 32, "only the container header remains");
    }

    #[test]
    fn time_stats_preserved_through_folding() {
        // Total pre-time must equal the sum over all dynamic instances even
        // after aggressive folding.
        let mut t = CompressedTrace::new();
        for _ in 0..50 {
            t.append(ev(1)); // each instance carries pre_time 1.0
        }
        let mut total = 0.0;
        t.visit_events(&mut |e| total += e.pre_time.total());
        assert!((total - 50.0).abs() < 1e-9);
    }

    #[test]
    fn absorb_trace_folds_repeated_phases() {
        // Two identical phase traces absorbed sequentially fold into a
        // 2-iteration loop — the online-trace growth property.
        let phase = {
            let mut t = CompressedTrace::new();
            t.append(ev(1));
            t.append(ev(2));
            t
        };
        let mut online = CompressedTrace::new();
        online.absorb_trace(&phase);
        online.absorb_trace(&phase);
        assert_eq!(online.nodes().len(), 1);
        match &online.nodes()[0] {
            TraceNode::Loop { iters, body } => {
                assert_eq!(*iters, 2);
                assert_eq!(body.len(), 2);
            }
            other => panic!("expected folded loop, got {other:?}"),
        }
        assert_eq!(online.dynamic_size(), 4);
    }

    #[test]
    fn absorb_trace_distinct_phases_concatenate() {
        let mut a = CompressedTrace::new();
        a.append(ev(1));
        let mut b = CompressedTrace::new();
        b.append(ev(9));
        let mut online = CompressedTrace::new();
        online.absorb_trace(&a);
        online.absorb_trace(&b);
        assert_eq!(online.nodes().len(), 2);
    }

    #[test]
    fn extend_from_concatenates() {
        let mut a = CompressedTrace::new();
        a.append(ev(1));
        let mut b = CompressedTrace::new();
        b.append(ev(2));
        a.extend_from(&b);
        assert_eq!(a.nodes().len(), 2);
    }

    #[test]
    fn irregular_iteration_counts_do_not_merge() {
        // Two "inner loops" with different trip counts stay distinct —
        // matching requires equal iteration counts (the POP case the paper
        // discusses: data-dependent convergence produces irregular traces).
        let mut t = CompressedTrace::new();
        for _ in 0..5 {
            t.append(ev(1));
        }
        t.append(barrier_ev(9));
        for _ in 0..7 {
            t.append(ev(1));
        }
        t.append(barrier_ev(9));
        // Top level cannot fold into a single loop: bodies differ (5 vs 7).
        assert!(t.nodes().len() > 1);
        assert_eq!(t.dynamic_size(), 5 + 1 + 7 + 1);
    }

    #[test]
    fn send_with_different_offsets_distinct() {
        let mk = |off| {
            EventRecord::new(
                MpiOp::send(Endpoint::Relative(off), 0, 8, Comm::WORLD),
                StackSig(1),
                0,
                0.0,
            )
        };
        let mut t = CompressedTrace::new();
        t.append(mk(1));
        t.append(mk(-1));
        t.append(mk(1));
        t.append(mk(-1));
        // Folds as a loop over the *pair*, not over identical single sends.
        assert_eq!(t.nodes().len(), 1);
        match &t.nodes()[0] {
            TraceNode::Loop { iters, body } => {
                assert_eq!(*iters, 2);
                assert_eq!(body.len(), 2);
            }
            other => panic!("expected loop, got {other:?}"),
        }
    }

    #[test]
    fn op_kind_differs_no_fold() {
        let send = ev(1);
        let recv = EventRecord::new(
            MpiOp::recv(Endpoint::Relative(-1), 0, 8, Comm::WORLD),
            StackSig(1), // same signature, different op
            0,
            0.0,
        );
        assert_eq!(send.op.kind, OpKind::Send);
        let mut t = CompressedTrace::new();
        t.append(send);
        t.append(recv);
        assert_eq!(t.nodes().len(), 2);
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use crate::op::{Endpoint, MpiOp};
    use mpisim::Comm;
    use sigkit::StackSig;
    use xrand::Xoshiro256;

    fn ev(sig: u64) -> EventRecord {
        EventRecord::new(
            MpiOp::send(Endpoint::Relative(1), 0, 8, Comm::WORLD),
            StackSig(sig),
            0,
            1.0,
        )
    }

    fn random_sigs(rng: &mut Xoshiro256, max_len: usize, alphabet: u64) -> Vec<u64> {
        (0..rng.usize_below(max_len))
            .map(|_| rng.below(alphabet))
            .collect()
    }

    /// Compression is lossless w.r.t. the dynamic event sequence: the
    /// walk of the compressed trace replays the original site sequence.
    #[test]
    fn lossless_site_sequence() {
        let mut rng = Xoshiro256::seed_from_u64(0x105E);
        for _case in 0..128 {
            let sigs = random_sigs(&mut rng, 200, 6);
            let mut t = CompressedTrace::new();
            for &s in &sigs {
                t.append(ev(s));
            }
            let mut replayed = Vec::new();
            t.walk(&mut |e| replayed.push(e.stack_sig.0));
            assert_eq!(replayed, sigs);
        }
    }

    /// Dynamic size always equals the number of appended events.
    #[test]
    fn dynamic_size_exact() {
        let mut rng = Xoshiro256::seed_from_u64(0xD15E);
        for _case in 0..128 {
            let sigs = random_sigs(&mut rng, 300, 4);
            let mut t = CompressedTrace::new();
            for &s in &sigs {
                t.append(ev(s));
            }
            assert_eq!(t.dynamic_size(), sigs.len() as u64);
        }
    }

    /// Total pre-time is preserved by folding.
    #[test]
    fn time_mass_preserved() {
        let mut rng = Xoshiro256::seed_from_u64(0x71EE);
        for _case in 0..128 {
            let sigs = random_sigs(&mut rng, 200, 4);
            let mut t = CompressedTrace::new();
            for &s in &sigs {
                t.append(ev(s)); // each carries pre_time 1.0
            }
            let mut total = 0.0;
            t.visit_events(&mut |e| total += e.pre_time.total());
            assert!((total - sigs.len() as f64).abs() < 1e-6);
        }
    }

    /// Compressed size never exceeds the dynamic size, and for periodic
    /// inputs it is dramatically smaller.
    #[test]
    fn compression_bounded() {
        let mut rng = Xoshiro256::seed_from_u64(0xB0DE);
        for _case in 0..128 {
            let period = rng.range_usize(1, 5);
            let reps = rng.range_usize(2, 50);
            let mut t = CompressedTrace::new();
            for _ in 0..reps {
                for s in 0..period as u64 {
                    t.append(ev(s));
                }
            }
            assert!(t.compressed_size() as u64 <= t.dynamic_size());
            // Periodic stream folds into ~1 loop: loop header + period events.
            assert!(
                t.compressed_size() <= period + 2,
                "period {period} reps {reps} -> compressed {}",
                t.compressed_size()
            );
        }
    }
}
