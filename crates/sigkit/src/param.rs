//! Overflow-safe parameter signatures (SRC / DEST).
//!
//! Chameleon summarizes the SRC and DEST parameters of all MPI events in a
//! marker interval by *averaging* per-event parameter signatures. The paper
//! notes:
//!
//! > "Because aggregating event values and then taking the average could
//! > result in an overflow, we utilized an estimation function."
//!
//! [`ParamEstimator`] implements that estimation function as an incremental
//! (Welford-style) running mean over `u64` values: the mean is updated as
//! `mean += (x - mean) / n` using 128-bit intermediates, so the running sum
//! is never materialized and cannot overflow regardless of how many events
//! are folded in.

/// Incremental running-average estimator over `u64` samples.
///
/// ```
/// use sigkit::ParamEstimator;
/// let mut est = ParamEstimator::new();
/// est.add(10);
/// est.add(20);
/// assert_eq!(est.estimate(), 15);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParamEstimator {
    mean: u64,
    /// Sub-integer remainder carried between updates, in units of 1/n.
    /// Stored as a signed accumulator scaled by 2^16 to keep the long-run
    /// estimate within ±1 of the exact mean.
    frac: i64,
    count: u64,
}

const FRAC_SCALE: i64 = 1 << 16;

impl ParamEstimator {
    /// Estimator with no samples.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of samples folded in.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if no samples have been added.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Fold in one sample. O(1), never overflows: the delta is computed in
    /// i128 and divided by the new count before being applied.
    #[inline]
    pub fn add(&mut self, x: u64) {
        self.count += 1;
        let n = self.count as i128;
        // Scaled delta between sample and current estimate.
        let delta = (x as i128 - self.mean as i128) * FRAC_SCALE as i128 + self.frac as i128;
        let step = delta / n; // scaled adjustment toward the sample
        let scaled = self.mean as i128 * FRAC_SCALE as i128 + self.frac as i128 + step;
        let new_mean = scaled.div_euclid(FRAC_SCALE as i128);
        let new_frac = scaled.rem_euclid(FRAC_SCALE as i128);
        // The running mean of u64 samples always lies in [0, u64::MAX].
        self.mean = new_mean as u64;
        self.frac = new_frac as i64;
    }

    /// Current estimate of the mean. 0 when empty.
    pub fn estimate(&self) -> u64 {
        self.mean
    }

    /// Merge another estimator into this one (used when a tree node folds
    /// its children's interval summaries into its own). The merged estimate
    /// is the count-weighted combination of the two means.
    pub fn merge(&mut self, other: &ParamEstimator) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count as u128 + other.count as u128;
        let weighted =
            self.mean as u128 * self.count as u128 + other.mean as u128 * other.count as u128;
        self.mean = (weighted / total) as u64;
        self.frac = 0;
        self.count = (self.count).saturating_add(other.count);
    }

    /// Reset to the empty state.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Signature of one endpoint parameter for averaging purposes.
///
/// Relative endpoint encodings are signed offsets (±c relative to the
/// caller's rank); collectives use sentinel "root" encodings. This maps
/// them all into u64 such that nearby offsets produce nearby values —
/// important because the clustering distance is metric, not exact-match.
pub fn endpoint_param(offset: i64) -> u64 {
    // Shift to keep ordering: offset 0 maps to mid-range.
    (offset as i128 + (1i128 << 63)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_estimates_zero() {
        assert_eq!(ParamEstimator::new().estimate(), 0);
        assert!(ParamEstimator::new().is_empty());
    }

    #[test]
    fn single_sample_exact() {
        let mut e = ParamEstimator::new();
        e.add(42);
        assert_eq!(e.estimate(), 42);
        assert_eq!(e.count(), 1);
    }

    #[test]
    fn two_samples_mean() {
        let mut e = ParamEstimator::new();
        e.add(10);
        e.add(20);
        assert_eq!(e.estimate(), 15);
    }

    #[test]
    fn extreme_values_no_overflow() {
        let mut e = ParamEstimator::new();
        for _ in 0..1000 {
            e.add(u64::MAX);
        }
        // Exact mean is u64::MAX; estimator must be within rounding error.
        assert!(e.estimate() >= u64::MAX - 1);
    }

    #[test]
    fn alternating_extremes() {
        let mut e = ParamEstimator::new();
        for _ in 0..500 {
            e.add(u64::MAX);
            e.add(0);
        }
        let mid = u64::MAX / 2;
        let err = e.estimate().abs_diff(mid);
        // Incremental estimate converges to the true mean within a tiny
        // relative error even for adversarial orderings.
        assert!(err < mid / 1000, "err = {err}");
    }

    #[test]
    fn merge_weighted() {
        let mut a = ParamEstimator::new();
        a.add(100); // count 1, mean 100
        let mut b = ParamEstimator::new();
        for _ in 0..3 {
            b.add(200); // count 3, mean 200
        }
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.estimate(), 175); // (100 + 3*200)/4
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = ParamEstimator::new();
        a.add(7);
        let snapshot = a;
        a.merge(&ParamEstimator::new());
        assert_eq!(a, snapshot);

        let mut empty = ParamEstimator::new();
        empty.merge(&snapshot);
        assert_eq!(empty.estimate(), 7);
        assert_eq!(empty.count(), 1);
    }

    #[test]
    fn endpoint_param_ordering() {
        assert!(endpoint_param(-1) < endpoint_param(0));
        assert!(endpoint_param(0) < endpoint_param(1));
        assert_eq!(
            endpoint_param(1) - endpoint_param(-1),
            2,
            "nearby offsets must stay nearby"
        );
    }

    #[test]
    fn endpoint_param_extremes() {
        assert_eq!(endpoint_param(i64::MIN), 0);
        assert_eq!(endpoint_param(i64::MAX), u64::MAX);
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use xrand::Xoshiro256;

    /// Estimate stays within the sample range (a true mean always does).
    #[test]
    fn estimate_within_range() {
        let mut rng = Xoshiro256::seed_from_u64(0xE571);
        for _case in 0..128 {
            let len = rng.range_usize(1, 256);
            let samples: Vec<u64> = (0..len).map(|_| rng.next_u64()).collect();
            let mut e = ParamEstimator::new();
            for &s in &samples {
                e.add(s);
            }
            let lo = *samples.iter().min().unwrap();
            let hi = *samples.iter().max().unwrap();
            let est = e.estimate();
            // Allow ±1 slack for integer rounding of the incremental mean.
            assert!(
                est >= lo.saturating_sub(1) && est <= hi.saturating_add(1),
                "estimate {est} outside [{lo}, {hi}]"
            );
        }
    }

    /// Estimate tracks the exact mean closely for moderate inputs.
    #[test]
    fn close_to_exact_mean() {
        let mut rng = Xoshiro256::seed_from_u64(0x3EA7);
        for _case in 0..128 {
            let len = rng.range_usize(1, 256);
            let samples: Vec<u64> = (0..len).map(|_| rng.below(1_000_000)).collect();
            let mut e = ParamEstimator::new();
            let mut sum: u128 = 0;
            for &s in &samples {
                e.add(s);
                sum += s as u128;
            }
            let exact = (sum / samples.len() as u128) as u64;
            let err = e.estimate().abs_diff(exact);
            assert!(
                err <= samples.len() as u64,
                "estimate {} vs exact {exact} (err {err})",
                e.estimate()
            );
        }
    }

    /// Merging preserves total count and stays within range.
    #[test]
    fn merge_preserves_count() {
        let mut rng = Xoshiro256::seed_from_u64(0xC071);
        for _case in 0..128 {
            let xs: Vec<u64> = (0..rng.usize_below(64)).map(|_| rng.next_u64()).collect();
            let ys: Vec<u64> = (0..rng.usize_below(64)).map(|_| rng.next_u64()).collect();
            let mut a = ParamEstimator::new();
            for &x in &xs {
                a.add(x);
            }
            let mut b = ParamEstimator::new();
            for &y in &ys {
                b.add(y);
            }
            let mut merged = a;
            merged.merge(&b);
            assert_eq!(merged.count(), (xs.len() + ys.len()) as u64);
        }
    }

    /// endpoint_param is strictly monotone.
    #[test]
    fn endpoint_monotone() {
        let mut rng = Xoshiro256::seed_from_u64(0xE4D0);
        for _case in 0..256 {
            let (x, y) = (rng.next_u64() as i64, rng.next_u64() as i64);
            let (a, b) = (x.min(y), x.max(y));
            if a == b {
                continue;
            }
            assert!(endpoint_param(a) < endpoint_param(b));
        }
    }
}
