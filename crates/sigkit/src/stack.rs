//! Synthetic call stacks and 64-bit stack signatures.
//!
//! ScalaTrace obtains the calling context of each MPI event from the stack
//! backtrace (one return address per frame) and condenses it into a 64-bit
//! *stack signature*. Two MPI calls issued from the same source location
//! through the same chain of callers produce the same signature; calls from
//! different locations produce (with overwhelming probability) different
//! ones.
//!
//! In this reproduction the "return addresses" are synthetic: workloads
//! declare their call structure with [`CallStack::push`]/[`CallStack::pop`]
//! (usually via the RAII [`FrameGuard`]), passing stable 64-bit frame
//! identifiers. The signature semantics are identical to hashing real
//! return addresses — which is all the paper's algorithms consume.

/// A synthetic frame address: a stable 64-bit identifier for one call site.
///
/// Real ScalaTrace uses program-counter return addresses; any value that is
/// stable across ranks and across iterations for the same source location
/// works. The [`frame_addr`] helper derives one from a source-location
/// string.
pub type FrameAddr = u64;

/// A 64-bit stack signature: the condensed calling context of one event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct StackSig(pub u64);

impl StackSig {
    /// The "no context" signature (empty stack). Real traces never produce
    /// it because every MPI event has at least the wrapper frame.
    pub const EMPTY: StackSig = StackSig(0xcbf2_9ce4_8422_2325); // FNV offset basis

    /// Raw value accessor, convenient in arithmetic contexts.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Derive a stable synthetic frame address from a source-location label.
///
/// FNV-1a over the label bytes. Deterministic across processes and runs, so
/// all ranks executing the same source line obtain the same frame address —
/// exactly the property real return addresses have in an SPMD binary.
pub fn frame_addr(label: &str) -> FrameAddr {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for b in label.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Mixer applied per frame when folding the stack into a signature.
///
/// splitmix64 finalizer: full-avalanche so that stacks differing in a single
/// frame, or in frame *order*, yield unrelated signatures.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Tracks the active synthetic call stack of one rank and produces stack
/// signatures for events issued under it.
///
/// Depth-sensitive: the fold incorporates the frame's position, so
/// `[a, b]` and `[b, a]` (different caller/callee order) hash differently,
/// and recursion (`[a, a]` vs `[a]`) is distinguished.
///
/// ```
/// use sigkit::stack::{frame_addr, CallStack};
/// let mut cs = CallStack::new();
/// cs.push(frame_addr("main"));
/// cs.push(frame_addr("solver"));
/// let inside = cs.signature();
/// cs.pop();
/// let outside = cs.signature();
/// assert_ne!(inside, outside);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CallStack {
    frames: Vec<FrameAddr>,
    /// Incremental fold of the frames; `cache[i]` is the signature of
    /// `frames[..=i]`. Kept so `signature()` is O(1) in the common case.
    cache: Vec<u64>,
}

impl CallStack {
    /// Empty stack (top-level context).
    pub fn new() -> Self {
        Self::default()
    }

    /// Current nesting depth.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Enter a frame.
    pub fn push(&mut self, frame: FrameAddr) {
        let prev = self.cache.last().copied().unwrap_or(StackSig::EMPTY.0);
        let depth = self.frames.len() as u64;
        // Fold: mix the frame with its depth, then combine with the parent
        // fold via multiply-xor; order- and depth-sensitive.
        let folded = prev.rotate_left(13).wrapping_mul(0x0000_0100_0000_01b3)
            ^ mix(frame ^ depth.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        self.frames.push(frame);
        self.cache.push(folded);
    }

    /// Leave the innermost frame. Panics on an empty stack — that is a
    /// workload bug (unbalanced push/pop) worth failing loudly on.
    pub fn pop(&mut self) {
        assert!(self.frames.pop().is_some(), "CallStack::pop on empty stack");
        self.cache.pop();
    }

    /// Signature of the current calling context.
    pub fn signature(&self) -> StackSig {
        StackSig(self.cache.last().copied().unwrap_or(StackSig::EMPTY.0))
    }

    /// Signature of the context extended by one extra frame, without
    /// mutating the stack. This is what the tracing wrapper uses: the MPI
    /// call site itself is the innermost frame.
    pub fn signature_with(&self, frame: FrameAddr) -> StackSig {
        let mut tmp = self.clone();
        tmp.push(frame);
        tmp.signature()
    }

    /// The raw frame slice (outermost first); used by tests and debugging.
    pub fn frames(&self) -> &[FrameAddr] {
        &self.frames
    }
}

/// RAII guard that pops the frame on drop. Lets workloads express call
/// structure with lexical scoping:
///
/// ```
/// use sigkit::stack::{frame_addr, CallStack, FrameGuard};
/// let mut cs = CallStack::new();
/// {
///     let _g = FrameGuard::enter(&mut cs, frame_addr("timestep"));
///     // events issued here carry the "timestep" context
/// }
/// assert_eq!(cs.depth(), 0);
/// ```
pub struct FrameGuard<'a> {
    stack: &'a mut CallStack,
}

impl<'a> FrameGuard<'a> {
    /// Push `frame` and return a guard that pops it when dropped.
    pub fn enter(stack: &'a mut CallStack, frame: FrameAddr) -> Self {
        stack.push(frame);
        FrameGuard { stack }
    }

    /// Access the underlying stack (e.g. to take a signature mid-scope).
    pub fn stack(&mut self) -> &mut CallStack {
        self.stack
    }
}

impl Drop for FrameGuard<'_> {
    fn drop(&mut self) {
        self.stack.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_stack_same_signature() {
        let mk = || {
            let mut cs = CallStack::new();
            cs.push(frame_addr("main"));
            cs.push(frame_addr("loop"));
            cs.signature()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn different_frames_different_signature() {
        let mut a = CallStack::new();
        a.push(frame_addr("main"));
        a.push(frame_addr("send_site"));
        let mut b = CallStack::new();
        b.push(frame_addr("main"));
        b.push(frame_addr("recv_site"));
        assert_ne!(a.signature(), b.signature());
    }

    #[test]
    fn order_sensitive() {
        let (x, y) = (frame_addr("f"), frame_addr("g"));
        let mut a = CallStack::new();
        a.push(x);
        a.push(y);
        let mut b = CallStack::new();
        b.push(y);
        b.push(x);
        assert_ne!(a.signature(), b.signature());
    }

    #[test]
    fn recursion_distinguished() {
        let f = frame_addr("recurse");
        let mut once = CallStack::new();
        once.push(f);
        let mut twice = CallStack::new();
        twice.push(f);
        twice.push(f);
        assert_ne!(once.signature(), twice.signature());
    }

    #[test]
    fn pop_restores_signature() {
        let mut cs = CallStack::new();
        cs.push(frame_addr("main"));
        let outer = cs.signature();
        cs.push(frame_addr("inner"));
        cs.pop();
        assert_eq!(cs.signature(), outer);
    }

    #[test]
    fn signature_with_equals_push_pop() {
        let mut cs = CallStack::new();
        cs.push(frame_addr("main"));
        let probe = frame_addr("site");
        let via_with = cs.signature_with(probe);
        cs.push(probe);
        let via_push = cs.signature();
        assert_eq!(via_with, via_push);
    }

    #[test]
    fn guard_pops_on_drop() {
        let mut cs = CallStack::new();
        let base = cs.signature();
        {
            let _g = FrameGuard::enter(&mut cs, frame_addr("scoped"));
        }
        assert_eq!(cs.signature(), base);
        assert_eq!(cs.depth(), 0);
    }

    #[test]
    fn frame_addr_stable_and_distinct() {
        assert_eq!(frame_addr("abc"), frame_addr("abc"));
        assert_ne!(frame_addr("abc"), frame_addr("abd"));
        assert_ne!(frame_addr(""), frame_addr("x"));
    }

    #[test]
    #[should_panic(expected = "empty stack")]
    fn pop_empty_panics() {
        CallStack::new().pop();
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use xrand::Xoshiro256;

    /// The incremental cache must agree with a from-scratch fold after
    /// any sequence of pushes and pops.
    #[test]
    fn cache_consistent_with_rebuild() {
        let mut rng = Xoshiro256::seed_from_u64(0x57AC);
        for _case in 0..64 {
            let mut cs = CallStack::new();
            for _ in 0..rng.usize_below(64) {
                let op = rng.below(9) as u8;
                if op == 0 && cs.depth() > 0 {
                    cs.pop();
                } else {
                    cs.push(op as u64 * 0x1234_5678_9abc_def1);
                }
                let mut rebuilt = CallStack::new();
                for &f in cs.frames().to_vec().iter() {
                    rebuilt.push(f);
                }
                assert_eq!(rebuilt.signature(), cs.signature());
            }
        }
    }

    /// Distinct single-frame stacks collide with negligible probability.
    #[test]
    fn distinct_frames_distinct_sigs() {
        let mut rng = Xoshiro256::seed_from_u64(0xD157);
        for _case in 0..256 {
            let (a, b) = (rng.next_u64(), rng.next_u64());
            if a == b {
                continue;
            }
            let mut x = CallStack::new();
            x.push(a);
            let mut y = CallStack::new();
            y.push(b);
            assert_ne!(x.signature(), y.signature());
        }
    }

    /// Depth changes signatures: a stack is never equal to one of its
    /// proper prefixes.
    #[test]
    fn prefix_never_equal() {
        let mut rng = Xoshiro256::seed_from_u64(0x9EF1);
        for _case in 0..256 {
            let len = rng.range_usize(1, 16);
            let frames: Vec<u64> = (0..len).map(|_| rng.next_u64()).collect();
            let mut full = CallStack::new();
            for &f in &frames {
                full.push(f);
            }
            let mut prefix = CallStack::new();
            for &f in &frames[..frames.len() - 1] {
                prefix.push(f);
            }
            assert_ne!(full.signature(), prefix.signature());
        }
    }
}
