//! Call-Path signatures: the per-interval aggregate Chameleon votes on.
//!
//! Between two consecutive marker calls each rank accumulates the stack
//! signatures of every MPI event it issued. The paper (§III) specifies the
//! aggregate as:
//!
//! > "to create the 64-bit Call-Path signature, Chameleon computes the
//! > exclusive or (XOR) of all 64-bit stack signatures. Moreover, to order
//! > events, it multiplies the modulo 10 plus 1 of the sequence number of
//! > each event by the 64-bit stack signature and then uses this value in
//! > the Call-Path signature."
//!
//! I.e. the contribution of event *i* with stack signature `s_i` and
//! sequence number `q_i` is `s_i * ((q_i mod 10) + 1)` (wrapping). The
//! sequence-number weight makes the aggregate order-sensitive, so permuted
//! call sequences and recursion do not cancel out under plain XOR.
//!
//! **Deviation from the paper (documented in DESIGN.md):** the paper XORs
//! the weighted contributions directly, but that still cancels for
//! periodic event streams whose period divides 5 observed over a multiple
//! of 10 events — each site then contributes an even number of
//! identically-weighted terms and the XOR collapses to zero (e.g. LU's
//! 5-event timestep over a 4-step marker interval). This implementation
//! therefore chains the weighted contributions through an FNV-style
//! polynomial fold (`acc = acc * prime XOR contribution`), which keeps the
//! paper's properties (constant space, order sensitivity, determinism)
//! while eliminating the cancellation class entirely.

use crate::stack::StackSig;

/// A 64-bit Call-Path signature: aggregate calling-context fingerprint of
/// all MPI events in one marker interval.
///
/// The all-zero value is reserved as "no interval observed yet" —
/// Algorithm 1 uses `OldCallPath == 0` to detect the first marker hit. The
/// accumulator never produces 0 for a non-empty interval (it folds in a
/// non-zero event count).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct CallPathSig(pub u64);

impl CallPathSig {
    /// Sentinel meaning "no Call-Path recorded yet" (paper's
    /// `OldCallPath = 0` initialization).
    pub const NONE: CallPathSig = CallPathSig(0);

    /// Whether this is the sentinel.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// Accumulates per-event stack signatures into a [`CallPathSig`].
///
/// ```
/// use sigkit::{CallPathAccumulator, StackSig};
/// let mut acc = CallPathAccumulator::new();
/// acc.record(StackSig(0xdead));
/// acc.record(StackSig(0xbeef));
/// let sig = acc.finish();
/// assert!(!sig.is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CallPathAccumulator {
    acc: u64,
    seq: u64,
}

impl CallPathAccumulator {
    /// Fresh accumulator (start of a marker interval).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one MPI event's stack signature. Sequence numbers are
    /// assigned in call order starting from 0.
    #[inline]
    pub fn record(&mut self, sig: StackSig) {
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let weight = (self.seq % 10) + 1;
        // Polynomial fold of the paper's weighted contributions: order-
        // sensitive and free of the XOR cancellation class (see module
        // docs).
        self.acc = self.acc.wrapping_mul(FNV_PRIME) ^ sig.0.wrapping_mul(weight);
        self.seq = self.seq.wrapping_add(1);
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> u64 {
        self.seq
    }

    /// True if no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.seq == 0
    }

    /// Produce the interval's Call-Path signature.
    ///
    /// An empty interval yields [`CallPathSig::NONE`]. A non-empty interval
    /// never yields the sentinel: the event count is folded in and, should
    /// the fold still land on 0 (one chance in 2^64), it is nudged to 1.
    pub fn finish(&self) -> CallPathSig {
        if self.seq == 0 {
            return CallPathSig::NONE;
        }
        // Fold the count through splitmix so intervals whose XORs collide
        // but whose lengths differ stay distinct.
        let mut x = self.acc ^ self.seq.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        if x == 0 {
            x = 1;
        }
        CallPathSig(x)
    }

    /// Reset for the next marker interval, preserving nothing.
    pub fn reset(&mut self) {
        self.acc = 0;
        self.seq = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig_of(events: &[u64]) -> CallPathSig {
        let mut acc = CallPathAccumulator::new();
        for &e in events {
            acc.record(StackSig(e));
        }
        acc.finish()
    }

    #[test]
    fn empty_is_none() {
        assert!(sig_of(&[]).is_none());
    }

    #[test]
    fn nonempty_is_not_none() {
        assert!(!sig_of(&[0]).is_none());
        assert!(!sig_of(&[1, 2, 3]).is_none());
    }

    #[test]
    fn deterministic() {
        let e = [0xaaaa, 0xbbbb, 0xcccc];
        assert_eq!(sig_of(&e), sig_of(&e));
    }

    #[test]
    fn order_matters() {
        // Plain XOR would make these equal; the sequence weights must not.
        assert_ne!(sig_of(&[1, 2]), sig_of(&[2, 1]));
    }

    #[test]
    fn repetition_does_not_cancel() {
        // With unweighted XOR, an even number of identical signatures
        // cancels to the empty signature. Must not happen here.
        let twice = sig_of(&[0xf00d, 0xf00d]);
        assert!(!twice.is_none());
        assert_ne!(twice, sig_of(&[]));
        assert_ne!(twice, sig_of(&[0xf00d]));
    }

    #[test]
    fn length_matters() {
        assert_ne!(sig_of(&[5]), sig_of(&[5, 5]));
        assert_ne!(sig_of(&[5, 5]), sig_of(&[5, 5, 5]));
    }

    #[test]
    fn reset_behaves_like_new() {
        let mut acc = CallPathAccumulator::new();
        acc.record(StackSig(99));
        acc.reset();
        assert!(acc.is_empty());
        acc.record(StackSig(7));
        assert_eq!(acc.finish(), sig_of(&[7]));
    }

    #[test]
    fn periodic_stream_does_not_cancel() {
        // Regression: a period-5 stream over 20 events (weights cycle
        // with period 10) cancels to zero under the paper's plain XOR.
        // The polynomial fold must keep it distinct and non-degenerate.
        let body = [0xa1u64, 0xb2, 0xc3, 0xd4, 0xe5];
        let four_reps: Vec<u64> = body.iter().cycle().take(20).cloned().collect();
        let sig = sig_of(&four_reps);
        assert!(!sig.is_none());
        // Different periodic content of the same shape must differ.
        let other_body = [0x11u64, 0x22, 0x33, 0x44, 0x55];
        let other: Vec<u64> = other_body.iter().cycle().take(20).cloned().collect();
        assert_ne!(sig, sig_of(&other));
        // And the wrapped variant (extra outer frame changes every stack
        // sig) must differ too.
        let wrapped: Vec<u64> = four_reps.iter().map(|s| s ^ 0xffff).collect();
        assert_ne!(sig, sig_of(&wrapped));
    }

    #[test]
    fn repeated_iterations_same_signature() {
        // The core SPMD property: executing the same loop body twice in two
        // different intervals yields the same Call-Path signature both
        // times — that is what lets the transition graph detect
        // "repetitive behavior".
        let body = [0x1111, 0x2222, 0x3333, 0x2222];
        assert_eq!(sig_of(&body), sig_of(&body));
        let different = [0x1111, 0x2222, 0x3333, 0x4444];
        assert_ne!(sig_of(&body), sig_of(&different));
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use xrand::Xoshiro256;

    fn sig_of(events: &[u64]) -> CallPathSig {
        let mut acc = CallPathAccumulator::new();
        for &e in events {
            acc.record(StackSig(e));
        }
        acc.finish()
    }

    /// Never produces the reserved sentinel for non-empty input.
    #[test]
    fn nonempty_never_sentinel() {
        let mut rng = Xoshiro256::seed_from_u64(0x5E17);
        for _case in 0..256 {
            let len = rng.range_usize(1, 128);
            let events: Vec<u64> = (0..len).map(|_| rng.next_u64()).collect();
            assert!(!sig_of(&events).is_none());
        }
    }

    /// Deterministic function of the event sequence.
    #[test]
    fn deterministic() {
        let mut rng = Xoshiro256::seed_from_u64(0xDE7E);
        for _case in 0..256 {
            let len = rng.usize_below(128);
            let events: Vec<u64> = (0..len).map(|_| rng.next_u64()).collect();
            assert_eq!(sig_of(&events), sig_of(&events));
        }
    }

    /// Swapping two adjacent *distinct* events changes the signature
    /// (up to the ~2^-64 collision probability of the polynomial fold,
    /// which these case counts cannot reach).
    #[test]
    fn adjacent_swap_detected() {
        let mut rng = Xoshiro256::seed_from_u64(0x5a4b);
        for _case in 0..256 {
            let prefix: Vec<u64> = (0..rng.usize_below(8)).map(|_| rng.next_u64()).collect();
            let a = rng.next_u64() | 1;
            let b = rng.next_u64() | 1;
            if a == b {
                continue;
            }
            let mut fwd = prefix.clone();
            fwd.extend([a, b]);
            let mut rev = prefix.clone();
            rev.extend([b, a]);
            assert_ne!(sig_of(&fwd), sig_of(&rev));
        }
    }
}
