//! # sigkit — 64-bit signatures for signature-based trace clustering
//!
//! Chameleon (Bahmani & Mueller, IPDPS 2018) clusters MPI processes not by
//! comparing their traces event-by-event, but by comparing compact 64-bit
//! *signatures* derived from the event stream:
//!
//! * a **stack signature** identifies the calling context of a single MPI
//!   event (ScalaTrace hashes the return addresses of the active stack
//!   frames; we do the same over synthetic frame addresses, see
//!   [`stack::CallStack`]);
//! * a **Call-Path signature** aggregates the stack signatures of all events
//!   observed between two marker calls into one 64-bit value
//!   ([`callpath::CallPathAccumulator`]). Two processes with the same
//!   Call-Path signature executed the same set of call sites in the same
//!   relative order;
//! * **SRC/DEST parameter signatures** summarize the communication
//!   end-points of those events with an overflow-safe running average
//!   ([`param::ParamEstimator`]), giving the clustering algorithms a
//!   low-dimensional space in which processes with similar communication
//!   partners are close.
//!
//! The crate is `no_std`-style pure computation (no I/O, no threads) so it
//! can be unit- and property-tested exhaustively.

pub mod callpath;
pub mod param;
pub mod stack;

pub use callpath::{CallPathAccumulator, CallPathSig};
pub use param::ParamEstimator;
pub use stack::{CallStack, FrameAddr, StackSig};

/// The full signature triple Chameleon computes per process per marker
/// interval: Call-Path plus SRC and DEST parameter signatures.
///
/// The paper (§III) found these three 64-bit signatures sufficient: the
/// Call-Path signature dominates clustering quality, and SRC/DEST separate
/// processes with the same call structure but different communication
/// partners (e.g. boundary vs. interior ranks of a stencil).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SignatureTriple {
    /// Aggregated Call-Path signature of the interval.
    pub call_path: CallPathSig,
    /// Averaged source-endpoint signature.
    pub src: u64,
    /// Averaged destination-endpoint signature.
    pub dest: u64,
}

impl SignatureTriple {
    /// Euclidean-style distance in (src, dest) space used by the clustering
    /// algorithms. Processes in *different* Call-Path groups are never
    /// compared (the paper clusters per Call-Path), so the distance is only
    /// defined over the parameter signatures.
    ///
    /// Works on absolute differences to avoid overflow; result saturates at
    /// `f64::MAX` (unreachable for 64-bit inputs).
    pub fn param_distance(&self, other: &SignatureTriple) -> f64 {
        let ds = self.src.abs_diff(other.src) as f64;
        let dd = self.dest.abs_diff(other.dest) as f64;
        (ds * ds + dd * dd).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triple_distance_zero_for_identical() {
        let t = SignatureTriple {
            call_path: CallPathSig(42),
            src: 7,
            dest: 9,
        };
        assert_eq!(t.param_distance(&t), 0.0);
    }

    #[test]
    fn triple_distance_symmetric() {
        let a = SignatureTriple {
            call_path: CallPathSig(1),
            src: 100,
            dest: 3,
        };
        let b = SignatureTriple {
            call_path: CallPathSig(1),
            src: 1,
            dest: 300,
        };
        assert_eq!(a.param_distance(&b), b.param_distance(&a));
    }

    #[test]
    fn triple_distance_no_overflow_at_extremes() {
        let a = SignatureTriple {
            call_path: CallPathSig(0),
            src: 0,
            dest: 0,
        };
        let b = SignatureTriple {
            call_path: CallPathSig(0),
            src: u64::MAX,
            dest: u64::MAX,
        };
        let d = a.param_distance(&b);
        assert!(d.is_finite());
        assert!(d > 0.0);
    }
}
