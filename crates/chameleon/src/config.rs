//! Chameleon configuration.

use std::path::PathBuf;

use clusterkit::{ClusterAlgorithm, KFarthest, KMedoids, KRandom};

use crate::checkpoint::Checkpoint;

/// Which representative-selection algorithm clustering uses. The paper:
/// "Users could select any clustering algorithm (e.g., K-Medoid,
/// K-Furthest, K-Random selection)" — accuracy is very close between the
/// distance-aware ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AlgoChoice {
    /// Farthest-point (maximin) selection — the default.
    #[default]
    Farthest,
    /// K-medoids (PAM refinement).
    Medoids,
    /// Seeded random selection (ablation baseline).
    Random(u64),
}

impl AlgoChoice {
    /// Materialize the algorithm object.
    pub fn build(&self) -> Box<dyn ClusterAlgorithm> {
        match *self {
            AlgoChoice::Farthest => Box::new(KFarthest),
            AlgoChoice::Medoids => Box::new(KMedoids::default()),
            AlgoChoice::Random(seed) => Box::new(KRandom { seed }),
        }
    }
}

/// Tunables of a Chameleon run.
#[derive(Debug, Clone)]
pub struct ChameleonConfig {
    /// Cluster budget K (Table I: 3 for BT/SP/POP, 9 for LU/S3D/LUW,
    /// 2 for EMF). Grows dynamically if the Call-Path count exceeds it.
    pub k: usize,
    /// `Call_Frequency`: the transition graph runs on every
    /// `call_frequency`-th marker invocation; others return immediately
    /// (Algorithm 3 lines 1–3).
    pub call_frequency: u64,
    /// Radix of the trace-merge reduction tree (2 = the paper's
    /// left/right-child formulation).
    pub radix: usize,
    /// Clustering algorithm.
    pub algo: AlgoChoice,
    /// Durable-checkpoint stride: every `ckpt_stride`-th *processed*
    /// marker the online-trace root serializes its recovery state and
    /// replicates it to the deputy (the next-smallest survivor) over the
    /// passive obs plane. 0 (the default) disables checkpointing
    /// entirely, keeping fault-free goldens untouched.
    pub ckpt_stride: u64,
    /// Directory the root persists `ckpt-<marker>.bin` blobs into at each
    /// checkpoint. Wall-clock I/O only, invisible to the simulation;
    /// `None` keeps checkpoints replica-only.
    pub ckpt_dir: Option<PathBuf>,
    /// Resume payload from a supervisor restart: the run replays from
    /// step 0, fast-forwards (merges and checkpoint ships skipped) to the
    /// checkpoint's marker, installs its online trace on the root, and
    /// continues normally.
    pub resume: Option<Checkpoint>,
    /// Retry budget of the reliable tool-plane receives the runtime
    /// performs during cluster folds and online-trace hand-offs
    /// (`RetryPolicy::Bounded(retry_budget)`). 1 — the default — matches
    /// the protocol's historical behavior: one retransmission round before
    /// the slice degrades. Larger budgets trade tool time for fewer
    /// degraded slices on very lossy links.
    pub retry_budget: u32,
    /// Streaming anomaly detector. `None` — the default — keeps the
    /// health plane completely out of the run: no health gathers, no
    /// anomaly events, byte-identical journals. `Some(cfg)` arms the
    /// detector: rank 0 scores every rank's per-marker compute time and
    /// retransmit count against its cluster cohort at each full marker
    /// and drives the mitigation ladder (lead demotion, retry-budget
    /// escalation, quarantine) from the flags.
    pub detector: Option<obs::DetectorConfig>,
}

impl ChameleonConfig {
    /// Configuration with the given K and all other values at their
    /// defaults (frequency 1 = cluster at every marker).
    pub fn with_k(k: usize) -> Self {
        ChameleonConfig {
            k,
            call_frequency: 1,
            radix: 2,
            algo: AlgoChoice::default(),
            ckpt_stride: 0,
            ckpt_dir: None,
            resume: None,
            retry_budget: 1,
            detector: None,
        }
    }

    /// Set the marker call frequency.
    pub fn with_frequency(mut self, call_frequency: u64) -> Self {
        assert!(call_frequency >= 1, "call frequency must be at least 1");
        self.call_frequency = call_frequency;
        self
    }

    /// Set the clustering algorithm.
    pub fn with_algo(mut self, algo: AlgoChoice) -> Self {
        self.algo = algo;
        self
    }

    /// Set the merge-tree radix.
    pub fn with_radix(mut self, radix: usize) -> Self {
        assert!(radix >= 1);
        self.radix = radix;
        self
    }

    /// Enable durable checkpoints every `stride` processed markers.
    pub fn with_checkpoint_stride(mut self, stride: u64) -> Self {
        self.ckpt_stride = stride;
        self
    }

    /// Persist checkpoint blobs into `dir` (in addition to deputy
    /// replication).
    pub fn with_checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.ckpt_dir = Some(dir.into());
        self
    }

    /// Resume from a decoded checkpoint (supervisor restart).
    pub fn with_resume(mut self, ckpt: Checkpoint) -> Self {
        self.resume = Some(ckpt);
        self
    }

    /// Set the reliable-protocol retry budget for the runtime's
    /// tool-plane receives.
    pub fn with_retry_budget(mut self, budget: u32) -> Self {
        assert!(budget >= 1, "retry budget must be at least 1");
        self.retry_budget = budget;
        self
    }

    /// Arm the streaming anomaly detector (and the mitigation ladder it
    /// drives) with the given thresholds.
    pub fn with_detector(mut self, detector: obs::DetectorConfig) -> Self {
        self.detector = Some(detector);
        self
    }
}

impl Default for ChameleonConfig {
    fn default() -> Self {
        Self::with_k(9) // the paper's stencil-code default
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = ChameleonConfig::default();
        assert_eq!(c.k, 9);
        assert_eq!(c.call_frequency, 1);
        assert_eq!(c.radix, 2);
        assert_eq!(c.algo, AlgoChoice::Farthest);
        assert_eq!(c.ckpt_stride, 0, "checkpointing is opt-in");
        assert!(c.ckpt_dir.is_none());
        assert!(c.resume.is_none());
        assert_eq!(c.retry_budget, 1, "one retransmission round by default");
        assert!(c.detector.is_none(), "health plane is opt-in");
    }

    #[test]
    fn checkpoint_builders() {
        let c = ChameleonConfig::with_k(3)
            .with_checkpoint_stride(2)
            .with_checkpoint_dir("/tmp/ckpts");
        assert_eq!(c.ckpt_stride, 2);
        assert_eq!(
            c.ckpt_dir.as_deref(),
            Some(std::path::Path::new("/tmp/ckpts"))
        );
    }

    #[test]
    fn builder_chain() {
        let c = ChameleonConfig::with_k(3)
            .with_frequency(25)
            .with_algo(AlgoChoice::Medoids)
            .with_radix(4);
        assert_eq!(c.k, 3);
        assert_eq!(c.call_frequency, 25);
        assert_eq!(c.algo, AlgoChoice::Medoids);
        assert_eq!(c.radix, 4);
    }

    #[test]
    fn algo_choices_build() {
        assert_eq!(AlgoChoice::Farthest.build().name(), "k-farthest");
        assert_eq!(AlgoChoice::Medoids.build().name(), "k-medoids");
        assert_eq!(AlgoChoice::Random(1).build().name(), "k-random");
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_frequency_rejected() {
        ChameleonConfig::with_k(3).with_frequency(0);
    }

    #[test]
    fn retry_budget_builder() {
        let c = ChameleonConfig::with_k(3).with_retry_budget(4);
        assert_eq!(c.retry_budget, 4);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_retry_budget_rejected() {
        ChameleonConfig::with_k(3).with_retry_budget(0);
    }

    #[test]
    fn detector_builder() {
        let c = ChameleonConfig::with_k(3).with_detector(obs::DetectorConfig::default());
        let d = c.detector.expect("armed");
        assert_eq!(d.threshold, 4.0);
        assert_eq!(d.sustain, 3);
    }
}
