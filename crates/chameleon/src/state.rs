//! The transition graph — the paper's Figure 2 / Algorithm 1, as a pure
//! state machine.
//!
//! Each marker call turns into two steps so the MPI vote can happen in
//! between:
//!
//! 1. [`TransitionGraph::local_vote`] — compare the interval's Call-Path
//!    signature against the previous one and produce this rank's mismatch
//!    indicator (`tempReduceVal` in Algorithm 1);
//! 2. [`TransitionGraph::decide`] — fold in the *global* vote (the summed
//!    indicators after `MPI_Reduce` + `MPI_Bcast`) and emit the marker
//!    decision.
//!
//! Because the vote result is identical on every rank and the flag
//! updates are deterministic, all ranks move through the same states in
//! lock-step — the paper's point (7): "the synchronization step guarantees
//! they are in the same state with respect to clustering."
//!
//! ## Decision semantics
//!
//! [`MarkerDecision`] distinguishes what Algorithm 3 must *do* from what
//! the statistics count (Table II's AT/C/L tallies):
//!
//! | decision          | Table II state | Algorithm 3 work                     |
//! |-------------------|----------------|--------------------------------------|
//! | `FirstMarker`     | AT             | none (baseline signature captured)   |
//! | `Cluster`         | C              | cluster + elect leads + merge + wipe |
//! | `StableLead`      | L              | none (leads keep tracing)            |
//! | `FlushLead`       | AT             | merge lead traces + all-tracing      |
//! | `AllTracing`      | AT             | none (mismatch while unstable)       |

use sigkit::CallPathSig;

/// The four states of the paper's Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MarkerState {
    /// All processes tracing.
    AllTracing,
    /// Clustering happens at this marker.
    Clustering,
    /// Lead phase: only lead processes trace.
    Lead,
    /// Trace ended (`MPI_Finalize`).
    Final,
}

/// What a marker call must do, decided by the global vote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarkerDecision {
    /// Very first marker: record the baseline Call-Path, stay AT.
    FirstMarker,
    /// Repetition detected for the first time: run clustering, elect
    /// leads, merge everything traced so far, wipe partials.
    Cluster,
    /// Stable lead phase: nothing to do; leads keep tracing, the rest
    /// stay dark.
    StableLead,
    /// Phase change detected while in the lead phase: flush (merge) the
    /// lead traces accumulated since clustering, then everyone resumes
    /// tracing.
    FlushLead,
    /// Mismatch while not in a lead phase: keep tracing on all ranks and
    /// re-arm clustering.
    AllTracing,
}

impl MarkerDecision {
    /// The Table II state this marker is counted under.
    pub fn counted_state(self) -> MarkerState {
        match self {
            MarkerDecision::FirstMarker
            | MarkerDecision::FlushLead
            | MarkerDecision::AllTracing => MarkerState::AllTracing,
            MarkerDecision::Cluster => MarkerState::Clustering,
            MarkerDecision::StableLead => MarkerState::Lead,
        }
    }
}

/// This rank's contribution to the vote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalVote {
    /// First marker ever: no previous Call-Path to compare; skip the vote.
    First,
    /// Mismatch indicator to be summed across ranks (0 = repetition,
    /// 1 = this rank's Call-Path changed).
    Mismatch(u64),
}

/// Algorithm 1's persistent per-rank state.
#[derive(Debug, Clone)]
pub struct TransitionGraph {
    old_call_path: CallPathSig,
    re_clustering: bool,
    lead_flag: bool,
}

impl Default for TransitionGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl TransitionGraph {
    /// Initial state (Algorithm 1's initialization: `OldCallPath = 0`,
    /// `Re-Clustering Flag = true`, `Lead Flag = false`).
    pub fn new() -> Self {
        TransitionGraph {
            old_call_path: CallPathSig::NONE,
            re_clustering: true,
            lead_flag: false,
        }
    }

    /// Whether the graph is in a lead phase (clustering happened and no
    /// phase change has been seen since).
    pub fn in_lead_phase(&self) -> bool {
        self.lead_flag
    }

    /// Serializable image of the persistent state, in declaration order:
    /// `(OldCallPath, Re-Clustering Flag, Lead Flag)`. Paired with
    /// [`TransitionGraph::restore`] by the checkpoint codec.
    pub fn snapshot(&self) -> (CallPathSig, bool, bool) {
        (self.old_call_path, self.re_clustering, self.lead_flag)
    }

    /// Rebuild a graph from a [`TransitionGraph::snapshot`] image.
    pub fn restore(old_call_path: CallPathSig, re_clustering: bool, lead_flag: bool) -> Self {
        TransitionGraph {
            old_call_path,
            re_clustering,
            lead_flag,
        }
    }

    /// Step 1: compare against the previous interval and update
    /// `OldCallPath`.
    pub fn local_vote(&mut self, current: CallPathSig) -> LocalVote {
        if self.old_call_path.is_none() {
            self.old_call_path = current;
            return LocalVote::First;
        }
        let mismatch = u64::from(self.old_call_path != current);
        self.old_call_path = current;
        LocalVote::Mismatch(mismatch)
    }

    /// Step 2: fold in the global vote (sum of all ranks' mismatch
    /// indicators) and decide the marker's action.
    pub fn decide(&mut self, global_mismatches: u64) -> MarkerDecision {
        if global_mismatches == 0 {
            if self.re_clustering {
                self.re_clustering = false;
                self.lead_flag = true;
                MarkerDecision::Cluster
            } else {
                MarkerDecision::StableLead
            }
        } else if self.lead_flag {
            self.lead_flag = false;
            self.re_clustering = true;
            MarkerDecision::FlushLead
        } else {
            self.re_clustering = true;
            MarkerDecision::AllTracing
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(v: u64) -> CallPathSig {
        CallPathSig(v)
    }

    /// Drive a single "world" of identical ranks: local vote == global.
    fn drive(graph: &mut TransitionGraph, s: CallPathSig) -> MarkerDecision {
        match graph.local_vote(s) {
            LocalVote::First => MarkerDecision::FirstMarker,
            LocalVote::Mismatch(m) => graph.decide(m),
        }
    }

    #[test]
    fn first_marker_is_at() {
        let mut g = TransitionGraph::new();
        assert_eq!(drive(&mut g, sig(1)), MarkerDecision::FirstMarker);
        assert_eq!(
            MarkerDecision::FirstMarker.counted_state(),
            MarkerState::AllTracing
        );
    }

    #[test]
    fn stable_sequence_at_c_then_leads() {
        // The paper's Figure 3 first loop: AT, C, then L as long as the
        // Call-Path repeats.
        let mut g = TransitionGraph::new();
        assert_eq!(drive(&mut g, sig(7)), MarkerDecision::FirstMarker);
        assert_eq!(drive(&mut g, sig(7)), MarkerDecision::Cluster);
        for _ in 0..10 {
            assert_eq!(drive(&mut g, sig(7)), MarkerDecision::StableLead);
        }
    }

    #[test]
    fn lu_table2_shape() {
        // LU: 15 markers -> 1 C, 11 L, 3 AT (Table II). Markers 14 and 15
        // see changed Call-Paths (epilogue phase).
        let mut g = TransitionGraph::new();
        let mut counts = std::collections::HashMap::new();
        let mut seq: Vec<CallPathSig> = vec![sig(1); 13];
        seq.push(sig(2));
        seq.push(sig(3));
        for s in seq {
            let d = drive(&mut g, s);
            *counts.entry(d.counted_state()).or_insert(0u32) += 1;
        }
        assert_eq!(counts[&MarkerState::Clustering], 1);
        assert_eq!(counts[&MarkerState::Lead], 11);
        assert_eq!(counts[&MarkerState::AllTracing], 3);
    }

    #[test]
    fn phase_change_in_lead_flushes() {
        let mut g = TransitionGraph::new();
        drive(&mut g, sig(1)); // first
        drive(&mut g, sig(1)); // cluster
        drive(&mut g, sig(1)); // stable lead
        assert!(g.in_lead_phase());
        assert_eq!(drive(&mut g, sig(2)), MarkerDecision::FlushLead);
        assert!(!g.in_lead_phase());
    }

    #[test]
    fn recluster_after_flush_and_stability() {
        // Figure 3's second pattern: after the flush, a new repetitive
        // pattern triggers a second clustering.
        let mut g = TransitionGraph::new();
        drive(&mut g, sig(1));
        drive(&mut g, sig(1)); // C
        drive(&mut g, sig(2)); // flush
        assert_eq!(drive(&mut g, sig(2)), MarkerDecision::Cluster, "re-cluster");
        assert_eq!(drive(&mut g, sig(2)), MarkerDecision::StableLead);
    }

    #[test]
    fn continuous_mismatch_stays_at() {
        // "if in every marker call there is a different Call-Path, then
        // there would be no clustering, and Chameleon stays in AT."
        let mut g = TransitionGraph::new();
        drive(&mut g, sig(100));
        for i in 101..120u64 {
            assert_eq!(drive(&mut g, sig(i)), MarkerDecision::AllTracing);
        }
    }

    #[test]
    fn alternating_match_mismatch_oscillates_c_flush() {
        // The Figure 10 experiment: force a phase change every other
        // vote, maximizing re-clusterings (C, flush, C, flush, ...).
        let mut g = TransitionGraph::new();
        drive(&mut g, sig(1)); // first
        let mut c_count = 0;
        let mut flush_count = 0;
        let mut cur = 1u64;
        for step in 0..20 {
            // Every even step repeats the last signature, every odd step
            // changes it.
            if step % 2 == 1 {
                cur += 1;
            }
            match drive(&mut g, sig(cur)) {
                MarkerDecision::Cluster => c_count += 1,
                MarkerDecision::FlushLead => flush_count += 1,
                other => panic!("unexpected {other:?} at step {step}"),
            }
        }
        assert_eq!(c_count, 10);
        assert_eq!(flush_count, 10);
    }

    #[test]
    fn vote_aggregation_any_rank_mismatch_blocks_clustering() {
        // Two ranks: rank 0 stable, rank 1 changes. The summed vote must
        // keep both in AT.
        let mut g0 = TransitionGraph::new();
        let mut g1 = TransitionGraph::new();
        g0.local_vote(sig(1));
        g1.local_vote(sig(10));
        let v0 = g0.local_vote(sig(1));
        let v1 = g1.local_vote(sig(11));
        let (LocalVote::Mismatch(m0), LocalVote::Mismatch(m1)) = (v0, v1) else {
            panic!("expected mismatch votes");
        };
        let global = m0 + m1;
        assert_eq!(global, 1);
        assert_eq!(g0.decide(global), MarkerDecision::AllTracing);
        assert_eq!(g1.decide(global), MarkerDecision::AllTracing);
    }

    #[test]
    fn snapshot_restore_roundtrips_mid_run() {
        let mut g = TransitionGraph::new();
        drive(&mut g, sig(1)); // first
        drive(&mut g, sig(1)); // cluster -> lead phase
        let (cp, rc, lf) = g.snapshot();
        let mut restored = TransitionGraph::restore(cp, rc, lf);
        assert_eq!(restored.snapshot(), g.snapshot());
        // Both copies must keep deciding identically.
        for s in [1u64, 1, 2, 2, 2] {
            assert_eq!(drive(&mut g, sig(s)), drive(&mut restored, sig(s)));
        }
    }

    #[test]
    fn counted_states_cover_all_decisions() {
        assert_eq!(
            MarkerDecision::Cluster.counted_state(),
            MarkerState::Clustering
        );
        assert_eq!(
            MarkerDecision::StableLead.counted_state(),
            MarkerState::Lead
        );
        for d in [
            MarkerDecision::FirstMarker,
            MarkerDecision::FlushLead,
            MarkerDecision::AllTracing,
        ] {
            assert_eq!(d.counted_state(), MarkerState::AllTracing);
        }
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use xrand::Xoshiro256;

    /// Lock-step property: N ranks fed the same global votes always
    /// agree on every decision.
    #[test]
    fn ranks_stay_in_lockstep() {
        let mut rng = Xoshiro256::seed_from_u64(0x10C5);
        for _case in 0..200 {
            let sigs: Vec<u64> = (0..rng.range_usize(1, 40))
                .map(|_| rng.range_u64(1, 4))
                .collect();
            let nranks = rng.range_usize(2, 6);
            let mut graphs: Vec<TransitionGraph> =
                (0..nranks).map(|_| TransitionGraph::new()).collect();
            for s in &sigs {
                let votes: Vec<LocalVote> = graphs
                    .iter_mut()
                    .map(|g| g.local_vote(CallPathSig(*s)))
                    .collect();
                if votes.iter().any(|v| matches!(v, LocalVote::First)) {
                    // All ranks hit the first marker simultaneously.
                    assert!(votes.iter().all(|v| matches!(v, LocalVote::First)));
                    continue;
                }
                let global: u64 = votes
                    .iter()
                    .map(|v| match v {
                        LocalVote::Mismatch(m) => *m,
                        LocalVote::First => unreachable!(),
                    })
                    .sum();
                let decisions: Vec<MarkerDecision> =
                    graphs.iter_mut().map(|g| g.decide(global)).collect();
                assert!(decisions.windows(2).all(|w| w[0] == w[1]));
            }
        }
    }

    /// Clustering only ever fires after a confirmed repetition, and a
    /// flush only after a clustering.
    #[test]
    fn cluster_precedes_flush() {
        let mut rng = Xoshiro256::seed_from_u64(0xF105);
        for _case in 0..200 {
            let sigs: Vec<u64> = (0..rng.range_usize(1, 60))
                .map(|_| rng.range_u64(1, 4))
                .collect();
            let mut g = TransitionGraph::new();
            let mut clustered = false;
            for (i, s) in sigs.iter().enumerate() {
                let d = match g.local_vote(CallPathSig(*s)) {
                    LocalVote::First => continue,
                    LocalVote::Mismatch(m) => g.decide(m),
                };
                match d {
                    MarkerDecision::Cluster => {
                        assert!(i >= 1, "clustering needs a prior interval");
                        clustered = true;
                    }
                    MarkerDecision::FlushLead | MarkerDecision::StableLead => {
                        assert!(clustered, "lead states require a clustering first");
                        if d == MarkerDecision::FlushLead {
                            clustered = false;
                        }
                    }
                    _ => {}
                }
            }
        }
    }
}
