//! Comparators: plain ScalaTrace and the ACURDION-style finalize-time
//! clustering.
//!
//! * [`scalatrace_finalize`] — "without clustering, which is the default
//!   version of ScalaTrace": every rank traces everything, and one
//!   all-rank radix-tree merge runs inside `MPI_Finalize`. Its cost is the
//!   paper's O(n² log P) bottleneck.
//! * [`acurdion_finalize`] — the prior signature-clustering work the paper
//!   compares against in Tables III/IV: identical signatures and
//!   clustering machinery, but invoked exactly once at `MPI_Finalize`.
//!   Cheaper at the marker level than Chameleon (no online merges at all —
//!   the paper measures Chameleon at ~2× ACURDION's overhead under the
//!   maximum marker-call count) but every rank must keep its full trace
//!   allocated for the whole run, which is the memory story of Table IV.

use std::time::Duration;

use clusterkit::{ClusterMap, LeadSelection};
use mpisim::{Comm, Rank, SrcSel, TagSel};
use scalatrace::reduction::radix_tree_merge;
use scalatrace::{format, CompressedTrace, TracedProc};

use crate::config::ChameleonConfig;
use crate::runtime::{CLUSTER_TAG, ONLINE_TAG};

/// Outcome of a finalize-time baseline on one rank.
#[derive(Debug, Clone)]
pub struct BaselineOutcome {
    /// The merged global trace (rank 0 only).
    pub global_trace: Option<CompressedTrace>,
    /// Time spent clustering (zero for plain ScalaTrace).
    pub clustering_time: Duration,
    /// Time spent in the inter-node trace merge.
    pub intercomp_time: Duration,
    /// Bytes of trace storage this rank held going into finalize.
    pub trace_bytes: usize,
}

/// Plain ScalaTrace: all-rank inter-node compression at `MPI_Finalize`.
pub fn scalatrace_finalize(tp: &mut TracedProc, radix: usize) -> BaselineOutcome {
    tp.record_finalize("MPI_Finalize");
    tp.inner().barrier(Comm::TOOL);
    let trace_bytes = tp.tracer().trace_bytes();
    let tool0 = tp.inner().tool_time();
    let participants: Vec<Rank> = (0..tp.size()).collect();
    let trace = tp.tracer_mut().take_trace();
    let outcome = radix_tree_merge(tp.inner(), radix, &participants, &trace);
    // Exit synchronization: `MPI_Finalize` returns only once the global
    // merge is complete, so every rank observes the merge's critical path
    // (the tool-clock barrier propagates the slowest path to everyone).
    tp.inner().barrier(Comm::TOOL);
    BaselineOutcome {
        global_trace: outcome.merged,
        clustering_time: Duration::ZERO,
        intercomp_time: Duration::from_secs_f64(tp.inner().tool_time() - tool0),
        trace_bytes,
    }
}

/// ACURDION-style baseline: signature clustering once at `MPI_Finalize`,
/// then a top-K lead-trace merge. All ranks trace for the whole run.
pub fn acurdion_finalize(tp: &mut TracedProc, config: &ChameleonConfig) -> BaselineOutcome {
    tp.record_finalize("MPI_Finalize");
    tp.inner().barrier(Comm::TOOL);
    let trace_bytes = tp.tracer().trace_bytes();
    let me = tp.rank();
    let p = tp.size();

    // Whole-run signatures over the compressed trace (Algorithm 1's
    // literal input); equivalent to the never-rotated interval here but
    // consistent with Chameleon's clustering inputs.
    let triple = crate::runtime::trace_triple_of(tp.tracer().trace());
    let _ = tp.tracer_mut().rotate_interval();

    // Hierarchical clustering over the rank tree (same machinery
    // Chameleon uses online).
    let tool0 = tp.inner().tool_time();
    let algo = config.algo.build();
    let tree = mpisim::RadixTree::new(config.radix, p);
    let mut map = ClusterMap::from_rank(me, &triple);
    let work = mpisim::WorkModel::calibrated();
    for child in tree.children(me) {
        let info = tp
            .inner()
            .recv(SrcSel::Rank(child), TagSel::Tag(CLUSTER_TAG), Comm::TOOL);
        tp.inner().tool_compute(work.codec(info.payload.len()));
        // A bad payload (unreachable on the faultless simulated link)
        // costs the child's entries, not the run.
        if let Ok(child_map) = ClusterMap::decode(&info.payload) {
            map.merge(child_map);
        }
    }
    tp.inner().tool_compute(work.cluster(map.total_clusters()));
    map.prune(config.k, &*algo);
    let sel = match tree.parent(me) {
        Some(parent) => {
            let wire = map.encode();
            tp.inner().tool_compute(work.codec(wire.len()));
            tp.inner().send(parent, CLUSTER_TAG, Comm::TOOL, &wire);
            let enc = tp.inner().bcast(&[], 0, Comm::TOOL);
            tp.inner().tool_compute(work.codec(enc.len()));
            LeadSelection::decode(&enc)
                .unwrap_or_else(|e| panic!("cluster protocol bug on a faultless channel: {e}"))
        }
        None => {
            tp.inner().tool_compute(work.cluster(map.total_clusters()));
            let sel = LeadSelection::select(map, config.k, &*algo);
            let wire = sel.encode();
            tp.inner().tool_compute(work.codec(wire.len()));
            tp.inner().bcast(&wire, 0, Comm::TOOL);
            sel
        }
    };
    let clustering_time = Duration::from_secs_f64(tp.inner().tool_time() - tool0);

    // Top-K lead-trace merge, shipped to rank 0.
    let tool0 = tp.inner().tool_time();
    let mut global = None;
    if sel.is_lead(me) {
        let cluster = sel
            .map
            .cluster_of(me)
            .expect("lead belongs to a cluster")
            .clone();
        let mut trace = tp.tracer_mut().take_trace();
        tp.inner()
            .tool_compute(work.fold_per_node * trace.compressed_size() as f64);
        trace.visit_events_mut(&mut |e| e.set_ranks(cluster.members.clone()));
        let outcome = radix_tree_merge(tp.inner(), config.radix, &sel.leads, &trace);
        if let Some(partial) = outcome.merged {
            if me == 0 {
                global = Some(partial);
            } else {
                let wire = format::to_text(&partial);
                tp.inner().tool_compute(work.codec(wire.len()));
                tp.inner().send(0, ONLINE_TAG, Comm::TOOL, wire.as_bytes());
            }
        }
    }
    if me == 0 && !sel.leads.is_empty() && sel.leads[0] != 0 {
        let info = tp.inner().recv(
            SrcSel::Rank(sel.leads[0]),
            TagSel::Tag(ONLINE_TAG),
            Comm::TOOL,
        );
        tp.inner().tool_compute(work.codec(info.payload.len()));
        // An undecodable payload leaves the global trace empty rather than
        // killing rank 0.
        global = scalatrace::reduction::decode_wire_trace(&info.payload).ok();
    }
    tp.tracer_mut().clear_trace();
    // Exit synchronization (see scalatrace_finalize).
    tp.inner().barrier(Comm::TOOL);

    BaselineOutcome {
        global_trace: global,
        clustering_time,
        intercomp_time: Duration::from_secs_f64(tp.inner().tool_time() - tool0),
        trace_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::{World, WorldConfig};
    use scalatrace::RankSet;

    fn app(tp: &mut TracedProc, steps: usize) {
        let me = tp.rank();
        let p = tp.size();
        for _ in 0..steps {
            tp.frame("timestep", |tp| {
                tp.send("halo_send", (me + 1) % p, 1, &[0u8; 16]);
                tp.recv("halo_recv", (me + p - 1) % p, 1, 16);
                tp.allreduce_sum("residual", 1);
            });
        }
    }

    #[test]
    fn scalatrace_merges_all_ranks() {
        let report = World::new(WorldConfig::for_tests(6))
            .run(|proc| {
                let mut tp = TracedProc::new(proc);
                app(&mut tp, 5);
                scalatrace_finalize(&mut tp, 2)
            })
            .unwrap();
        let global = report.results[0].global_trace.as_ref().unwrap();
        let mut covered = RankSet::empty();
        global.visit_events(&mut |e| covered = covered.union(&e.ranks));
        assert_eq!(covered.len(), 6);
        // 5 steps x (send + recv + allreduce) + finalize per rank.
        assert!(global.dynamic_size() >= 16);
        assert!(
            report.results.iter().all(|r| r.trace_bytes > 0),
            "every rank allocates trace memory in plain ScalaTrace"
        );
    }

    #[test]
    fn acurdion_covers_ranks_with_few_leads() {
        let report = World::new(WorldConfig::for_tests(8))
            .run(|proc| {
                let mut tp = TracedProc::new(proc);
                app(&mut tp, 5);
                acurdion_finalize(&mut tp, &ChameleonConfig::with_k(3))
            })
            .unwrap();
        let global = report.results[0].global_trace.as_ref().unwrap();
        let mut covered = RankSet::empty();
        global.visit_events(&mut |e| covered = covered.union(&e.ranks));
        assert_eq!(covered.len(), 8, "cluster ranklists cover everyone");
        assert!(report.results[0].clustering_time > Duration::ZERO);
        // Every rank allocated trace space (the Table IV contrast with
        // Chameleon's zero-byte non-leads).
        assert!(report.results.iter().all(|r| r.trace_bytes > 0));
    }

    #[test]
    fn acurdion_matches_scalatrace_when_k_covers_all_behaviors() {
        // A ring has three behavior groups under relative encoding: the
        // two wrap-around ranks (offsets ±(p-1)) and the interior. With K
        // large enough to give each group a lead, the clustered trace is
        // structurally identical to the full ScalaTrace merge.
        let st = World::new(WorldConfig::for_tests(4))
            .run(|proc| {
                let mut tp = TracedProc::new(proc);
                app(&mut tp, 4);
                scalatrace_finalize(&mut tp, 2)
            })
            .unwrap();
        let ac = World::new(WorldConfig::for_tests(4))
            .run(|proc| {
                let mut tp = TracedProc::new(proc);
                app(&mut tp, 4);
                acurdion_finalize(&mut tp, &ChameleonConfig::with_k(4))
            })
            .unwrap();
        let st_trace = st.results[0].global_trace.as_ref().unwrap();
        let ac_trace = ac.results[0].global_trace.as_ref().unwrap();
        assert_eq!(st_trace.dynamic_size(), ac_trace.dynamic_size());
        assert_eq!(st_trace.compressed_size(), ac_trace.compressed_size());
    }

    #[test]
    fn acurdion_small_k_drops_only_redundant_structure() {
        // With K=2 the two wrap-around ranks share one lead: the clustered
        // trace is smaller than the full merge but still covers all ranks.
        let st = World::new(WorldConfig::for_tests(4))
            .run(|proc| {
                let mut tp = TracedProc::new(proc);
                app(&mut tp, 4);
                scalatrace_finalize(&mut tp, 2)
            })
            .unwrap();
        let ac = World::new(WorldConfig::for_tests(4))
            .run(|proc| {
                let mut tp = TracedProc::new(proc);
                app(&mut tp, 4);
                acurdion_finalize(&mut tp, &ChameleonConfig::with_k(2))
            })
            .unwrap();
        let st_trace = st.results[0].global_trace.as_ref().unwrap();
        let ac_trace = ac.results[0].global_trace.as_ref().unwrap();
        assert!(ac_trace.dynamic_size() <= st_trace.dynamic_size());
        let mut covered = RankSet::empty();
        ac_trace.visit_events(&mut |e| covered = covered.union(&e.ranks));
        assert_eq!(covered.len(), 4);
    }
}
