//! Per-rank instrumentation: overhead timers, state tallies, and trace
//! memory accounting.
//!
//! The paper's evaluation reads directly off these counters:
//!
//! * Table II — markers executed and AT/C/L tallies;
//! * Figures 4, 6, 8–11, Table III — per-component overhead (signature
//!   creation, voting, clustering, inter-compression), aggregated across
//!   ranks;
//! * Table IV — bytes allocated for traces per state, per rank.

use std::collections::BTreeMap;
use std::time::Duration;

use scalatrace::reduction::LevelTiming;

use crate::state::MarkerState;

/// Tally of marker calls per counted state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StateCounts {
    /// Markers counted as All-Tracing (first marker + mismatches).
    pub at: u64,
    /// Markers that ran clustering.
    pub c: u64,
    /// Markers spent in the stable Lead phase.
    pub l: u64,
    /// Finalize calls (0 or 1).
    pub f: u64,
}

impl StateCounts {
    /// Record one marker under its counted state.
    pub fn bump(&mut self, state: MarkerState) {
        match state {
            MarkerState::AllTracing => self.at += 1,
            MarkerState::Clustering => self.c += 1,
            MarkerState::Lead => self.l += 1,
            MarkerState::Final => self.f += 1,
        }
    }

    /// Total markers tallied.
    pub fn total(&self) -> u64 {
        self.at + self.c + self.l + self.f
    }
}

/// Per-state trace memory accounting (Table IV): how many bytes of trace
/// storage this rank held at each marker, grouped by the marker's state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemAccount {
    /// state -> (marker calls, summed bytes over those calls).
    per_state: BTreeMap<&'static str, (u64, u64)>,
}

impl MemAccount {
    /// Empty account.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `bytes` of live trace allocation at a marker counted under
    /// `state`.
    pub fn record(&mut self, state: MarkerState, bytes: usize) {
        let key = Self::label(state);
        let slot = self.per_state.entry(key).or_insert((0, 0));
        slot.0 += 1;
        slot.1 += bytes as u64;
    }

    fn label(state: MarkerState) -> &'static str {
        match state {
            MarkerState::AllTracing => "AT",
            MarkerState::Clustering => "C",
            MarkerState::Lead => "L",
            MarkerState::Final => "F",
        }
    }

    /// `(calls, total_bytes)` for a state label ("AT", "C", "L", "F").
    pub fn get(&self, label: &str) -> (u64, u64) {
        self.per_state.get(label).copied().unwrap_or((0, 0))
    }

    /// Average bytes per call for a state, 0 if the state never occurred.
    pub fn avg(&self, label: &str) -> u64 {
        let (calls, bytes) = self.get(label);
        bytes.checked_div(calls).unwrap_or(0)
    }

    /// Average bytes per call over *all* markers (Table IV's
    /// "Avg. Per Call" row).
    pub fn avg_overall(&self) -> u64 {
        let (calls, bytes) = self
            .per_state
            .values()
            .fold((0u64, 0u64), |(c, b), &(cc, bb)| (c + cc, b + bb));
        bytes.checked_div(calls).unwrap_or(0)
    }

    /// Iterate `(label, calls, total_bytes)` rows.
    pub fn rows(&self) -> impl Iterator<Item = (&'static str, u64, u64)> + '_ {
        self.per_state.iter().map(|(&k, &(c, b))| (k, c, b))
    }
}

/// Everything one rank measured during a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChameleonStats {
    /// Total `marker()` invocations (before frequency filtering).
    pub marker_invocations: u64,
    /// Markers that actually ran the transition graph.
    pub marker_calls: u64,
    /// Tally per counted state.
    pub states: StateCounts,
    /// Number of clustering events (`r` in the paper's complexity
    /// analysis; equals `states.c`).
    pub reclusterings: u64,
    /// Lead count of the most recent clustering (the effective K).
    pub leads: u64,
    /// Distinct Call-Path groups at the most recent clustering
    /// (Table I's cluster count).
    pub call_paths: u64,
    /// Time creating interval signatures.
    pub signature_time: Duration,
    /// Time in the collective vote (reduce + bcast).
    pub vote_time: Duration,
    /// Time in hierarchical clustering (map exchange + top-K + bcast of
    /// the selection).
    pub clustering_time: Duration,
    /// Time in online inter-compression (lead-trace merges + online-trace
    /// folding).
    pub intercomp_time: Duration,
    /// Per-state trace memory accounting.
    pub mem: MemAccount,
    /// Merge work per reduction-tree level, accumulated over every lead
    /// reduction this rank participated in (root = level 0). Shows where
    /// inter-compression time concentrates as traces widen toward the
    /// root.
    pub merge_levels: BTreeMap<usize, MergeLevelStats>,
    /// Marker slices whose contribution to the online trace is *degraded*
    /// under an armed fault plan: a rank died mid-slice, or a payload
    /// stayed corrupt past the retry budget (see FAULTS.md). Counted at
    /// most once per marker slice. Zero on a fault-free run.
    pub degraded_slices: u64,
    /// Orphaned clusters whose lead was re-elected after its original
    /// lead died. Every surviving rank computes the same re-election, so
    /// this is identical across survivors.
    pub lead_reelections: u64,
    /// Root promotions witnessed: the online-trace root died and the
    /// deputy (the smallest survivor) took over. A pure function of the
    /// agreed alive snapshots, so identical across survivors.
    pub promotions: u64,
    /// Rank-marker anomaly flags applied from the detector's shipped flag
    /// sets (each flagged rank counts once per marker, even when both
    /// signals fired). Identical across ranks by lock-step; zero when the
    /// detector is off or the run is fault-free.
    pub anomaly_flags: u64,
    /// Ranks quarantined into singleton clusters for sustained
    /// degradation. Monotone, identical across ranks.
    pub quarantines: u64,
    /// Leads demoted at selection time because the detector had them
    /// flagged. Identical across ranks.
    pub lead_demotions: u64,
}

impl ChameleonStats {
    /// Total tool overhead this rank spent inside marker/finalize
    /// wrappers.
    pub fn total_overhead(&self) -> Duration {
        self.signature_time + self.vote_time + self.clustering_time + self.intercomp_time
    }

    /// Fold one reduction's per-level merge timings into the running
    /// per-level profile.
    pub fn record_merge_timings(&mut self, timings: &[LevelTiming]) {
        for t in timings {
            let slot = self.merge_levels.entry(t.level).or_default();
            slot.merges += t.merges as u64;
            slot.seconds += t.seconds;
            slot.dp_cells += t.dp_cells;
            slot.fast_path_hits += t.fast_path_hits as u64;
        }
    }
}

/// Merge activity at one reduction-tree level, accumulated across
/// reductions (and, in [`AggregatedStats`], across ranks).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MergeLevelStats {
    /// Pairwise merges performed.
    pub merges: u64,
    /// Modeled seconds of codec + merge work.
    pub seconds: f64,
    /// LCS cells the aligner actually evaluated.
    pub dp_cells: u64,
    /// Merges resolved by the identical-stream fast path.
    pub fast_path_hits: u64,
}

impl MergeLevelStats {
    /// Fold another level's tallies into this one. Aggregation across
    /// ranks must *union* level keys — under fault plans different ranks
    /// can observe disjoint level sets (a rank that died early never saw
    /// the deep levels), and dropping any key would under-report the
    /// profile.
    pub fn absorb(&mut self, other: &MergeLevelStats) {
        self.merges += other.merges;
        self.seconds += other.seconds;
        self.dp_cells += other.dp_cells;
        self.fast_path_hits += other.fast_path_hits;
    }
}

/// Aggregate several ranks' stats the way the paper reports them
/// ("aggregated wall-clock times across all nodes").
#[derive(Debug, Clone, Default)]
pub struct AggregatedStats {
    /// Sum of per-rank signature time.
    pub signature_time: Duration,
    /// Sum of per-rank vote time.
    pub vote_time: Duration,
    /// Sum of per-rank clustering time.
    pub clustering_time: Duration,
    /// Sum of per-rank inter-compression time.
    pub intercomp_time: Duration,
    /// State tallies from rank 0 (identical on all ranks by lock-step).
    pub states: StateCounts,
    /// Markers that ran the transition graph (rank 0's count).
    pub marker_calls: u64,
    /// Per-level merge profile summed across ranks.
    pub merge_levels: BTreeMap<usize, MergeLevelStats>,
    /// Degraded marker slices (first rank's count — survivors agree on the
    /// slice verdict, so summing would multiply-count one event).
    pub degraded_slices: u64,
    /// Lead re-elections (first rank's count, same reasoning).
    pub lead_reelections: u64,
    /// Root promotions (first rank's count, same reasoning).
    pub promotions: u64,
    /// Anomaly flags applied (first rank's count — the flag sets are
    /// agreed, so every rank tallies the same).
    pub anomaly_flags: u64,
    /// Quarantined ranks (first rank's count, same reasoning).
    pub quarantines: u64,
    /// Health-policy lead demotions (first rank's count, same reasoning).
    pub lead_demotions: u64,
}

impl AggregatedStats {
    /// Fold per-rank stats.
    pub fn from_ranks<'a>(stats: impl IntoIterator<Item = &'a ChameleonStats>) -> Self {
        let mut agg = AggregatedStats::default();
        let mut first = true;
        for s in stats {
            agg.signature_time += s.signature_time;
            agg.vote_time += s.vote_time;
            agg.clustering_time += s.clustering_time;
            agg.intercomp_time += s.intercomp_time;
            for (&lvl, m) in &s.merge_levels {
                agg.merge_levels.entry(lvl).or_default().absorb(m);
            }
            if first {
                agg.states = s.states;
                agg.marker_calls = s.marker_calls;
                agg.degraded_slices = s.degraded_slices;
                agg.lead_reelections = s.lead_reelections;
                agg.promotions = s.promotions;
                agg.anomaly_flags = s.anomaly_flags;
                agg.quarantines = s.quarantines;
                agg.lead_demotions = s.lead_demotions;
                first = false;
            }
        }
        agg
    }

    /// Total aggregated overhead.
    pub fn total_overhead(&self) -> Duration {
        self.signature_time + self.vote_time + self.clustering_time + self.intercomp_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_counts_bump_and_total() {
        let mut c = StateCounts::default();
        c.bump(MarkerState::AllTracing);
        c.bump(MarkerState::Clustering);
        c.bump(MarkerState::Lead);
        c.bump(MarkerState::Lead);
        c.bump(MarkerState::Final);
        assert_eq!(c.at, 1);
        assert_eq!(c.c, 1);
        assert_eq!(c.l, 2);
        assert_eq!(c.f, 1);
        assert_eq!(c.total(), 5);
    }

    #[test]
    fn mem_account_averages() {
        let mut m = MemAccount::new();
        m.record(MarkerState::AllTracing, 100);
        m.record(MarkerState::AllTracing, 300);
        m.record(MarkerState::Lead, 0);
        assert_eq!(m.get("AT"), (2, 400));
        assert_eq!(m.avg("AT"), 200);
        assert_eq!(m.avg("L"), 0);
        assert_eq!(m.get("C"), (0, 0));
        assert_eq!(m.avg_overall(), 133);
    }

    #[test]
    fn mem_rows_iterate_all() {
        let mut m = MemAccount::new();
        m.record(MarkerState::Clustering, 50);
        m.record(MarkerState::Final, 70);
        let rows: Vec<_> = m.rows().collect();
        assert_eq!(rows.len(), 2);
        assert!(rows.contains(&("C", 1, 50)));
        assert!(rows.contains(&("F", 1, 70)));
    }

    #[test]
    fn aggregation_sums_times_keeps_rank0_counts() {
        let mk = |ms: u64, c: u64| {
            let mut s = ChameleonStats {
                signature_time: Duration::from_millis(ms),
                marker_calls: 10,
                ..ChameleonStats::default()
            };
            s.states.c = c;
            s
        };
        let ranks = [mk(5, 1), mk(7, 1), mk(9, 1)];
        let agg = AggregatedStats::from_ranks(ranks.iter());
        assert_eq!(agg.signature_time, Duration::from_millis(21));
        assert_eq!(agg.states.c, 1, "rank 0's tally, not the sum");
        assert_eq!(agg.marker_calls, 10);
    }

    #[test]
    fn merge_level_timings_accumulate_and_aggregate() {
        let timings = [
            LevelTiming {
                level: 0,
                merges: 2,
                seconds: 0.5,
                dp_cells: 100,
                fast_path_hits: 1,
            },
            LevelTiming {
                level: 1,
                merges: 1,
                seconds: 0.25,
                dp_cells: 0,
                fast_path_hits: 1,
            },
        ];
        let mut a = ChameleonStats::default();
        a.record_merge_timings(&timings);
        a.record_merge_timings(&timings[..1]);
        assert_eq!(a.merge_levels[&0].merges, 4);
        assert_eq!(a.merge_levels[&0].dp_cells, 200);
        assert_eq!(a.merge_levels[&1].fast_path_hits, 1);

        let mut b = ChameleonStats::default();
        b.record_merge_timings(&timings[1..]);
        let agg = AggregatedStats::from_ranks([&a, &b]);
        assert_eq!(agg.merge_levels[&0].merges, 4);
        assert_eq!(agg.merge_levels[&1].merges, 2);
        assert!((agg.merge_levels[&1].seconds - 0.5).abs() < 1e-12);
    }

    #[test]
    fn aggregation_unions_disjoint_level_sets() {
        // Regression: ranks with *disjoint* merge-level keys (a rank that
        // crashed early never reached the deep levels) must all appear in
        // the aggregate — union semantics, not intersection.
        let mut a = ChameleonStats::default();
        a.record_merge_timings(&[LevelTiming {
            level: 0,
            merges: 3,
            seconds: 0.125,
            dp_cells: 10,
            fast_path_hits: 2,
        }]);
        let mut b = ChameleonStats::default();
        b.record_merge_timings(&[LevelTiming {
            level: 2,
            merges: 5,
            seconds: 0.5,
            dp_cells: 40,
            fast_path_hits: 0,
        }]);
        let agg = AggregatedStats::from_ranks([&a, &b]);
        assert_eq!(agg.merge_levels.len(), 2, "both levels survive");
        assert_eq!(agg.merge_levels[&0].merges, 3);
        assert_eq!(agg.merge_levels[&2].merges, 5);
        assert_eq!(agg.merge_levels[&2].dp_cells, 40);
    }

    #[test]
    fn absorb_sums_every_field() {
        let mut acc = MergeLevelStats::default();
        let x = MergeLevelStats {
            merges: 1,
            seconds: 0.25,
            dp_cells: 7,
            fast_path_hits: 1,
        };
        acc.absorb(&x);
        acc.absorb(&x);
        assert_eq!(acc.merges, 2);
        assert_eq!(acc.dp_cells, 14);
        assert_eq!(acc.fast_path_hits, 2);
        assert!((acc.seconds - 0.5).abs() < 1e-12);
    }

    #[test]
    fn total_overhead_sums_components() {
        let s = ChameleonStats {
            signature_time: Duration::from_millis(1),
            vote_time: Duration::from_millis(2),
            clustering_time: Duration::from_millis(3),
            intercomp_time: Duration::from_millis(4),
            ..ChameleonStats::default()
        };
        assert_eq!(s.total_overhead(), Duration::from_millis(10));
    }
}
