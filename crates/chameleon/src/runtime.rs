//! The Chameleon driver: marker and finalize wrappers (Algorithm 3).
//!
//! One [`Chameleon`] instance lives on each rank, attached to that rank's
//! [`TracedProc`]. The workload calls [`Chameleon::marker`] at its
//! progress-reporting points (timestep boundaries) and
//! [`Chameleon::finalize`] at the end; everything else — voting,
//! clustering, lead election, online inter-compression, memory
//! bookkeeping — happens inside those two calls, exactly as the paper puts
//! it: "communication for clustering occurs within PMPI pre- and
//! post-wrappers of the marker."

use std::time::Duration;

use clusterkit::{ClusterAlgorithm, ClusterMap, LeadSelection};
use mpisim::collectives::ReduceOp;
use mpisim::{Comm, Rank, RetryPolicy, SrcSel, Tag, TagSel};
use scalatrace::reduction::{decode_wire_trace, radix_tree_merge};
use scalatrace::{CompressedTrace, TracedProc};
use sigkit::SignatureTriple;

use crate::checkpoint::Checkpoint;
use crate::config::ChameleonConfig;
use crate::state::{LocalVote, MarkerDecision, MarkerState, TransitionGraph};
use crate::stats::ChameleonStats;

/// Compute a rank's clustering signature triple from its *partial trace*
/// — Algorithm 1's literal input ("A Sequence of Compressed MPI Events
/// (PRSDs)"). The per-interval accumulators drive the phase-change vote;
/// clustering, however, must group ranks by the content that is about to
/// be merged, which spans every interval since the last merge.
pub(crate) fn trace_triple_of(trace: &scalatrace::CompressedTrace) -> SignatureTriple {
    trace_triple(trace)
}

fn trace_triple(trace: &scalatrace::CompressedTrace) -> SignatureTriple {
    let mut cp = sigkit::CallPathAccumulator::new();
    let mut src = sigkit::ParamEstimator::new();
    let mut dest = sigkit::ParamEstimator::new();
    trace.visit_events(&mut |e| {
        cp.record(e.stack_sig);
        if let Some(s) = &e.op.src {
            src.add(s.param_sig());
        }
        if let Some(d) = &e.op.dest {
            dest.add(d.param_sig());
        }
    });
    SignatureTriple {
        call_path: cp.finish(),
        src: src.estimate(),
        dest: dest.estimate(),
    }
}

/// Journal label for a counted marker state (matches `obs::STATES`).
/// The metrics-plane histogram charged with a marker interval's tool-time
/// cost, by the state the interval counted as.
fn state_hist(state: MarkerState) -> obs::HistId {
    match state {
        MarkerState::AllTracing => obs::HistId::StateAtNs,
        MarkerState::Clustering => obs::HistId::StateCNs,
        MarkerState::Lead => obs::HistId::StateLNs,
        MarkerState::Final => obs::HistId::StateFNs,
    }
}

fn state_label(state: MarkerState) -> &'static str {
    match state {
        MarkerState::AllTracing => "AT",
        MarkerState::Clustering => "C",
        MarkerState::Lead => "L",
        MarkerState::Final => "F",
    }
}

/// Journal label for a marker decision (matches `obs::DECISIONS`).
fn decision_label(d: MarkerDecision) -> &'static str {
    match d {
        MarkerDecision::FirstMarker => "first",
        MarkerDecision::AllTracing => "all_tracing",
        MarkerDecision::StableLead => "stable_lead",
        MarkerDecision::Cluster => "cluster",
        MarkerDecision::FlushLead => "flush_lead",
    }
}

/// Tool-comm tag for hierarchical cluster-map exchange.
pub const CLUSTER_TAG: Tag = (1 << 29) + 1;
/// Tool-comm tag for shipping the partial global trace to the online
/// root (rank 0, or the promoted deputy after a root failover).
pub const ONLINE_TAG: Tag = (1 << 29) + 2;
/// Tool-comm tag for the root's star distribution of the lead selection
/// under an armed fault plan (a tree broadcast would cut a subtree off
/// from the selection if its interior relay died; lock-step requires every
/// survivor to learn the same leads).
pub const SELECT_TAG: Tag = (1 << 29) + 3;
/// Obs-plane tag for shipping the root's checkpoint replica to the deputy
/// (obs tag 0 is reserved for the metrics reduction).
pub const CKPT_SHIP_TAG: Tag = 1;
/// Obs-plane tag for the deputy's replication acknowledgement.
pub const CKPT_ACK_TAG: Tag = 2;
/// Obs-plane tag for the per-marker health star-gather: each rank ships
/// its `(compute_ns, retransmits)` delta to the online root.
pub const HEALTH_TAG: Tag = 3;
/// Obs-plane tag for the root's flag-set broadcast back to every
/// survivor (the mitigation ladder runs in lock-step off this set).
pub const FLAG_TAG: Tag = 4;

/// Multiplier applied to the reliable-receive retry budget toward a
/// currently-flagged peer: a degrading link earns more retransmission
/// rounds (and therefore deeper exponential backoff) before its slice is
/// written off as degraded.
const HEALTH_RETRY_ESCALATION: u32 = 4;

/// Result of `finalize`: the online trace materializes on the online
/// root.
#[derive(Debug, Clone)]
pub struct FinalizeOutcome {
    /// The complete online global trace, held by the online root — rank 0,
    /// or the promoted deputy after a root failover; `None` elsewhere.
    pub online_trace: Option<CompressedTrace>,
    /// This rank's accumulated instrumentation.
    pub stats: ChameleonStats,
}

/// Per-rank Chameleon state.
pub struct Chameleon {
    config: ChameleonConfig,
    graph: TransitionGraph,
    stats: ChameleonStats,
    /// Lead selection from the most recent Clustering marker; `Some`
    /// exactly while in a lead phase.
    selection: Option<LeadSelection>,
    /// The incrementally grown global trace (the online root keeps it;
    /// empty elsewhere).
    online_trace: CompressedTrace,
    /// The deputy's copy of the root's latest checkpoint blob. `None` on
    /// every other rank and before the first replication; consumed on
    /// promotion.
    replica: Option<Vec<u8>>,
    /// Resume fast-forward window: while `Some`, markers up to and
    /// including the checkpoint's merge nothing (the checkpoint already
    /// holds their contributions); at the checkpoint's marker the trace
    /// is installed on the root and the window closes.
    resume: Option<Checkpoint>,
    /// The agreed surviving participant set, ascending. All ranks until a
    /// resilient collective reports a smaller snapshot; never shrinks on a
    /// fault-free run. Every survivor holds the same copy (it comes from
    /// rank 0's authoritative snapshot), which is what keeps the shrunk
    /// protocol in lock-step.
    alive: Vec<Rank>,
    /// Whether the current marker slice has lost information to a fault
    /// (rank death, payload corrupt past the retry budget, undecodable
    /// wire bytes). Folded into `stats.degraded_slices` — at most once per
    /// slice — when the slice closes.
    slice_degraded: bool,
    /// Ranks flagged by the detector at the most recent marker, ascending.
    /// Shipped by the online root and applied identically on every rank,
    /// so the mitigation ladder stays in lock-step. Always empty when the
    /// detector is off.
    flagged: Vec<Rank>,
    /// Consecutive-flag streaks (the quarantine trigger), driven in
    /// lock-step from the shipped flag sets.
    sustain: obs::SustainTracker,
    /// Ranks quarantined for sustained degradation, ascending. Grows
    /// monotonically; each is walled into a singleton cluster at every
    /// subsequent selection.
    quarantined: Vec<Rank>,
    /// Last-sampled `(compute_ns, retransmits)` totals, so each marker
    /// ships a per-interval delta rather than a lifetime sum.
    health_base: (u64, u64),
    finalized: bool,
}

impl Chameleon {
    /// Create the per-rank driver.
    pub fn new(config: ChameleonConfig) -> Self {
        let resume = config.resume.clone();
        Chameleon {
            config,
            graph: TransitionGraph::new(),
            stats: ChameleonStats::default(),
            selection: None,
            online_trace: CompressedTrace::new(),
            replica: None,
            resume,
            alive: Vec::new(),
            slice_degraded: false,
            flagged: Vec::new(),
            sustain: obs::SustainTracker::new(),
            quarantined: Vec::new(),
            health_base: (0, 0),
            finalized: false,
        }
    }

    /// Instrumentation so far.
    pub fn stats(&self) -> &ChameleonStats {
        &self.stats
    }

    /// The agreed surviving participant set, ascending. All ranks until a
    /// fault plan kills one and a marker's resilient collective agrees on
    /// the shrunk set. Fault-aware workloads route around dead peers by
    /// rebuilding their communication pattern over this list.
    pub fn alive(&self) -> &[Rank] {
        &self.alive
    }

    /// The online-trace root: the smallest agreed-alive rank. Rank 0
    /// until it dies and the deputy is promoted.
    pub fn online_root(&self) -> Rank {
        self.alive.first().copied().unwrap_or(0)
    }

    /// Whether the current marker sits inside a resume replay's
    /// fast-forward window (merges and checkpoint ships are skipped; the
    /// checkpoint already holds their outcome).
    fn replaying(&self) -> bool {
        self.resume
            .as_ref()
            .is_some_and(|c| self.stats.marker_invocations <= c.marker)
    }

    /// Current online-trace size in bytes (only meaningful on the online
    /// root).
    pub fn online_trace_bytes(&self) -> usize {
        if self.online_trace.is_empty() {
            0
        } else {
            self.online_trace.byte_size()
        }
    }

    /// Whether this rank is currently a lead (or in all-tracing mode,
    /// where everyone effectively is).
    pub fn is_tracing(&self, tp: &TracedProc) -> bool {
        tp.tracer().is_enabled()
    }

    /// The marker call — insert at timestep boundaries.
    ///
    /// All ranks must call this collectively (it synchronizes on the
    /// marker communicator). Subject to `Call_Frequency`, it runs
    /// Algorithm 1 (vote) and the matching slice of Algorithm 3.
    pub fn marker(&mut self, tp: &mut TracedProc) {
        assert!(!self.finalized, "marker after finalize");
        self.stats.marker_invocations += 1;
        let n = self.stats.marker_invocations;
        let mtool0 = tp.inner().tool_time();
        tp.inner().record(|| obs::EventKind::Marker { n });
        if self.alive.is_empty() {
            self.alive = (0..tp.size()).collect();
        }
        let armed = tp.inner().faults_armed();
        // The marker itself: a barrier distinguished by its unique
        // communicator value. Tool-internal, so not traced. Its cost is
        // the modeled communication time (measuring blocking waits on an
        // oversubscribed host would time the scheduler, not the tool).
        // Under an armed fault plan the barrier is resilient and doubles
        // as the death detector: its agreed alive snapshot drives lead
        // re-election before any per-slice work begins.
        let tool0 = tp.inner().tool_time();
        if armed {
            let alive_now = tp.inner().resilient_barrier(Comm::MARKER);
            self.observe_alive(tp, alive_now);
        } else {
            tp.inner().barrier(Comm::MARKER);
        }
        self.stats.vote_time += Duration::from_secs_f64(tp.inner().tool_time() - tool0);
        if !self
            .stats
            .marker_invocations
            .is_multiple_of(self.config.call_frequency)
        {
            // Even skipped markers close a metrics-plane snapshot: the
            // whole point of the in-flight plane is per-marker visibility,
            // not per-*processed*-marker visibility.
            self.snapshot_metrics(tp);
            self.health_check(tp);
            return; // Algorithm 3 lines 1-3
        }
        self.stats.marker_calls += 1;

        // Signature creation: O(n) over the interval's compressed events
        // (modeled; see mpisim::WorkModel).
        let events = tp.tracer().interval().event_count();
        let triple = tp.tracer_mut().rotate_interval();
        let sig_cost = mpisim::WorkModel::calibrated().signature(events);
        tp.inner().tool_compute(sig_cost);
        self.stats.signature_time += Duration::from_secs_f64(sig_cost);
        tp.inner().record(|| obs::EventKind::Signature {
            events,
            call_path: triple.call_path.0,
        });
        tp.inner().metric_add(obs::Counter::Signatures, 1);
        tp.inner().metric_add(obs::Counter::SigEvents, events);

        // Collective vote (Algorithm 1): reduce + bcast of the mismatch
        // indicator, O(log P) modeled communication.
        let tool0 = tp.inner().tool_time();
        let decision = match self.graph.local_vote(triple.call_path) {
            LocalVote::First => MarkerDecision::FirstMarker,
            LocalVote::Mismatch(m) => {
                let global = if armed {
                    let (global, alive_now) =
                        tp.inner()
                            .resilient_allreduce_u64(m, ReduceOp::Sum, Comm::TOOL);
                    self.observe_alive(tp, alive_now);
                    global
                } else {
                    tp.inner().allreduce_u64(m, ReduceOp::Sum, Comm::TOOL)
                };
                self.graph.decide(global)
            }
        };
        self.stats.vote_time += Duration::from_secs_f64(tp.inner().tool_time() - tool0);

        // Memory snapshot before any trace is wiped: what was allocated
        // during this interval (Table IV).
        let pre_bytes = tp.tracer().trace_bytes();

        match decision {
            MarkerDecision::FirstMarker | MarkerDecision::AllTracing => {
                // Nothing to do; partial traces keep accumulating.
            }
            MarkerDecision::StableLead => {
                // Leads keep tracing; everyone else stays dark. No merge —
                // this is why the lead phase is nearly free.
            }
            MarkerDecision::Cluster => {
                // Cluster on the partial trace's signatures (everything
                // that the merge below will ship), not just the last
                // interval's.
                let cluster_triple = trace_triple(tp.tracer().trace());
                let sel = self.cluster(tp, &cluster_triple);
                let am_lead = sel.is_lead(tp.rank());
                tp.tracer_mut().set_enabled(am_lead);
                self.merge_leads_into_online(tp, &sel);
                self.selection = Some(sel);
            }
            MarkerDecision::FlushLead => {
                // A flush normally follows a clustering, but under a fault
                // plan the selection may have been abandoned (e.g. every
                // lead died). Falling back to All-Tracing loses nothing:
                // every rank simply resumes recording.
                if let Some(sel) = self.selection.take() {
                    self.merge_leads_into_online(tp, &sel);
                }
                // Phase changed: back to all-tracing.
                tp.tracer_mut().set_enabled(true);
            }
        }

        let marker = self.stats.marker_invocations;
        if self.slice_degraded {
            self.stats.degraded_slices += 1;
            self.slice_degraded = false;
            tp.inner().record(|| obs::EventKind::Degraded { marker });
        }
        let state = decision.counted_state();
        self.stats.states.bump(state);
        tp.inner().record(|| obs::EventKind::State {
            marker,
            state: state_label(state),
            decision: decision_label(decision),
        });
        self.stats.reclusterings = self.stats.states.c;
        let post_online = if tp.rank() == self.online_root() {
            self.online_trace_bytes()
        } else {
            0
        };
        self.stats.mem.record(state, pre_bytes + post_online);
        let interval_cost = tp.inner().tool_time() - mtool0;
        tp.inner()
            .metric_observe_seconds(state_hist(state), interval_cost);
        // Checkpoint before installing a resume payload: during a replay
        // the stride markers up to the resume point are skipped (they were
        // already persisted by the pre-kill run), and the install below
        // closes the window so checkpointing restarts at the next stride.
        self.checkpoint_if_due(tp);
        self.maybe_install_resume(tp);
        self.snapshot_metrics(tp);
        self.health_check(tp);
    }

    /// The `MPI_Finalize` wrapper: flush the last interval into the online
    /// trace and return it (on rank 0).
    ///
    /// Per the paper, the Call-Path at finalize is "definitely different
    /// from the previous clustering" (the finalize event itself is new),
    /// so no vote is needed: if a lead phase is active its leads are
    /// flushed; otherwise one more clustering runs over the all-tracing
    /// partial traces.
    pub fn finalize(&mut self, tp: &mut TracedProc) -> FinalizeOutcome {
        assert!(!self.finalized, "finalize called twice");
        self.finalized = true;
        let mtool0 = tp.inner().tool_time();
        if self.alive.is_empty() {
            self.alive = (0..tp.size()).collect();
        }
        let armed = tp.inner().faults_armed();
        tp.record_finalize("MPI_Finalize");
        let tool0 = tp.inner().tool_time();
        if armed {
            let alive_now = tp.inner().resilient_barrier(Comm::TOOL);
            self.observe_alive(tp, alive_now);
        } else {
            tp.inner().barrier(Comm::TOOL);
        }
        self.stats.vote_time += Duration::from_secs_f64(tp.inner().tool_time() - tool0);

        // Modeled like the marker path: measuring real CPU here would put
        // nondeterministic wall time into an otherwise fully modeled stat.
        let events = tp.tracer().interval().event_count();
        let triple = tp.tracer_mut().rotate_interval();
        let sig_cost = mpisim::WorkModel::calibrated().signature(events);
        tp.inner().tool_compute(sig_cost);
        self.stats.signature_time += Duration::from_secs_f64(sig_cost);
        tp.inner().metric_add(obs::Counter::Signatures, 1);
        tp.inner().metric_add(obs::Counter::SigEvents, events);

        let pre_bytes = tp.tracer().trace_bytes();

        // A resume window that outlived the run's markers means the
        // checkpoint came from a longer run; drop it so the final flush
        // still merges whatever the replay holds.
        self.resume = None;

        match self.selection.take() {
            Some(sel) => {
                // Lead phase: non-leads hold no events for this tail; the
                // current leads' traces cover their clusters.
                self.merge_leads_into_online(tp, &sel);
            }
            None => {
                // All-tracing: one final clustering (re-clustering
                // forced), grouping by the unmerged partial traces — the
                // final *interval* may hold nothing but the finalize
                // event, which would spuriously group every rank
                // together.
                let _ = triple;
                let cluster_triple = trace_triple(tp.tracer().trace());
                let sel = self.cluster(tp, &cluster_triple);
                let am_lead = sel.is_lead(tp.rank());
                tp.tracer_mut().set_enabled(am_lead);
                self.merge_leads_into_online(tp, &sel);
            }
        }

        // Exit synchronization: the job ends when the last merge
        // completes; spread the critical path to all ranks.
        let tool0 = tp.inner().tool_time();
        if armed {
            let alive_now = tp.inner().resilient_barrier(Comm::TOOL);
            self.observe_alive(tp, alive_now);
        } else {
            tp.inner().barrier(Comm::TOOL);
        }
        self.stats.intercomp_time += Duration::from_secs_f64(tp.inner().tool_time() - tool0);

        let marker = self.stats.marker_invocations;
        if self.slice_degraded {
            self.stats.degraded_slices += 1;
            self.slice_degraded = false;
            tp.inner().record(|| obs::EventKind::Degraded { marker });
        }
        self.stats.states.bump(MarkerState::Final);
        tp.inner().record(|| obs::EventKind::State {
            marker,
            state: state_label(MarkerState::Final),
            decision: "finalize",
        });
        let post_online = if tp.rank() == self.online_root() {
            self.online_trace_bytes()
        } else {
            0
        };
        self.stats
            .mem
            .record(MarkerState::Final, pre_bytes + post_online);
        let interval_cost = tp.inner().tool_time() - mtool0;
        tp.inner()
            .metric_observe_seconds(state_hist(MarkerState::Final), interval_cost);
        self.snapshot_metrics(tp);

        FinalizeOutcome {
            online_trace: (tp.rank() == self.online_root())
                .then(|| std::mem::take(&mut self.online_trace)),
            stats: self.stats.clone(),
        }
    }

    /// Fold a fresh alive snapshot from a resilient collective into the
    /// runtime: detect newly dead ranks, re-elect leads for the clusters
    /// they led, and mark the slice degraded. Everything here is a pure
    /// function of the agreed snapshot, so every survivor transitions
    /// identically without extra communication.
    fn observe_alive(&mut self, tp: &mut TracedProc, alive_now: Vec<Rank>) {
        if alive_now.len() == self.alive.len() {
            return; // the alive set only ever shrinks
        }
        let old_root = self.online_root();
        self.slice_degraded = true;
        if let Some(sel) = &mut self.selection {
            let reelected = sel.map.reelect_leads(&alive_now);
            self.stats.lead_reelections += reelected.len() as u64;
            tp.inner()
                .metric_add(obs::Counter::Reelections, reelected.len() as u64);
            for r in reelected {
                tp.inner().record(|| obs::EventKind::Reelect {
                    call_path: r.call_path,
                    old: r.old as u64,
                    new: r.new as u64,
                });
            }
            // Rebuild the lead roster over survivors; extinct clusters
            // (every member dead) drop out here.
            sel.leads = sel
                .map
                .leads()
                .into_iter()
                .filter(|r| alive_now.contains(r))
                .collect();
            // A freshly elected lead starts recording *now*; whatever its
            // cluster did earlier in the slice died with the old lead —
            // that loss is exactly what `degraded_slices` counts.
            if sel.is_lead(tp.rank()) && !tp.tracer().is_enabled() {
                tp.tracer_mut().set_enabled(true);
            }
        }
        // Root failover: the dead root's deputy — now the smallest
        // survivor — inherits the online trace. Every survivor counts the
        // same promotion (the snapshot is agreed); only the promoted rank
        // restores from its replica and journals the event.
        let new_root = alive_now.first().copied().unwrap_or(0);
        if new_root != old_root {
            self.stats.promotions += 1;
            let marker = self.stats.marker_invocations;
            if tp.rank() == new_root {
                let restored = match self.replica.take().map(|b| Checkpoint::decode(&b)) {
                    Some(Ok(ckpt)) => {
                        self.online_trace = ckpt.trace;
                        true
                    }
                    // No replica yet (the root died before the first
                    // checkpoint ship) or an undecodable one: the online
                    // trace restarts empty; everything merged before this
                    // marker died with the root. `degraded_slices`
                    // already charges the slice.
                    _ => false,
                };
                tp.inner().record(|| obs::EventKind::Promote {
                    marker,
                    old_root: old_root as u64,
                    restored: u64::from(restored),
                });
            }
        }
        self.alive = alive_now;
    }

    /// Durable-checkpoint protocol, run at the close of every processed
    /// marker whose invocation count is a multiple of `ckpt_stride`: the
    /// online-trace root serializes its recovery state ([`Checkpoint`]),
    /// optionally persists it to `ckpt_dir` (wall-clock I/O, invisible to
    /// the simulation), and replicates it to the deputy — the
    /// next-smallest survivor — over the passive obs plane. Obs traffic
    /// never ticks the op counter, so a planned crash cannot strike
    /// mid-replication: the ship/ack pair is crash-atomic.
    fn checkpoint_if_due(&mut self, tp: &mut TracedProc) {
        let stride = self.config.ckpt_stride;
        if stride == 0 || !self.stats.marker_invocations.is_multiple_of(stride) || self.replaying()
        {
            return;
        }
        let me = tp.rank();
        let root = self.online_root();
        let deputy = self.alive.get(1).copied();
        if me == root {
            let ckpt = self.capture(tp);
            let bytes = ckpt.encode();
            if let Some(dir) = &self.config.ckpt_dir {
                let path = dir.join(format!("ckpt-{:06}.bin", ckpt.marker));
                // Persistence failure must degrade durability, not the
                // run: the deputy replica still covers a root crash.
                if let Err(e) = std::fs::write(&path, &bytes) {
                    eprintln!("chameleon: checkpoint write {} failed: {e}", path.display());
                }
            }
            if let Some(dep) = deputy {
                tp.inner().obs_ship(dep, CKPT_SHIP_TAG, bytes.clone());
                // Block for the ack so replication completes before the
                // next faultable op; a dead deputy resolves to `None`.
                let _ = tp.inner().obs_collect_or_dead(dep, CKPT_ACK_TAG);
            }
            let marker = ckpt.marker;
            let nbytes = bytes.len() as u64;
            let deputy_field = deputy.map_or(u64::MAX, |d| d as u64);
            tp.inner().record(|| obs::EventKind::Checkpoint {
                marker,
                bytes: nbytes,
                deputy: deputy_field,
            });
        } else if Some(me) == deputy {
            // Lock-step with the root: both sides derive the same stride
            // schedule from the agreed alive set, and a root that died
            // mid-slice resolves the collect to `None`.
            if let Some(bytes) = tp.inner().obs_collect_or_dead(root, CKPT_SHIP_TAG) {
                self.replica = Some(bytes);
                tp.inner().obs_ship(root, CKPT_ACK_TAG, vec![1]);
            }
        }
    }

    /// Capture this rank's recovery state (valid only on the online
    /// root).
    fn capture(&self, tp: &mut TracedProc) -> Checkpoint {
        let (old_call_path, re_clustering, lead_flag) = self.graph.snapshot();
        Checkpoint {
            marker: self.stats.marker_invocations,
            marker_calls: self.stats.marker_calls,
            root: tp.rank() as u64,
            alive: self.alive.clone(),
            old_call_path,
            re_clustering,
            lead_flag,
            selection: self.selection.clone(),
            trace: self.online_trace.clone(),
            metrics: tp.inner().metrics_encode().unwrap_or_default(),
            journal_hwm: tp.inner().obs_len() as u64,
        }
    }

    /// Close a resume replay's fast-forward window: at the checkpoint's
    /// marker, install its online trace on the root and journal the
    /// resume. The replayed transition graph must agree with the
    /// checkpointed one — both are deterministic functions of the same
    /// vote history.
    fn maybe_install_resume(&mut self, tp: &mut TracedProc) {
        let due = self
            .resume
            .as_ref()
            .is_some_and(|c| self.stats.marker_invocations == c.marker);
        if !due {
            return;
        }
        let ckpt = self.resume.take().expect("due implies present");
        debug_assert_eq!(
            self.graph.snapshot(),
            (ckpt.old_call_path, ckpt.re_clustering, ckpt.lead_flag),
            "resume replay diverged from the checkpointed transition graph"
        );
        if tp.rank() == self.online_root() {
            let marker = ckpt.marker;
            let hwm = ckpt.journal_hwm;
            self.online_trace = ckpt.trace;
            tp.inner().record(|| obs::EventKind::Resume { marker, hwm });
        }
    }

    /// The closed-loop health plane, run at the close of *every* marker
    /// invocation when a detector is configured; a single `Option` check
    /// otherwise, so detector-off runs stay byte-identical to the seed.
    ///
    /// Every rank ships its per-marker `(compute_ns, retransmits)` delta
    /// to the online root over the passive OBS plane; the root scores the
    /// batch per cluster cohort ([`obs::detect::detect`]), journals one
    /// `anomaly` event per flag, ships the flagged-rank set back to every
    /// survivor, and all ranks — root included — fold the identical set
    /// into the mitigation state ([`Chameleon::apply_flags`]). OBS traffic
    /// never ticks virtual clocks or the fault schedule, so a fault-free
    /// run with the detector armed produces the same journal bytes as one
    /// without it (the floored robust score of a byte-identical cohort is
    /// exactly zero — no flags, no events, no mitigation).
    fn health_check(&mut self, tp: &mut TracedProc) {
        let Some(cfg) = self.config.detector else {
            return;
        };
        let me = tp.rank();
        let marker = self.stats.marker_invocations;
        let compute_total = tp.inner().consumed_compute_ns();
        let retrans_total = tp.inner().fault_stats().retransmits;
        let (compute_base, retrans_base) = self.health_base;
        self.health_base = (compute_total, retrans_total);
        let delta = (compute_total - compute_base, retrans_total - retrans_base);
        let root = self.online_root();
        if me != root {
            let mut payload = Vec::with_capacity(16);
            payload.extend_from_slice(&delta.0.to_le_bytes());
            payload.extend_from_slice(&delta.1.to_le_bytes());
            tp.inner().obs_ship(root, HEALTH_TAG, payload);
            let flagged: Vec<u64> = match tp.inner().obs_collect_or_dead(root, FLAG_TAG) {
                Some(bytes) => bytes
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes(c.try_into().expect("chunk of 4")) as u64)
                    .collect(),
                // The root died mid-slice: skip this round; the next
                // resilient collective re-agrees membership and the new
                // root takes over the gather.
                None => Vec::new(),
            };
            self.apply_flags(&flagged);
            return;
        }
        let participants = self.alive.clone();
        let mut samples = Vec::with_capacity(participants.len());
        for &r in &participants {
            let (compute_ns, retransmits) = if r == me {
                delta
            } else {
                match tp.inner().obs_collect_or_dead(r, HEALTH_TAG) {
                    Some(b) if b.len() == 16 => (
                        u64::from_le_bytes(b[..8].try_into().expect("8 bytes")),
                        u64::from_le_bytes(b[8..].try_into().expect("8 bytes")),
                    ),
                    // Died mid-slice (or malformed): no sample this round.
                    _ => continue,
                }
            };
            samples.push(obs::HealthSample {
                rank: r as u64,
                cluster: self.cohort_of(r),
                compute_ns,
                retransmits,
            });
        }
        let flags = obs::detect::detect(&cfg, &samples);
        for f in &flags {
            let (rank, kind, score, cluster) = (f.rank, f.kind, f.score, f.cluster);
            tp.inner().record(move || obs::EventKind::Anomaly {
                rank,
                marker,
                kind,
                score,
                cluster,
            });
        }
        // A rank flagged on both signals mitigates once: ship the deduped
        // rank set (flags arrive sorted by rank).
        let mut flagged: Vec<u64> = flags.iter().map(|f| f.rank).collect();
        flagged.dedup();
        let mut wire = Vec::with_capacity(4 * flagged.len());
        for &r in &flagged {
            wire.extend_from_slice(&(r as u32).to_le_bytes());
        }
        for &r in &participants {
            if r != me {
                tp.inner().obs_ship(r, FLAG_TAG, wire.clone());
            }
        }
        self.apply_flags(&flagged);
    }

    /// The cohort `rank` is scored against: its cluster's lead under the
    /// current selection, or `u64::MAX` — the whole world as one cohort —
    /// before any selection exists.
    fn cohort_of(&self, rank: Rank) -> u64 {
        self.selection
            .as_ref()
            .and_then(|sel| sel.map.cluster_of(rank))
            .map(|e| e.lead as u64)
            .unwrap_or(u64::MAX)
    }

    /// Fold one marker's agreed flag set into the mitigation state —
    /// a pure function of the set, run identically on every rank.
    fn apply_flags(&mut self, flagged: &[u64]) {
        self.flagged = flagged.iter().map(|&r| r as Rank).collect();
        self.stats.anomaly_flags += flagged.len() as u64;
        self.sustain.observe(flagged);
        let need = self.config.detector.map_or(u64::MAX, |d| d.sustain);
        for r in self.sustain.sustained(need) {
            let r = r as Rank;
            if !self.quarantined.contains(&r) {
                self.quarantined.push(r);
                self.quarantined.sort_unstable();
                self.stats.quarantines += 1;
            }
        }
    }

    /// Mitigation at selection time, applied identically on every rank to
    /// the identical selection: quarantined ranks are walled into
    /// singleton clusters, then flagged ranks lose lead eligibility
    /// (demoted to the smallest unflagged member of their cluster). A
    /// no-op whenever nothing is flagged, which keeps fault-free paths
    /// byte-identical.
    fn apply_health_policy(&mut self, tp: &mut TracedProc, sel: &mut LeadSelection) {
        if self.config.detector.is_none()
            || (self.flagged.is_empty() && self.quarantined.is_empty())
        {
            return;
        }
        for &q in &self.quarantined.clone() {
            sel.map.quarantine(q);
        }
        let mut avoid: Vec<Rank> = self
            .flagged
            .iter()
            .chain(self.quarantined.iter())
            .copied()
            .collect();
        avoid.sort_unstable();
        avoid.dedup();
        let demoted = sel.map.reelect_leads_avoiding(&avoid);
        self.stats.lead_demotions += demoted.len() as u64;
        for d in demoted {
            tp.inner().record(|| obs::EventKind::Reelect {
                call_path: d.call_path,
                old: d.old as u64,
                new: d.new as u64,
            });
        }
        sel.leads = sel.map.leads();
    }

    /// Reliable-receive policy toward `peer`: the configured budget,
    /// escalated by [`HEALTH_RETRY_ESCALATION`] while the detector has the
    /// peer flagged — a degrading link gets more retransmission rounds
    /// (and deeper backoff) before its payload is written off.
    fn retry_toward(&self, peer: Rank) -> RetryPolicy {
        let mut budget = self.config.retry_budget;
        if self.config.detector.is_some() && self.flagged.binary_search(&peer).is_ok() {
            budget = budget.saturating_mul(HEALTH_RETRY_ESCALATION);
        }
        RetryPolicy::Bounded(budget)
    }

    /// Close the metrics-plane delta for this marker: every participant's
    /// sketch is drained and reduced over the out-of-band tree
    /// ([`mpisim::Comm::OBS`]), and the tree root — the smallest agreed
    /// survivor — witnesses the world's delta as one bounded `snapshot`
    /// event. Runs
    /// at *every* marker invocation (call-frequency-skipped ones included)
    /// and at finalize, whenever the recorder is armed; a no-op branch
    /// otherwise. The reduction is simulation-passive, so arming it never
    /// changes virtual times, traces, or fault schedules.
    fn snapshot_metrics(&mut self, tp: &mut TracedProc) {
        if !tp.inner().metrics_enabled() {
            return;
        }
        let marker = self.stats.marker_invocations;
        let participants = self.alive.clone();
        if let Some((delta, ranks)) = tp.inner().reduce_metrics_delta(&participants) {
            let ctrs = delta.counter_values();
            let hists = delta.hist_digest();
            tp.inner().record(move || obs::EventKind::Snapshot {
                marker,
                ranks,
                ctrs,
                hists,
            });
        }
    }

    /// Hierarchical signature clustering over the radix tree of all ranks
    /// (Algorithm 3, Clustering branch): child maps merge upward with
    /// per-node pruning; the root selects the Top K and broadcasts it.
    fn cluster(&mut self, tp: &mut TracedProc, triple: &SignatureTriple) -> LeadSelection {
        let tool0 = tp.inner().tool_time();
        let algo = self.config.algo.build();
        let mut sel = if tp.inner().faults_armed() {
            self.cluster_armed(tp, triple, &*algo)
        } else {
            self.cluster_exact(tp, triple, &*algo)
        };
        self.apply_health_policy(tp, &mut sel);
        // Every span above was registered on the tool clock, so the delta
        // covers modeled compute + modeled communication + waits.
        self.stats.clustering_time += Duration::from_secs_f64(tp.inner().tool_time() - tool0);
        // Table I reports the main-phase clustering; later re-clusterings
        // (e.g. the tiny finalize interval) see fewer Call-Paths, so keep
        // the maximum observed.
        self.stats.leads = self.stats.leads.max(sel.leads.len() as u64);
        self.stats.call_paths = self.stats.call_paths.max(sel.map.num_call_paths() as u64);
        let marker = self.stats.marker_invocations;
        let me = tp.rank();
        let lead = sel.map.cluster_of(me).map(|e| e.lead).unwrap_or(me);
        tp.inner().record(|| obs::EventKind::ClusterSel {
            marker,
            effective_k: sel.leads.len() as u64,
            lead: lead as u64,
            leads: sel.leads.iter().map(|&r| r as u64).collect(),
        });
        tp.inner().metric_add(obs::Counter::ClusterRounds, 1);
        sel
    }

    /// Fault-free map exchange — the tree spans all ranks and the root
    /// tree-broadcasts the selection. This path is byte-identical to the
    /// pre-fault-layer protocol so golden traces stay stable.
    fn cluster_exact(
        &mut self,
        tp: &mut TracedProc,
        triple: &SignatureTriple,
        algo: &dyn ClusterAlgorithm,
    ) -> LeadSelection {
        let me = tp.rank();
        let p = tp.size();
        let tree = mpisim::RadixTree::new(self.config.radix, p);

        let work = mpisim::WorkModel::calibrated();
        let mut map = ClusterMap::from_rank(me, triple);
        for child in tree.children(me) {
            let info = tp
                .inner()
                .recv(SrcSel::Rank(child), TagSel::Tag(CLUSTER_TAG), Comm::TOOL);
            tp.inner().tool_compute(work.codec(info.payload.len()));
            match ClusterMap::decode(&info.payload) {
                Ok(child_map) => map.merge(child_map),
                // Unreachable on the faultless simulated link, but a bad
                // payload degrades the slice rather than killing the rank.
                Err(_) => self.slice_degraded = true,
            }
        }
        // Per-node pruning keeps every node's working set at O(K).
        tp.inner().tool_compute(work.cluster(map.total_clusters()));
        map.prune(self.config.k, algo);
        match tree.parent(me) {
            Some(parent) => {
                let wire = map.encode();
                tp.inner().tool_compute(work.codec(wire.len()));
                tp.inner().send(parent, CLUSTER_TAG, Comm::TOOL, &wire);
                let enc = tp.inner().bcast(&[], 0, Comm::TOOL);
                tp.inner().tool_compute(work.codec(enc.len()));
                LeadSelection::decode(&enc)
                    .unwrap_or_else(|e| panic!("cluster protocol bug on a faultless channel: {e}"))
            }
            None => {
                tp.inner().tool_compute(work.cluster(map.total_clusters()));
                let sel = LeadSelection::select(map, self.config.k, algo);
                let wire = sel.encode();
                tp.inner().tool_compute(work.codec(wire.len()));
                tp.inner().bcast(&wire, 0, Comm::TOOL);
                sel
            }
        }
    }

    /// Armed map exchange — the tree spans only the agreed survivors,
    /// every hop is a CRC-framed reliable transfer, and the root *stars*
    /// the selection out to each survivor individually. A dead child (or a
    /// payload corrupt past the retry budget) costs its subtree's entries
    /// for this slice; those ranks still hear the selection from the root,
    /// so lock-step survives.
    fn cluster_armed(
        &mut self,
        tp: &mut TracedProc,
        triple: &SignatureTriple,
        algo: &dyn ClusterAlgorithm,
    ) -> LeadSelection {
        let me = tp.rank();
        let participants = self.alive.clone();
        let my_pos = participants
            .iter()
            .position(|&r| r == me)
            .expect("a running rank is always in the agreed alive set");
        let tree = mpisim::RadixTree::new(self.config.radix, participants.len());

        let work = mpisim::WorkModel::calibrated();
        let mut map = ClusterMap::from_rank(me, triple);
        for child_pos in tree.children(my_pos) {
            let child = participants[child_pos];
            let policy = self.retry_toward(child);
            match tp
                .inner()
                .reliable_recv(child, CLUSTER_TAG, Comm::TOOL, policy)
            {
                Ok(payload) => {
                    tp.inner().tool_compute(work.codec(payload.len()));
                    match ClusterMap::decode(&payload) {
                        Ok(child_map) => map.merge(child_map),
                        Err(_) => self.slice_degraded = true,
                    }
                }
                Err(_) => self.slice_degraded = true,
            }
        }
        tp.inner().tool_compute(work.cluster(map.total_clusters()));
        map.prune(self.config.k, algo);
        if let Some(parent_pos) = tree.parent(my_pos) {
            let wire = map.encode();
            tp.inner().tool_compute(work.codec(wire.len()));
            if tp
                .inner()
                .reliable_send(participants[parent_pos], CLUSTER_TAG, Comm::TOOL, &wire)
                .is_err()
            {
                // Dead parent: this subtree's entries miss the selection.
                self.slice_degraded = true;
            }
            // The selection always comes straight from the root. The
            // frames are CRC-checked, so unbounded retry converges —
            // unless the root itself dies mid-star.
            match tp.inner().reliable_recv(
                participants[0],
                SELECT_TAG,
                Comm::TOOL,
                RetryPolicy::Unlimited,
            ) {
                Ok(enc) => {
                    tp.inner().tool_compute(work.codec(enc.len()));
                    LeadSelection::decode(&enc).unwrap_or_else(|e| {
                        panic!("cluster protocol bug on a CRC-clean channel: {e}")
                    })
                }
                Err(_) => {
                    // The selection root died mid-distribution. Degrade
                    // to a singleton self-selection: this rank keeps
                    // tracing as its own lead, and the next resilient
                    // collective re-agrees membership. Ranks that already
                    // received the real selection may merge without us —
                    // that divergence is bounded by the hang backstop
                    // (FAULTS.md, "mid-slice root death").
                    self.slice_degraded = true;
                    LeadSelection::select(ClusterMap::from_rank(me, triple), 1, algo)
                }
            }
        } else {
            tp.inner().tool_compute(work.cluster(map.total_clusters()));
            let sel = LeadSelection::select(map, self.config.k, algo);
            let wire = sel.encode();
            tp.inner().tool_compute(work.codec(wire.len()));
            for &r in participants.iter().skip(1) {
                if tp
                    .inner()
                    .reliable_send(r, SELECT_TAG, Comm::TOOL, &wire)
                    .is_err()
                {
                    // Died mid-slice; the next resilient collective will
                    // agree on its absence.
                    self.slice_degraded = true;
                }
            }
            sel
        }
    }

    /// Online inter-compression (Algorithm 3, merge branch): leads
    /// substitute their cluster ranklists into their partial traces, merge
    /// over the radix tree of the Top K ("temp ranks"), ship the partial
    /// global trace to the online root (rank 0, or the promoted deputy
    /// after a root failover), fold it into the online trace, and then
    /// every rank deletes its partial trace.
    fn merge_leads_into_online(&mut self, tp: &mut TracedProc, sel: &LeadSelection) {
        let tool0 = tp.inner().tool_time();
        let me = tp.rank();
        let armed = tp.inner().faults_armed();
        if self.replaying() {
            // Resume fast-forward: every contribution this merge would
            // produce is already inside the checkpoint that will be
            // installed at the resume marker. Clear partials exactly like
            // a real merge; ship nothing.
            tp.tracer_mut().clear_trace();
            self.stats.intercomp_time += Duration::from_secs_f64(tp.inner().tool_time() - tool0);
            return;
        }
        // Merge over the leads still in the agreed alive set. A lead that
        // died mid-slice (after the last resilient collective) is still
        // listed — survivors cannot re-agree without another collective —
        // and degrades the merges that touch it instead of wedging them.
        let participants: Vec<Rank> = if armed {
            sel.leads
                .iter()
                .copied()
                .filter(|r| self.alive.contains(r))
                .collect()
        } else {
            sel.leads.clone()
        };
        if participants.is_empty() {
            // Every lead died: this slice's events are unrecoverable.
            self.slice_degraded = true;
            tp.tracer_mut().clear_trace();
            self.stats.intercomp_time += Duration::from_secs_f64(tp.inner().tool_time() - tool0);
            return;
        }
        let am_lead = participants.contains(&me);
        let merge_root: Rank = participants[0];
        // The rank the merged partial folds into: rank 0 for its whole
        // life, the promoted deputy after a root failover.
        let online_root = self.online_root();

        let work = mpisim::WorkModel::calibrated();
        if am_lead {
            let cluster = sel
                .map
                .cluster_of(me)
                .expect("lead must belong to a cluster")
                .clone();
            let mut trace = tp.tracer_mut().take_trace();
            tp.inner()
                .tool_compute(work.fold_per_node * trace.compressed_size() as f64);
            trace.visit_events_mut(&mut |e| e.set_ranks(cluster.members.clone()));
            let outcome = radix_tree_merge(tp.inner(), self.config.radix, &participants, &trace);
            self.stats.record_merge_timings(&outcome.timings);
            if outcome.degraded > 0 {
                self.slice_degraded = true;
            }
            if let Some(partial) = outcome.merged {
                // This rank is the root of the Top-K tree.
                if me == online_root {
                    tp.inner().tool_compute(work.merge(
                        self.online_trace.compressed_size(),
                        partial.compressed_size(),
                    ));
                    self.online_trace.absorb_trace(&partial);
                } else {
                    let wire = scalatrace::format::to_text(&partial);
                    tp.inner().tool_compute(work.codec(wire.len()));
                    if armed {
                        if tp
                            .inner()
                            .reliable_send(online_root, ONLINE_TAG, Comm::TOOL, wire.as_bytes())
                            .is_err()
                        {
                            self.slice_degraded = true;
                        }
                    } else {
                        tp.inner()
                            .send(online_root, ONLINE_TAG, Comm::TOOL, wire.as_bytes());
                    }
                }
            }
        }
        if me == online_root && merge_root != online_root {
            let payload = if armed {
                let policy = self.retry_toward(merge_root);
                match tp
                    .inner()
                    .reliable_recv(merge_root, ONLINE_TAG, Comm::TOOL, policy)
                {
                    Ok(bytes) => Some(bytes),
                    // The merge root died or its payload stayed corrupt
                    // past the retry budget: the online trace skips this
                    // slice and the run continues.
                    Err(_) => {
                        self.slice_degraded = true;
                        None
                    }
                }
            } else {
                Some(
                    tp.inner()
                        .recv(
                            SrcSel::Rank(merge_root),
                            TagSel::Tag(ONLINE_TAG),
                            Comm::TOOL,
                        )
                        .payload,
                )
            };
            if let Some(payload) = payload {
                match decode_wire_trace(&payload) {
                    Ok(partial) => {
                        tp.inner().tool_compute(
                            work.codec(payload.len())
                                + work.merge(
                                    self.online_trace.compressed_size(),
                                    partial.compressed_size(),
                                ),
                        );
                        self.online_trace.absorb_trace(&partial);
                    }
                    Err(_) => self.slice_degraded = true,
                }
            }
        }
        // "All nodes: Delete your partial trace."
        tp.tracer_mut().clear_trace();
        self.stats.intercomp_time += Duration::from_secs_f64(tp.inner().tool_time() - tool0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::{World, WorldConfig};
    use scalatrace::RankSet;

    /// A tiny SPMD timestep: ring exchange + allreduce under a fixed
    /// frame, so every rank has the same Call-Path.
    fn timestep(tp: &mut TracedProc) {
        let me = tp.rank();
        let p = tp.size();
        tp.frame("timestep", |tp| {
            tp.send("halo_send", (me + 1) % p, 1, &[0u8; 16]);
            tp.recv("halo_recv", (me + p - 1) % p, 1, 16);
            tp.allreduce_sum("residual", 1);
        });
    }

    /// A structurally different timestep (new call sites => new Call-Path).
    /// Each `variant` uses a distinct frame so consecutive epilogue markers
    /// see *different* Call-Paths (the paper's trailing-AT markers).
    fn epilogue_step(tp: &mut TracedProc, variant: usize) {
        const FRAMES: [&str; 4] = ["epilogue_0", "epilogue_1", "epilogue_2", "epilogue_3"];
        tp.frame(FRAMES[variant % FRAMES.len()], |tp| {
            tp.allreduce_sum("norm_check", 2);
        });
    }

    fn run_app(
        p: usize,
        k: usize,
        steps: usize,
        epilogue: usize,
    ) -> (Vec<ChameleonStats>, CompressedTrace) {
        let report = World::new(WorldConfig::for_tests(p))
            .run(move |proc| {
                let mut tp = TracedProc::new(proc);
                let mut cham = Chameleon::new(ChameleonConfig::with_k(k));
                for _ in 0..steps {
                    timestep(&mut tp);
                    cham.marker(&mut tp);
                }
                for e in 0..epilogue {
                    epilogue_step(&mut tp, e);
                    cham.marker(&mut tp);
                }
                cham.finalize(&mut tp)
            })
            .unwrap();
        let online = report.results[0]
            .online_trace
            .clone()
            .expect("rank 0 holds the online trace");
        let stats = report.results.iter().map(|r| r.stats.clone()).collect();
        (stats, online)
    }

    #[test]
    fn stable_run_state_sequence() {
        // 10 markers of identical behavior: AT(first), C, then 8 L.
        let (stats, _) = run_app(4, 3, 10, 0);
        for s in &stats {
            assert_eq!(s.states.at, 1, "only the first marker counts AT");
            assert_eq!(s.states.c, 1, "exactly one clustering");
            assert_eq!(s.states.l, 8);
            assert_eq!(s.states.f, 1);
            assert_eq!(s.marker_calls, 10);
        }
    }

    #[test]
    fn epilogue_produces_trailing_at() {
        // 8 stable + 2 epilogue markers: AT, C, 6 L, flush-AT, AT.
        let (stats, _) = run_app(4, 3, 8, 2);
        let s = &stats[0];
        assert_eq!(s.states.c, 1);
        assert_eq!(s.states.l, 6);
        assert_eq!(s.states.at, 3, "first + 2 phase-change markers");
    }

    #[test]
    fn online_trace_covers_all_events() {
        let steps = 6;
        let (_, online) = run_app(4, 3, steps, 0);
        // Each timestep: send + recv + allreduce on every rank; plus the
        // finalize event. The online trace must represent all of them
        // (per dynamic instance, by one lead on behalf of its cluster).
        assert!(online.dynamic_size() >= (steps * 3) as u64);
        // Every rank must appear in the trace's ranklists.
        let mut covered = RankSet::empty();
        online.visit_events(&mut |e| covered = covered.union(&e.ranks));
        assert_eq!(
            covered.len(),
            4,
            "all ranks represented via cluster ranklists"
        );
    }

    #[test]
    fn online_trace_compact_for_spmd() {
        // 20 identical timesteps across 8 ranks must compress to a small
        // constant-ish number of nodes.
        let (_, online) = run_app(8, 3, 20, 0);
        assert!(
            online.compressed_size() < 40,
            "online trace blew up: {} nodes",
            online.compressed_size()
        );
    }

    #[test]
    fn non_leads_allocate_nothing_in_lead_state() {
        let (stats, _) = run_app(8, 2, 12, 0);
        // At least one rank is a non-lead; its L-state memory rows must be
        // all zero. Leads have nonzero L rows.
        let mut lead_like = 0;
        let mut dark = 0;
        for s in &stats {
            let (calls, bytes) = s.mem.get("L");
            assert!(calls > 0);
            if bytes == 0 {
                dark += 1;
            } else {
                lead_like += 1;
            }
        }
        assert!(dark > 0, "some rank must trace nothing during L");
        assert!(lead_like > 0, "leads keep tracing during L");
        assert!(
            lead_like <= 2 + 1,
            "at most K leads (+dynamic growth slack)"
        );
    }

    #[test]
    fn call_frequency_limits_transition_graph_runs() {
        let report = World::new(WorldConfig::for_tests(2))
            .run(|proc| {
                let mut tp = TracedProc::new(proc);
                let mut cham = Chameleon::new(ChameleonConfig::with_k(2).with_frequency(5));
                for _ in 0..20 {
                    timestep(&mut tp);
                    cham.marker(&mut tp);
                }
                let stats = cham.stats().clone();
                cham.finalize(&mut tp);
                stats
            })
            .unwrap();
        for s in &report.results {
            assert_eq!(s.marker_invocations, 20);
            assert_eq!(s.marker_calls, 4, "only every 5th marker processed");
        }
    }

    #[test]
    fn divergent_p2p_groups_two_callpaths() {
        // Masters (rank 0) vs workers: different Call-Paths via p2p only.
        let report = World::new(WorldConfig::for_tests(6))
            .run(|proc| {
                let mut tp = TracedProc::new(proc);
                let mut cham = Chameleon::new(ChameleonConfig::with_k(2));
                let me = tp.rank();
                let p = tp.size();
                for _ in 0..6 {
                    if me == 0 {
                        tp.frame("master", |tp| {
                            for w in 1..p {
                                tp.send("task_out", w, 7, &[1u8; 8]);
                            }
                            for _ in 1..p {
                                tp.recv_any("result_in", 8, 8);
                            }
                        });
                    } else {
                        tp.frame("worker", |tp| {
                            tp.recv("task_in", 0, 7, 8);
                            tp.compute(1e-6);
                            tp.send_absolute("result_out", 0, 8, &[2u8; 8]);
                        });
                    }
                    cham.marker(&mut tp);
                }
                cham.finalize(&mut tp)
            })
            .unwrap();
        let online = report.results[0].online_trace.as_ref().unwrap();
        let mut covered = RankSet::empty();
        online.visit_events(&mut |e| covered = covered.union(&e.ranks));
        assert_eq!(covered.len(), 6, "master and worker clusters both traced");
        // Worker events exist (recv from master) and master events exist.
        let mut has_any_recv = false;
        online.visit_events(&mut |e| {
            if e.op.src == Some(scalatrace::Endpoint::Any) {
                has_any_recv = true;
            }
        });
        assert!(
            has_any_recv,
            "master's wildcard receive must be in the trace"
        );
    }

    #[test]
    fn reclustering_counted_per_phase_change() {
        // Alternate two patterns every 4 markers: each stable block causes
        // one clustering; transitions cause flushes.
        let report = World::new(WorldConfig::for_tests(4))
            .run(|proc| {
                let mut tp = TracedProc::new(proc);
                let mut cham = Chameleon::new(ChameleonConfig::with_k(2));
                for block in 0..4 {
                    for _ in 0..4 {
                        if block % 2 == 0 {
                            timestep(&mut tp);
                        } else {
                            epilogue_step(&mut tp, block);
                        }
                        cham.marker(&mut tp);
                    }
                }
                cham.finalize(&mut tp)
            })
            .unwrap();
        let s = &report.results[0].stats;
        // Blocks: 4 stable blocks, each re-clusters once after its first
        // repeat vote; first marker of each later block is a flush/AT.
        assert!(s.reclusterings >= 3, "got {}", s.reclusterings);
        assert_eq!(s.states.c, s.reclusterings);
    }

    /// A timestep with real modeled compute, so the health plane's "slow"
    /// signal has something to measure.
    fn compute_timestep(tp: &mut TracedProc) {
        let me = tp.rank();
        let p = tp.size();
        tp.frame("compute_step", |tp| {
            tp.compute(1e-4);
            tp.send("halo_send", (me + 1) % p, 1, &[0u8; 16]);
            tp.recv("halo_recv", (me + p - 1) % p, 1, 16);
            tp.allreduce_sum("residual", 1);
        });
    }

    fn run_detected(
        p: usize,
        steps: usize,
        plan: Option<mpisim::FaultPlan>,
    ) -> mpisim::WorldReport<FinalizeOutcome> {
        let mut cfg = WorldConfig::for_tests(p).with_recorder();
        if let Some(plan) = plan {
            cfg = cfg.with_faults(plan);
        }
        World::new(cfg)
            .run(move |proc| {
                let mut tp = TracedProc::new(proc);
                // K=1: one cluster, so the whole world is the scoring
                // cohort — a robust median needs a healthy majority.
                let mut cham = Chameleon::new(
                    ChameleonConfig::with_k(1).with_detector(obs::DetectorConfig::default()),
                );
                for _ in 0..steps {
                    compute_timestep(&mut tp);
                    cham.marker(&mut tp);
                }
                cham.finalize(&mut tp)
            })
            .unwrap()
    }

    #[test]
    fn health_plane_flags_and_quarantines_straggler() {
        let plan = mpisim::FaultPlan::new(0xA5).straggle_rank(3, 4.0);
        let report = run_detected(4, 10, Some(plan));
        let flags: Vec<u64> = report
            .results
            .iter()
            .map(|r| r.stats.anomaly_flags)
            .collect();
        assert!(flags[0] >= 3, "straggler flagged repeatedly: {flags:?}");
        assert!(
            flags.iter().all(|&f| f == flags[0]),
            "flag tallies agree across ranks (lock-step): {flags:?}"
        );
        for r in &report.results {
            assert_eq!(r.stats.quarantines, 1, "sustained straggler quarantined");
        }
        let j = report.journal.expect("recorder armed");
        let rows = obs::query::anomalies(&j);
        assert!(!rows.is_empty());
        assert!(
            rows.iter()
                .all(|a| a.rank == 3 && a.kind == obs::AnomalyKind::Slow),
            "only the straggler flags, always slow: {rows:?}"
        );
        assert!(rows.iter().all(|a| a.score > 4.0), "scores above threshold");
    }

    #[test]
    fn fault_free_detector_stays_silent() {
        let report = run_detected(4, 10, None);
        for r in &report.results {
            assert_eq!(r.stats.anomaly_flags, 0, "no flags on a healthy run");
            assert_eq!(r.stats.quarantines, 0);
            assert_eq!(r.stats.lead_demotions, 0);
            // The run behaves exactly like a detector-off run.
            assert_eq!(r.stats.states.at, 1);
            assert_eq!(r.stats.states.c, 1);
        }
        let j = report.journal.expect("recorder armed");
        assert!(obs::query::anomalies(&j).is_empty());
    }

    #[test]
    fn single_rank_world_works() {
        let (stats, online) = run_app(1, 3, 5, 0);
        assert_eq!(stats.len(), 1);
        assert!(online.dynamic_size() > 0);
    }

    #[test]
    fn double_finalize_is_an_error() {
        let err = World::new(WorldConfig::for_tests(1))
            .run(|proc| {
                let mut tp = TracedProc::new(proc);
                let mut cham = Chameleon::new(ChameleonConfig::with_k(1));
                cham.finalize(&mut tp);
                cham.finalize(&mut tp);
            })
            .unwrap_err();
        assert!(err.failures[0].1.contains("finalize called twice"));
    }
}
