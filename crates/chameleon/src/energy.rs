//! Energy accounting for clustered tracing — the paper's future-work
//! extension, implemented.
//!
//! The paper closes with: "We currently plan to leverage the idle time
//! for non representative processes at interim execution points by
//! utilizing dynamic voltage frequency scaling (DVFS). This would reduce
//! energy consumption and make clustered tracing energy efficient as
//! well." And Observation 1 notes that "P − K processes were idle for
//! more than 70% of the execution of markers."
//!
//! This module quantifies that opportunity. Each rank's run is split into
//! the fraction of marker intervals it spent *dark* (Lead state with the
//! lead flag off: no tracing work, no trace memory traffic) versus
//! *active*; a simple CPU power model then prices three scenarios:
//!
//! * **baseline** — every rank traces all the time (ScalaTrace/ACURDION);
//! * **chameleon** — non-leads skip tracing work but stay at nominal
//!   frequency (what the paper built);
//! * **chameleon + DVFS** — non-leads additionally down-clock during
//!   their dark intervals (what the paper proposed).

use crate::stats::ChameleonStats;

/// CPU power model (per rank) in watts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Power while computing/tracing at nominal frequency.
    pub busy_watts: f64,
    /// Extra power drawn by tracing activity (event recording, trace
    /// memory traffic) on top of application compute.
    pub tracing_watts: f64,
    /// Power at the lowest DVFS state (dark intervals only).
    pub dvfs_watts: f64,
}

impl EnergyModel {
    /// Values representative of the paper's testbed CPUs (AMD Opteron
    /// 6128: ~115 W TDP per socket, 8 cores → ~14 W/core busy; DVFS floor
    /// around 40% of busy power; tracing adds a few percent).
    pub fn opteron_6128() -> Self {
        EnergyModel {
            busy_watts: 14.0,
            tracing_watts: 0.7,
            dvfs_watts: 5.6,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::opteron_6128()
    }
}

/// Energy totals for one run, in joules, across all ranks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// All ranks tracing for the whole run.
    pub baseline_joules: f64,
    /// Chameleon: non-leads skip tracing work during dark intervals.
    pub chameleon_joules: f64,
    /// Chameleon with DVFS on dark intervals (the proposed extension).
    pub chameleon_dvfs_joules: f64,
    /// Mean dark-interval fraction across ranks (the paper's ">70% idle"
    /// observation when markers dominate).
    pub mean_dark_fraction: f64,
}

impl EnergyReport {
    /// Relative saving of Chameleon over the baseline.
    pub fn chameleon_saving(&self) -> f64 {
        1.0 - self.chameleon_joules / self.baseline_joules
    }

    /// Relative saving of Chameleon+DVFS over the baseline.
    pub fn dvfs_saving(&self) -> f64 {
        1.0 - self.chameleon_dvfs_joules / self.baseline_joules
    }
}

/// Estimate run energy from per-rank Chameleon statistics.
///
/// `app_vtime` is the application's virtual execution time (identical
/// across ranks to first order — the ranks synchronize at markers). A
/// rank's *dark fraction* is the share of marker intervals it spent in
/// the Lead state without holding any trace bytes.
pub fn estimate(stats: &[ChameleonStats], app_vtime: f64, model: EnergyModel) -> EnergyReport {
    assert!(!stats.is_empty(), "no ranks to account");
    assert!(app_vtime >= 0.0);
    let mut baseline = 0.0;
    let mut chameleon = 0.0;
    let mut dvfs = 0.0;
    let mut dark_sum = 0.0;
    for s in stats {
        let total_markers = s.states.total().max(1) as f64;
        let (l_calls, l_bytes) = s.mem.get("L");
        // Dark fraction: Lead-state intervals with zero trace allocation.
        let dark = if l_bytes == 0 {
            l_calls as f64 / total_markers
        } else {
            0.0
        };
        dark_sum += dark;
        let active = 1.0 - dark;
        baseline += app_vtime * (model.busy_watts + model.tracing_watts);
        // Chameleon: tracing power only while actively tracing.
        chameleon += app_vtime * (model.busy_watts + model.tracing_watts * active);
        // DVFS: dark intervals run at the DVFS floor (the rank only waits
        // for the marker), active intervals at busy+tracing power.
        dvfs += app_vtime
            * (dark * model.dvfs_watts + active * (model.busy_watts + model.tracing_watts));
    }
    EnergyReport {
        baseline_joules: baseline,
        chameleon_joules: chameleon,
        chameleon_dvfs_joules: dvfs,
        mean_dark_fraction: dark_sum / stats.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::MarkerState;
    use crate::stats::ChameleonStats;

    fn rank_stats(l_calls: u64, l_bytes: u64, other_markers: u64) -> ChameleonStats {
        let mut s = ChameleonStats::default();
        for _ in 0..l_calls {
            s.states.bump(MarkerState::Lead);
            s.mem
                .record(MarkerState::Lead, (l_bytes / l_calls.max(1)) as usize);
        }
        for _ in 0..other_markers {
            s.states.bump(MarkerState::AllTracing);
            s.mem.record(MarkerState::AllTracing, 1000);
        }
        s
    }

    #[test]
    fn all_dark_rank_saves_most() {
        // 8 of 10 markers dark.
        let dark = rank_stats(8, 0, 2);
        let report = estimate(&[dark], 100.0, EnergyModel::default());
        assert!(report.mean_dark_fraction > 0.7, "the paper's >70% idle");
        assert!(report.chameleon_joules < report.baseline_joules);
        assert!(report.chameleon_dvfs_joules < report.chameleon_joules);
        assert!(report.dvfs_saving() > report.chameleon_saving());
    }

    #[test]
    fn lead_rank_saves_nothing() {
        let lead = rank_stats(8, 80_000, 2); // traced through L
        let report = estimate(&[lead], 100.0, EnergyModel::default());
        assert_eq!(report.mean_dark_fraction, 0.0);
        assert!((report.chameleon_joules - report.baseline_joules).abs() < 1e-9);
        assert!((report.chameleon_dvfs_joules - report.baseline_joules).abs() < 1e-9);
    }

    #[test]
    fn mixed_fleet_interpolates() {
        let mut fleet = vec![rank_stats(8, 80_000, 2)]; // one lead
        for _ in 0..7 {
            fleet.push(rank_stats(8, 0, 2)); // seven dark
        }
        let report = estimate(&fleet, 10.0, EnergyModel::default());
        assert!(report.mean_dark_fraction > 0.6);
        assert!(report.dvfs_saving() > 0.2, "got {}", report.dvfs_saving());
        assert!(report.dvfs_saving() < 0.6);
    }

    #[test]
    fn savings_bounded() {
        let dark = rank_stats(9, 0, 1);
        let report = estimate(&[dark], 50.0, EnergyModel::default());
        assert!(report.chameleon_saving() > 0.0);
        assert!(report.chameleon_saving() < 1.0);
        assert!(report.dvfs_saving() < 1.0);
    }

    #[test]
    fn zero_app_time_zero_energy() {
        let report = estimate(&[rank_stats(5, 0, 5)], 0.0, EnergyModel::default());
        assert_eq!(report.baseline_joules, 0.0);
        assert_eq!(report.chameleon_dvfs_joules, 0.0);
    }
}
