//! Durable marker checkpoints: the online-trace root's recovery state as
//! one versioned, CRC-framed binary blob.
//!
//! At every `ckpt_stride`-th processed marker the root serializes
//! everything a deputy needs to take over mid-run: the incrementally grown
//! online trace, the agreed alive set, the transition-graph phase, the
//! current lead selection, the metric accumulators, and the journal
//! high-water mark. The blob is replicated to the deputy over the passive
//! obs plane and (optionally) persisted to disk, so a root crash loses at
//! most one marker interval.
//!
//! ## Wire format (all integers little-endian)
//!
//! ```text
//! "CKPT1"            5-byte magic
//! version            u16 (currently 1)
//! marker             u64   marker invocation the checkpoint closed
//! marker_calls       u64   processed-marker count at capture
//! root               u64   rank that wrote the checkpoint
//! journal_hwm        u64   events the root's journal held at capture
//! old_call_path      u64   TransitionGraph::snapshot().0
//! flags              u8    bit0 = re_clustering, bit1 = lead_flag
//! alive_len          u64   followed by alive_len ranks, each u64
//! sel_present        u8    0 or 1
//! [sel_len u64, sel bytes]        LeadSelection::encode, if present
//! trace_len          u64   followed by the online trace as scalatrace
//!                          text (UTF-8)
//! metrics_len        u64   followed by MetricSet::encode_with_count
//!                          bytes (may be 0 when the plane is off)
//! crc                u32   CRC-32 (IEEE) over every preceding byte
//! ```
//!
//! The decoder is total: every length field is validated against the
//! remaining input *before* any allocation, the CRC is checked before any
//! field is interpreted, and every failure is a typed [`CkptError`] —
//! never a panic. Truncating a valid checkpoint at any byte, or flipping
//! any single byte, must yield `Err` (the truncate-and-flip suite pins
//! this down).

use std::fmt;

use clusterkit::LeadSelection;
use mpisim::reliable::frame_crc;
use mpisim::Rank;
use scalatrace::CompressedTrace;
use sigkit::CallPathSig;

/// Leading magic of every checkpoint blob.
pub const MAGIC: &[u8; 5] = b"CKPT1";
/// Current wire version.
pub const VERSION: u16 = 1;

/// Why a checkpoint blob failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// The blob does not start with [`MAGIC`].
    BadMagic,
    /// The version field names a format this decoder does not speak.
    BadVersion(u16),
    /// The input ended before `what` could be read.
    Truncated {
        /// Field being read when the input ran out.
        what: &'static str,
        /// Byte offset of the failed read.
        offset: usize,
    },
    /// The trailing CRC does not match the body.
    BadCrc {
        /// CRC stored in the blob.
        stored: u32,
        /// CRC computed over the body.
        computed: u32,
    },
    /// A field decoded but its content is invalid.
    Malformed {
        /// Field that failed.
        what: &'static str,
        /// Decoder detail.
        detail: String,
    },
    /// Bytes remained after the final field.
    TrailingJunk {
        /// Number of unconsumed bytes.
        len: usize,
    },
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::BadMagic => write!(f, "not a CKPT1 checkpoint (bad magic)"),
            CkptError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CkptError::Truncated { what, offset } => {
                write!(f, "checkpoint truncated reading {what} at offset {offset}")
            }
            CkptError::BadCrc { stored, computed } => write!(
                f,
                "checkpoint CRC mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            CkptError::Malformed { what, detail } => {
                write!(f, "checkpoint field {what} malformed: {detail}")
            }
            CkptError::TrailingJunk { len } => {
                write!(f, "{len} trailing bytes after checkpoint payload")
            }
        }
    }
}

impl std::error::Error for CkptError {}

/// Everything the deputy needs to take over as online-trace root.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Marker invocation the checkpoint closed.
    pub marker: u64,
    /// Processed-marker count (`marker_calls`) at capture.
    pub marker_calls: u64,
    /// Rank that wrote the checkpoint (the root at capture time).
    pub root: u64,
    /// The agreed alive set at capture, ascending.
    pub alive: Vec<Rank>,
    /// `TransitionGraph::snapshot().0` — the previous interval signature.
    pub old_call_path: CallPathSig,
    /// `TransitionGraph::snapshot().1`.
    pub re_clustering: bool,
    /// `TransitionGraph::snapshot().2`.
    pub lead_flag: bool,
    /// Lead selection active at capture (`Some` exactly in a lead phase).
    pub selection: Option<LeadSelection>,
    /// The online global trace at capture.
    pub trace: CompressedTrace,
    /// Encoded metric accumulators (`MetricSet::encode_with_count`), empty
    /// when the metrics plane was off.
    pub metrics: Vec<u8>,
    /// Journal events the root had recorded at capture — how much flight
    /// history the pre-kill run had logged.
    pub journal_hwm: u64,
}

impl Checkpoint {
    /// Serialize to the versioned, CRC-framed wire format.
    pub fn encode(&self) -> Vec<u8> {
        let trace_text = scalatrace::format::to_text(&self.trace);
        let sel_wire = self.selection.as_ref().map(|s| s.encode());
        let mut out = Vec::with_capacity(128 + trace_text.len() + self.metrics.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.marker.to_le_bytes());
        out.extend_from_slice(&self.marker_calls.to_le_bytes());
        out.extend_from_slice(&self.root.to_le_bytes());
        out.extend_from_slice(&self.journal_hwm.to_le_bytes());
        out.extend_from_slice(&self.old_call_path.0.to_le_bytes());
        out.push(u8::from(self.re_clustering) | (u8::from(self.lead_flag) << 1));
        out.extend_from_slice(&(self.alive.len() as u64).to_le_bytes());
        for &r in &self.alive {
            out.extend_from_slice(&(r as u64).to_le_bytes());
        }
        match &sel_wire {
            Some(wire) => {
                out.push(1);
                out.extend_from_slice(&(wire.len() as u64).to_le_bytes());
                out.extend_from_slice(wire);
            }
            None => out.push(0),
        }
        out.extend_from_slice(&(trace_text.len() as u64).to_le_bytes());
        out.extend_from_slice(trace_text.as_bytes());
        out.extend_from_slice(&(self.metrics.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.metrics);
        let crc = frame_crc(u64::from(VERSION), &out[MAGIC.len() + 2..]);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decode and fully validate a checkpoint blob. Total: every failure
    /// is a typed error, and no length field can trigger an allocation
    /// larger than the input itself.
    pub fn decode(bytes: &[u8]) -> Result<Checkpoint, CkptError> {
        if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
            return Err(CkptError::BadMagic);
        }
        let mut cur = Cursor {
            bytes,
            pos: MAGIC.len(),
        };
        let version = cur.u16("version")?;
        if version != VERSION {
            return Err(CkptError::BadVersion(version));
        }
        // Integrity before interpretation: the final 4 bytes must CRC the
        // whole body, so any single corrupt byte is caught up front.
        if bytes.len() < cur.pos + 4 {
            return Err(CkptError::Truncated {
                what: "crc",
                offset: bytes.len(),
            });
        }
        let body_end = bytes.len() - 4;
        let stored = u32::from_le_bytes(bytes[body_end..].try_into().expect("4 bytes"));
        let computed = frame_crc(u64::from(VERSION), &bytes[MAGIC.len() + 2..body_end]);
        if stored != computed {
            return Err(CkptError::BadCrc { stored, computed });
        }
        cur.bytes = &bytes[..body_end];

        let marker = cur.u64("marker")?;
        let marker_calls = cur.u64("marker_calls")?;
        let root = cur.u64("root")?;
        let journal_hwm = cur.u64("journal_hwm")?;
        let old_call_path = CallPathSig(cur.u64("old_call_path")?);
        let flags = cur.u8("flags")?;
        if flags & !0b11 != 0 {
            return Err(CkptError::Malformed {
                what: "flags",
                detail: format!("unknown bits set: {flags:#04x}"),
            });
        }
        let alive_len = cur.len_field("alive_len", 8)?;
        let mut alive = Vec::with_capacity(alive_len);
        for _ in 0..alive_len {
            alive.push(cur.u64("alive rank")? as Rank);
        }
        let selection = match cur.u8("sel_present")? {
            0 => None,
            1 => {
                let sel_len = cur.len_field("sel_len", 1)?;
                let wire = cur.take(sel_len, "selection")?;
                Some(
                    LeadSelection::decode(wire).map_err(|e| CkptError::Malformed {
                        what: "selection",
                        detail: e.to_string(),
                    })?,
                )
            }
            other => {
                return Err(CkptError::Malformed {
                    what: "sel_present",
                    detail: format!("expected 0 or 1, got {other}"),
                })
            }
        };
        let trace_len = cur.len_field("trace_len", 1)?;
        let trace_bytes = cur.take(trace_len, "trace")?;
        let text = std::str::from_utf8(trace_bytes).map_err(|e| CkptError::Malformed {
            what: "trace",
            detail: format!("not UTF-8: {e}"),
        })?;
        let trace = scalatrace::format::from_text(text).map_err(|e| CkptError::Malformed {
            what: "trace",
            detail: e.to_string(),
        })?;
        let metrics_len = cur.len_field("metrics_len", 1)?;
        let metrics = cur.take(metrics_len, "metrics")?.to_vec();
        if !metrics.is_empty() {
            obs::MetricSet::decode_with_count(&metrics).map_err(|e| CkptError::Malformed {
                what: "metrics",
                detail: e,
            })?;
        }
        if cur.pos != body_end {
            return Err(CkptError::TrailingJunk {
                len: body_end - cur.pos,
            });
        }
        Ok(Checkpoint {
            marker,
            marker_calls,
            root,
            alive,
            old_call_path,
            re_clustering: flags & 0b01 != 0,
            lead_flag: flags & 0b10 != 0,
            selection,
            trace,
            metrics,
            journal_hwm,
        })
    }
}

/// Bounds-checked reader over the checkpoint body.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CkptError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let s = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(CkptError::Truncated {
                what,
                offset: self.pos,
            }),
        }
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, CkptError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, CkptError> {
        Ok(u16::from_le_bytes(
            self.take(2, what)?.try_into().expect("2 bytes"),
        ))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read a length field and reject it immediately if even `len *
    /// elem_size` bytes cannot remain in the input — the guard that keeps
    /// a corrupt length from driving a huge allocation.
    fn len_field(&mut self, what: &'static str, elem_size: usize) -> Result<usize, CkptError> {
        let raw = self.u64(what)?;
        let remaining = (self.bytes.len() - self.pos) / elem_size;
        if raw > remaining as u64 {
            return Err(CkptError::Truncated {
                what,
                offset: self.pos,
            });
        }
        Ok(raw as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specimen() -> Checkpoint {
        Checkpoint {
            marker: 6,
            marker_calls: 6,
            root: 0,
            alive: vec![0, 1, 2, 3],
            old_call_path: CallPathSig(0xDEAD_BEEF),
            re_clustering: false,
            lead_flag: true,
            selection: None,
            trace: CompressedTrace::new(),
            metrics: Vec::new(),
            journal_hwm: 42,
        }
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let c = specimen();
        let d = Checkpoint::decode(&c.encode()).expect("valid blob");
        assert_eq!(d.marker, 6);
        assert_eq!(d.marker_calls, 6);
        assert_eq!(d.root, 0);
        assert_eq!(d.alive, vec![0, 1, 2, 3]);
        assert_eq!(d.old_call_path, CallPathSig(0xDEAD_BEEF));
        assert!(!d.re_clustering);
        assert!(d.lead_flag);
        assert!(d.selection.is_none());
        assert_eq!(
            scalatrace::format::to_text(&d.trace),
            scalatrace::format::to_text(&c.trace)
        );
        assert_eq!(d.journal_hwm, 42);
    }

    #[test]
    fn every_truncation_errs_never_panics() {
        let wire = specimen().encode();
        for cut in 0..wire.len() {
            assert!(
                Checkpoint::decode(&wire[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
        assert!(Checkpoint::decode(&wire).is_ok());
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let wire = specimen().encode();
        for i in 0..wire.len() {
            let mut bad = wire.clone();
            bad[i] ^= 0x5A;
            assert!(
                Checkpoint::decode(&bad).is_err(),
                "flip at byte {i} went unnoticed"
            );
        }
    }

    #[test]
    fn trailing_junk_rejected() {
        let mut wire = specimen().encode();
        wire.push(0);
        // The CRC sits 4 bytes from the end, so appending a byte also
        // desynchronizes the frame: either error is acceptable, Ok is not.
        assert!(Checkpoint::decode(&wire).is_err());
    }

    #[test]
    fn hostile_length_field_cannot_overallocate() {
        // A blob claiming 2^60 alive ranks must die at the length check,
        // not inside `Vec::with_capacity`. Build body + valid CRC so only
        // the length is hostile.
        let c = specimen();
        let mut wire = c.encode();
        // alive_len sits after magic(5)+version(2)+5*u64(40)+flags(1).
        let off = 5 + 2 + 40 + 1;
        wire[off..off + 8].copy_from_slice(&(1u64 << 60).to_le_bytes());
        let body_end = wire.len() - 4;
        let crc = frame_crc(u64::from(VERSION), &wire[7..body_end]);
        wire[body_end..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            Checkpoint::decode(&wire),
            Err(CkptError::Truncated {
                what: "alive_len",
                ..
            })
        ));
    }

    #[test]
    fn version_and_magic_gate() {
        let mut wire = specimen().encode();
        wire[0] = b'X';
        assert!(matches!(
            Checkpoint::decode(&wire),
            Err(CkptError::BadMagic)
        ));
        let mut wire = specimen().encode();
        wire[5] = 9; // version LSB; checked before the CRC
        assert!(matches!(
            Checkpoint::decode(&wire),
            Err(CkptError::BadVersion(9))
        ));
    }

    #[test]
    fn error_display_is_descriptive() {
        let msgs = [
            CkptError::BadMagic.to_string(),
            CkptError::BadVersion(7).to_string(),
            CkptError::Truncated {
                what: "trace",
                offset: 12,
            }
            .to_string(),
            CkptError::BadCrc {
                stored: 1,
                computed: 2,
            }
            .to_string(),
            CkptError::TrailingJunk { len: 3 }.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
    }
}
