//! # chameleon — online clustering of MPI program traces
//!
//! The reproduction of the paper's primary contribution (Bahmani &
//! Mueller, "Chameleon: Online Clustering of MPI Program Traces",
//! IPDPS 2018). Chameleon layers on ScalaTrace and, at *marker* calls
//! (special `MPI_Barrier`s inserted at timestep boundaries):
//!
//! 1. computes each rank's Call-Path/SRC/DEST signatures for the interval
//!    since the previous marker (`sigkit`, `scalatrace::tracer`);
//! 2. runs a collective **vote** (reduce + bcast, O(log P)) on whether any
//!    rank's Call-Path changed, driving the four-state **transition
//!    graph** ([`state`], the paper's Figure 2 / Algorithm 1);
//! 3. on entering the Clustering state, runs **hierarchical signature
//!    clustering** over the reduction tree (`clusterkit`), elects K lead
//!    ranks, and turns tracing *off* on everyone else;
//! 4. merges the K lead traces over a radix tree (**online
//!    inter-compression**, the paper's Algorithm 3) and folds the result
//!    into the incrementally growing **online trace** at rank 0 —
//!    replacing ScalaTrace's O(n² log P) all-rank merge at `MPI_Finalize`
//!    with O(n² log K) merges at phase boundaries.
//!
//! Modules:
//!
//! * [`checkpoint`] — durable marker checkpoints: the root's recovery
//!   state as a versioned, CRC-framed blob, replicated to a deputy so a
//!   root crash loses at most one marker interval;
//! * [`config`] — K, `Call_Frequency`, clustering algorithm, tree radix,
//!   checkpoint stride/dir/resume;
//! * [`state`] — the pure transition graph (Algorithm 1), unit-testable
//!   without any MPI;
//! * [`stats`] — per-rank overhead timers, state counts (Table II), and
//!   per-state trace-memory accounting (Table IV);
//! * [`runtime`] — the [`runtime::Chameleon`] driver: `marker()` and
//!   `finalize()` wrappers (Algorithm 3);
//! * [`baselines`] — plain ScalaTrace (all-rank merge at finalize) and
//!   ACURDION (signature clustering at finalize) comparators.

pub mod baselines;
pub mod checkpoint;
pub mod config;
pub mod energy;
pub mod runtime;
pub mod state;
pub mod stats;

pub use checkpoint::{Checkpoint, CkptError};
pub use config::{AlgoChoice, ChameleonConfig};
pub use energy::{EnergyModel, EnergyReport};
pub use runtime::{Chameleon, FinalizeOutcome};
pub use state::{MarkerState, TransitionGraph};
pub use stats::{AggregatedStats, ChameleonStats, MemAccount, MergeLevelStats, StateCounts};
