//! Collective operations over point-to-point messaging.
//!
//! Implemented with the standard algorithms real MPI libraries use at
//! small-to-medium message sizes:
//!
//! * **barrier** — dissemination algorithm, ⌈log2 P⌉ rounds;
//! * **reduce** — binomial tree toward the root, ⌈log2 P⌉ rounds;
//! * **bcast** — binomial tree away from the root;
//! * **allreduce** — reduce to rank 0 followed by bcast;
//! * **gather** — binomial tree concatenation toward the root.
//!
//! All are O(log P) in rounds, which is exactly the complexity the paper
//! ascribes to the `MPI_Reduce`/`MPI_Bcast` pair in Algorithm 1 and to the
//! radix-tree trace merges. Every rank must call each collective on a given
//! communicator in the same order (the usual MPI requirement); per-instance
//! sequence numbers keep back-to-back collectives from cross-matching.

use crate::proc::{Proc, Rank, SrcSel, TagSel};
use crate::Comm;

/// Reduction operators over `u64` values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Wrapping sum.
    Sum,
    /// Maximum.
    Max,
    /// Minimum.
    Min,
    /// Bitwise or.
    BitOr,
}

impl ReduceOp {
    /// Apply the operator.
    #[inline]
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            ReduceOp::Sum => a.wrapping_add(b),
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
            ReduceOp::BitOr => a | b,
        }
    }
}

impl Proc {
    /// Dissemination barrier: after ⌈log2 P⌉ exchange rounds every rank is
    /// certain every other rank has entered the barrier.
    pub fn barrier(&mut self, comm: Comm) {
        self.tick_op();
        let p = self.size();
        if p == 1 {
            return;
        }
        let seq = self.next_coll_seq(comm);
        let me = self.rank();
        let mut round = 0u32;
        let mut dist = 1usize;
        while dist < p {
            let to = (me + dist) % p;
            let from = (me + p - dist % p) % p;
            let tag = Proc::coll_tag(seq, round);
            self.send(to, tag, comm, &[]);
            let info = self.recv(SrcSel::Rank(from), TagSel::Tag(tag), comm);
            debug_assert!(info.payload.is_empty());
            dist *= 2;
            round += 1;
        }
    }

    /// Binomial-tree reduction of one `u64` to `root`.
    ///
    /// Returns `Some(result)` on the root, `None` elsewhere.
    pub fn reduce_u64(&mut self, value: u64, op: ReduceOp, root: Rank, comm: Comm) -> Option<u64> {
        let p = self.size();
        assert!(root < p, "reduce root {root} out of range {p}");
        let seq = self.next_coll_seq(comm);
        if p == 1 {
            return Some(value);
        }
        let me = self.rank();
        let rel = (me + p - root) % p; // position in the virtual tree
        let mut acc = value;
        let mut mask = 1usize;
        let mut round = 0u32;
        loop {
            if rel & mask != 0 {
                // Send the partial result to the subtree parent and leave.
                let parent_rel = rel & !mask;
                let parent = (parent_rel + root) % p;
                self.send_u64(parent, Proc::coll_tag(seq, round), comm, acc);
                break;
            }
            let child_rel = rel | mask;
            if child_rel < p {
                let child = (child_rel + root) % p;
                let (_, v) = self.recv_u64(
                    SrcSel::Rank(child),
                    TagSel::Tag(Proc::coll_tag(seq, round)),
                    comm,
                );
                acc = op.apply(acc, v);
            }
            mask <<= 1;
            round += 1;
            if mask >= p {
                break;
            }
        }
        (me == root).then_some(acc)
    }

    /// Binomial-tree broadcast of a byte payload from `root`. Non-root
    /// callers pass an empty slice; every caller receives the root's
    /// payload as the return value.
    pub fn bcast(&mut self, payload: &[u8], root: Rank, comm: Comm) -> Vec<u8> {
        let p = self.size();
        assert!(root < p, "bcast root {root} out of range {p}");
        let seq = self.next_coll_seq(comm);
        if p == 1 {
            return payload.to_vec();
        }
        let me = self.rank();
        let rel = (me + p - root) % p;
        // Receive phase: find the bit at which this rank hangs off the tree.
        let data: Vec<u8>;
        let mut recv_mask = 1usize;
        if rel == 0 {
            data = payload.to_vec();
            // Root "received" at the top of the tree: its send masks start
            // from the highest power of two below p.
            recv_mask = p.next_power_of_two();
        } else {
            loop {
                if rel & recv_mask != 0 {
                    let src_rel = rel & !recv_mask;
                    let src = (src_rel + root) % p;
                    let round = recv_mask.trailing_zeros();
                    let info = self.recv(
                        SrcSel::Rank(src),
                        TagSel::Tag(Proc::coll_tag(seq, round)),
                        comm,
                    );
                    data = info.payload;
                    break;
                }
                recv_mask <<= 1;
            }
        }
        // Send phase: forward to children below the received bit.
        let mut mask = recv_mask >> 1;
        while mask > 0 {
            let child_rel = rel | mask;
            if child_rel < p && child_rel != rel {
                let child = (child_rel + root) % p;
                let round = mask.trailing_zeros();
                self.send(child, Proc::coll_tag(seq, round), comm, &data);
            }
            mask >>= 1;
        }
        data
    }

    /// Broadcast a single u64 from `root`.
    pub fn bcast_u64(&mut self, value: u64, root: Rank, comm: Comm) -> u64 {
        let out = self.bcast(&value.to_le_bytes(), root, comm);
        u64::from_le_bytes(out.as_slice().try_into().expect("bcast_u64 payload"))
    }

    /// Allreduce = reduce to rank 0 + broadcast (on `comm`).
    pub fn allreduce_u64(&mut self, value: u64, op: ReduceOp, comm: Comm) -> u64 {
        let partial = self.reduce_u64(value, op, 0, comm).unwrap_or(0);
        self.bcast_u64(partial, 0, comm)
    }

    /// Allreduce-sum on the world communicator — the most common idiom in
    /// the workloads.
    pub fn allreduce_sum(&mut self, value: u64) -> u64 {
        self.allreduce_u64(value, ReduceOp::Sum, Comm::WORLD)
    }

    /// Death-tolerant barrier: synchronizes the surviving ranks and
    /// returns the agreed alive set (ascending). See
    /// [`Proc::resilient_allreduce_u64`] for the protocol and its
    /// guarantees.
    pub fn resilient_barrier(&mut self, comm: Comm) -> Vec<Rank> {
        self.resilient_allreduce_u64(0, ReduceOp::Sum, comm).1
    }

    /// Death-tolerant allreduce over whoever is still alive, as a star
    /// through the smallest surviving rank. Returns `(result, alive)`
    /// where `alive` is the ascending list of ranks whose contributions
    /// made it into `result` — the root's snapshot, distributed back down,
    /// so **every survivor receives the identical set**. Chameleon uses
    /// that snapshot as the agreed participant set for the phase the vote
    /// opens: lock-step is preserved because the agreement is made once,
    /// at the root, not inferred per-rank.
    ///
    /// **Root failover.** The root is no longer immortal: attempt `a`
    /// stars through candidate root `a` on a fresh tag pair, and every
    /// survivor that fails to get a reply (the candidate died) advances to
    /// the next candidate in lock-step. Consistency relies on the reply
    /// fan-out being *crash-atomic*: the root ticks the op counter once
    /// before the fan-out and then uses non-ticking sends, so the plan's
    /// crash either fires before any reply exists (all survivors observe
    /// the death and fail over together) or after all replies are
    /// delivered (nobody fails over). With at most one crash per plan
    /// (`FaultPlan` holds a single `CrashFault`), at most two candidates
    /// are ever tried.
    ///
    /// A rank that dies *after* contributing stays in the snapshot; the
    /// phase that trusted the snapshot must tolerate its silence (that is
    /// the mid-phase-death path, counted as a degraded slice).
    ///
    /// O(P) rounds instead of the dissemination/binomial O(log P): the
    /// star is the price of a single authoritative membership decision.
    /// Only armed worlds ever call this.
    pub fn resilient_allreduce_u64(
        &mut self,
        value: u64,
        op: ReduceOp,
        comm: Comm,
    ) -> (u64, Vec<Rank>) {
        self.tick_op();
        let p = self.size();
        let seq = self.next_coll_seq(comm);
        if p == 1 {
            return (value, vec![0]);
        }
        let me = self.rank();
        // `coll_tag` budgets 64 rounds per instance → 32 candidate roots;
        // one crash per plan means attempts 0 and 1 are the only ones ever
        // reachable, so the cap is a formality.
        for attempt in 0..p.min(32) {
            let root = attempt;
            let up = Proc::coll_tag(seq, (2 * attempt) as u32);
            let down = Proc::coll_tag(seq, (2 * attempt + 1) as u32);
            if me == root {
                let mut acc = value;
                let mut alive: Vec<Rank> = vec![me];
                for r in (0..p).filter(|&r| r != me) {
                    if let Some(info) = self.recv_or_dead(r, up, comm) {
                        let v = u64::from_le_bytes(
                            info.payload
                                .as_slice()
                                .try_into()
                                .expect("resilient allreduce contribution is 8 bytes"),
                        );
                        acc = op.apply(acc, v);
                        alive.push(r);
                    }
                }
                alive.sort_unstable();
                let mut reply = Vec::with_capacity(16 + 8 * alive.len());
                reply.extend_from_slice(&acc.to_le_bytes());
                reply.extend_from_slice(&(alive.len() as u64).to_le_bytes());
                for &r in &alive {
                    reply.extend_from_slice(&(r as u64).to_le_bytes());
                }
                // Crash-atomic fan-out: one tick, then non-ticking sends.
                self.tick_op();
                for &r in &alive {
                    if r != me {
                        self.send_no_tick(r, down, comm, &reply);
                    }
                }
                return (acc, alive);
            }
            // Non-root: contribute, then wait for the reply or the root's
            // death. Never peek at the death flag to skip the send — a
            // non-blocking check would race real time; the blocking wait
            // resolves message-vs-death deterministically.
            self.send(root, up, comm, &value.to_le_bytes());
            let Some(info) = self.recv_or_dead(root, down, comm) else {
                continue; // candidate root died: fail over in lock-step
            };
            let buf = info.payload;
            assert!(buf.len() >= 16, "resilient allreduce reply framing");
            let result = u64::from_le_bytes(buf[..8].try_into().unwrap());
            let n = u64::from_le_bytes(buf[8..16].try_into().unwrap()) as usize;
            assert_eq!(buf.len(), 16 + 8 * n, "resilient allreduce reply framing");
            let alive = (0..n)
                .map(|i| {
                    u64::from_le_bytes(buf[16 + 8 * i..24 + 8 * i].try_into().unwrap()) as Rank
                })
                .collect();
            return (result, alive);
        }
        unreachable!("every candidate root died; plans inject at most one crash")
    }

    /// Binomial-tree gather of variable-length payloads to `root`.
    ///
    /// On the root, returns `Some(v)` with `v[r]` holding rank r's payload;
    /// `None` elsewhere.
    pub fn gather(&mut self, payload: &[u8], root: Rank, comm: Comm) -> Option<Vec<Vec<u8>>> {
        let p = self.size();
        assert!(root < p, "gather root {root} out of range {p}");
        let seq = self.next_coll_seq(comm);
        let me = self.rank();
        if p == 1 {
            return Some(vec![payload.to_vec()]);
        }
        let rel = (me + p - root) % p;
        // Accumulate (rank, payload) pairs from the subtree.
        let mut items: Vec<(Rank, Vec<u8>)> = vec![(me, payload.to_vec())];
        let mut mask = 1usize;
        let mut round = 0u32;
        loop {
            if rel & mask != 0 {
                let parent_rel = rel & !mask;
                let parent = (parent_rel + root) % p;
                self.send(
                    parent,
                    Proc::coll_tag(seq, round),
                    comm,
                    &encode_items(&items),
                );
                return None;
            }
            let child_rel = rel | mask;
            if child_rel < p {
                let child = (child_rel + root) % p;
                let info = self.recv(
                    SrcSel::Rank(child),
                    TagSel::Tag(Proc::coll_tag(seq, round)),
                    comm,
                );
                items.extend(decode_items(&info.payload));
            }
            mask <<= 1;
            round += 1;
            if mask >= p {
                break;
            }
        }
        // Root: order by rank.
        let mut out = vec![Vec::new(); p];
        let mut seen = vec![false; p];
        for (r, data) in items {
            assert!(!seen[r], "gather: duplicate contribution from rank {r}");
            seen[r] = true;
            out[r] = data;
        }
        assert!(seen.iter().all(|&s| s), "gather: missing contributions");
        Some(out)
    }
}

fn encode_items(items: &[(Rank, Vec<u8>)]) -> Vec<u8> {
    let total: usize = items.iter().map(|(_, d)| 16 + d.len()).sum();
    let mut buf = Vec::with_capacity(total);
    for (rank, data) in items {
        buf.extend_from_slice(&(*rank as u64).to_le_bytes());
        buf.extend_from_slice(&(data.len() as u64).to_le_bytes());
        buf.extend_from_slice(data);
    }
    buf
}

fn decode_items(mut buf: &[u8]) -> Vec<(Rank, Vec<u8>)> {
    let mut items = Vec::new();
    while !buf.is_empty() {
        assert!(buf.len() >= 16, "gather framing corrupted");
        let rank = u64::from_le_bytes(buf[..8].try_into().unwrap()) as Rank;
        let len = u64::from_le_bytes(buf[8..16].try_into().unwrap()) as usize;
        assert!(buf.len() >= 16 + len, "gather framing corrupted");
        items.push((rank, buf[16..16 + len].to_vec()));
        buf = &buf[16 + len..];
    }
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let items = vec![
            (0usize, vec![1, 2, 3]),
            (5, vec![]),
            (1023, vec![0xff; 100]),
        ];
        assert_eq!(decode_items(&encode_items(&items)), items);
    }

    #[test]
    fn reduce_ops() {
        assert_eq!(ReduceOp::Sum.apply(2, 3), 5);
        assert_eq!(ReduceOp::Sum.apply(u64::MAX, 1), 0, "wrapping");
        assert_eq!(ReduceOp::Max.apply(2, 3), 3);
        assert_eq!(ReduceOp::Min.apply(2, 3), 2);
        assert_eq!(ReduceOp::BitOr.apply(0b01, 0b10), 0b11);
    }
}
