//! Virtual time: per-rank clocks and the alpha–beta communication cost
//! model.
//!
//! The replay-accuracy experiments in the paper compare application
//! execution times with and without clustered tracing. On real hardware
//! those times come from the wall clock; in this reproduction they come
//! from a deterministic virtual clock so that results are exactly
//! repeatable and machine-independent. The model is the classic
//! LogP-inspired alpha–beta model: sending `n` bytes costs
//! `alpha + beta * n` end-to-end, with a small CPU-side overhead `o` on
//! each of sender and receiver.

/// Virtual seconds. A plain f64 newtype would force arithmetic boilerplate
/// everywhere; virtual times participate in max/add constantly, so we keep
/// the alias and document the unit instead.
pub type VirtualTime = f64;

/// Latency/bandwidth cost model for simulated communication.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// One-way message latency in virtual seconds (the "alpha" term).
    pub alpha: VirtualTime,
    /// Per-byte transfer cost in virtual seconds (the "beta" term, i.e.
    /// 1/bandwidth).
    pub beta: VirtualTime,
    /// CPU overhead charged to the caller per send or receive operation.
    pub overhead: VirtualTime,
}

impl CostModel {
    /// Parameters loosely modeled on the paper's testbed (QDR InfiniBand:
    /// ~1.3 us latency, ~3.2 GB/s effective bandwidth).
    pub fn qdr_infiniband() -> Self {
        CostModel {
            alpha: 1.3e-6,
            beta: 1.0 / 3.2e9,
            overhead: 0.3e-6,
        }
    }

    /// End-to-end transfer time of an `n`-byte message.
    #[inline]
    pub fn transfer(&self, bytes: usize) -> VirtualTime {
        self.alpha + self.beta * bytes as VirtualTime
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::qdr_infiniband()
    }
}

/// Analytic cost model for *tool computation* (trace parsing/merging,
/// clustering, signature work).
///
/// Overhead experiments need per-rank compute costs, but measuring them on
/// the simulation host is hopeless: rank-threads oversubscribe the CPUs
/// (wall-clock spans time the scheduler) and the sandboxed kernel leaks
/// foreign threads' time into `CLOCK_THREAD_CPUTIME_ID`. Discrete-event
/// simulators solve this analytically — charge each operation a modeled
/// cost proportional to the work it does — and that is what this is. The
/// constants are calibrated to commodity-CPU magnitudes (see each field)
/// and, because they are fixed, overhead results are deterministic and
/// machine-independent, like the virtual application clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkModel {
    /// Seconds per byte of trace text serialized or parsed (~100 MB/s
    /// string processing).
    pub codec_per_byte: f64,
    /// Seconds per DP cell of the O(n·m) pairwise trace alignment
    /// (~50M cells/s).
    pub merge_per_cell: f64,
    /// Seconds per trace node cloned/folded during merging and online
    /// absorption.
    pub fold_per_node: f64,
    /// Seconds per pairwise distance evaluation in clustering.
    pub cluster_per_pair: f64,
    /// Fixed cost of finishing one interval signature, plus...
    pub signature_base: f64,
    /// ...seconds per event folded into the interval signature (the
    /// paper's O(n) signature creation).
    pub signature_per_event: f64,
}

impl WorkModel {
    /// Calibrated defaults (see field docs).
    pub fn calibrated() -> Self {
        WorkModel {
            codec_per_byte: 10e-9,
            merge_per_cell: 20e-9,
            fold_per_node: 100e-9,
            cluster_per_pair: 50e-9,
            signature_base: 200e-9,
            signature_per_event: 5e-9,
        }
    }

    /// Modeled cost of serializing or parsing `bytes` of trace text.
    pub fn codec(&self, bytes: usize) -> f64 {
        self.codec_per_byte * bytes as f64
    }

    /// Modeled cost of structurally merging traces of compressed sizes
    /// `n` and `m` (the O(n·m) alignment plus linear fold work). This is
    /// the *worst-case* model the baselines assume; the fast merge path
    /// charges its measured work via [`WorkModel::merge_measured`].
    pub fn merge(&self, n: usize, m: usize) -> f64 {
        self.merge_per_cell * (n as f64) * (m as f64) + self.fold_per_node * (n + m) as f64
    }

    /// Modeled cost of a pairwise merge that actually evaluated `dp_cells`
    /// LCS cells and touched `nodes` trace nodes — the measured
    /// counterpart of [`WorkModel::merge`] for the prefiltered aligner,
    /// which skips most of the n·m table on structurally similar traces.
    pub fn merge_measured(&self, dp_cells: u64, nodes: usize) -> f64 {
        self.merge_per_cell * dp_cells as f64 + self.fold_per_node * nodes as f64
    }

    /// Modeled cost of clustering `n` entries (distance matrix plus
    /// selection sweeps).
    pub fn cluster(&self, n: usize) -> f64 {
        self.cluster_per_pair * (n as f64) * (n as f64)
    }

    /// Modeled cost of producing one interval signature over `events`
    /// compressed events.
    pub fn signature(&self, events: u64) -> f64 {
        self.signature_base + self.signature_per_event * events as f64
    }
}

impl Default for WorkModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

/// Per-rank virtual clock.
///
/// Monotone by construction: all mutating operations only move the clock
/// forward.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct VirtualClock {
    now: VirtualTime,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> VirtualTime {
        self.now
    }

    /// Advance by a non-negative duration (e.g. simulated computation).
    #[inline]
    pub fn advance(&mut self, dt: VirtualTime) {
        debug_assert!(dt >= 0.0, "cannot advance clock by negative time");
        if dt > 0.0 {
            self.now += dt;
        }
    }

    /// Synchronize with an external event: move forward to `t` if `t` is
    /// later than now (never backward).
    #[inline]
    pub fn sync_to(&mut self, t: VirtualTime) {
        if t > self.now {
            self.now = t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_starts_at_zero() {
        assert_eq!(VirtualClock::new().now(), 0.0);
    }

    #[test]
    fn advance_accumulates() {
        let mut c = VirtualClock::new();
        c.advance(1.5);
        c.advance(0.5);
        assert_eq!(c.now(), 2.0);
    }

    #[test]
    fn sync_never_moves_backward() {
        let mut c = VirtualClock::new();
        c.advance(10.0);
        c.sync_to(5.0);
        assert_eq!(c.now(), 10.0);
        c.sync_to(12.0);
        assert_eq!(c.now(), 12.0);
    }

    #[test]
    fn transfer_cost_monotone_in_size() {
        let m = CostModel::qdr_infiniband();
        assert!(m.transfer(0) > 0.0, "latency floor");
        assert!(m.transfer(1 << 20) > m.transfer(1 << 10));
    }

    #[test]
    fn zero_advance_is_noop() {
        let mut c = VirtualClock::new();
        c.advance(0.0);
        assert_eq!(c.now(), 0.0);
    }
}
