//! Per-rank mailboxes with MPI-style message matching.
//!
//! MPI receives match on `(communicator, tag, source)`, where tag and
//! source may be wildcards, and messages from the same sender on the same
//! communicator are non-overtaking. A mailbox is an unbounded queue of
//! envelopes protected by a mutex; a receive scans for the first match and
//! blocks on a condvar until one arrives.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

use crate::proc::{Rank, SrcSel, Tag, TagSel};
use crate::time::VirtualTime;
use crate::Comm;

/// A message in flight.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sending rank.
    pub src: Rank,
    /// Message tag.
    pub tag: Tag,
    /// Communicator the message was sent on.
    pub comm: Comm,
    /// Payload bytes.
    pub payload: Vec<u8>,
    /// Virtual time at which the message reaches the receiver (sender's
    /// clock at send plus transfer cost). The receiver's clock syncs to
    /// this on delivery.
    pub arrival: VirtualTime,
}

#[derive(Default)]
struct Inner {
    queue: VecDeque<Envelope>,
}

/// One rank's incoming-message queue.
#[derive(Default)]
pub struct Mailbox {
    inner: Mutex<Inner>,
    available: Condvar,
}

impl Mailbox {
    /// Empty mailbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lock the queue, shrugging off poisoning: a rank thread that panics
    /// holds no mailbox invariants (the queue is always consistent between
    /// operations), and the world-level poison flag handles the abort.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Deposit a message (called by the *sender's* thread).
    pub fn deliver(&self, env: Envelope) {
        let mut inner = self.lock();
        inner.queue.push_back(env);
        drop(inner);
        // Wake all waiters: with wildcard receives, any waiter might match.
        self.available.notify_all();
    }

    /// Blocking matched receive. Returns the first queued envelope matching
    /// the selectors, preserving MPI's non-overtaking order (FIFO per
    /// sender within a communicator — guaranteed here because the queue is
    /// globally FIFO and we always take the *first* match).
    pub fn recv(&self, src: SrcSel, tag: TagSel, comm: Comm) -> Envelope {
        let mut inner = self.lock();
        loop {
            if let Some(pos) = inner
                .queue
                .iter()
                .position(|e| Self::matches(e, src, tag, comm))
            {
                return inner.queue.remove(pos).expect("position just found");
            }
            inner = self
                .available
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Bounded-wait matched receive: like [`Mailbox::recv`] but gives up
    /// after `timeout_ms` milliseconds without a match, returning `None`.
    /// Used by the runtime to poll a poison flag so one rank's panic does
    /// not deadlock the others.
    pub fn recv_timeout(
        &self,
        src: SrcSel,
        tag: TagSel,
        comm: Comm,
        timeout_ms: u64,
    ) -> Option<Envelope> {
        self.recv_timeout_where(timeout_ms, |e| Self::matches(e, src, tag, comm))
    }

    /// Bounded-wait receive matching any of `srcs` on a fixed tag/comm.
    /// FIFO among the matches, so per-sender order is still non-overtaking.
    ///
    /// This is the primitive behind pipelined reductions: an interior tree
    /// rank takes child traces in *arrival* order, but only from its own
    /// children — a plain wildcard receive could steal a message a child
    /// already sent for the *next* reduction on the same tag.
    pub fn recv_timeout_from_set(
        &self,
        srcs: &[Rank],
        tag: TagSel,
        comm: Comm,
        timeout_ms: u64,
    ) -> Option<Envelope> {
        self.recv_timeout_where(timeout_ms, |e| {
            srcs.contains(&e.src) && Self::matches(e, SrcSel::Any, tag, comm)
        })
    }

    fn recv_timeout_where(
        &self,
        timeout_ms: u64,
        pred: impl Fn(&Envelope) -> bool,
    ) -> Option<Envelope> {
        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(timeout_ms);
        let mut inner = self.lock();
        loop {
            if let Some(pos) = inner.queue.iter().position(&pred) {
                return inner.queue.remove(pos);
            }
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return None;
            }
            let (guard, timed_out) = self
                .available
                .wait_timeout(inner, remaining)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
            if timed_out.timed_out() {
                // One final scan: a message may have landed between the
                // last check and the timeout.
                return inner
                    .queue
                    .iter()
                    .position(&pred)
                    .and_then(|pos| inner.queue.remove(pos));
            }
        }
    }

    /// Non-blocking matched receive: take the first queued envelope
    /// matching the selectors, or return `None` without waiting. The
    /// event scheduler's block points are built on this — check, park,
    /// re-check on wake — instead of the timed poll loops thread mode
    /// uses.
    pub fn try_recv(&self, src: SrcSel, tag: TagSel, comm: Comm) -> Option<Envelope> {
        let mut inner = self.lock();
        inner
            .queue
            .iter()
            .position(|e| Self::matches(e, src, tag, comm))
            .and_then(|pos| inner.queue.remove(pos))
    }

    /// Non-blocking counterpart of [`Mailbox::recv_timeout_from_set`]:
    /// first arrival among `srcs` on the tag/comm, or `None`.
    pub fn try_recv_from_set(&self, srcs: &[Rank], tag: TagSel, comm: Comm) -> Option<Envelope> {
        let mut inner = self.lock();
        inner
            .queue
            .iter()
            .position(|e| srcs.contains(&e.src) && Self::matches(e, SrcSel::Any, tag, comm))
            .and_then(|pos| inner.queue.remove(pos))
    }

    /// Non-blocking probe: would `recv` with these selectors complete
    /// immediately? Returns the matched envelope's metadata without
    /// consuming it.
    pub fn probe(&self, src: SrcSel, tag: TagSel, comm: Comm) -> Option<(Rank, Tag, usize)> {
        let inner = self.lock();
        inner
            .queue
            .iter()
            .find(|e| Self::matches(e, src, tag, comm))
            .map(|e| (e.src, e.tag, e.payload.len()))
    }

    /// Number of queued (undelivered) messages; used by shutdown checks
    /// and tests.
    pub fn backlog(&self) -> usize {
        self.lock().queue.len()
    }

    fn matches(e: &Envelope, src: SrcSel, tag: TagSel, comm: Comm) -> bool {
        if e.comm != comm {
            return false;
        }
        if let SrcSel::Rank(r) = src {
            if e.src != r {
                return false;
            }
        }
        if let TagSel::Tag(t) = tag {
            if e.tag != t {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn env(src: Rank, tag: Tag, comm: Comm, byte: u8) -> Envelope {
        Envelope {
            src,
            tag,
            comm,
            payload: vec![byte],
            arrival: 0.0,
        }
    }

    #[test]
    fn exact_match_delivery() {
        let mb = Mailbox::new();
        mb.deliver(env(3, 7, Comm::WORLD, 0xaa));
        let got = mb.recv(SrcSel::Rank(3), TagSel::Tag(7), Comm::WORLD);
        assert_eq!(got.payload, vec![0xaa]);
        assert_eq!(mb.backlog(), 0);
    }

    #[test]
    fn mismatched_messages_left_queued() {
        let mb = Mailbox::new();
        mb.deliver(env(1, 1, Comm::WORLD, 1));
        mb.deliver(env(2, 2, Comm::WORLD, 2));
        let got = mb.recv(SrcSel::Rank(2), TagSel::Tag(2), Comm::WORLD);
        assert_eq!(got.payload, vec![2]);
        assert_eq!(mb.backlog(), 1, "non-matching message must stay queued");
    }

    #[test]
    fn wildcard_source_takes_first() {
        let mb = Mailbox::new();
        mb.deliver(env(5, 9, Comm::WORLD, 5));
        mb.deliver(env(6, 9, Comm::WORLD, 6));
        let got = mb.recv(SrcSel::Any, TagSel::Tag(9), Comm::WORLD);
        assert_eq!(got.src, 5, "FIFO among matches");
    }

    #[test]
    fn wildcard_tag() {
        let mb = Mailbox::new();
        mb.deliver(env(1, 42, Comm::WORLD, 1));
        let got = mb.recv(SrcSel::Rank(1), TagSel::Any, Comm::WORLD);
        assert_eq!(got.tag, 42);
    }

    #[test]
    fn comm_isolation() {
        let mb = Mailbox::new();
        mb.deliver(env(1, 1, Comm(9), 9));
        mb.deliver(env(1, 1, Comm::WORLD, 0));
        let got = mb.recv(SrcSel::Rank(1), TagSel::Tag(1), Comm::WORLD);
        assert_eq!(got.payload, vec![0], "must not cross communicators");
    }

    #[test]
    fn non_overtaking_per_sender() {
        let mb = Mailbox::new();
        for i in 0..10u8 {
            mb.deliver(env(4, 1, Comm::WORLD, i));
        }
        for i in 0..10u8 {
            let got = mb.recv(SrcSel::Rank(4), TagSel::Tag(1), Comm::WORLD);
            assert_eq!(got.payload, vec![i]);
        }
    }

    #[test]
    fn probe_does_not_consume() {
        let mb = Mailbox::new();
        mb.deliver(env(2, 3, Comm::WORLD, 7));
        let p = mb.probe(SrcSel::Any, TagSel::Any, Comm::WORLD);
        assert_eq!(p, Some((2, 3, 1)));
        assert_eq!(mb.backlog(), 1);
        assert!(mb
            .probe(SrcSel::Rank(9), TagSel::Any, Comm::WORLD)
            .is_none());
    }

    #[test]
    fn blocking_recv_wakes_on_delivery() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let handle =
            std::thread::spawn(move || mb2.recv(SrcSel::Rank(0), TagSel::Tag(0), Comm::WORLD));
        // Give the receiver a moment to block, then deliver.
        std::thread::sleep(std::time::Duration::from_millis(20));
        mb.deliver(env(0, 0, Comm::WORLD, 0x5a));
        let got = handle.join().unwrap();
        assert_eq!(got.payload, vec![0x5a]);
    }

    #[test]
    fn wakeup_with_multiple_waiters_different_selectors() {
        let mb = Arc::new(Mailbox::new());
        let a = {
            let mb = Arc::clone(&mb);
            std::thread::spawn(move || mb.recv(SrcSel::Rank(1), TagSel::Any, Comm::WORLD))
        };
        let b = {
            let mb = Arc::clone(&mb);
            std::thread::spawn(move || mb.recv(SrcSel::Rank(2), TagSel::Any, Comm::WORLD))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        mb.deliver(env(2, 0, Comm::WORLD, 2));
        mb.deliver(env(1, 0, Comm::WORLD, 1));
        assert_eq!(a.join().unwrap().payload, vec![1]);
        assert_eq!(b.join().unwrap().payload, vec![2]);
    }

    #[test]
    fn set_receive_takes_arrival_order_within_set() {
        let mb = Mailbox::new();
        mb.deliver(env(9, 5, Comm::WORLD, 9)); // not in set
        mb.deliver(env(4, 5, Comm::WORLD, 4));
        mb.deliver(env(2, 5, Comm::WORLD, 2));
        let got = mb
            .recv_timeout_from_set(&[2, 4], TagSel::Tag(5), Comm::WORLD, 10)
            .expect("match available");
        assert_eq!(got.src, 4, "first arrival among the set wins");
        let got2 = mb
            .recv_timeout_from_set(&[2, 4], TagSel::Tag(5), Comm::WORLD, 10)
            .expect("second match");
        assert_eq!(got2.src, 2);
        assert_eq!(mb.backlog(), 1, "out-of-set message stays queued");
    }

    #[test]
    fn set_receive_times_out_when_only_foreign_sources() {
        let mb = Mailbox::new();
        mb.deliver(env(7, 5, Comm::WORLD, 7));
        assert!(mb
            .recv_timeout_from_set(&[1, 2], TagSel::Tag(5), Comm::WORLD, 20)
            .is_none());
        assert_eq!(mb.backlog(), 1);
    }
}
