//! # mpisim — a simulated MPI runtime with virtual time
//!
//! Chameleon and ScalaTrace are MPI-level tools: they interpose on MPI
//! calls, run reductions over process trees, and reason about per-rank
//! event streams. Reproducing them requires an MPI, and this crate provides
//! one: each rank is a cooperative task multiplexed over a bounded worker
//! pool by an event-driven scheduler ([`sched`]) — scaling worlds to tens
//! of thousands of ranks — point-to-point messages are matched on
//! `(communicator, tag, source)` exactly as MPI matches them, and the
//! collectives (`barrier`, `reduce`, `bcast`, `allreduce`, `gather`) are
//! implemented over point-to-point with the same binomial-tree /
//! dissemination structures real MPI libraries use — so the O(log P) cost
//! shape the paper relies on is real, not assumed. The pre-refactor
//! free-running thread-per-rank engine is retained behind
//! [`SchedMode::Threads`] as a differential-testing oracle.
//!
//! ## Virtual time
//!
//! Each rank carries a virtual clock ([`time::VirtualClock`]). Computation
//! is `compute(seconds)`; communication costs follow an alpha–beta
//! (latency + bandwidth) model ([`time::CostModel`]). Blocking receives
//! synchronize clocks: the receiver's clock advances to at least the
//! message's arrival time. This gives deterministic, machine-independent
//! "application execution times" — which is what the paper's replay
//! accuracy experiments (Figures 5 and 7) compare — while the tracing and
//! clustering code still executes for real and can be wall-clock timed
//! (Figures 4, 6, 8–11, Table III).
//!
//! ## Quick example
//!
//! ```
//! use mpisim::{World, WorldConfig};
//!
//! let report = World::new(WorldConfig::for_tests(4)).run(|proc| {
//!     let rank = proc.rank();
//!     let sum = proc.allreduce_sum(rank as u64);
//!     assert_eq!(sum, 0 + 1 + 2 + 3);
//! }).unwrap();
//! assert_eq!(report.ranks, 4);
//! ```

pub mod collectives;
pub mod cputime;
pub mod fault;
pub mod mailbox;
pub mod proc;
pub mod reliable;
pub mod sched;
pub mod time;
pub mod topology;
pub mod world;

pub use cputime::CpuTimer;
pub use fault::{CrashFault, FaultPlan, FaultStats, InjectedCrash, LinkRamp};
pub use proc::{PendingRecv, Proc, Rank, RecvInfo, SrcSel, Tag, TagSel};
pub use reliable::{ProtocolError, RetryPolicy};
pub use sched::SchedMode;
pub use time::{CostModel, VirtualClock, VirtualTime, WorkModel};
pub use topology::RadixTree;
pub use world::{FaultyWorldReport, World, WorldConfig, WorldReport};

/// Communicator identifier.
///
/// This simulator models world-sized communicators with distinct
/// identities; that is all ScalaTrace/Chameleon need. The paper
/// distinguishes the *marker* barrier from ordinary application barriers by
/// giving it "a unique value [in] the communicator field" — hence
/// [`Comm::MARKER`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Comm(pub u32);

impl Comm {
    /// The default world communicator.
    pub const WORLD: Comm = Comm(0);
    /// Reserved communicator identifying Chameleon's marker barrier.
    pub const MARKER: Comm = Comm(u32::MAX);
    /// Reserved communicator for tool-internal (PMPI wrapper) traffic that
    /// must never be recorded in traces.
    pub const TOOL: Comm = Comm(u32::MAX - 1);
    /// Reserved out-of-band channel for the in-flight metrics plane's
    /// snapshot reductions. Traffic here bypasses *all* simulation
    /// accounting — no op ticks, no clock movement, no stats, no fault
    /// coins — so arming observability cannot perturb the run it
    /// observes (see [`Proc::reduce_metrics_delta`]).
    pub const OBS: Comm = Comm(u32::MAX - 2);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_constants_distinct() {
        let reserved = [Comm::WORLD, Comm::MARKER, Comm::TOOL, Comm::OBS];
        for (i, a) in reserved.iter().enumerate() {
            for b in &reserved[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
