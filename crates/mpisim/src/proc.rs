//! The per-rank process handle: point-to-point messaging, virtual time,
//! and statistics.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::fault::{FaultPlan, FaultStats, InjectedCrash};
use crate::mailbox::{Envelope, Mailbox};
use crate::time::{CostModel, VirtualClock, VirtualTime};
use crate::Comm;

/// MPI rank (0-based).
pub type Rank = usize;

/// Message tag.
pub type Tag = u32;

/// Source selector for receives (MPI's `MPI_ANY_SOURCE` or a concrete
/// rank).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SrcSel {
    /// Match any sender.
    Any,
    /// Match a specific sender.
    Rank(Rank),
}

/// Tag selector for receives (MPI's `MPI_ANY_TAG` or a concrete tag).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagSel {
    /// Match any tag.
    Any,
    /// Match a specific tag.
    Tag(Tag),
}

/// Completed receive: who sent what under which tag.
#[derive(Debug, Clone)]
pub struct RecvInfo {
    /// Actual sender (resolves wildcards).
    pub src: Rank,
    /// Actual tag (resolves wildcards).
    pub tag: Tag,
    /// Message payload.
    pub payload: Vec<u8>,
}

/// A message dequeued by [`Proc::recv_from_set`] whose clock accounting
/// has not happened yet — pass it to [`Proc::complete_recv`] when its
/// deterministic processing slot comes up.
#[derive(Debug, Clone)]
pub struct PendingRecv {
    /// Actual sender.
    pub src: Rank,
    /// Message payload.
    pub payload: Vec<u8>,
    /// Modeled arrival time in the sender's clock domain (tool or app,
    /// per the communicator the message was sent on).
    pub arrival: f64,
}

/// Per-rank communication statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcStats {
    /// Point-to-point messages sent (including collective-internal ones).
    pub msgs_sent: usize,
    /// Payload bytes sent.
    pub bytes_sent: usize,
    /// Messages received.
    pub msgs_recvd: usize,
    /// Payload bytes received.
    pub bytes_recvd: usize,
}

/// State shared by all ranks of one [`crate::World`].
pub(crate) struct Shared {
    pub(crate) mailboxes: Vec<Mailbox>,
    pub(crate) cost: CostModel,
    pub(crate) size: usize,
    /// Set when any rank panics so blocked peers abort instead of hanging.
    pub(crate) poisoned: AtomicBool,
    /// The armed fault plan, if any. `None` keeps every fault hook on its
    /// zero-cost path.
    pub(crate) faults: Option<FaultPlan>,
    /// Per-rank death flags. A rank sets its own flag (SeqCst) *before*
    /// unwinding on an injected crash; because sends are eager, any
    /// message the dying rank sent is already in its peer's mailbox by the
    /// time the flag is observable — which is what makes death detection
    /// deterministic (see [`Proc::recv_or_dead`]).
    pub(crate) dead: Vec<AtomicBool>,
    /// The cooperative event scheduler ([`crate::SchedMode::Events`], the
    /// default), or `None` in [`crate::SchedMode::Threads`] oracle mode
    /// where every rank free-runs and blocked receives poll.
    pub(crate) sched: Option<crate::sched::Sched>,
}

impl Shared {
    /// Wake `rank`'s task if it is parked — called after every mailbox
    /// delivery so event-mode blocks resolve on the event, not a poll.
    /// One branch in thread mode.
    #[inline]
    pub(crate) fn wake(&self, rank: Rank) {
        if let Some(s) = &self.sched {
            s.notify(rank);
        }
    }

    /// Wake every parked task — for global conditions (a death flag, the
    /// world poison flag) that any waiter might be blocked on.
    #[inline]
    pub(crate) fn wake_all(&self) {
        if let Some(s) = &self.sched {
            s.notify_all();
        }
    }
}

/// Handle through which one rank's program talks to the simulated MPI.
///
/// Obtained inside the closure passed to [`crate::World::run`]; not
/// constructible directly.
pub struct Proc {
    rank: Rank,
    shared: Arc<Shared>,
    clock: VirtualClock,
    /// Per-communicator collective sequence numbers; all ranks call
    /// collectives on a communicator in the same order, so matching
    /// sequence numbers identify the same collective instance.
    coll_seq: HashMap<u32, u64>,
    stats: ProcStats,
    /// The tool's own virtual clock, disjoint from the application clock.
    /// Tool-internal messages (on [`Comm::TOOL`]/[`Comm::MARKER`]) carry
    /// tool-clock timestamps and synchronize it on receive, and measured
    /// tool compute advances it via [`Proc::tool_compute`] — so a rank's
    /// final tool time is the *critical path* of tool work it observed
    /// (including waiting for merge partners), exactly the quantity the
    /// paper aggregates as tracing overhead. Measuring this with the wall
    /// clock instead would time the host scheduler: the simulation
    /// oversubscribes cores, so blocking waits are meaningless there.
    tool_clock: VirtualClock,
    /// Simulated operations performed (send attempts, completed receives,
    /// barrier entries — collective-internal ones included). Drives
    /// [`crate::fault::CrashFault`] scheduling.
    op_count: u64,
    /// Per-sender message nonce: ticks once per send attempt, in sender
    /// program order, and seeds the fault coin for that attempt.
    send_nonce: u64,
    /// Tally of injected faults and recovery actions on this rank.
    pub(crate) fstats: FaultStats,
    /// Reliable-layer outgoing sequence numbers per `(peer, tag)`.
    pub(crate) seq_out: HashMap<(Rank, Tag), u64>,
    /// Reliable-layer expected incoming sequence numbers per `(peer, tag)`.
    pub(crate) seq_in: HashMap<(Rank, Tag), u64>,
    /// Flight recorder (see [`crate::WorldConfig::with_recorder`]).
    /// Disabled by default: every emission site pays one `None` check and
    /// nothing else, and the recorder is purely passive — it never sends
    /// messages or touches either clock, so arming it cannot perturb
    /// virtual times or traces.
    pub(crate) recorder: obs::Recorder,
    /// The in-flight metrics plane's per-rank sketch, armed exactly when
    /// the recorder is (so all ranks agree on whether snapshot reductions
    /// happen). `None` keeps every metric hook on a one-branch zero-cost
    /// path. The sketch shares the recorder's passivity contract: its
    /// *reduction* rides a dedicated out-of-band channel ([`Comm::OBS`])
    /// that never ticks the op counter, advances a clock, spends a fault
    /// coin, or touches [`ProcStats`] — see [`Proc::reduce_metrics_delta`].
    metrics: Option<Box<obs::MetricSet>>,
    /// The armed plan's compute-interval multiplier for this rank, cached
    /// at construction (1.0 unarmed or undegraded — [`Proc::compute`] pays
    /// one multiply either way).
    compute_scale: f64,
    /// Cumulative locally-consumed compute, in quantized nanoseconds of
    /// *effective* (degradation-scaled) interval time. Unlike the app
    /// clock — which the marker barrier synchronizes across ranks, hiding
    /// a straggler's slowness behind everyone's wait — this counter is
    /// strictly local, so per-marker deltas attribute slow compute to the
    /// rank that actually burned it. The health detector's "slow" signal.
    compute_ns: u64,
}

/// Base of the reserved tag space used by collective-internal messages.
/// Application tags must stay below this.
pub const COLLECTIVE_TAG_BASE: Tag = 1 << 30;

/// Tag of the metrics plane's snapshot reduction on [`Comm::OBS`].
/// Snapshot reductions run in lockstep (every participant folds the same
/// marker in the same program order) and mailbox matching is FIFO per
/// `(src, tag, comm)`, so a single tag can never cross-match rounds.
pub(crate) const OBS_REDUCE_TAG: Tag = 0;

impl Proc {
    pub(crate) fn new(rank: Rank, shared: Arc<Shared>, recorder: obs::Recorder) -> Self {
        let metrics = recorder
            .is_enabled()
            .then(|| Box::new(obs::MetricSet::new()));
        let compute_scale = shared
            .faults
            .as_ref()
            .map_or(1.0, |p| p.compute_scale(rank, shared.size));
        Proc {
            rank,
            shared,
            clock: VirtualClock::new(),
            coll_seq: HashMap::new(),
            stats: ProcStats::default(),
            tool_clock: VirtualClock::new(),
            op_count: 0,
            send_nonce: 0,
            fstats: FaultStats::default(),
            seq_out: HashMap::new(),
            seq_in: HashMap::new(),
            recorder,
            metrics,
            compute_scale,
            compute_ns: 0,
        }
    }

    /// This process's rank in the world.
    #[inline]
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// World size (number of ranks).
    #[inline]
    pub fn size(&self) -> usize {
        self.shared.size
    }

    /// Current virtual time of this rank.
    #[inline]
    pub fn now(&self) -> VirtualTime {
        self.clock.now()
    }

    /// The communication cost model in effect.
    pub fn cost_model(&self) -> CostModel {
        self.shared.cost
    }

    /// Accumulated communication statistics.
    pub fn stats(&self) -> ProcStats {
        self.stats
    }

    /// Current tool-clock time: the modeled critical path of tool work
    /// this rank has observed (communication, waits, and registered
    /// compute). See the field docs.
    pub fn tool_time(&self) -> f64 {
        self.tool_clock.now()
    }

    /// Advance the tool clock by `dt` seconds of measured tool
    /// computation (merging, clustering, signature work).
    pub fn tool_compute(&mut self, dt: f64) {
        self.tool_clock.advance(dt.max(0.0));
    }

    /// Simulate `dt` virtual seconds of computation.
    ///
    /// A degraded rank (straggler or heavy imbalance corner, see
    /// [`FaultPlan::compute_scale`]) consumes the scaled interval; the
    /// effective time is also accumulated into the strictly-local
    /// [`Proc::consumed_compute_ns`] counter.
    #[inline]
    pub fn compute(&mut self, dt: VirtualTime) {
        let dt = dt * self.compute_scale;
        self.compute_ns += (dt * 1e9) as u64;
        self.clock.advance(dt);
    }

    /// Cumulative *locally consumed* compute, in quantized nanoseconds of
    /// effective (degradation-scaled) interval time.
    ///
    /// The app clock cannot attribute slowness: blocking receives and the
    /// marker barrier drag every rank's clock up to the straggler's, so
    /// after each marker all clocks agree. This counter only ever moves in
    /// [`Proc::compute`], so per-marker deltas identify exactly which rank
    /// burned the time — the health detector's "slow" signal.
    #[inline]
    pub fn consumed_compute_ns(&self) -> u64 {
        self.compute_ns
    }

    /// Blocking buffered send (MPI_Send with an eager protocol: completes
    /// locally, the message is queued at the receiver).
    ///
    /// Panics if `dest` is out of range or the application tag intrudes on
    /// the reserved collective tag space.
    pub fn send(&mut self, dest: Rank, tag: Tag, comm: Comm, payload: &[u8]) {
        // Raw sends never ask for the drop fault: nothing above them would
        // retransmit, so a drop would just deadlock the receiver. Only the
        // reliable layer (which retransmits) opts in.
        self.send_faulty(dest, tag, comm, payload, false);
    }

    /// The real send path, with fault injection. Returns `true` if the
    /// message was delivered, `false` if the armed plan dropped it
    /// (possible only when `allow_drop` is set — the reliable layer's
    /// retransmission loop).
    ///
    /// Faults apply only to unreliable tool-plane traffic: `Comm::TOOL`
    /// messages below the collective tag space, excluding the reliable
    /// layer's ACK channel. Collective rounds and ACKs ride a solid
    /// transport — the recovery protocol needs ground to stand on — and
    /// the application plane stays clean so faulted runs keep comparable
    /// virtual times.
    pub(crate) fn send_faulty(
        &mut self,
        dest: Rank,
        tag: Tag,
        comm: Comm,
        payload: &[u8],
        allow_drop: bool,
    ) -> bool {
        assert!(
            dest < self.shared.size,
            "send to rank {dest} in world of {}",
            self.shared.size
        );
        self.tick_op();
        // Tool-internal traffic (PMPI-wrapper side channels: clustering
        // votes, trace shipping, marker sync) is free in *virtual* time:
        // the virtual clock models the application alone, while tool cost
        // is measured in real wall-clock. Without this split, instrumented
        // and uninstrumented runs would disagree on application time.
        let tool = comm == Comm::TOOL || comm == Comm::MARKER;
        let mut arrival = if tool {
            self.tool_clock.advance(self.shared.cost.overhead);
            self.tool_clock.now() + self.shared.cost.transfer(payload.len())
        } else {
            self.clock.advance(self.shared.cost.overhead);
            self.clock.now() + self.shared.cost.transfer(payload.len())
        };
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += payload.len();

        let mut body = None;
        let mut duplicate = false;
        if let Some(plan) = &self.shared.faults {
            let faultable =
                comm == Comm::TOOL && tag < COLLECTIVE_TAG_BASE && tag != crate::reliable::ACK_TAG;
            if faultable {
                let fate = plan.fate(self.rank, self.send_nonce);
                self.send_nonce += 1;
                let (vt, tt) = (self.clock.now(), self.tool_clock.now());
                let fired = |k: obs::FaultKind| obs::EventKind::Fault {
                    kind: k,
                    dest: dest as u64,
                    tag: tag as u64,
                };
                if fate.drop && allow_drop {
                    self.fstats.drops += 1;
                    self.recorder.emit(vt, tt, || fired(obs::FaultKind::Drop));
                    return false;
                }
                if fate.corrupt && !payload.is_empty() {
                    let mut bytes = payload.to_vec();
                    let idx = (fate.entropy as usize) % bytes.len();
                    // XOR with a non-zero mask so the flip is never a no-op.
                    bytes[idx] ^= 1 + ((fate.entropy >> 8) % 255) as u8;
                    self.fstats.corruptions += 1;
                    self.recorder
                        .emit(vt, tt, || fired(obs::FaultKind::Corrupt));
                    body = Some(bytes);
                }
                if fate.delay {
                    arrival += plan.delay_seconds;
                    self.fstats.delays += 1;
                    self.recorder.emit(vt, tt, || fired(obs::FaultKind::Delay));
                }
                if fate.duplicate {
                    self.fstats.duplicates += 1;
                    self.recorder
                        .emit(vt, tt, || fired(obs::FaultKind::Duplicate));
                    duplicate = true;
                }
            }
        }
        let body = body.unwrap_or_else(|| payload.to_vec());
        if duplicate {
            self.shared.mailboxes[dest].deliver(Envelope {
                src: self.rank,
                tag,
                comm,
                payload: body.clone(),
                arrival,
            });
        }
        self.shared.mailboxes[dest].deliver(Envelope {
            src: self.rank,
            tag,
            comm,
            payload: body,
            arrival,
        });
        self.shared.wake(dest);
        true
    }

    /// [`Proc::send`] without the op tick: clock movement, stats, and
    /// delivery are identical, but the operation counter does not advance,
    /// so the plan's crash fault cannot fire mid-call. Resilient-collective
    /// roots use this to make their reply fan-out crash-atomic: the root
    /// ticks once *before* the fan-out, so it either dies with no reply
    /// sent (every survivor observes the death and fails over together) or
    /// survives to send all of them — survivors can never see a
    /// half-distributed result. Only collective-internal (fault-exempt)
    /// tags ride this path, so skipping the fault coin is not a behavior
    /// change.
    pub(crate) fn send_no_tick(&mut self, dest: Rank, tag: Tag, comm: Comm, payload: &[u8]) {
        assert!(
            dest < self.shared.size,
            "send to rank {dest} in world of {}",
            self.shared.size
        );
        let tool = comm == Comm::TOOL || comm == Comm::MARKER;
        let arrival = if tool {
            self.tool_clock.advance(self.shared.cost.overhead);
            self.tool_clock.now() + self.shared.cost.transfer(payload.len())
        } else {
            self.clock.advance(self.shared.cost.overhead);
            self.clock.now() + self.shared.cost.transfer(payload.len())
        };
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += payload.len();
        self.shared.mailboxes[dest].deliver(Envelope {
            src: self.rank,
            tag,
            comm,
            payload: payload.to_vec(),
            arrival,
        });
        self.shared.wake(dest);
    }

    /// Seeded exponential backoff before a reliable-layer retransmission:
    /// advances the *tool* clock by `base * 2^min(attempt-1, cap)` scaled
    /// by a jitter factor in `[0.5, 1.5)` hashed from the fault-plan seed
    /// and the transfer coordinates. Virtual time only — retransmission
    /// storms back off in the model without costing wall time, and the
    /// delays are a pure function of `(seed, ranks, tag, attempt)` so
    /// armed runs stay bit-reproducible.
    pub(crate) fn retransmit_backoff(&mut self, dest: Rank, tag: Tag, attempt: u32) {
        let Some(plan) = &self.shared.faults else {
            return;
        };
        const BASE_S: f64 = 2e-6;
        const EXP_CAP: u32 = 10;
        let exp = attempt.saturating_sub(1).min(EXP_CAP);
        let mut h = plan.seed;
        for v in [self.rank as u64, dest as u64, tag as u64, attempt as u64] {
            h = crate::fault::splitmix64(h ^ v);
        }
        // Top 53 bits → uniform in [0, 1); shifted to [0.5, 1.5).
        let jitter = 0.5 + (h >> 11) as f64 / (1u64 << 53) as f64;
        self.tool_clock
            .advance(BASE_S * f64::from(1u32 << exp) * jitter);
    }

    /// Advance the operation counter and fire the plan's crash fault if
    /// this is the scheduled operation. A no-op (one branch) when no plan
    /// is armed.
    #[inline]
    pub(crate) fn tick_op(&mut self) {
        let Some(plan) = &self.shared.faults else {
            return;
        };
        let op = self.op_count;
        self.op_count += 1;
        if let Some(c) = plan.crash {
            if c.rank == self.rank && op == c.at_op {
                self.fstats.crashed = true;
                self.recorder
                    .emit(self.clock.now(), self.tool_clock.now(), || {
                        obs::EventKind::Crash { op }
                    });
                // Publish death BEFORE unwinding: sends are eager, so once
                // a peer observes this flag, everything this rank sent
                // before dying is already in the peer's mailbox.
                self.shared.dead[self.rank].store(true, Ordering::SeqCst);
                // Any parked peer might be blocked on this rank.
                self.shared.wake_all();
                std::panic::panic_any(InjectedCrash {
                    rank: self.rank,
                    op,
                });
            }
        }
    }

    /// Blocking matched receive. Synchronizes this rank's virtual clock
    /// with the message arrival time.
    ///
    /// If another rank panicked, this aborts (panics) instead of blocking
    /// forever.
    pub fn recv(&mut self, src: SrcSel, tag: TagSel, comm: Comm) -> RecvInfo {
        let env = self.recv_envelope(src, tag, comm);
        self.finish_recv(env, comm)
    }

    /// Blocking receive matching any rank in `srcs` on a fixed tag, in
    /// *arrival* order (FIFO per sender is preserved). The pipelined tree
    /// reduction is built on this: an interior rank takes whichever child
    /// trace lands first instead of blocking on a fixed child order, so
    /// merge work overlaps across tree levels. Restricting the match to
    /// `srcs` (rather than a plain wildcard) keeps a child's message for
    /// the *next* reduction on the same tag from being stolen.
    ///
    /// Clock accounting is **deferred**: dequeue order is a scheduling
    /// artifact, and syncing the virtual clock here would leak it into
    /// modeled time (breaking run-to-run determinism). The caller must
    /// invoke [`Proc::complete_recv`] with the returned arrival stamp once
    /// per message, in a deterministic order of its choosing. If another
    /// rank panicked, this aborts (panics) instead of blocking forever.
    pub fn recv_from_set(&mut self, srcs: &[Rank], tag: Tag, comm: Comm) -> PendingRecv {
        let deadline = self.hang_deadline();
        let env = if self.shared.sched.is_some() {
            loop {
                let epoch = self.sched_pre_wait();
                if let Some(env) =
                    self.shared.mailboxes[self.rank].try_recv_from_set(srcs, TagSel::Tag(tag), comm)
                {
                    break env;
                }
                self.abort_if_poisoned_or_stalled();
                self.check_hang(deadline, srcs.first().copied().unwrap_or(0), tag);
                self.sched_park(epoch, deadline);
            }
        } else {
            loop {
                if let Some(env) = self.shared.mailboxes[self.rank].recv_timeout_from_set(
                    srcs,
                    TagSel::Tag(tag),
                    comm,
                    50,
                ) {
                    break env;
                }
                if self.shared.poisoned.load(Ordering::SeqCst) {
                    panic!(
                        "world poisoned: another rank panicked while rank {} was receiving",
                        self.rank
                    );
                }
                self.check_hang(deadline, srcs.first().copied().unwrap_or(0), tag);
            }
        };
        PendingRecv {
            src: env.src,
            payload: env.payload,
            arrival: env.arrival,
        }
    }

    /// Apply the clock synchronization and accounting for a message taken
    /// with [`Proc::recv_from_set`]. Callers invoke this in a
    /// deterministic order (e.g. canonical child order in a tree
    /// reduction), which makes the modeled clocks independent of the
    /// host's actual message timing.
    pub fn complete_recv(&mut self, msg: &PendingRecv, comm: Comm) {
        self.tick_op();
        let tool = comm == Comm::TOOL || comm == Comm::MARKER;
        self.observe_recv_wait(tool, msg.arrival);
        if tool {
            self.tool_clock.sync_to(msg.arrival);
            self.tool_clock.advance(self.shared.cost.overhead);
        } else {
            self.clock.sync_to(msg.arrival);
            self.clock.advance(self.shared.cost.overhead);
        }
        self.stats.msgs_recvd += 1;
        self.stats.bytes_recvd += msg.payload.len();
    }

    /// Clock synchronization and accounting for a completed receive.
    fn finish_recv(&mut self, env: Envelope, comm: Comm) -> RecvInfo {
        self.tick_op();
        let tool = comm == Comm::TOOL || comm == Comm::MARKER;
        self.observe_recv_wait(tool, env.arrival);
        if tool {
            // Arrival is in the tool-clock domain: waiting for a late
            // sender (e.g. a merge partner still computing) shows up as
            // tool time, which is exactly the semantics of a blocked
            // PMPI-wrapper collective.
            self.tool_clock.sync_to(env.arrival);
            self.tool_clock.advance(self.shared.cost.overhead);
        } else {
            self.clock.sync_to(env.arrival);
            self.clock.advance(self.shared.cost.overhead);
        }
        self.stats.msgs_recvd += 1;
        self.stats.bytes_recvd += env.payload.len();
        RecvInfo {
            src: env.src,
            tag: env.tag,
            payload: env.payload,
        }
    }

    /// Record the modeled queue wait of a receive — how far ahead of this
    /// rank's clock the message's arrival stamp sits (0 when the message
    /// was already waiting). Read-only on the clocks; quantized to ns.
    #[inline]
    fn observe_recv_wait(&mut self, tool: bool, arrival: f64) {
        if self.metrics.is_some() {
            let now = if tool {
                self.tool_clock.now()
            } else {
                self.clock.now()
            };
            self.metric_observe(
                obs::HistId::RecvWaitNs,
                obs::metrics::ns_from_seconds(arrival - now),
            );
        }
    }

    /// Bounded-wait matched receive: like [`Proc::recv`] but gives up after
    /// `timeout_ms` of real time without a match, returning `None`.
    ///
    /// Replay engines use this: a receive whose matching send was dropped
    /// (endpoint transposed out of the world in a clustered trace) must
    /// not hang the replay forever.
    pub fn recv_timeout(
        &mut self,
        src: SrcSel,
        tag: TagSel,
        comm: Comm,
        timeout_ms: u64,
    ) -> Option<RecvInfo> {
        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(timeout_ms);
        if self.shared.sched.is_some() {
            loop {
                let epoch = self.sched_pre_wait();
                if let Some(env) = self.shared.mailboxes[self.rank].try_recv(src, tag, comm) {
                    self.clock.sync_to(env.arrival);
                    self.clock.advance(self.shared.cost.overhead);
                    self.stats.msgs_recvd += 1;
                    self.stats.bytes_recvd += env.payload.len();
                    return Some(RecvInfo {
                        src: env.src,
                        tag: env.tag,
                        payload: env.payload,
                    });
                }
                self.abort_if_poisoned_or_stalled();
                if std::time::Instant::now() >= deadline {
                    return None;
                }
                // A timed park never stalls the world: the scheduler
                // counts this task as self-waking.
                self.sched_park(epoch, Some(deadline));
            }
        }
        loop {
            let slice = 50.min(timeout_ms.max(1));
            if let Some(env) = self.shared.mailboxes[self.rank].recv_timeout(src, tag, comm, slice)
            {
                self.clock.sync_to(env.arrival);
                self.clock.advance(self.shared.cost.overhead);
                self.stats.msgs_recvd += 1;
                self.stats.bytes_recvd += env.payload.len();
                return Some(RecvInfo {
                    src: env.src,
                    tag: env.tag,
                    payload: env.payload,
                });
            }
            if self.shared.poisoned.load(Ordering::SeqCst) {
                panic!(
                    "world poisoned: another rank panicked while rank {} was receiving",
                    self.rank
                );
            }
            if std::time::Instant::now() >= deadline {
                return None;
            }
        }
    }

    /// Combined exchange: buffered send then blocking receive. Safe against
    /// head-on exchanges (both sides send first) because sends are eager.
    pub fn sendrecv(
        &mut self,
        dest: Rank,
        send_tag: Tag,
        payload: &[u8],
        src: SrcSel,
        recv_tag: TagSel,
        comm: Comm,
    ) -> RecvInfo {
        self.send(dest, send_tag, comm, payload);
        self.recv(src, recv_tag, comm)
    }

    /// Non-blocking probe for a matching message.
    pub fn probe(&self, src: SrcSel, tag: TagSel, comm: Comm) -> Option<(Rank, Tag, usize)> {
        self.shared.mailboxes[self.rank].probe(src, tag, comm)
    }

    /// Whether a fault plan is armed on this world.
    #[inline]
    pub fn faults_armed(&self) -> bool {
        self.shared.faults.is_some()
    }

    /// Simulated operations performed so far (the counter that drives
    /// [`crate::fault::CrashFault`] scheduling). Deterministic per rank,
    /// so a probe run can read off the op index of a marker boundary and
    /// a second run can schedule a crash exactly there.
    #[inline]
    pub fn op_count(&self) -> u64 {
        self.op_count
    }

    /// The armed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.shared.faults.as_ref()
    }

    /// This rank's fault/recovery tally so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.fstats
    }

    /// Whether the flight recorder is armed on this rank.
    #[inline]
    pub fn obs_enabled(&self) -> bool {
        self.recorder.is_enabled()
    }

    /// Record one flight-recorder event, stamped with both virtual clocks.
    /// `make` runs only when recording is armed — callers can build event
    /// payloads (allocate lead lists, format nothing) for free on ordinary
    /// runs.
    #[inline]
    pub fn record(&mut self, make: impl FnOnce() -> obs::EventKind) {
        self.recorder
            .emit(self.clock.now(), self.tool_clock.now(), make);
    }

    /// Events this rank's flight recorder has buffered so far (0 when
    /// disabled) — the journal high-water mark stored in checkpoints.
    #[inline]
    pub fn obs_len(&self) -> usize {
        self.recorder.len()
    }

    /// Surrender this rank's flight log (used by the world at join time;
    /// the log survives an injected crash because the unwind is caught
    /// outside the rank body).
    pub fn take_obs_log(&mut self) -> Option<obs::RankLog> {
        self.recorder.take_log()
    }

    /// Whether the in-flight metrics plane is armed on this rank (it is
    /// exactly when the recorder is, a world-wide property — so every
    /// rank agrees on whether snapshot reductions run).
    #[inline]
    pub fn metrics_enabled(&self) -> bool {
        self.metrics.is_some()
    }

    /// Bump a metrics counter. One branch and nothing else when disabled.
    #[inline]
    pub fn metric_add(&mut self, c: obs::Counter, n: u64) {
        if let Some(m) = &mut self.metrics {
            m.add(c, n);
        }
    }

    /// Record a value into a metrics histogram. One branch when disabled.
    #[inline]
    pub fn metric_observe(&mut self, h: obs::HistId, v: u64) {
        if let Some(m) = &mut self.metrics {
            m.observe(h, v);
        }
    }

    /// Record a duration (seconds, quantized to ns) into a histogram.
    #[inline]
    pub fn metric_observe_seconds(&mut self, h: obs::HistId, dt: f64) {
        if self.metrics.is_some() {
            self.metric_observe(h, obs::metrics::ns_from_seconds(dt));
        }
    }

    /// Drain this rank's metric delta since the previous drain, resetting
    /// the sketch to the merge identity. `None` when the plane is off.
    pub fn metrics_delta(&mut self) -> Option<obs::MetricSet> {
        self.metrics
            .as_mut()
            .map(|m| std::mem::replace(m.as_mut(), obs::MetricSet::new()))
    }

    /// Encode the current (undrained) metric sketch, for checkpoint
    /// capture. Unlike [`Proc::metrics_delta`] this does not reset the
    /// sketch, so peeking never perturbs the snapshot reductions. `None`
    /// when the plane is off.
    pub fn metrics_encode(&self) -> Option<Vec<u8>> {
        self.metrics.as_ref().map(|m| m.encode_with_count(1))
    }

    /// Reduce every participant's metric delta up a binary radix tree
    /// positioned over `participants` (ascending ranks; the caller passes
    /// the agreed alive set). Returns `Some((delta, contributors))` at the
    /// tree root — `participants[0]` — and `None` on every other rank and
    /// whenever the plane is off.
    ///
    /// This rides the out-of-band observability channel ([`Comm::OBS`]):
    /// direct mailbox delivery with **no** op tick, clock movement, stats,
    /// send nonce, or fault coin. That passivity is load-bearing — the
    /// metrics plane must observe the run it measures, not perturb it:
    /// arming the recorder may not change virtual times, traces, crash
    /// schedules, or fault coins (see
    /// `world::recorder_does_not_perturb_virtual_times`).
    ///
    /// Dead peers are handled like [`Proc::recv_or_dead`], with the same
    /// determinism argument (death flag published before unwinding, sends
    /// eager, final zero-timeout recheck): a child that died before its
    /// contribution deterministically drops its subtree's delta for this
    /// snapshot, nothing more.
    pub fn reduce_metrics_delta(&mut self, participants: &[Rank]) -> Option<(obs::MetricSet, u64)> {
        self.metrics.as_ref()?;
        let me = self.rank;
        let my_pos = participants.iter().position(|&r| r == me)?;
        let mut delta = self.metrics_delta().expect("metrics plane armed");
        let mut contributors = 1u64;
        let tree = crate::RadixTree::binary(participants.len());
        for child_pos in tree.children(my_pos) {
            let child = participants[child_pos];
            if let Some(bytes) = self.obs_recv_or_dead(child, OBS_REDUCE_TAG) {
                match obs::MetricSet::decode_with_count(&bytes) {
                    Ok((set, n)) => {
                        delta.merge(&set);
                        contributors += n;
                    }
                    Err(what) => panic!(
                        "rank {me}: malformed metrics frame from rank {child}: {what} \
                         (the OBS channel is fault-exempt, so this is a bug)"
                    ),
                }
            }
        }
        match tree.parent(my_pos) {
            Some(parent_pos) => {
                let frame = delta.encode_with_count(contributors);
                self.obs_send(participants[parent_pos], OBS_REDUCE_TAG, frame);
                None
            }
            None => Some((delta, contributors)),
        }
    }

    /// Out-of-band send on [`Comm::OBS`]: direct delivery, zero
    /// simulation-visible side effects (no op tick, no clock, no stats,
    /// no fault coin). The arrival stamp is 0 — nothing on this channel
    /// ever synchronizes a clock to it.
    fn obs_send(&mut self, dest: Rank, tag: Tag, payload: Vec<u8>) {
        self.shared.mailboxes[dest].deliver(Envelope {
            src: self.rank,
            tag,
            comm: Comm::OBS,
            payload,
            arrival: 0.0,
        });
        self.shared.wake(dest);
    }

    /// Out-of-band receive on [`Comm::OBS`] with dead-peer detection.
    /// Mirrors [`Proc::recv_or_dead`]'s loop but performs no accounting
    /// and records no events (peer death is *witnessed* by the regular
    /// planes; the metrics plane merely degrades).
    fn obs_recv_or_dead(&mut self, src: Rank, tag: Tag) -> Option<Vec<u8>> {
        let deadline = self.hang_deadline();
        if self.shared.sched.is_some() {
            loop {
                let epoch = self.sched_pre_wait();
                if let Some(env) = self.shared.mailboxes[self.rank].try_recv(
                    SrcSel::Rank(src),
                    TagSel::Tag(tag),
                    Comm::OBS,
                ) {
                    return Some(env.payload);
                }
                if self.shared.dead[src].load(Ordering::SeqCst) {
                    // Final recheck, same as recv_or_dead: flag-then-message
                    // races resolve deterministically because sends are eager.
                    return self.shared.mailboxes[self.rank]
                        .try_recv(SrcSel::Rank(src), TagSel::Tag(tag), Comm::OBS)
                        .map(|env| env.payload);
                }
                self.abort_if_poisoned_or_stalled();
                self.check_hang(deadline, src, tag);
                self.sched_park(epoch, deadline);
            }
        }
        loop {
            if let Some(env) = self.shared.mailboxes[self.rank].recv_timeout(
                SrcSel::Rank(src),
                TagSel::Tag(tag),
                Comm::OBS,
                5,
            ) {
                return Some(env.payload);
            }
            if self.shared.dead[src].load(Ordering::SeqCst) {
                // Final recheck, same as recv_or_dead: flag-then-message
                // races resolve deterministically because sends are eager.
                return self.shared.mailboxes[self.rank]
                    .recv_timeout(SrcSel::Rank(src), TagSel::Tag(tag), Comm::OBS, 0)
                    .map(|env| env.payload);
            }
            if self.shared.poisoned.load(Ordering::SeqCst) {
                panic!(
                    "world poisoned: another rank panicked while rank {} was receiving",
                    self.rank
                );
            }
            self.check_hang(deadline, src, tag);
        }
    }

    /// Ship an opaque blob to `dest` over the out-of-band observability
    /// plane ([`Comm::OBS`]): direct delivery with zero simulation-visible
    /// side effects — no op tick, no clock movement, no stats, no fault
    /// coin. The checkpoint/deputy replication protocol rides this channel
    /// so that arming checkpoints cannot perturb virtual times or traces.
    /// Tags must be ≥ 1 (tag 0 is reserved for the metrics reduction).
    pub fn obs_ship(&mut self, dest: Rank, tag: Tag, payload: Vec<u8>) {
        debug_assert!(tag != OBS_REDUCE_TAG, "OBS tag 0 is the metrics plane");
        self.obs_send(dest, tag, payload);
    }

    /// Receive a blob shipped with [`Proc::obs_ship`], giving up
    /// deterministically if `src` dies first (same flag-then-recheck
    /// argument as [`Proc::recv_or_dead`]). Performs no accounting.
    pub fn obs_collect_or_dead(&mut self, src: Rank, tag: Tag) -> Option<Vec<u8>> {
        debug_assert!(tag != OBS_REDUCE_TAG, "OBS tag 0 is the metrics plane");
        self.obs_recv_or_dead(src, tag)
    }

    /// Whether `rank` has died to an injected crash.
    pub fn is_dead(&self, rank: Rank) -> bool {
        self.shared.dead[rank].load(Ordering::SeqCst)
    }

    /// Blocking receive that gives up — deterministically — if the sender
    /// dies. Returns `None` only when `src` is dead *and* no matching
    /// message is pending.
    ///
    /// Determinism argument: the dying rank publishes its death flag
    /// before unwinding, and sends are eager (delivered synchronously in
    /// the sender's thread). So by the time this rank observes the flag,
    /// every message the dead rank sent before its crash point is already
    /// in the mailbox — one final zero-timeout recheck after seeing the
    /// flag therefore decides message-vs-death purely by whether the dead
    /// rank *reached* the send before its crash op, never by scheduling.
    pub fn recv_or_dead(&mut self, src: Rank, tag: Tag, comm: Comm) -> Option<RecvInfo> {
        let deadline = self.hang_deadline();
        if self.shared.sched.is_some() {
            loop {
                let epoch = self.sched_pre_wait();
                if let Some(env) = self.shared.mailboxes[self.rank].try_recv(
                    SrcSel::Rank(src),
                    TagSel::Tag(tag),
                    comm,
                ) {
                    return Some(self.finish_recv(env, comm));
                }
                if self.shared.dead[src].load(Ordering::SeqCst) {
                    // Final recheck: the flag may have been set between our
                    // last scan and now, with a message already delivered.
                    if let Some(env) = self.shared.mailboxes[self.rank].try_recv(
                        SrcSel::Rank(src),
                        TagSel::Tag(tag),
                        comm,
                    ) {
                        return Some(self.finish_recv(env, comm));
                    }
                    self.fstats.peer_deaths_seen += 1;
                    self.record(|| obs::EventKind::PeerDead { peer: src as u64 });
                    return None;
                }
                self.abort_if_poisoned_or_stalled();
                self.check_hang(deadline, src, tag);
                self.sched_park(epoch, deadline);
            }
        }
        loop {
            if let Some(env) = self.shared.mailboxes[self.rank].recv_timeout(
                SrcSel::Rank(src),
                TagSel::Tag(tag),
                comm,
                5,
            ) {
                return Some(self.finish_recv(env, comm));
            }
            if self.shared.dead[src].load(Ordering::SeqCst) {
                // Final recheck: the flag may have been set between our
                // last scan and now, with a message already delivered.
                if let Some(env) = self.shared.mailboxes[self.rank].recv_timeout(
                    SrcSel::Rank(src),
                    TagSel::Tag(tag),
                    comm,
                    0,
                ) {
                    return Some(self.finish_recv(env, comm));
                }
                self.fstats.peer_deaths_seen += 1;
                self.record(|| obs::EventKind::PeerDead { peer: src as u64 });
                return None;
            }
            if self.shared.poisoned.load(Ordering::SeqCst) {
                panic!(
                    "world poisoned: another rank panicked while rank {} was receiving",
                    self.rank
                );
            }
            self.check_hang(deadline, src, tag);
        }
    }

    /// Real-time deadline for armed-mode blocking loops, or `None` when no
    /// plan is armed (fault-free runs must never pay for a clock read).
    fn hang_deadline(&self) -> Option<Instant> {
        self.shared
            .faults
            .as_ref()
            .map(|p| Instant::now() + Duration::from_millis(p.hang_timeout_ms))
    }

    fn check_hang(&mut self, deadline: Option<Instant>, src: Rank, tag: Tag) {
        if let Some(d) = deadline {
            if Instant::now() >= d {
                let waited = self
                    .shared
                    .faults
                    .as_ref()
                    .map(|p| p.hang_timeout_ms)
                    .unwrap_or(0);
                self.fstats.timeouts += 1;
                self.record(|| obs::EventKind::Timeout {
                    peer: src as u64,
                    tag: tag as u64,
                    waited,
                });
                // A typed payload, not a bare string: the world harness
                // surfaces it via `panic_message`, and the chaos supervisor
                // keys restart-from-checkpoint on it (FAULTS.md "Recovery").
                std::panic::panic_any(crate::reliable::ProtocolError::Timeout {
                    rank: self.rank,
                    op: format!("recv src={src} tag={tag}"),
                    waited,
                });
            }
        }
    }

    /// Convenience: send a single u64 (little-endian).
    pub fn send_u64(&mut self, dest: Rank, tag: Tag, comm: Comm, value: u64) {
        self.send(dest, tag, comm, &value.to_le_bytes());
    }

    /// Convenience: receive a single u64.
    ///
    /// Panics if the matched message is not exactly 8 bytes — that is a
    /// protocol error worth failing loudly on.
    pub fn recv_u64(&mut self, src: SrcSel, tag: TagSel, comm: Comm) -> (Rank, u64) {
        let info = self.recv(src, tag, comm);
        let bytes: [u8; 8] = info
            .payload
            .as_slice()
            .try_into()
            .expect("recv_u64: payload is not 8 bytes");
        (info.src, u64::from_le_bytes(bytes))
    }

    /// Next collective sequence number on `comm`.
    pub(crate) fn next_coll_seq(&mut self, comm: Comm) -> u64 {
        let seq = self.coll_seq.entry(comm.0).or_insert(0);
        let cur = *seq;
        *seq += 1;
        cur
    }

    /// Tag for round `round` of collective instance `seq`. Stays inside the
    /// reserved space and disambiguates back-to-back collectives.
    pub(crate) fn coll_tag(seq: u64, round: u32) -> Tag {
        debug_assert!(round < 64, "collective with more than 64 rounds");
        COLLECTIVE_TAG_BASE + ((seq % 0xFFFF) as Tag) * 64 + round
    }

    fn recv_envelope(&mut self, src: SrcSel, tag: TagSel, comm: Comm) -> Envelope {
        let src_hint = match src {
            SrcSel::Rank(r) => r,
            SrcSel::Any => usize::MAX,
        };
        let tag_hint = match tag {
            TagSel::Tag(t) => t,
            TagSel::Any => 0,
        };
        if self.shared.sched.is_some() {
            // Event mode: check, park, re-check on wake. No polling — a
            // message delivery to this rank wakes the task directly.
            let deadline = self.hang_deadline();
            loop {
                let epoch = self.sched_pre_wait();
                if let Some(env) = self.shared.mailboxes[self.rank].try_recv(src, tag, comm) {
                    return env;
                }
                self.abort_if_poisoned_or_stalled();
                self.check_hang(deadline, src_hint, tag_hint);
                self.sched_park(epoch, deadline);
            }
        }
        // Thread mode (oracle): poll with a timeout so that a panic on any
        // rank unblocks everyone instead of deadlocking the whole world.
        let deadline = self.hang_deadline();
        loop {
            if let Some(env) = self.shared.mailboxes[self.rank].recv_timeout(src, tag, comm, 50) {
                return env;
            }
            if self.shared.poisoned.load(Ordering::SeqCst) {
                panic!(
                    "world poisoned: another rank panicked while rank {} was receiving",
                    self.rank
                );
            }
            self.check_hang(deadline, src_hint, tag_hint);
        }
    }

    /// Snapshot this rank's wake epoch ahead of a mailbox/flag re-check
    /// (see [`crate::sched::Sched::pre_wait`]). Thread mode never calls
    /// this.
    #[inline]
    fn sched_pre_wait(&self) -> u64 {
        self.shared
            .sched
            .as_ref()
            .expect("event scheduler armed")
            .pre_wait(self.rank)
    }

    /// Park this rank's task until a wake event (or `deadline`). The
    /// caller re-checks its wait condition on return; a timed-out park is
    /// surfaced by the caller's own deadline check on the next iteration.
    fn sched_park(&self, epoch: u64, deadline: Option<Instant>) {
        let s = self.shared.sched.as_ref().expect("event scheduler armed");
        // Park keyed by the later of the two clocks: the task's next
        // simulation-visible action cannot predate either one.
        let vtime = self.clock.now().max(self.tool_clock.now());
        s.park(self.rank, epoch, vtime, deadline);
    }

    /// Abort (panic) if the world is poisoned or the scheduler has proven
    /// it deadlocked. Event-mode blocks call this between the mailbox
    /// re-check and the park.
    fn abort_if_poisoned_or_stalled(&self) {
        if self.shared.poisoned.load(Ordering::SeqCst) {
            panic!(
                "world poisoned: another rank panicked while rank {} was receiving",
                self.rank
            );
        }
        if let Some(s) = &self.shared.sched {
            if s.stalled() {
                panic!(
                    "deadlock detected: rank {} is blocked with no running peers, \
                     no pending messages, and no timers — the world can never make progress",
                    self.rank
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coll_tags_in_reserved_space() {
        for seq in [0u64, 1, 1000, u64::MAX] {
            for round in [0u32, 1, 63] {
                let t = Proc::coll_tag(seq, round);
                assert!(t >= COLLECTIVE_TAG_BASE);
            }
        }
    }

    #[test]
    fn coll_tags_distinguish_rounds_and_seqs() {
        assert_ne!(Proc::coll_tag(0, 0), Proc::coll_tag(0, 1));
        assert_ne!(Proc::coll_tag(0, 0), Proc::coll_tag(1, 0));
    }
}
