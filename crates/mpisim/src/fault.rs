//! Deterministic, seed-driven fault injection.
//!
//! A [`FaultPlan`] armed on a [`crate::WorldConfig`] makes the simulated
//! network misbehave in reproducible ways: a chosen rank crashes at its
//! N-th simulated operation, and tool-plane point-to-point messages can be
//! dropped, duplicated, corrupted, or delayed. Every decision is a pure
//! function of `(plan seed, sender rank, per-sender message nonce)` — the
//! nonce counts messages in *sender program order* — so the same plan and
//! seed produce the same faults regardless of host thread scheduling.
//! That determinism is what lets the chaos tests demand bit-identical
//! degraded traces across runs.
//!
//! Scope: faults apply only to unreliable tool-plane traffic (see
//! [`crate::proc`]'s faultable predicate). Collective-internal rounds and
//! the reliable layer's ACK channel are exempt — corrupting those would
//! model a broken transport, not a lossy link, and the recovery protocol
//! itself must have somewhere solid to stand.

use std::fmt;

use crate::proc::Rank;

/// SplitMix64 mixing step: a high-quality 64-bit hash used for fault
/// coins. Inlined here so `mpisim` keeps an empty `[dependencies]` table.
#[inline]
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Crash a rank at its `at_op`-th simulated operation (sends, completed
/// receives, and barrier entries all count, including collective-internal
/// ones).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashFault {
    /// The rank to kill. Rank 0 is a legal victim: the checkpoint/deputy
    /// protocol (see FAULTS.md "Recovery") promotes a survivor to own the
    /// online trace when the root dies.
    pub rank: Rank,
    /// Operation index at which the crash fires (0-based: `at_op = 10`
    /// dies attempting its 11th operation).
    pub at_op: u64,
}

/// A deterministic fault schedule for one world run.
///
/// Per-mille knobs express probabilities in units of 1/1000 per message
/// (e.g. `corrupt_per_mille = 20` ⇒ 2% of faultable messages are
/// corrupted). All default to zero; a default plan with no crash injects
/// nothing but still arms the armed-mode code paths.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for all fault coins.
    pub seed: u64,
    /// Optional single-rank crash.
    pub crash: Option<CrashFault>,
    /// Per-mille chance a message send attempt is dropped (the sender's
    /// reliable layer observes the drop and retransmits; raw sends are
    /// never dropped because nothing would recover them).
    pub drop_per_mille: u16,
    /// Per-mille chance a delivered message has one payload byte flipped.
    pub corrupt_per_mille: u16,
    /// Per-mille chance a message is delivered twice.
    pub duplicate_per_mille: u16,
    /// Per-mille chance a message's modeled arrival is pushed out by
    /// [`FaultPlan::delay_seconds`].
    pub delay_per_mille: u16,
    /// Virtual-time penalty applied to delayed messages.
    pub delay_seconds: f64,
    /// Real-time backstop: when a plan is armed, blocking receive loops
    /// panic after this many milliseconds instead of hanging forever, so
    /// a buggy recovery protocol fails fast under test.
    pub hang_timeout_ms: u64,
}

impl FaultPlan {
    /// A plan with the given seed and no faults configured.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            crash: None,
            drop_per_mille: 0,
            corrupt_per_mille: 0,
            duplicate_per_mille: 0,
            delay_per_mille: 0,
            delay_seconds: 0.0,
            hang_timeout_ms: 30_000,
        }
    }

    /// Crash `rank` at its `at_op`-th simulated operation.
    ///
    /// Any rank is a legal victim, including rank 0: the resilient
    /// collectives fail over to the smallest surviving rank, and the
    /// Chameleon runtime promotes a deputy that restores the online trace
    /// from its checkpoint replica (see FAULTS.md "Recovery").
    pub fn crash_rank(mut self, rank: Rank, at_op: u64) -> Self {
        self.crash = Some(CrashFault { rank, at_op });
        self
    }

    /// Set the per-mille message drop rate.
    pub fn drop_per_mille(mut self, pm: u16) -> Self {
        self.drop_per_mille = pm.min(1000);
        self
    }

    /// Set the per-mille payload corruption rate.
    pub fn corrupt_per_mille(mut self, pm: u16) -> Self {
        self.corrupt_per_mille = pm.min(1000);
        self
    }

    /// Set the per-mille message duplication rate.
    pub fn duplicate_per_mille(mut self, pm: u16) -> Self {
        self.duplicate_per_mille = pm.min(1000);
        self
    }

    /// Set the per-mille delivery delay rate and the virtual-time penalty.
    pub fn delay(mut self, pm: u16, seconds: f64) -> Self {
        self.delay_per_mille = pm.min(1000);
        self.delay_seconds = seconds.max(0.0);
        self
    }

    /// Override the armed-mode hang backstop.
    pub fn hang_timeout_ms(mut self, ms: u64) -> Self {
        self.hang_timeout_ms = ms.max(1);
        self
    }

    /// Decide the fate of one message send attempt. Pure in
    /// `(self.seed, sender, nonce)`; callers tick `nonce` once per send
    /// attempt in sender program order.
    pub fn fate(&self, sender: Rank, nonce: u64) -> MessageFate {
        let h = splitmix64(self.seed ^ splitmix64(((sender as u64) << 32) ^ nonce));
        MessageFate {
            drop: (h % 1000) < self.drop_per_mille as u64,
            corrupt: ((h >> 10) % 1000) < self.corrupt_per_mille as u64,
            duplicate: ((h >> 20) % 1000) < self.duplicate_per_mille as u64,
            delay: ((h >> 30) % 1000) < self.delay_per_mille as u64,
            entropy: splitmix64(h),
        }
    }
}

/// The coin-flip outcome for one message send attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageFate {
    /// Discard the message instead of delivering it.
    pub drop: bool,
    /// Flip one payload byte.
    pub corrupt: bool,
    /// Deliver the message twice.
    pub duplicate: bool,
    /// Push the modeled arrival time out.
    pub delay: bool,
    /// Extra deterministic randomness (chooses which byte to corrupt).
    pub entropy: u64,
}

impl fmt::Display for FaultPlan {
    /// Renders the full plan — this is the reproduction recipe the chaos
    /// CI job uploads as a failure artifact.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "FaultPlan seed=0x{:016x}", self.seed)?;
        match self.crash {
            Some(c) => writeln!(f, "  crash: rank {} at op {}", c.rank, c.at_op)?,
            None => writeln!(f, "  crash: none")?,
        }
        writeln!(f, "  drop: {}/1000", self.drop_per_mille)?;
        writeln!(f, "  corrupt: {}/1000", self.corrupt_per_mille)?;
        writeln!(f, "  duplicate: {}/1000", self.duplicate_per_mille)?;
        writeln!(
            f,
            "  delay: {}/1000 (+{}s virtual)",
            self.delay_per_mille, self.delay_seconds
        )?;
        write!(f, "  hang timeout: {} ms", self.hang_timeout_ms)
    }
}

/// Per-rank tally of injected faults and recovery actions, reported in
/// [`crate::world::FaultyWorldReport`] (and readable even from a crashed
/// rank).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// This rank was killed by the plan's crash fault.
    pub crashed: bool,
    /// Send attempts the plan discarded (sender-side; each is followed by
    /// a retransmission from the reliable layer).
    pub drops: u64,
    /// Messages delivered twice.
    pub duplicates: u64,
    /// Messages delivered with a flipped payload byte.
    pub corruptions: u64,
    /// Messages whose arrival time was pushed out.
    pub delays: u64,
    /// Retransmissions performed by this rank's reliable send path
    /// (covers both observed drops and NACKed frames).
    pub retransmits: u64,
    /// NACKs this rank sent after CRC/framing failures.
    pub nacks_sent: u64,
    /// Times this rank observed a peer's death while waiting on it.
    pub peer_deaths_seen: u64,
    /// Hang-backstop firings: blocking receives that exceeded the plan's
    /// `hang_timeout_ms` and aborted with a typed
    /// [`crate::ProtocolError::Timeout`] instead of hanging forever.
    pub timeouts: u64,
}

/// Panic payload used for plan-injected crashes, so the world harness can
/// tell a scheduled death from a genuine bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedCrash {
    /// The rank that died.
    pub rank: Rank,
    /// The operation index at which it died.
    pub op: u64,
}

impl fmt::Display for InjectedCrash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected crash: rank {} at op {}", self.rank, self.op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fate_is_deterministic() {
        let plan = FaultPlan::new(0xC0FFEE)
            .drop_per_mille(100)
            .corrupt_per_mille(50)
            .duplicate_per_mille(25)
            .delay(10, 0.5);
        for sender in 0..8 {
            for nonce in 0..200 {
                assert_eq!(plan.fate(sender, nonce), plan.fate(sender, nonce));
            }
        }
    }

    #[test]
    fn fate_rates_roughly_honored() {
        let plan = FaultPlan::new(7).drop_per_mille(100).corrupt_per_mille(500);
        let n = 20_000u64;
        let (mut drops, mut corrupts) = (0u64, 0u64);
        for nonce in 0..n {
            let f = plan.fate(3, nonce);
            drops += f.drop as u64;
            corrupts += f.corrupt as u64;
        }
        let drop_rate = drops as f64 / n as f64;
        let corrupt_rate = corrupts as f64 / n as f64;
        assert!((0.08..0.12).contains(&drop_rate), "drop rate {drop_rate}");
        assert!(
            (0.45..0.55).contains(&corrupt_rate),
            "corrupt rate {corrupt_rate}"
        );
    }

    #[test]
    fn fate_differs_across_seeds_and_senders() {
        let a = FaultPlan::new(1).drop_per_mille(500);
        let b = FaultPlan::new(2).drop_per_mille(500);
        let diff_seed = (0..64).filter(|&n| a.fate(0, n) != b.fate(0, n)).count();
        let diff_sender = (0..64).filter(|&n| a.fate(0, n) != a.fate(1, n)).count();
        assert!(diff_seed > 10, "seeds must decorrelate coins");
        assert!(diff_sender > 10, "senders must decorrelate coins");
    }

    #[test]
    fn zero_rates_inject_nothing() {
        let plan = FaultPlan::new(99);
        for nonce in 0..1000 {
            let f = plan.fate(1, nonce);
            assert!(!f.drop && !f.corrupt && !f.duplicate && !f.delay);
        }
    }

    #[test]
    fn crashing_rank_zero_accepted() {
        // The root is no longer immortal: deputy replication + failover
        // (FAULTS.md "Recovery") make rank 0 a legal crash victim.
        let plan = FaultPlan::new(0).crash_rank(0, 5);
        assert_eq!(plan.crash, Some(CrashFault { rank: 0, at_op: 5 }));
    }

    #[test]
    fn plan_display_is_a_repro_recipe() {
        let plan = FaultPlan::new(0xAB).crash_rank(3, 42).corrupt_per_mille(20);
        let s = plan.to_string();
        assert!(s.contains("seed=0x00000000000000ab"));
        assert!(s.contains("rank 3 at op 42"));
        assert!(s.contains("corrupt: 20/1000"));
    }
}
