//! Deterministic, seed-driven fault injection.
//!
//! A [`FaultPlan`] armed on a [`crate::WorldConfig`] makes the simulated
//! network misbehave in reproducible ways: a chosen rank crashes at its
//! N-th simulated operation, and tool-plane point-to-point messages can be
//! dropped, duplicated, corrupted, or delayed. Every decision is a pure
//! function of `(plan seed, sender rank, per-sender message nonce)` — the
//! nonce counts messages in *sender program order* — so the same plan and
//! seed produce the same faults regardless of host thread scheduling.
//! That determinism is what lets the chaos tests demand bit-identical
//! degraded traces across runs.
//!
//! Scope: faults apply only to unreliable tool-plane traffic (see
//! [`crate::proc`]'s faultable predicate). Collective-internal rounds and
//! the reliable layer's ACK channel are exempt — corrupting those would
//! model a broken transport, not a lossy link, and the recovery protocol
//! itself must have somewhere solid to stand.

use std::fmt;

use crate::proc::Rank;

/// SplitMix64 mixing step: a high-quality 64-bit hash used for fault
/// coins. Inlined here so `mpisim` keeps an empty `[dependencies]` table.
#[inline]
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Crash a rank at its `at_op`-th simulated operation (sends, completed
/// receives, and barrier entries all count, including collective-internal
/// ones).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashFault {
    /// The rank to kill. Rank 0 is a legal victim: the checkpoint/deputy
    /// protocol (see FAULTS.md "Recovery") promotes a survivor to own the
    /// online trace when the root dies.
    pub rank: Rank,
    /// Operation index at which the crash fires (0-based: `at_op = 10`
    /// dies attempting its 11th operation).
    pub at_op: u64,
}

/// A progressively-ramping lossy link targeting one sender's outgoing
/// faultable messages: every `window` send nonces past `start_nonce`, the
/// effective drop and delay rates step up by the configured increments
/// (capped at 1000‰). The time axis is the sender's own message nonce —
/// the same pure coordinate [`FaultPlan::fate`] already hashes — so a
/// ramp is deterministic per seed and attributable to exactly one rank,
/// which is what lets the health plane score detected-vs-injected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkRamp {
    /// The rank whose *outgoing* sends degrade.
    pub target: Rank,
    /// Nonce at which the ramp starts (rates below it are the plan's
    /// base rates).
    pub start_nonce: u64,
    /// Nonces per ramp step (>= 1).
    pub window: u64,
    /// Drop-rate increment per window, in per-mille.
    pub drop_step_per_mille: u16,
    /// Delay-rate increment per window, in per-mille.
    pub delay_step_per_mille: u16,
}

/// A deterministic fault schedule for one world run.
///
/// Per-mille knobs express probabilities in units of 1/1000 per message
/// (e.g. `corrupt_per_mille = 20` ⇒ 2% of faultable messages are
/// corrupted). All default to zero; a default plan with no crash injects
/// nothing but still arms the armed-mode code paths.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for all fault coins.
    pub seed: u64,
    /// Optional single-rank crash.
    pub crash: Option<CrashFault>,
    /// Per-mille chance a message send attempt is dropped (the sender's
    /// reliable layer observes the drop and retransmits; raw sends are
    /// never dropped because nothing would recover them).
    pub drop_per_mille: u16,
    /// Per-mille chance a delivered message has one payload byte flipped.
    pub corrupt_per_mille: u16,
    /// Per-mille chance a message is delivered twice.
    pub duplicate_per_mille: u16,
    /// Per-mille chance a message's modeled arrival is pushed out by
    /// [`FaultPlan::delay_seconds`].
    pub delay_per_mille: u16,
    /// Virtual-time penalty applied to delayed messages.
    pub delay_seconds: f64,
    /// Real-time backstop: when a plan is armed, blocking receive loops
    /// panic after this many milliseconds instead of hanging forever, so
    /// a buggy recovery protocol fails fast under test.
    pub hang_timeout_ms: u64,
    /// Per-rank straggler slowdown factors on compute intervals
    /// (`factor > 1.0` slows the rank; absent ranks run at 1.0).
    pub stragglers: Vec<(Rank, f64)>,
    /// Topology-skewed load imbalance: the heavy corner of the row-major
    /// decomposition — the top [`FaultPlan::imbalance_heavy`] ranks — gets
    /// its compute intervals scaled by `1 + imbalance_skew`.
    pub imbalance_skew: f64,
    /// Optional progressively-ramping lossy link.
    pub ramp: Option<LinkRamp>,
}

impl FaultPlan {
    /// A plan with the given seed and no faults configured.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            crash: None,
            drop_per_mille: 0,
            corrupt_per_mille: 0,
            duplicate_per_mille: 0,
            delay_per_mille: 0,
            delay_seconds: 0.0,
            hang_timeout_ms: 30_000,
            stragglers: Vec::new(),
            imbalance_skew: 0.0,
            ramp: None,
        }
    }

    /// Crash `rank` at its `at_op`-th simulated operation.
    ///
    /// Any rank is a legal victim, including rank 0: the resilient
    /// collectives fail over to the smallest surviving rank, and the
    /// Chameleon runtime promotes a deputy that restores the online trace
    /// from its checkpoint replica (see FAULTS.md "Recovery").
    pub fn crash_rank(mut self, rank: Rank, at_op: u64) -> Self {
        self.crash = Some(CrashFault { rank, at_op });
        self
    }

    /// Set the per-mille message drop rate.
    pub fn drop_per_mille(mut self, pm: u16) -> Self {
        self.drop_per_mille = pm.min(1000);
        self
    }

    /// Set the per-mille payload corruption rate.
    pub fn corrupt_per_mille(mut self, pm: u16) -> Self {
        self.corrupt_per_mille = pm.min(1000);
        self
    }

    /// Set the per-mille message duplication rate.
    pub fn duplicate_per_mille(mut self, pm: u16) -> Self {
        self.duplicate_per_mille = pm.min(1000);
        self
    }

    /// Set the per-mille delivery delay rate and the virtual-time penalty.
    pub fn delay(mut self, pm: u16, seconds: f64) -> Self {
        self.delay_per_mille = pm.min(1000);
        self.delay_seconds = seconds.max(0.0);
        self
    }

    /// Override the armed-mode hang backstop.
    pub fn hang_timeout_ms(mut self, ms: u64) -> Self {
        self.hang_timeout_ms = ms.max(1);
        self
    }

    /// Slow `rank`'s compute intervals by `factor` (clamped to >= 1.0).
    pub fn straggle_rank(mut self, rank: Rank, factor: f64) -> Self {
        self.stragglers.retain(|(r, _)| *r != rank);
        self.stragglers.push((rank, factor.max(1.0)));
        self
    }

    /// Scale the heavy-corner ranks' compute intervals by `1 + skew`.
    pub fn imbalance(mut self, skew: f64) -> Self {
        self.imbalance_skew = skew.max(0.0);
        self
    }

    /// Arm a progressively-ramping drop/delay link on `target`'s outgoing
    /// sends: starting at `start_nonce`, every `window` nonces the
    /// effective rates step up by the given per-mille increments. The
    /// virtual-time penalty of delayed messages is the plan's
    /// [`FaultPlan::delay_seconds`] (set via [`FaultPlan::delay`]).
    pub fn ramp_link(
        mut self,
        target: Rank,
        start_nonce: u64,
        window: u64,
        drop_step_per_mille: u16,
        delay_step_per_mille: u16,
    ) -> Self {
        self.ramp = Some(LinkRamp {
            target,
            start_nonce,
            window: window.max(1),
            drop_step_per_mille,
            delay_step_per_mille,
        });
        self
    }

    /// How many heavy-corner ranks an imbalance skew degrades in a world
    /// of `size` ranks: the top quartile (rounded up) of the row-major
    /// order, modeling the loaded corner of a skewed decomposition.
    pub fn imbalance_heavy(size: usize) -> usize {
        size.div_ceil(4)
    }

    /// The pure compute-interval multiplier this plan applies to `rank`
    /// in a world of `size` ranks (1.0 when no degradation targets it).
    pub fn compute_scale(&self, rank: Rank, size: usize) -> f64 {
        let mut scale = 1.0;
        if let Some((_, f)) = self.stragglers.iter().find(|(r, _)| *r == rank) {
            scale *= f;
        }
        if self.imbalance_skew > 0.0 && rank + Self::imbalance_heavy(size) >= size {
            scale *= 1.0 + self.imbalance_skew;
        }
        scale
    }

    /// The effective (drop, delay) per-mille rates for `sender`'s send
    /// attempt `nonce`, base rates plus any ramp steps, capped at 1000.
    pub fn effective_rates(&self, sender: Rank, nonce: u64) -> (u16, u16) {
        let (mut drop, mut delay) = (self.drop_per_mille, self.delay_per_mille);
        if let Some(r) = self.ramp {
            if sender == r.target && nonce >= r.start_nonce {
                let steps = ((nonce - r.start_nonce) / r.window).min(1000);
                drop = (drop as u64 + steps * r.drop_step_per_mille as u64).min(1000) as u16;
                delay = (delay as u64 + steps * r.delay_step_per_mille as u64).min(1000) as u16;
            }
        }
        (drop, delay)
    }

    /// The ranks this plan degrades (stragglers, the ramp target, and the
    /// imbalance heavy corner), ascending and deduplicated — the ground
    /// truth the matrix runner scores anomaly detection against.
    pub fn degraded_ranks(&self, size: usize) -> Vec<Rank> {
        let mut out: Vec<Rank> = self.stragglers.iter().map(|&(r, _)| r).collect();
        if self.imbalance_skew > 0.0 {
            out.extend((size - Self::imbalance_heavy(size).min(size))..size);
        }
        if let Some(r) = self.ramp {
            out.push(r.target);
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Does this plan degrade anything (beyond the base lossy link)?
    pub fn degrades(&self) -> bool {
        !self.stragglers.is_empty() || self.imbalance_skew > 0.0 || self.ramp.is_some()
    }

    /// Decide the fate of one message send attempt. Pure in
    /// `(self.seed, sender, nonce)`; callers tick `nonce` once per send
    /// attempt in sender program order. Ramped links change the *rates*
    /// the coins are compared against, never the hash itself, so arming a
    /// ramp perturbs no coin outside its target window.
    pub fn fate(&self, sender: Rank, nonce: u64) -> MessageFate {
        let h = splitmix64(self.seed ^ splitmix64(((sender as u64) << 32) ^ nonce));
        let (drop_pm, delay_pm) = self.effective_rates(sender, nonce);
        MessageFate {
            drop: (h % 1000) < drop_pm as u64,
            corrupt: ((h >> 10) % 1000) < self.corrupt_per_mille as u64,
            duplicate: ((h >> 20) % 1000) < self.duplicate_per_mille as u64,
            delay: ((h >> 30) % 1000) < delay_pm as u64,
            entropy: splitmix64(h),
        }
    }
}

/// The coin-flip outcome for one message send attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageFate {
    /// Discard the message instead of delivering it.
    pub drop: bool,
    /// Flip one payload byte.
    pub corrupt: bool,
    /// Deliver the message twice.
    pub duplicate: bool,
    /// Push the modeled arrival time out.
    pub delay: bool,
    /// Extra deterministic randomness (chooses which byte to corrupt).
    pub entropy: u64,
}

impl fmt::Display for FaultPlan {
    /// Renders the full plan — this is the reproduction recipe the chaos
    /// CI job uploads as a failure artifact.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "FaultPlan seed=0x{:016x}", self.seed)?;
        match self.crash {
            Some(c) => writeln!(f, "  crash: rank {} at op {}", c.rank, c.at_op)?,
            None => writeln!(f, "  crash: none")?,
        }
        writeln!(f, "  drop: {}/1000", self.drop_per_mille)?;
        writeln!(f, "  corrupt: {}/1000", self.corrupt_per_mille)?;
        writeln!(f, "  duplicate: {}/1000", self.duplicate_per_mille)?;
        writeln!(
            f,
            "  delay: {}/1000 (+{}s virtual)",
            self.delay_per_mille, self.delay_seconds
        )?;
        if !self.stragglers.is_empty() {
            let mut sorted = self.stragglers.clone();
            sorted.sort_by_key(|s| s.0);
            write!(f, "  stragglers:")?;
            for (rank, factor) in sorted {
                write!(f, " rank {rank} x{factor}")?;
            }
            writeln!(f)?;
        }
        if self.imbalance_skew > 0.0 {
            writeln!(
                f,
                "  imbalance: heavy corner x{}",
                1.0 + self.imbalance_skew
            )?;
        }
        if let Some(r) = self.ramp {
            writeln!(
                f,
                "  ramp: rank {} from nonce {} every {} (+{}/1000 drop, +{}/1000 delay)",
                r.target, r.start_nonce, r.window, r.drop_step_per_mille, r.delay_step_per_mille
            )?;
        }
        write!(f, "  hang timeout: {} ms", self.hang_timeout_ms)
    }
}

/// Per-rank tally of injected faults and recovery actions, reported in
/// [`crate::world::FaultyWorldReport`] (and readable even from a crashed
/// rank).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// This rank was killed by the plan's crash fault.
    pub crashed: bool,
    /// Send attempts the plan discarded (sender-side; each is followed by
    /// a retransmission from the reliable layer).
    pub drops: u64,
    /// Messages delivered twice.
    pub duplicates: u64,
    /// Messages delivered with a flipped payload byte.
    pub corruptions: u64,
    /// Messages whose arrival time was pushed out.
    pub delays: u64,
    /// Retransmissions performed by this rank's reliable send path
    /// (covers both observed drops and NACKed frames).
    pub retransmits: u64,
    /// NACKs this rank sent after CRC/framing failures.
    pub nacks_sent: u64,
    /// Times this rank observed a peer's death while waiting on it.
    pub peer_deaths_seen: u64,
    /// Hang-backstop firings: blocking receives that exceeded the plan's
    /// `hang_timeout_ms` and aborted with a typed
    /// [`crate::ProtocolError::Timeout`] instead of hanging forever.
    pub timeouts: u64,
}

/// Panic payload used for plan-injected crashes, so the world harness can
/// tell a scheduled death from a genuine bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedCrash {
    /// The rank that died.
    pub rank: Rank,
    /// The operation index at which it died.
    pub op: u64,
}

impl fmt::Display for InjectedCrash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected crash: rank {} at op {}", self.rank, self.op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fate_is_deterministic() {
        let plan = FaultPlan::new(0xC0FFEE)
            .drop_per_mille(100)
            .corrupt_per_mille(50)
            .duplicate_per_mille(25)
            .delay(10, 0.5);
        for sender in 0..8 {
            for nonce in 0..200 {
                assert_eq!(plan.fate(sender, nonce), plan.fate(sender, nonce));
            }
        }
    }

    #[test]
    fn fate_rates_roughly_honored() {
        let plan = FaultPlan::new(7).drop_per_mille(100).corrupt_per_mille(500);
        let n = 20_000u64;
        let (mut drops, mut corrupts) = (0u64, 0u64);
        for nonce in 0..n {
            let f = plan.fate(3, nonce);
            drops += f.drop as u64;
            corrupts += f.corrupt as u64;
        }
        let drop_rate = drops as f64 / n as f64;
        let corrupt_rate = corrupts as f64 / n as f64;
        assert!((0.08..0.12).contains(&drop_rate), "drop rate {drop_rate}");
        assert!(
            (0.45..0.55).contains(&corrupt_rate),
            "corrupt rate {corrupt_rate}"
        );
    }

    #[test]
    fn fate_differs_across_seeds_and_senders() {
        let a = FaultPlan::new(1).drop_per_mille(500);
        let b = FaultPlan::new(2).drop_per_mille(500);
        let diff_seed = (0..64).filter(|&n| a.fate(0, n) != b.fate(0, n)).count();
        let diff_sender = (0..64).filter(|&n| a.fate(0, n) != a.fate(1, n)).count();
        assert!(diff_seed > 10, "seeds must decorrelate coins");
        assert!(diff_sender > 10, "senders must decorrelate coins");
    }

    #[test]
    fn zero_rates_inject_nothing() {
        let plan = FaultPlan::new(99);
        for nonce in 0..1000 {
            let f = plan.fate(1, nonce);
            assert!(!f.drop && !f.corrupt && !f.duplicate && !f.delay);
        }
    }

    #[test]
    fn crashing_rank_zero_accepted() {
        // The root is no longer immortal: deputy replication + failover
        // (FAULTS.md "Recovery") make rank 0 a legal crash victim.
        let plan = FaultPlan::new(0).crash_rank(0, 5);
        assert_eq!(plan.crash, Some(CrashFault { rank: 0, at_op: 5 }));
    }

    #[test]
    fn plan_display_is_a_repro_recipe() {
        let plan = FaultPlan::new(0xAB).crash_rank(3, 42).corrupt_per_mille(20);
        let s = plan.to_string();
        assert!(s.contains("seed=0x00000000000000ab"));
        assert!(s.contains("rank 3 at op 42"));
        assert!(s.contains("corrupt: 20/1000"));
        let degraded = FaultPlan::new(1)
            .straggle_rank(2, 4.0)
            .imbalance(0.5)
            .ramp_link(1, 100, 50, 10, 5)
            .to_string();
        assert!(degraded.contains("rank 2 x4"));
        assert!(degraded.contains("heavy corner x1.5"));
        assert!(degraded.contains("ramp: rank 1 from nonce 100 every 50"));
    }

    #[test]
    fn compute_scale_composes_and_defaults_to_unity() {
        let plan = FaultPlan::new(0);
        for rank in 0..8 {
            assert_eq!(plan.compute_scale(rank, 8), 1.0);
        }
        let plan = FaultPlan::new(0).straggle_rank(3, 5.0).imbalance(0.5);
        assert_eq!(plan.compute_scale(0, 8), 1.0);
        assert_eq!(plan.compute_scale(3, 8), 5.0);
        // imbalance_heavy(8) = 2: ranks 6 and 7 are the heavy corner.
        assert_eq!(plan.compute_scale(5, 8), 1.0);
        assert_eq!(plan.compute_scale(6, 8), 1.5);
        assert_eq!(plan.compute_scale(7, 8), 1.5);
        // A straggler in the heavy corner compounds.
        let both = FaultPlan::new(0).straggle_rank(7, 2.0).imbalance(0.5);
        assert_eq!(both.compute_scale(7, 8), 3.0);
    }

    #[test]
    fn ramp_escalates_only_its_target_past_start() {
        let plan = FaultPlan::new(9).ramp_link(2, 100, 50, 10, 5);
        assert_eq!(plan.effective_rates(2, 0), (0, 0));
        assert_eq!(plan.effective_rates(2, 99), (0, 0));
        assert_eq!(plan.effective_rates(2, 100), (0, 0), "step 0 adds nothing");
        assert_eq!(plan.effective_rates(2, 150), (10, 5));
        assert_eq!(plan.effective_rates(2, 600), (100, 50));
        // Other senders never ramp.
        assert_eq!(plan.effective_rates(1, 600), (0, 0));
        // Rates cap at 1000 per mille.
        assert_eq!(plan.effective_rates(2, 100 + 50 * 5000), (1000, 1000));
        // The coin hash is rate-independent: corrupt/duplicate coins agree
        // with an unramped plan at every nonce.
        let base = FaultPlan::new(9);
        for nonce in 0..2000 {
            let a = plan.fate(2, nonce);
            let b = base.fate(2, nonce);
            assert_eq!(a.corrupt, b.corrupt);
            assert_eq!(a.duplicate, b.duplicate);
            assert_eq!(a.entropy, b.entropy);
        }
    }

    #[test]
    fn fate_coins_are_pairwise_independent() {
        // The four fate coins slice different windows of one splitmix64
        // hash. If those windows correlated, compound fault rates would
        // silently deviate from the product of the marginals (a dropped
        // message would, say, also tend to be corrupted on retransmit),
        // biasing every chaos and degraded suite. Check all six coin
        // pairs with a 2x2 chi-square statistic across 10 seeds: under
        // independence chi2 ~ chi2(1), so 20 would be an astronomical
        // outlier (p < 1e-5) — and the whole check is deterministic, so
        // it either always passes or flags a real coin correlation.
        let n = 20_000u64;
        for seed in 0..10u64 {
            let plan = FaultPlan::new(splitmix64(seed))
                .drop_per_mille(200)
                .corrupt_per_mille(200)
                .duplicate_per_mille(200)
                .delay(200, 0.1);
            let mut joint = [[0u64; 4]; 4]; // joint[i][j]: coins i and j both up
            let mut marginal = [0u64; 4];
            for nonce in 0..n {
                let f = plan.fate(1, nonce);
                let coins = [f.drop, f.corrupt, f.duplicate, f.delay];
                for i in 0..4 {
                    marginal[i] += coins[i] as u64;
                    for j in (i + 1)..4 {
                        joint[i][j] += (coins[i] && coins[j]) as u64;
                    }
                }
            }
            for i in 0..4 {
                for j in (i + 1)..4 {
                    // 2x2 contingency table: a = both, b/c = one only,
                    // d = neither; chi2 = n(ad-bc)^2 / (row/col products).
                    let a = joint[i][j] as f64;
                    let b = marginal[i] as f64 - a;
                    let c = marginal[j] as f64 - a;
                    let d = n as f64 - a - b - c;
                    let chi2 = n as f64 * (a * d - b * c).powi(2)
                        / ((a + b) * (c + d) * (a + c) * (b + d));
                    assert!(
                        chi2 < 20.0,
                        "coins {i} and {j} correlate under seed {seed}: chi2 = {chi2:.2} \
                         (joint {a}, marginals {} / {})",
                        marginal[i],
                        marginal[j]
                    );
                }
            }
        }
    }

    #[test]
    fn degraded_ranks_is_sorted_ground_truth() {
        assert!(FaultPlan::new(0).degraded_ranks(8).is_empty());
        assert!(!FaultPlan::new(0).degrades());
        let plan = FaultPlan::new(0)
            .straggle_rank(7, 3.0)
            .imbalance(0.4)
            .ramp_link(1, 0, 10, 5, 5);
        assert!(plan.degrades());
        // Stragglers(7) + ramp(1) + heavy corner of 8 (6, 7), deduped.
        assert_eq!(plan.degraded_ranks(8), vec![1, 6, 7]);
    }
}
