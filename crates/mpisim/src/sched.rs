//! Cooperative event-driven rank scheduler.
//!
//! The original execution model ran every rank as a free-running OS
//! thread: a blocked receive spun on a 50 ms condvar poll, and the host
//! kernel decided which of P runnable threads to run next. That model
//! tops out at a few hundred ranks — P threads all polling their
//! mailboxes thrash the host scheduler long before memory runs out — and
//! it wastes a poll interval every time a message lands.
//!
//! This module replaces it with a cooperative scheduler driven by the
//! simulation's own virtual-clock model:
//!
//! * **Task = rank, continuation = parked thread.** Each rank still owns
//!   a (small-stack) OS thread, but the thread is just the storage for
//!   the task's continuation: rank programs keep their natural blocking
//!   style, and a blocked task costs nothing — it parks on its own
//!   condvar with **no polling** until the scheduler wakes it for an
//!   event that can actually unblock it.
//! * **Bounded worker pool.** At most `workers` tasks hold a *run
//!   permit* at any instant. A task runs until it blocks (recv,
//!   collective round, reliable-protocol wait, OBS collect), releases
//!   its permit at the block point, and the freed permit goes to the
//!   next runnable task. `workers = 1` yields fully sequential,
//!   deterministic dispatch; results are invariant under the pool size
//!   by construction (see the determinism notes below).
//! * **Virtual-clock ready heap.** Runnable tasks are dispatched in
//!   ascending order of their virtual timestamp at the moment they
//!   became runnable, ties broken by rank ([`ReadyQueue`]). The heap is
//!   a dispatch-order heuristic (run the event that is earliest in
//!   simulated time first), *not* a correctness requirement: every
//!   simulation-visible quantity — virtual clocks, traces, journals,
//!   fault coins, survivor sets — is already scheduler-invariant
//!   (arrival-stamped messages, deferred clock accounting, eager sends
//!   with death flags published before unwinding), which is what makes
//!   thread-vs-event byte-identity testable at all.
//! * **Event wakeups, not polls.** Message delivery wakes exactly the
//!   destination task; crash-death and world-poison flags wake every
//!   parked task. A per-rank wake *epoch* closes the classic check-then-
//!   park race: a waiter records the epoch, re-checks its mailbox, and
//!   parks only if no wake arrived in between.
//! * **Stall detection.** If no task is running, none is ready, and no
//!   parked task holds a real-time deadline, the world can never make
//!   progress again. The scheduler flags the stall and wakes everyone;
//!   each waiter panics with a diagnostic instead of hanging CI. (The
//!   thread scheduler would spin on its poll loops forever.)
//!
//! The pre-refactor model is preserved behind
//! [`SchedMode::Threads`](crate::SchedMode) as the differential-testing
//! oracle: `tests/sched_differential.rs` runs both schedulers over the
//! same seed × workload × fault grid and asserts byte-identical
//! journals, traces, stats, and survivor sets.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Instant;

use crate::proc::Rank;
use crate::time::VirtualTime;

/// Which execution engine a [`crate::World`] runs its ranks on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedMode {
    /// Cooperative event-driven scheduler (the default): rank tasks
    /// multiplexed over a bounded worker pool, parked without polling,
    /// dispatched in virtual-clock order. Scales to tens of thousands of
    /// ranks.
    #[default]
    Events,
    /// The pre-refactor model: every rank thread free-runs and blocked
    /// receives poll on a timeout. Kept as the differential-testing
    /// oracle; caps out at a few hundred ranks.
    Threads,
}

/// Min-heap of runnable tasks ordered by `(virtual time, rank)`.
///
/// Virtual times are non-negative finite `f64`s, so their IEEE-754 bit
/// patterns order exactly like the values themselves — the heap keys on
/// the bits to get a total order without an `Ord` wrapper. Ties at equal
/// virtual time resolve by rank, ascending, regardless of insertion
/// order (`tests/prop_sched.rs` pins this).
#[derive(Debug, Default)]
pub struct ReadyQueue {
    heap: BinaryHeap<Reverse<(u64, Rank)>>,
}

impl ReadyQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Key a non-negative virtual time for the heap.
    #[inline]
    fn key(vtime: VirtualTime) -> u64 {
        debug_assert!(vtime >= 0.0, "virtual clocks are monotone from zero");
        vtime.to_bits()
    }

    /// Insert a runnable rank at its current virtual time.
    pub fn push(&mut self, vtime: VirtualTime, rank: Rank) {
        self.heap.push(Reverse((Self::key(vtime), rank)));
    }

    /// Remove and return the earliest runnable rank (lowest virtual
    /// time, then lowest rank).
    pub fn pop(&mut self) -> Option<Rank> {
        self.heap.pop().map(|Reverse((_, rank))| rank)
    }

    /// Number of queued ranks.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Lifecycle of one rank task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskState {
    /// Runnable, queued in the ready heap, waiting for a permit.
    Ready,
    /// Holding a run permit, executing rank code.
    Running,
    /// Parked at a block point with no permit; woken by `notify`.
    Waiting,
    /// Program returned or unwound; permit released for good.
    Done,
}

struct Inner {
    /// Worker-pool size: the maximum number of `Running` tasks.
    workers: usize,
    /// Tasks currently holding a permit.
    active: usize,
    /// Runnable tasks awaiting a permit.
    ready: ReadyQueue,
    state: Vec<TaskState>,
    /// Per-rank wake counter; bumped by every `notify` touching the
    /// rank. A waiter snapshots it before re-checking its mailbox and
    /// parks only if it is unchanged — the lost-wakeup guard.
    epoch: Vec<u64>,
    /// Virtual timestamp recorded when the rank parked; its ready-heap
    /// key when it becomes runnable again.
    parked_vtime: Vec<VirtualTime>,
    /// Parked tasks holding a real-time deadline (hang backstop,
    /// `recv_timeout`). They wake themselves, so their existence vetoes
    /// stall detection.
    timed: usize,
    /// Tasks not yet `Done`.
    live: usize,
    /// Set when the scheduler proves no task can ever run again.
    stalled: bool,
}

/// Outcome of one park: why the task got the CPU back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ParkOutcome {
    /// A wake event (or a wake that raced the park) granted the task a
    /// permit; re-check the wait condition.
    Granted,
    /// The real-time deadline expired first; the task holds a permit
    /// again and should run its timeout handling.
    TimedOut,
}

/// The cooperative scheduler shared by all ranks of one world.
pub(crate) struct Sched {
    inner: Mutex<Inner>,
    /// One condvar per rank; all guard [`Sched::inner`].
    parked: Vec<Condvar>,
}

impl Sched {
    /// Scheduler for `ranks` tasks over `workers` permits. All tasks
    /// start ready at virtual time zero and the first `workers` of them
    /// (by rank) are granted permits immediately.
    pub(crate) fn new(ranks: usize, workers: usize) -> Self {
        assert!(workers >= 1, "worker pool needs at least one permit");
        let mut ready = ReadyQueue::new();
        for rank in 0..ranks {
            ready.push(0.0, rank);
        }
        let sched = Sched {
            inner: Mutex::new(Inner {
                workers,
                active: 0,
                ready,
                state: vec![TaskState::Ready; ranks],
                epoch: vec![0; ranks],
                parked_vtime: vec![0.0; ranks],
                timed: 0,
                live: ranks,
                stalled: false,
            }),
            parked: (0..ranks).map(|_| Condvar::new()).collect(),
        };
        {
            let mut g = sched.lock();
            sched.dispatch(&mut g);
        }
        sched
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Grant permits to ready tasks while the pool has room.
    fn dispatch(&self, g: &mut MutexGuard<'_, Inner>) {
        while g.active < g.workers {
            let Some(rank) = g.ready.pop() else { break };
            debug_assert_eq!(
                g.state[rank],
                TaskState::Ready,
                "heap holds only Ready tasks"
            );
            g.state[rank] = TaskState::Running;
            g.active += 1;
            self.parked[rank].notify_all();
        }
    }

    /// After a permit release: if nothing runs, nothing is ready, and no
    /// parked task can wake itself, the world is deadlocked. Flag it and
    /// wake everyone so they can fail loudly instead of hanging.
    fn check_stall(&self, g: &mut MutexGuard<'_, Inner>) {
        if g.stalled || g.active != 0 || !g.ready.is_empty() || g.timed != 0 || g.live == 0 {
            return;
        }
        g.stalled = true;
        for rank in 0..g.state.len() {
            if g.state[rank] == TaskState::Waiting {
                g.epoch[rank] += 1;
                g.state[rank] = TaskState::Ready;
                let vtime = g.parked_vtime[rank];
                g.ready.push(vtime, rank);
            }
        }
        self.dispatch(g);
    }

    /// Whether the scheduler has proven the world deadlocked.
    pub(crate) fn stalled(&self) -> bool {
        self.lock().stalled
    }

    /// Block until this task's initial (or re-granted) permit arrives.
    /// Called once per rank thread before it runs any rank code.
    pub(crate) fn start(&self, rank: Rank) {
        let mut g = self.lock();
        while g.state[rank] != TaskState::Running {
            g = self.parked[rank].wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Snapshot the rank's wake epoch *before* re-checking the wait
    /// condition. Passing the snapshot to [`Sched::park`] makes the
    /// check-then-park sequence race-free: any wake in between bumps the
    /// epoch and the park returns immediately.
    pub(crate) fn pre_wait(&self, rank: Rank) -> u64 {
        self.lock().epoch[rank]
    }

    /// Park the running task at a block point: release its permit, hand
    /// it to the next ready task, and sleep until a wake event grants a
    /// permit back (or `deadline` passes — the task then reclaims a
    /// permit by itself and gets [`ParkOutcome::TimedOut`]).
    ///
    /// `vtime` is the task's virtual timestamp at the block point; it
    /// becomes the ready-heap key when the task is woken.
    pub(crate) fn park(
        &self,
        rank: Rank,
        epoch: u64,
        vtime: VirtualTime,
        deadline: Option<Instant>,
    ) -> ParkOutcome {
        let mut g = self.lock();
        if g.epoch[rank] != epoch {
            // A wake raced the re-check; keep the permit and re-check.
            return ParkOutcome::Granted;
        }
        debug_assert_eq!(g.state[rank], TaskState::Running);
        g.state[rank] = TaskState::Waiting;
        g.parked_vtime[rank] = vtime;
        let mut counted_timed = deadline.is_some();
        if counted_timed {
            g.timed += 1;
        }
        g.active -= 1;
        self.dispatch(&mut g);
        self.check_stall(&mut g);
        let mut timed_out = false;
        loop {
            if g.state[rank] == TaskState::Running {
                if counted_timed {
                    g.timed -= 1;
                }
                return if timed_out {
                    ParkOutcome::TimedOut
                } else {
                    ParkOutcome::Granted
                };
            }
            match deadline {
                Some(d) if !timed_out => {
                    let now = Instant::now();
                    if now >= d {
                        // Deadline first: stop counting as self-waking,
                        // queue up for a permit, and report the timeout
                        // once granted.
                        timed_out = true;
                        g.timed -= 1;
                        counted_timed = false;
                        if g.state[rank] == TaskState::Waiting {
                            g.state[rank] = TaskState::Ready;
                            let vtime = g.parked_vtime[rank];
                            g.ready.push(vtime, rank);
                            self.dispatch(&mut g);
                        }
                        continue;
                    }
                    let (guard, _) = self.parked[rank]
                        .wait_timeout(g, d - now)
                        .unwrap_or_else(|e| e.into_inner());
                    g = guard;
                }
                _ => {
                    g = self.parked[rank].wait(g).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
    }

    /// Wake `rank`: bump its epoch and, if it is parked, move it to the
    /// ready heap (granting a permit immediately when the pool has
    /// room). Called after every message delivery to the rank's mailbox.
    pub(crate) fn notify(&self, rank: Rank) {
        let mut g = self.lock();
        g.epoch[rank] += 1;
        if g.state[rank] == TaskState::Waiting {
            g.state[rank] = TaskState::Ready;
            let vtime = g.parked_vtime[rank];
            g.ready.push(vtime, rank);
            self.dispatch(&mut g);
        }
    }

    /// Wake every parked task — death flags and world poison are global
    /// conditions any waiter might be blocked on.
    pub(crate) fn notify_all(&self) {
        let mut g = self.lock();
        for rank in 0..g.state.len() {
            g.epoch[rank] += 1;
            if g.state[rank] == TaskState::Waiting {
                g.state[rank] = TaskState::Ready;
                let vtime = g.parked_vtime[rank];
                g.ready.push(vtime, rank);
            }
        }
        self.dispatch(&mut g);
    }

    /// The task's program returned or unwound: release its permit for
    /// good and hand it on.
    pub(crate) fn exit(&self, rank: Rank) {
        let mut g = self.lock();
        debug_assert_eq!(
            g.state[rank],
            TaskState::Running,
            "exit from a running task"
        );
        g.state[rank] = TaskState::Done;
        g.live -= 1;
        g.active -= 1;
        self.dispatch(&mut g);
        self.check_stall(&mut g);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ready_queue_orders_by_vtime_then_rank() {
        let mut q = ReadyQueue::new();
        q.push(2.0, 0);
        q.push(1.0, 7);
        q.push(1.0, 3);
        q.push(0.5, 9);
        assert_eq!(q.pop(), Some(9));
        assert_eq!(q.pop(), Some(3), "equal vtimes resolve by rank");
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ready_queue_key_is_monotone() {
        let times = [0.0, 1e-12, 1e-6, 0.5, 1.0, 1.0 + 1e-9, 1e9];
        for w in times.windows(2) {
            assert!(
                ReadyQueue::key(w[0]) < ReadyQueue::key(w[1]),
                "bit keys must order like the values: {} vs {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn initial_grants_respect_pool_size() {
        let sched = Sched::new(8, 3);
        let g = sched.lock();
        assert_eq!(g.active, 3);
        let running: Vec<usize> = (0..8)
            .filter(|&r| g.state[r] == TaskState::Running)
            .collect();
        assert_eq!(running, vec![0, 1, 2], "lowest ranks granted first");
    }

    #[test]
    fn stall_detection_fires_only_without_timed_waiters() {
        let sched = Sched::new(1, 1);
        // Simulate the single task parking untimed on an event that will
        // never come: the scheduler must flag the stall and re-ready it.
        let epoch = sched.pre_wait(0);
        let outcome = sched.park(0, epoch, 0.0, None);
        assert_eq!(outcome, ParkOutcome::Granted);
        assert!(sched.stalled(), "untimed park with no peers is a deadlock");
    }

    #[test]
    fn timed_park_times_out_and_reclaims_permit() {
        let sched = Sched::new(1, 1);
        let epoch = sched.pre_wait(0);
        let deadline = Instant::now() + std::time::Duration::from_millis(5);
        let outcome = sched.park(0, epoch, 0.0, Some(deadline));
        assert_eq!(outcome, ParkOutcome::TimedOut);
        assert!(
            !sched.stalled(),
            "a timed waiter is self-waking, not a stall"
        );
        let g = sched.lock();
        assert_eq!(g.state[0], TaskState::Running, "permit reclaimed");
        assert_eq!(g.timed, 0, "timed counter restored");
    }

    #[test]
    fn raced_wake_returns_immediately() {
        let sched = Sched::new(2, 2);
        let epoch = sched.pre_wait(0);
        sched.notify(0); // wake lands between re-check and park
        let outcome = sched.park(0, epoch, 1.0, None);
        assert_eq!(outcome, ParkOutcome::Granted);
        let g = sched.lock();
        assert_eq!(g.state[0], TaskState::Running, "permit kept");
    }

    #[test]
    fn notify_moves_waiter_through_ready_to_running() {
        let sched = Sched::new(2, 1);
        // Rank 1 starts Ready but unpermitted (pool of one, rank 0 got it).
        {
            let g = sched.lock();
            assert_eq!(g.state[0], TaskState::Running);
            assert_eq!(g.state[1], TaskState::Ready);
        }
        // Rank 0 parks untimed; the permit must flow to rank 1.
        let t = std::thread::spawn({
            let waker = std::sync::Arc::new(());
            let _keep = waker;
            move || {}
        });
        t.join().unwrap();
        let epoch = sched.pre_wait(0);
        // Park on a helper thread so this test thread can play rank 1.
        let sched = std::sync::Arc::new(sched);
        let s2 = std::sync::Arc::clone(&sched);
        let parker = std::thread::spawn(move || s2.park(0, epoch, 5.0, None));
        // Wait for the permit to flow to rank 1.
        loop {
            let g = sched.lock();
            if g.state[1] == TaskState::Running {
                break;
            }
            drop(g);
            std::thread::yield_now();
        }
        // Rank 1 wakes rank 0 (message delivery) and exits.
        sched.notify(0);
        sched.exit(1);
        assert_eq!(parker.join().unwrap(), ParkOutcome::Granted);
        let g = sched.lock();
        assert_eq!(g.state[0], TaskState::Running);
        assert_eq!(g.state[1], TaskState::Done);
    }
}
