//! Reduction-tree topologies.
//!
//! ScalaTrace's inter-node compression consolidates traces "in a reduction
//! step over a radix tree rooted in rank 0"; Chameleon runs the same merge
//! but only over the K lead processes. [`RadixTree`] gives the
//! parent/children relations for a radix-r tree over *positions*
//! `0..size`; callers map positions to actual ranks (identity for
//! ScalaTrace's full-world merge, a top-K index table for Chameleon's lead
//! merge — the paper's "assign a temp rank from Top K").

/// A complete radix-r tree over positions `0..size`, rooted at position 0.
///
/// Position p's children are `p*r + 1 ..= p*r + r` (those < size); its
/// parent is `(p - 1) / r`. Depth is O(log_r size), which is the source of
/// the `log P` terms in the paper's complexity analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RadixTree {
    radix: usize,
    size: usize,
}

impl RadixTree {
    /// Tree with the given fan-out over `size` positions.
    ///
    /// Panics if `radix == 0` or `size == 0`: both would make the
    /// parent/child relations meaningless.
    pub fn new(radix: usize, size: usize) -> Self {
        assert!(radix >= 1, "radix tree fan-out must be at least 1");
        assert!(size >= 1, "radix tree must have at least the root");
        RadixTree { radix, size }
    }

    /// Binary tree, the paper's usual "left/right child" formulation
    /// (Algorithm 3 speaks of left and right children).
    pub fn binary(size: usize) -> Self {
        Self::new(2, size)
    }

    /// Number of positions in the tree.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Fan-out.
    pub fn radix(&self) -> usize {
        self.radix
    }

    /// Parent position, or `None` for the root.
    pub fn parent(&self, pos: usize) -> Option<usize> {
        assert!(pos < self.size, "position {pos} out of range {}", self.size);
        if pos == 0 {
            None
        } else {
            Some((pos - 1) / self.radix)
        }
    }

    /// Children positions (possibly empty at the leaves).
    pub fn children(&self, pos: usize) -> Vec<usize> {
        assert!(pos < self.size, "position {pos} out of range {}", self.size);
        let first = pos * self.radix + 1;
        (first..first + self.radix)
            .take_while(|&c| c < self.size)
            .collect()
    }

    /// Tree depth of a position (root = 0).
    pub fn depth(&self, pos: usize) -> usize {
        let mut d = 0;
        let mut p = pos;
        while let Some(parent) = self.parent(p) {
            p = parent;
            d += 1;
        }
        d
    }

    /// Height of the whole tree (max depth + 1); O(log_r size).
    pub fn height(&self) -> usize {
        self.depth(self.size - 1) + 1
    }

    /// Positions ordered leaves-to-root by decreasing depth; a valid
    /// schedule for an upward (reduce-style) sweep.
    pub fn reduce_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.size).collect();
        order.sort_by_key(|&p| std::cmp::Reverse(self.depth(p)));
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_tree_relations() {
        let t = RadixTree::binary(7);
        assert_eq!(t.parent(0), None);
        assert_eq!(t.parent(1), Some(0));
        assert_eq!(t.parent(2), Some(0));
        assert_eq!(t.parent(5), Some(2));
        assert_eq!(t.children(0), vec![1, 2]);
        assert_eq!(t.children(1), vec![3, 4]);
        assert_eq!(t.children(3), Vec::<usize>::new());
    }

    #[test]
    fn parent_child_inverse() {
        for radix in 1..=5 {
            for size in 1..=40 {
                let t = RadixTree::new(radix, size);
                for p in 0..size {
                    for c in t.children(p) {
                        assert_eq!(t.parent(c), Some(p), "radix {radix} size {size}");
                    }
                    if let Some(par) = t.parent(p) {
                        assert!(
                            t.children(par).contains(&p),
                            "radix {radix} size {size} pos {p}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn every_nonroot_reachable_from_root() {
        let t = RadixTree::new(3, 50);
        let mut seen = [false; 50];
        let mut stack = vec![0usize];
        while let Some(p) = stack.pop() {
            assert!(!seen[p], "no cycles");
            seen[p] = true;
            stack.extend(t.children(p));
        }
        assert!(seen.iter().all(|&s| s), "tree must span all positions");
    }

    #[test]
    fn height_logarithmic() {
        let t = RadixTree::binary(1024);
        // A binary heap over 1024 nodes has height 10 or 11.
        assert!(t.height() <= 11, "height {} too deep", t.height());
        let t4 = RadixTree::new(4, 1024);
        assert!(t4.height() <= 6);
    }

    #[test]
    fn singleton_tree() {
        let t = RadixTree::binary(1);
        assert_eq!(t.parent(0), None);
        assert!(t.children(0).is_empty());
        assert_eq!(t.height(), 1);
        assert_eq!(t.reduce_order(), vec![0]);
    }

    #[test]
    fn radix_one_is_a_chain() {
        let t = RadixTree::new(1, 5);
        assert_eq!(t.children(0), vec![1]);
        assert_eq!(t.children(4), Vec::<usize>::new());
        assert_eq!(t.height(), 5);
    }

    #[test]
    fn reduce_order_children_before_parents() {
        let t = RadixTree::new(2, 17);
        let order = t.reduce_order();
        let posn: Vec<usize> = {
            let mut inv = vec![0; 17];
            for (i, &p) in order.iter().enumerate() {
                inv[p] = i;
            }
            inv
        };
        for p in 0..17 {
            for c in t.children(p) {
                assert!(posn[c] < posn[p], "child {c} must precede parent {p}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_position_panics() {
        RadixTree::binary(4).parent(4);
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use xrand::Xoshiro256;

    /// Walking parents from any position terminates at the root in at
    /// most height steps.
    #[test]
    fn parent_walk_terminates() {
        let mut rng = Xoshiro256::seed_from_u64(0x7E43);
        for _case in 0..300 {
            let radix = rng.range_usize(1, 6);
            let size = rng.range_usize(1, 200);
            let t = RadixTree::new(radix, size);
            let mut p = rng.usize_below(size);
            let mut steps = 0;
            while let Some(parent) = t.parent(p) {
                p = parent;
                steps += 1;
                assert!(steps <= size, "cycle detected");
            }
            assert_eq!(p, 0);
            assert!(steps < t.height());
        }
    }

    /// The children lists partition 1..size.
    #[test]
    fn children_partition() {
        let mut rng = Xoshiro256::seed_from_u64(0x9A47);
        for _case in 0..300 {
            let radix = rng.range_usize(1, 6);
            let size = rng.range_usize(1, 200);
            let t = RadixTree::new(radix, size);
            let mut count = vec![0usize; size];
            for p in 0..size {
                for c in t.children(p) {
                    count[c] += 1;
                }
            }
            assert_eq!(count[0], 0, "root has no parent");
            for (c, &n) in count.iter().enumerate().skip(1) {
                assert_eq!(n, 1, "non-root {c} appears exactly once");
            }
        }
    }
}
