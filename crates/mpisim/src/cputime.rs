//! Per-thread CPU-time measurement.
//!
//! The simulation oversubscribes host cores (P rank-threads on few CPUs),
//! so wall-clock spans around tool computation include arbitrary
//! preemption delays. [`CpuTimer`] measures `CLOCK_THREAD_CPUTIME_ID`
//! instead: the CPU time actually consumed by the calling thread, which is
//! the quantity a per-rank overhead model needs.

use std::time::Duration;

/// Current per-thread CPU time.
///
/// Falls back to a monotonic wall clock on platforms without
/// `CLOCK_THREAD_CPUTIME_ID` (none among our targets; Linux always has
/// it).
#[cfg(target_os = "linux")]
pub fn thread_cpu_now() -> Duration {
    // Declared by hand instead of via the `libc` crate: the build is
    // hermetic (no registry access), and this is the one libc symbol the
    // workspace needs. Layout matches the Linux LP64 ABI on every target
    // we build for (x86_64, aarch64): clockid_t is i32, timespec is two
    // signed longs.
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }
    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
    extern "C" {
        fn clock_gettime(clockid: i32, tp: *mut Timespec) -> i32;
    }
    let mut ts = Timespec {
        tv_sec: 0,
        tv_nsec: 0,
    };
    // SAFETY: ts is a valid, writable timespec; the clock id is a
    // compile-time constant supported on all Linux kernels we target.
    let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
    debug_assert_eq!(rc, 0, "clock_gettime(CLOCK_THREAD_CPUTIME_ID) failed");
    Duration::new(ts.tv_sec as u64, ts.tv_nsec as u32)
}

#[cfg(not(target_os = "linux"))]
pub fn thread_cpu_now() -> Duration {
    use std::sync::OnceLock;
    use std::time::Instant;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed()
}

/// Span timer over per-thread CPU time.
#[derive(Debug, Clone, Copy)]
pub struct CpuTimer {
    start: Duration,
}

impl CpuTimer {
    /// Start timing.
    pub fn start() -> Self {
        CpuTimer {
            start: thread_cpu_now(),
        }
    }

    /// CPU time consumed by this thread since `start()`.
    pub fn elapsed(&self) -> Duration {
        thread_cpu_now().saturating_sub(self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_time_monotone() {
        let a = thread_cpu_now();
        // Burn a little CPU.
        let mut x = 0u64;
        for i in 0..100_000u64 {
            x = x.wrapping_add(i * i);
        }
        std::hint::black_box(x);
        let b = thread_cpu_now();
        assert!(b >= a);
    }

    #[test]
    fn timer_measures_compute_not_sleep() {
        let t = CpuTimer::start();
        std::thread::sleep(std::time::Duration::from_millis(30));
        let slept = t.elapsed();
        // Sleeping consumes (almost) no CPU time.
        assert!(
            slept < std::time::Duration::from_millis(15),
            "sleep measured as CPU time: {slept:?}"
        );
    }
}
