//! CRC-framed, ACK/NACK-acknowledged point-to-point transfers.
//!
//! Chameleon's tool-plane protocols (cluster maps, lead selections,
//! partial traces) originally trusted the wire: a malformed payload was an
//! instant `expect()` panic. Under an armed [`crate::FaultPlan`] the wire
//! *lies* — frames are dropped, duplicated, and corrupted — so this module
//! wraps every unreliable tool payload in a checksummed frame and runs a
//! stop-and-wait handshake:
//!
//! ```text
//! frame   = "FRM1" | seq:u64 LE | crc32(seq || payload):u32 LE | payload
//! ack     = code:u8 (0 OK / 1 NACK / 2 GIVEUP) | seq:u64 LE
//! ```
//!
//! The sender retransmits on an observed drop or a NACK; the receiver
//! NACKs corrupt frames up to its [`RetryPolicy`] budget, then sends
//! GIVEUP and degrades with a typed [`ProtocolError`] instead of
//! panicking. Duplicates are detected by per-`(peer, tag)` sequence
//! numbers and discarded silently. The ACK channel itself (and all
//! collective-internal rounds) is exempt from fault injection: the
//! recovery protocol needs a solid control plane.
//!
//! When no plan is armed, [`crate::Proc::reliable_send`] and
//! [`crate::Proc::reliable_recv`] degenerate to the raw `send`/`recv` with
//! the payload bytes untouched — fault-free runs stay bit-identical to a
//! build without this module.

use crate::proc::{Proc, Rank, SrcSel, Tag, TagSel, COLLECTIVE_TAG_BASE};
use crate::Comm;

/// Reserved tag for reliable-layer acknowledgements. Sits just below the
/// collective tag space and is exempt from fault injection.
pub const ACK_TAG: Tag = COLLECTIVE_TAG_BASE - 1;

const MAGIC: &[u8; 4] = b"FRM1";
const ACK_OK: u8 = 0;
const ACK_NACK: u8 = 1;
const ACK_GIVEUP: u8 = 2;

/// How many times a receiver re-requests a corrupt frame before giving up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryPolicy {
    /// NACK at most this many times, then GIVEUP and degrade. `Bounded(1)`
    /// is the "re-request once from the child, then degrade" policy.
    Bounded(u32),
    /// NACK until a clean frame arrives (or the peer dies). Reserved for
    /// payloads the lock-step protocol cannot proceed without, e.g. the
    /// lead selection every rank must agree on.
    Unlimited,
}

impl RetryPolicy {
    fn allows(self, nacks_so_far: u32) -> bool {
        match self {
            RetryPolicy::Bounded(n) => nacks_so_far < n,
            RetryPolicy::Unlimited => true,
        }
    }
}

/// A typed wire-protocol failure: the degraded-path alternative to
/// panicking on a malformed payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The peer died (injected crash) before supplying the payload.
    PeerDead {
        /// The dead peer.
        rank: Rank,
    },
    /// The payload was still corrupt after the retry budget ran out.
    Corrupt {
        /// Sender of the corrupt frames.
        src: Rank,
        /// Protocol tag of the transfer.
        tag: Tag,
        /// Delivery attempts observed before giving up.
        attempts: u32,
    },
    /// The bytes arrived intact (CRC-clean) but failed structured
    /// decoding — a protocol bug rather than a lossy link.
    Decode {
        /// What was being decoded.
        what: &'static str,
        /// Decoder-specific detail.
        detail: String,
    },
    /// The hang backstop fired: a blocking receive waited longer than the
    /// fault plan's real-time budget. Carried as a panic payload out of
    /// the stuck rank so the world harness (and the chaos supervisor) can
    /// tell a wedged protocol from a genuine bug.
    Timeout {
        /// The rank that was stuck waiting.
        rank: Rank,
        /// The operation it was stuck in, e.g. `"recv src=2 tag=11"`.
        op: String,
        /// How long it waited before giving up, in milliseconds.
        waited: u64,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::PeerDead { rank } => write!(f, "peer rank {rank} is dead"),
            ProtocolError::Corrupt { src, tag, attempts } => write!(
                f,
                "payload from rank {src} on tag {tag} still corrupt after {attempts} attempt(s)"
            ),
            ProtocolError::Decode { what, detail } => {
                write!(f, "malformed {what}: {detail}")
            }
            ProtocolError::Timeout { rank, op, waited } => {
                write!(f, "rank {rank} timed out after {waited} ms stuck in {op}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
/// Hand-rolled so `mpisim` stays free of third-party dependencies (its
/// only dependency is the in-tree `obs` flight recorder).
const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

fn crc_update(mut crc: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        crc = CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc
}

/// CRC-32 over `seq || payload` — covering the sequence number means a
/// bit-flip in the header can never masquerade as a stale duplicate (which
/// would be discarded without a NACK and deadlock the sender's ACK wait).
pub fn frame_crc(seq: u64, payload: &[u8]) -> u32 {
    let crc = crc_update(0xFFFF_FFFF, &seq.to_le_bytes());
    crc_update(crc, payload) ^ 0xFFFF_FFFF
}

/// Wrap a payload in a checksummed frame.
pub fn frame(seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + payload.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&frame_crc(seq, payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validate and strip a frame. `None` means the frame is corrupt
/// (truncated, bad magic, or CRC mismatch).
pub fn unframe(buf: &[u8]) -> Option<(u64, Vec<u8>)> {
    if buf.len() < 16 || &buf[..4] != MAGIC {
        return None;
    }
    let seq = u64::from_le_bytes(buf[4..12].try_into().ok()?);
    let crc = u32::from_le_bytes(buf[12..16].try_into().ok()?);
    let payload = &buf[16..];
    (frame_crc(seq, payload) == crc).then(|| (seq, payload.to_vec()))
}

fn parse_ack(buf: &[u8]) -> Option<(u8, u64)> {
    if buf.len() != 9 {
        return None;
    }
    Some((buf[0], u64::from_le_bytes(buf[1..9].try_into().ok()?)))
}

impl Proc {
    /// Reliable stop-and-wait send. Under an armed fault plan the payload
    /// is CRC-framed and retransmitted across drops and NACKs until the
    /// receiver ACKs, gives up, or dies; unarmed it is a plain
    /// [`Proc::send`] of the raw bytes.
    pub fn reliable_send(
        &mut self,
        dest: Rank,
        tag: Tag,
        comm: Comm,
        payload: &[u8],
    ) -> Result<(), ProtocolError> {
        if !self.faults_armed() {
            self.send(dest, tag, comm, payload);
            return Ok(());
        }
        let seq = {
            let e = self.seq_out.entry((dest, tag)).or_insert(0);
            let s = *e;
            *e += 1;
            s
        };
        let framed = frame(seq, payload);
        let mut attempts = 0u32;
        'attempt: loop {
            attempts += 1;
            if !self.send_faulty(dest, tag, comm, &framed, true) {
                // The plan dropped this attempt; the sender observes the
                // drop (it *is* the lossy link) and retransmits after a
                // seeded exponential backoff (virtual time only).
                self.fstats.retransmits += 1;
                self.metric_add(obs::Counter::Retries, 1);
                self.record(|| obs::EventKind::Retry {
                    peer: dest as u64,
                    tag: tag as u64,
                });
                self.retransmit_backoff(dest, tag, attempts);
                continue 'attempt;
            }
            loop {
                let Some(ack) = self.recv_or_dead(dest, ACK_TAG, comm) else {
                    return Err(ProtocolError::PeerDead { rank: dest });
                };
                match parse_ack(&ack.payload) {
                    Some((ACK_OK, s)) if s == seq => return Ok(()),
                    Some((ACK_NACK, s)) if s == seq => {
                        self.fstats.retransmits += 1;
                        self.metric_add(obs::Counter::Retries, 1);
                        self.record(|| obs::EventKind::Retry {
                            peer: dest as u64,
                            tag: tag as u64,
                        });
                        self.retransmit_backoff(dest, tag, attempts);
                        continue 'attempt;
                    }
                    Some((ACK_GIVEUP, s)) if s == seq => {
                        return Err(ProtocolError::Corrupt {
                            src: self.rank(),
                            tag,
                            attempts,
                        });
                    }
                    // A stale ack (earlier seq) — possible after a
                    // duplicated corrupt frame drew extra NACKs. Keep
                    // waiting for the ack that matches this frame.
                    _ => {}
                }
            }
        }
    }

    /// Reliable matched receive: the counterpart of
    /// [`Proc::reliable_send`]. Corrupt frames are NACKed up to `policy`'s
    /// budget, then answered with GIVEUP and surfaced as
    /// [`ProtocolError::Corrupt`]; a dead sender surfaces as
    /// [`ProtocolError::PeerDead`]. Unarmed, this is a plain matched
    /// receive of the raw bytes.
    pub fn reliable_recv(
        &mut self,
        src: Rank,
        tag: Tag,
        comm: Comm,
        policy: RetryPolicy,
    ) -> Result<Vec<u8>, ProtocolError> {
        if !self.faults_armed() {
            return Ok(self.recv(SrcSel::Rank(src), TagSel::Tag(tag), comm).payload);
        }
        let expected = *self.seq_in.get(&(src, tag)).unwrap_or(&0);
        let mut nacks = 0u32;
        loop {
            let Some(info) = self.recv_or_dead(src, tag, comm) else {
                return Err(ProtocolError::PeerDead { rank: src });
            };
            match unframe(&info.payload) {
                Some((seq, payload)) if seq == expected => {
                    self.seq_in.insert((src, tag), expected + 1);
                    self.send(src, ACK_TAG, comm, &ack_bytes(ACK_OK, seq));
                    return Ok(payload);
                }
                Some((seq, _)) if seq < expected => {
                    // Stale duplicate of an already-accepted frame:
                    // discard silently, no ack owed.
                }
                _ => {
                    // Corrupt (truncated, bad magic, bad CRC) or a
                    // future seq (impossible under FIFO, treated the same).
                    if policy.allows(nacks) {
                        nacks += 1;
                        self.fstats.nacks_sent += 1;
                        self.metric_add(obs::Counter::Nacks, 1);
                        self.record(|| obs::EventKind::Nack {
                            peer: src as u64,
                            tag: tag as u64,
                        });
                        self.send(src, ACK_TAG, comm, &ack_bytes(ACK_NACK, expected));
                    } else {
                        self.seq_in.insert((src, tag), expected + 1);
                        self.metric_add(obs::Counter::GiveUps, 1);
                        self.record(|| obs::EventKind::GiveUp {
                            peer: src as u64,
                            tag: tag as u64,
                        });
                        self.send(src, ACK_TAG, comm, &ack_bytes(ACK_GIVEUP, expected));
                        return Err(ProtocolError::Corrupt {
                            src,
                            tag,
                            attempts: nacks + 1,
                        });
                    }
                }
            }
        }
    }
}

fn ack_bytes(code: u8, seq: u64) -> [u8; 9] {
    let mut out = [0u8; 9];
    out[0] = code;
    out[1..9].copy_from_slice(&seq.to_le_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc_known_value() {
        // CRC-32("123456789") = 0xCBF43926 is the standard check value;
        // our frame CRC prepends the seq, so verify via the raw update.
        let crc = crc_update(0xFFFF_FFFF, b"123456789") ^ 0xFFFF_FFFF;
        assert_eq!(crc, 0xCBF4_3926);
    }

    #[test]
    fn frame_roundtrip() {
        for payload in [&b""[..], b"x", b"hello world", &[0u8; 1000]] {
            let f = frame(42, payload);
            assert_eq!(unframe(&f), Some((42, payload.to_vec())));
        }
    }

    #[test]
    fn unframe_rejects_corruption_anywhere() {
        let f = frame(7, b"some moderately long payload for flipping");
        for i in 0..f.len() {
            let mut bad = f.clone();
            bad[i] ^= 0x40;
            assert_eq!(unframe(&bad), None, "flip at byte {i} must be caught");
        }
    }

    #[test]
    fn unframe_rejects_truncation() {
        let f = frame(3, b"payload");
        for len in 0..f.len() {
            assert_eq!(unframe(&f[..len]), None, "truncation to {len} bytes");
        }
    }

    #[test]
    fn retry_policy_budgets() {
        assert!(RetryPolicy::Bounded(1).allows(0));
        assert!(!RetryPolicy::Bounded(1).allows(1));
        assert!(!RetryPolicy::Bounded(0).allows(0));
        assert!(RetryPolicy::Unlimited.allows(u32::MAX - 1));
    }

    #[test]
    fn protocol_error_messages() {
        let e = ProtocolError::Corrupt {
            src: 3,
            tag: 9,
            attempts: 2,
        };
        assert!(e.to_string().contains("rank 3"));
        assert!(ProtocolError::PeerDead { rank: 5 }
            .to_string()
            .contains("5"));
        let t = ProtocolError::Timeout {
            rank: 2,
            op: "recv src=0 tag=11".into(),
            waited: 30_000,
        };
        let s = t.to_string();
        assert!(s.contains("rank 2") && s.contains("30000 ms") && s.contains("tag=11"));
    }
}
