//! World setup and execution: spawn one thread per rank, run the rank
//! program, join, and report.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::mailbox::Mailbox;
use crate::proc::{Proc, Shared};
use crate::time::{CostModel, VirtualTime};

/// Configuration of a simulated MPI world.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Number of ranks.
    pub ranks: usize,
    /// Communication cost model for virtual time.
    pub cost: CostModel,
    /// Stack size per rank thread. The paper runs P=1024; with the default
    /// 256 KiB stacks that is a modest 256 MiB of (mostly untouched)
    /// virtual memory.
    pub stack_bytes: usize,
}

impl WorldConfig {
    /// Default configuration for `ranks` ranks.
    pub fn new(ranks: usize) -> Self {
        WorldConfig {
            ranks,
            cost: CostModel::default(),
            stack_bytes: 256 * 1024,
        }
    }

    /// Small-world configuration for unit tests (deterministic cost model,
    /// compact stacks).
    pub fn for_tests(ranks: usize) -> Self {
        Self::new(ranks)
    }

    /// Override the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Override the per-thread stack size.
    pub fn with_stack_bytes(mut self, bytes: usize) -> Self {
        self.stack_bytes = bytes.max(64 * 1024);
        self
    }
}

/// Result of running a world to completion.
#[derive(Debug, Clone)]
pub struct WorldReport<R = ()> {
    /// Number of ranks that ran.
    pub ranks: usize,
    /// Final virtual time of each rank.
    pub rank_vtimes: Vec<VirtualTime>,
    /// Maximum final virtual time across ranks — the simulated
    /// "application execution time".
    pub max_vtime: VirtualTime,
    /// Real wall-clock duration of the run (threads spawned to joined).
    pub wall: Duration,
    /// Per-rank return values of the rank program, in rank order.
    pub results: Vec<R>,
}

/// Error from a world run: at least one rank panicked.
#[derive(Debug)]
pub struct WorldError {
    /// Ranks that panicked, with the panic payloads rendered to strings.
    pub failures: Vec<(usize, String)>,
}

impl std::fmt::Display for WorldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} rank(s) panicked:", self.failures.len())?;
        for (rank, msg) in &self.failures {
            write!(f, " [rank {rank}: {msg}]")?;
        }
        Ok(())
    }
}

impl std::error::Error for WorldError {}

/// A simulated MPI world: P ranks, each an OS thread.
pub struct World {
    config: WorldConfig,
}

impl World {
    /// Create a world with the given configuration.
    ///
    /// Panics if `ranks == 0`.
    pub fn new(config: WorldConfig) -> Self {
        assert!(config.ranks >= 1, "world needs at least one rank");
        World { config }
    }

    /// Run `program` on every rank concurrently and wait for completion.
    ///
    /// The program receives the rank's [`Proc`] handle; its return values
    /// are collected in rank order. If any rank panics, the world is
    /// poisoned (blocked receives abort), all threads are joined, and an
    /// error listing the failures is returned.
    pub fn run<R, F>(self, program: F) -> Result<WorldReport<R>, WorldError>
    where
        R: Send + 'static,
        F: Fn(&mut Proc) -> R + Send + Sync + 'static,
    {
        let p = self.config.ranks;
        let shared = Arc::new(Shared {
            mailboxes: (0..p).map(|_| Mailbox::new()).collect(),
            cost: self.config.cost,
            size: p,
            poisoned: std::sync::atomic::AtomicBool::new(false),
        });
        let program = Arc::new(program);
        let started = Instant::now();

        let mut handles = Vec::with_capacity(p);
        for rank in 0..p {
            let shared = Arc::clone(&shared);
            let program = Arc::clone(&program);
            let builder = std::thread::Builder::new()
                .name(format!("mpisim-rank-{rank}"))
                .stack_size(self.config.stack_bytes);
            let handle = builder
                .spawn(move || {
                    let mut proc = Proc::new(rank, Arc::clone(&shared));
                    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| program(&mut proc)));
                    let vtime = proc.now();
                    match outcome {
                        Ok(r) => Ok((r, vtime)),
                        Err(payload) => {
                            shared.poisoned.store(true, Ordering::SeqCst);
                            Err(panic_message(payload))
                        }
                    }
                })
                .expect("failed to spawn rank thread");
            handles.push(handle);
        }

        let mut results: Vec<Option<R>> = (0..p).map(|_| None).collect();
        let mut vtimes = vec![0.0; p];
        let mut failures = Vec::new();
        for (rank, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(Ok((r, vt))) => {
                    results[rank] = Some(r);
                    vtimes[rank] = vt;
                }
                Ok(Err(msg)) => failures.push((rank, msg)),
                Err(payload) => failures.push((rank, panic_message(payload))),
            }
        }

        if !failures.is_empty() {
            return Err(WorldError { failures });
        }

        let max_vtime = vtimes.iter().cloned().fold(0.0, f64::max);
        Ok(WorldReport {
            ranks: p,
            rank_vtimes: vtimes,
            max_vtime,
            wall: started.elapsed(),
            results: results
                .into_iter()
                .map(|r| r.expect("no failure but missing result"))
                .collect(),
        })
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::ReduceOp;
    use crate::proc::{SrcSel, TagSel};
    use crate::Comm;

    #[test]
    fn single_rank_world() {
        let report = World::new(WorldConfig::for_tests(1))
            .run(|proc| proc.rank())
            .unwrap();
        assert_eq!(report.results, vec![0]);
    }

    #[test]
    fn results_in_rank_order() {
        let report = World::new(WorldConfig::for_tests(8))
            .run(|proc| proc.rank() * 10)
            .unwrap();
        assert_eq!(report.results, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn ring_pass() {
        // Each rank sends its rank to the right neighbor and receives from
        // the left one.
        let report = World::new(WorldConfig::for_tests(5))
            .run(|proc| {
                let p = proc.size();
                let me = proc.rank();
                let right = (me + 1) % p;
                let left = (me + p - 1) % p;
                proc.send_u64(right, 1, Comm::WORLD, me as u64);
                let (src, val) = proc.recv_u64(SrcSel::Rank(left), TagSel::Tag(1), Comm::WORLD);
                assert_eq!(src, left);
                val
            })
            .unwrap();
        assert_eq!(report.results, vec![4, 0, 1, 2, 3]);
    }

    #[test]
    fn barrier_all_sizes() {
        for p in [1, 2, 3, 4, 5, 7, 8, 16, 33] {
            World::new(WorldConfig::for_tests(p))
                .run(|proc| {
                    for _ in 0..3 {
                        proc.barrier(Comm::WORLD);
                    }
                })
                .unwrap_or_else(|e| panic!("barrier failed for p={p}: {e}"));
        }
    }

    #[test]
    fn reduce_sum_all_sizes_and_roots() {
        for p in [1usize, 2, 3, 5, 8, 13, 16] {
            for root in [0, p / 2, p - 1] {
                let expect: u64 = (0..p as u64).sum();
                World::new(WorldConfig::for_tests(p))
                    .run(move |proc| {
                        let out =
                            proc.reduce_u64(proc.rank() as u64, ReduceOp::Sum, root, Comm::WORLD);
                        if proc.rank() == root {
                            assert_eq!(out, Some(expect), "p={p} root={root}");
                        } else {
                            assert_eq!(out, None);
                        }
                    })
                    .unwrap();
            }
        }
    }

    #[test]
    fn reduce_max_min() {
        World::new(WorldConfig::for_tests(9))
            .run(|proc| {
                let v = proc.rank() as u64 * 7 % 5; // some non-monotone values
                let mx = proc.allreduce_u64(v, ReduceOp::Max, Comm::WORLD);
                let mn = proc.allreduce_u64(v, ReduceOp::Min, Comm::WORLD);
                let all: Vec<u64> = (0..9u64).map(|r| r * 7 % 5).collect();
                assert_eq!(mx, *all.iter().max().unwrap());
                assert_eq!(mn, *all.iter().min().unwrap());
            })
            .unwrap();
    }

    #[test]
    fn bcast_all_sizes_and_roots() {
        for p in [1usize, 2, 3, 5, 8, 13] {
            for root in [0, p - 1] {
                World::new(WorldConfig::for_tests(p))
                    .run(move |proc| {
                        let payload = if proc.rank() == root {
                            vec![0xab; 37]
                        } else {
                            vec![]
                        };
                        let out = proc.bcast(&payload, root, Comm::WORLD);
                        assert_eq!(out, vec![0xab; 37], "p={p} root={root}");
                    })
                    .unwrap();
            }
        }
    }

    #[test]
    fn gather_collects_all() {
        for p in [1usize, 2, 3, 6, 11] {
            World::new(WorldConfig::for_tests(p))
                .run(move |proc| {
                    let mine = vec![proc.rank() as u8; proc.rank() + 1];
                    let out = proc.gather(&mine, 0, Comm::WORLD);
                    if proc.rank() == 0 {
                        let v = out.expect("root gets data");
                        for (r, data) in v.iter().enumerate() {
                            assert_eq!(data, &vec![r as u8; r + 1], "p={p}");
                        }
                    } else {
                        assert!(out.is_none());
                    }
                })
                .unwrap();
        }
    }

    #[test]
    fn allreduce_sum_convenience() {
        let report = World::new(WorldConfig::for_tests(16))
            .run(|proc| proc.allreduce_sum(1))
            .unwrap();
        assert!(report.results.iter().all(|&r| r == 16));
    }

    #[test]
    fn virtual_time_advances_with_compute() {
        let report = World::new(WorldConfig::for_tests(2))
            .run(|proc| {
                proc.compute(1.0);
                proc.barrier(Comm::WORLD);
                proc.now()
            })
            .unwrap();
        assert!(report.max_vtime >= 1.0);
        assert!(report.results.iter().all(|&t| t >= 1.0));
    }

    #[test]
    fn recv_synchronizes_clocks() {
        // Rank 0 computes for 5 virtual seconds then sends; rank 1 receives
        // immediately. Rank 1's clock must advance past 5.0.
        let report = World::new(WorldConfig::for_tests(2))
            .run(|proc| {
                if proc.rank() == 0 {
                    proc.compute(5.0);
                    proc.send(1, 0, Comm::WORLD, &[1]);
                } else {
                    proc.recv(SrcSel::Rank(0), TagSel::Tag(0), Comm::WORLD);
                }
                proc.now()
            })
            .unwrap();
        assert!(
            report.results[1] > 5.0,
            "receiver clock must sync to sender"
        );
    }

    #[test]
    fn panic_in_one_rank_reported_not_deadlocked() {
        let err = World::new(WorldConfig::for_tests(3))
            .run(|proc| {
                if proc.rank() == 1 {
                    panic!("injected failure");
                }
                // Ranks 0 and 2 block forever waiting for rank 1; the
                // poison mechanism must unblock them.
                proc.recv(SrcSel::Rank(1), TagSel::Tag(9), Comm::WORLD);
            })
            .unwrap_err();
        assert!(err
            .failures
            .iter()
            .any(|(r, m)| *r == 1 && m.contains("injected")));
        // The blocked ranks fail with the poison message rather than hanging.
        assert_eq!(err.failures.len(), 3);
    }

    #[test]
    fn stats_count_messages() {
        let report = World::new(WorldConfig::for_tests(2))
            .run(|proc| {
                if proc.rank() == 0 {
                    proc.send(1, 0, Comm::WORLD, &[0; 100]);
                } else {
                    proc.recv(SrcSel::Rank(0), TagSel::Tag(0), Comm::WORLD);
                }
                proc.stats()
            })
            .unwrap();
        assert_eq!(report.results[0].msgs_sent, 1);
        assert_eq!(report.results[0].bytes_sent, 100);
        assert_eq!(report.results[1].msgs_recvd, 1);
        assert_eq!(report.results[1].bytes_recvd, 100);
    }

    #[test]
    fn sendrecv_head_on_exchange() {
        // Classic stencil exchange: both partners sendrecv each other.
        World::new(WorldConfig::for_tests(2))
            .run(|proc| {
                let peer = 1 - proc.rank();
                let info = proc.sendrecv(
                    peer,
                    7,
                    &[proc.rank() as u8],
                    SrcSel::Rank(peer),
                    TagSel::Tag(7),
                    Comm::WORLD,
                );
                assert_eq!(info.payload, vec![peer as u8]);
            })
            .unwrap();
    }

    #[test]
    fn moderately_large_world() {
        // Smoke-test the thread machinery at a P beyond toy sizes.
        let report = World::new(WorldConfig::new(128))
            .run(|proc| proc.allreduce_sum(proc.rank() as u64))
            .unwrap();
        let expect: u64 = (0..128).sum();
        assert!(report.results.iter().all(|&r| r == expect));
    }
}
