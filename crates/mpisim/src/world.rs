//! World setup and execution: build the per-rank tasks, run the rank
//! program on the configured scheduler, join, and report.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::fault::{FaultPlan, FaultStats, InjectedCrash};
use crate::mailbox::Mailbox;
use crate::proc::{Proc, Rank, Shared};
use crate::sched::{Sched, SchedMode};
use crate::time::{CostModel, VirtualTime};

/// Configuration of a simulated MPI world.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Number of ranks.
    pub ranks: usize,
    /// Communication cost model for virtual time.
    pub cost: CostModel,
    /// Stack size reserved per rank continuation.
    ///
    /// Under the event scheduler ([`SchedMode::Events`]) this is only the
    /// *reservation* backing a parked task's continuation — mostly
    /// untouched virtual memory, so even P=16384 worlds fit comfortably.
    /// It is meaningful as a per-thread stack only in
    /// [`SchedMode::Threads`] oracle mode. Prefer tuning
    /// [`WorldConfig::workers`] instead; see
    /// [`WorldConfig::with_stack_bytes`] for the deprecation note.
    pub stack_bytes: usize,
    /// Optional deterministic fault plan. `None` (the default) keeps every
    /// fault hook on its zero-cost path — fault-free runs are bit-identical
    /// to a build without the fault layer.
    pub faults: Option<FaultPlan>,
    /// Arm the flight recorder: every rank buffers typed [`obs`] events and
    /// the report carries the gathered [`obs::RunJournal`]. Off by default;
    /// disabled recording costs one `None` check per emission site, and the
    /// recorder is passive (no messages, no clock movement), so arming it
    /// changes no simulated behavior.
    pub record: bool,
    /// Which scheduler runs the ranks. [`SchedMode::Events`] (the
    /// default) multiplexes rank tasks over a bounded worker pool with
    /// event wakeups; [`SchedMode::Threads`] is the pre-refactor
    /// free-running oracle kept for differential testing. Every
    /// simulation-visible output is byte-identical between the two
    /// (`tests/sched_differential.rs`).
    pub sched: SchedMode,
    /// Worker-pool size for [`SchedMode::Events`]: the maximum number of
    /// rank tasks running simultaneously. `0` (the default) resolves to
    /// the host's available parallelism. Results are invariant under this
    /// knob — it trades wall-clock parallelism only. Ignored in thread
    /// mode.
    pub workers: usize,
}

impl WorldConfig {
    /// Default configuration for `ranks` ranks.
    pub fn new(ranks: usize) -> Self {
        WorldConfig {
            ranks,
            cost: CostModel::default(),
            stack_bytes: 256 * 1024,
            faults: None,
            record: false,
            sched: SchedMode::default(),
            workers: 0,
        }
    }

    /// Small-world configuration for unit tests (deterministic cost model,
    /// compact stacks).
    pub fn for_tests(ranks: usize) -> Self {
        Self::new(ranks)
    }

    /// Override the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Override the per-rank stack reservation.
    ///
    /// Deprecated: under the event scheduler the per-rank stack is a
    /// parked continuation's (mostly untouched) reservation, not a
    /// capacity knob — tune [`WorldConfig::with_workers`] instead. Kept
    /// for configuration compatibility; warns once per process.
    #[deprecated(
        since = "0.8.0",
        note = "stack_bytes is a continuation reservation under the event scheduler; \
                tune the worker pool with `with_workers` instead"
    )]
    pub fn with_stack_bytes(mut self, bytes: usize) -> Self {
        static WARN_ONCE: std::sync::Once = std::sync::Once::new();
        WARN_ONCE.call_once(|| {
            eprintln!(
                "mpisim: WorldConfig::with_stack_bytes is deprecated — the event scheduler \
                 parks rank continuations, so stacks are reservations, not capacity; \
                 tune the worker pool with with_workers instead"
            );
        });
        self.stack_bytes = bytes.max(64 * 1024);
        self
    }

    /// Set the event scheduler's worker-pool size (see
    /// [`WorldConfig::workers`]).
    ///
    /// Panics if `n == 0`: a pool with no permits can never run anything.
    /// Use the default (`0` in the field, meaning auto) for host
    /// parallelism.
    pub fn with_workers(mut self, n: usize) -> Self {
        assert!(n >= 1, "worker pool needs at least one worker");
        self.workers = n;
        self
    }

    /// Run this world on the pre-refactor free-running thread scheduler
    /// (the differential-testing oracle; see [`SchedMode::Threads`]).
    pub fn with_thread_scheduler(mut self) -> Self {
        self.sched = SchedMode::Threads;
        self
    }

    /// Arm a fault plan. Run such a world with [`World::run_faulty`] so an
    /// injected crash shrinks the world instead of failing the run.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Arm the flight recorder (see [`WorldConfig::record`]).
    pub fn with_recorder(mut self) -> Self {
        self.record = true;
        self
    }

    /// The effective worker-pool size: the configured value, or the
    /// host's available parallelism when left at the `0` (auto) default.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Result of running a world to completion.
#[derive(Debug, Clone)]
pub struct WorldReport<R = ()> {
    /// Number of ranks that ran.
    pub ranks: usize,
    /// Final virtual time of each rank.
    pub rank_vtimes: Vec<VirtualTime>,
    /// Maximum final virtual time across ranks — the simulated
    /// "application execution time".
    pub max_vtime: VirtualTime,
    /// Real wall-clock duration of the run (threads spawned to joined).
    pub wall: Duration,
    /// Per-rank return values of the rank program, in rank order.
    pub results: Vec<R>,
    /// Per-rank fault counters (all zeros when no plan was armed).
    pub fault_stats: Vec<FaultStats>,
    /// The gathered flight-recorder journal, present iff
    /// [`WorldConfig::record`] was set.
    pub journal: Option<obs::RunJournal>,
}

/// Result of a fault-tolerant run ([`World::run_faulty`]): injected
/// crashes shrink the result set instead of failing the world.
#[derive(Debug, Clone)]
pub struct FaultyWorldReport<R = ()> {
    /// Number of ranks that started.
    pub ranks: usize,
    /// Final virtual time of each rank (a crashed rank's clock stops at
    /// its death).
    pub rank_vtimes: Vec<VirtualTime>,
    /// Maximum final virtual time across ranks.
    pub max_vtime: VirtualTime,
    /// Real wall-clock duration of the run.
    pub wall: Duration,
    /// Per-rank return values; `None` for ranks killed by the plan.
    pub results: Vec<Option<R>>,
    /// Ranks killed by the plan's crash fault, ascending.
    pub crashed: Vec<Rank>,
    /// Per-rank fault counters.
    pub fault_stats: Vec<FaultStats>,
    /// The gathered flight-recorder journal, present iff
    /// [`WorldConfig::record`] was set. A crashed rank's log ends at its
    /// `crash` event.
    pub journal: Option<obs::RunJournal>,
}

/// Error from a world run: at least one rank panicked.
#[derive(Debug)]
pub struct WorldError {
    /// Ranks that panicked, with the panic payloads rendered to strings.
    pub failures: Vec<(usize, String)>,
}

impl std::fmt::Display for WorldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} rank(s) panicked:", self.failures.len())?;
        for (rank, msg) in &self.failures {
            write!(f, " [rank {rank}: {msg}]")?;
        }
        Ok(())
    }
}

impl std::error::Error for WorldError {}

/// A simulated MPI world: P rank tasks on the configured scheduler.
pub struct World {
    config: WorldConfig,
}

impl World {
    /// Create a world with the given configuration.
    ///
    /// Panics if `ranks == 0`.
    pub fn new(config: WorldConfig) -> Self {
        assert!(config.ranks >= 1, "world needs at least one rank");
        World { config }
    }

    /// Run `program` on every rank concurrently and wait for completion.
    ///
    /// The program receives the rank's [`Proc`] handle; its return values
    /// are collected in rank order. If any rank panics — including a
    /// plan-injected crash — the world is poisoned (blocked receives
    /// abort), all threads are joined, and an error listing the failures
    /// is returned. Worlds that should *survive* injected crashes go
    /// through [`World::run_faulty`] instead.
    pub fn run<R, F>(self, program: F) -> Result<WorldReport<R>, WorldError>
    where
        R: Send + 'static,
        F: Fn(&mut Proc) -> R + Send + Sync + 'static,
    {
        let (exits, vtimes, fstats, journal, wall) = self.run_inner(false, program);
        let p = exits.len();
        let mut results: Vec<Option<R>> = (0..p).map(|_| None).collect();
        let mut failures = Vec::new();
        for (rank, exit) in exits.into_iter().enumerate() {
            match exit {
                RankExit::Ok(r) => results[rank] = Some(r),
                RankExit::Crashed(c) => failures.push((rank, c.to_string())),
                RankExit::Panicked(msg) => failures.push((rank, msg)),
            }
        }
        if !failures.is_empty() {
            return Err(WorldError { failures });
        }
        let max_vtime = vtimes.iter().cloned().fold(0.0, f64::max);
        Ok(WorldReport {
            ranks: p,
            rank_vtimes: vtimes,
            max_vtime,
            wall,
            results: results
                .into_iter()
                .map(|r| r.expect("no failure but missing result"))
                .collect(),
            fault_stats: fstats,
            journal,
        })
    }

    /// Run `program` tolerating plan-injected crashes: a killed rank
    /// yields `None` in `results` and an entry in `crashed`, while the
    /// surviving ranks keep running (the world is *not* poisoned for an
    /// injected crash). Genuine panics still poison and fail the run.
    pub fn run_faulty<R, F>(self, program: F) -> Result<FaultyWorldReport<R>, WorldError>
    where
        R: Send + 'static,
        F: Fn(&mut Proc) -> R + Send + Sync + 'static,
    {
        let (exits, vtimes, fstats, journal, wall) = self.run_inner(true, program);
        let p = exits.len();
        let mut results: Vec<Option<R>> = (0..p).map(|_| None).collect();
        let mut crashed = Vec::new();
        let mut failures = Vec::new();
        for (rank, exit) in exits.into_iter().enumerate() {
            match exit {
                RankExit::Ok(r) => results[rank] = Some(r),
                RankExit::Crashed(_) => crashed.push(rank),
                RankExit::Panicked(msg) => failures.push((rank, msg)),
            }
        }
        if !failures.is_empty() {
            return Err(WorldError { failures });
        }
        let max_vtime = vtimes.iter().cloned().fold(0.0, f64::max);
        Ok(FaultyWorldReport {
            ranks: p,
            rank_vtimes: vtimes,
            max_vtime,
            wall,
            results,
            crashed,
            fault_stats: fstats,
            journal,
        })
    }

    /// Spawn, run, and join all ranks. `tolerant` controls whether a
    /// plan-injected crash poisons the world (it never does for tolerant
    /// runs — survivors are expected to shrink and continue).
    #[allow(clippy::type_complexity)]
    fn run_inner<R, F>(
        self,
        tolerant: bool,
        program: F,
    ) -> (
        Vec<RankExit<R>>,
        Vec<VirtualTime>,
        Vec<FaultStats>,
        Option<obs::RunJournal>,
        Duration,
    )
    where
        R: Send + 'static,
        F: Fn(&mut Proc) -> R + Send + Sync + 'static,
    {
        let p = self.config.ranks;
        let record = self.config.record;
        let armed = self.config.faults.is_some();
        let sched = match self.config.sched {
            SchedMode::Events => Some(Sched::new(p, self.config.effective_workers())),
            SchedMode::Threads => None,
        };
        let shared = Arc::new(Shared {
            mailboxes: (0..p).map(|_| Mailbox::new()).collect(),
            cost: self.config.cost,
            size: p,
            poisoned: AtomicBool::new(false),
            faults: self.config.faults,
            dead: (0..p).map(|_| AtomicBool::new(false)).collect(),
            sched,
        });
        let program = Arc::new(program);
        let started = Instant::now();

        let mut handles = Vec::with_capacity(p);
        for rank in 0..p {
            let shared = Arc::clone(&shared);
            let program = Arc::clone(&program);
            let builder = std::thread::Builder::new()
                .name(format!("mpisim-rank-{rank}"))
                .stack_size(self.config.stack_bytes);
            let handle = builder
                .spawn(move || {
                    let recorder = if record {
                        obs::Recorder::enabled(rank)
                    } else {
                        obs::Recorder::disabled()
                    };
                    let mut proc = Proc::new(rank, Arc::clone(&shared), recorder);
                    // Event mode: wait for this task's first run permit, so
                    // at most `workers` rank programs execute at once.
                    if let Some(s) = &shared.sched {
                        s.start(rank);
                    }
                    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| program(&mut proc)));
                    // Read clock, fault tallies, and the flight log after
                    // the unwind: all three stay meaningful for a crashed
                    // rank (its log ends at the crash event).
                    let vtime = proc.now();
                    let fstats = proc.fault_stats();
                    let obs_log = proc.take_obs_log();
                    let exit = match outcome {
                        Ok(r) => RankExit::Ok(r),
                        Err(payload) => match payload.downcast::<InjectedCrash>() {
                            Ok(crash) if tolerant => RankExit::Crashed(*crash),
                            Ok(crash) => {
                                shared.poisoned.store(true, Ordering::SeqCst);
                                shared.wake_all();
                                RankExit::Crashed(*crash)
                            }
                            Err(payload) => {
                                shared.poisoned.store(true, Ordering::SeqCst);
                                shared.wake_all();
                                RankExit::Panicked(panic_message(payload))
                            }
                        },
                    };
                    // Release the run permit for good (the remaining work
                    // above is local bookkeeping, not simulation).
                    if let Some(s) = &shared.sched {
                        s.exit(rank);
                    }
                    (exit, vtime, fstats, obs_log)
                })
                .expect("failed to spawn rank thread");
            handles.push(handle);
        }

        let mut exits: Vec<RankExit<R>> = Vec::with_capacity(p);
        let mut vtimes = vec![0.0; p];
        let mut fstats = vec![FaultStats::default(); p];
        let mut obs_logs = Vec::new();
        for (rank, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok((exit, vt, fs, log)) => {
                    exits.push(exit);
                    vtimes[rank] = vt;
                    fstats[rank] = fs;
                    obs_logs.extend(log);
                }
                // The thread died outside catch_unwind (e.g. a panic while
                // panicking); report what we can.
                Err(payload) => exits.push(RankExit::Panicked(panic_message(payload))),
            }
        }
        let journal = record.then(|| obs::RunJournal::gather(p, armed, obs_logs));
        (exits, vtimes, fstats, journal, started.elapsed())
    }
}

/// How one rank's thread ended.
enum RankExit<R> {
    /// Normal completion.
    Ok(R),
    /// Killed by the fault plan's crash fault.
    Crashed(InjectedCrash),
    /// A genuine panic (bug or poison abort).
    Panicked(String),
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(c) = payload.downcast_ref::<InjectedCrash>() {
        c.to_string()
    } else if let Some(e) = payload.downcast_ref::<crate::reliable::ProtocolError>() {
        e.to_string()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::ReduceOp;
    use crate::proc::{SrcSel, TagSel};
    use crate::Comm;

    #[test]
    fn single_rank_world() {
        let report = World::new(WorldConfig::for_tests(1))
            .run(|proc| proc.rank())
            .unwrap();
        assert_eq!(report.results, vec![0]);
    }

    #[test]
    fn results_in_rank_order() {
        let report = World::new(WorldConfig::for_tests(8))
            .run(|proc| proc.rank() * 10)
            .unwrap();
        assert_eq!(report.results, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn ring_pass() {
        // Each rank sends its rank to the right neighbor and receives from
        // the left one.
        let report = World::new(WorldConfig::for_tests(5))
            .run(|proc| {
                let p = proc.size();
                let me = proc.rank();
                let right = (me + 1) % p;
                let left = (me + p - 1) % p;
                proc.send_u64(right, 1, Comm::WORLD, me as u64);
                let (src, val) = proc.recv_u64(SrcSel::Rank(left), TagSel::Tag(1), Comm::WORLD);
                assert_eq!(src, left);
                val
            })
            .unwrap();
        assert_eq!(report.results, vec![4, 0, 1, 2, 3]);
    }

    #[test]
    fn barrier_all_sizes() {
        for p in [1, 2, 3, 4, 5, 7, 8, 16, 33] {
            World::new(WorldConfig::for_tests(p))
                .run(|proc| {
                    for _ in 0..3 {
                        proc.barrier(Comm::WORLD);
                    }
                })
                .unwrap_or_else(|e| panic!("barrier failed for p={p}: {e}"));
        }
    }

    #[test]
    fn reduce_sum_all_sizes_and_roots() {
        for p in [1usize, 2, 3, 5, 8, 13, 16] {
            for root in [0, p / 2, p - 1] {
                let expect: u64 = (0..p as u64).sum();
                World::new(WorldConfig::for_tests(p))
                    .run(move |proc| {
                        let out =
                            proc.reduce_u64(proc.rank() as u64, ReduceOp::Sum, root, Comm::WORLD);
                        if proc.rank() == root {
                            assert_eq!(out, Some(expect), "p={p} root={root}");
                        } else {
                            assert_eq!(out, None);
                        }
                    })
                    .unwrap();
            }
        }
    }

    #[test]
    fn reduce_max_min() {
        World::new(WorldConfig::for_tests(9))
            .run(|proc| {
                let v = proc.rank() as u64 * 7 % 5; // some non-monotone values
                let mx = proc.allreduce_u64(v, ReduceOp::Max, Comm::WORLD);
                let mn = proc.allreduce_u64(v, ReduceOp::Min, Comm::WORLD);
                let all: Vec<u64> = (0..9u64).map(|r| r * 7 % 5).collect();
                assert_eq!(mx, *all.iter().max().unwrap());
                assert_eq!(mn, *all.iter().min().unwrap());
            })
            .unwrap();
    }

    #[test]
    fn bcast_all_sizes_and_roots() {
        for p in [1usize, 2, 3, 5, 8, 13] {
            for root in [0, p - 1] {
                World::new(WorldConfig::for_tests(p))
                    .run(move |proc| {
                        let payload = if proc.rank() == root {
                            vec![0xab; 37]
                        } else {
                            vec![]
                        };
                        let out = proc.bcast(&payload, root, Comm::WORLD);
                        assert_eq!(out, vec![0xab; 37], "p={p} root={root}");
                    })
                    .unwrap();
            }
        }
    }

    #[test]
    fn gather_collects_all() {
        for p in [1usize, 2, 3, 6, 11] {
            World::new(WorldConfig::for_tests(p))
                .run(move |proc| {
                    let mine = vec![proc.rank() as u8; proc.rank() + 1];
                    let out = proc.gather(&mine, 0, Comm::WORLD);
                    if proc.rank() == 0 {
                        let v = out.expect("root gets data");
                        for (r, data) in v.iter().enumerate() {
                            assert_eq!(data, &vec![r as u8; r + 1], "p={p}");
                        }
                    } else {
                        assert!(out.is_none());
                    }
                })
                .unwrap();
        }
    }

    #[test]
    fn allreduce_sum_convenience() {
        let report = World::new(WorldConfig::for_tests(16))
            .run(|proc| proc.allreduce_sum(1))
            .unwrap();
        assert!(report.results.iter().all(|&r| r == 16));
    }

    #[test]
    fn virtual_time_advances_with_compute() {
        let report = World::new(WorldConfig::for_tests(2))
            .run(|proc| {
                proc.compute(1.0);
                proc.barrier(Comm::WORLD);
                proc.now()
            })
            .unwrap();
        assert!(report.max_vtime >= 1.0);
        assert!(report.results.iter().all(|&t| t >= 1.0));
    }

    #[test]
    fn recv_synchronizes_clocks() {
        // Rank 0 computes for 5 virtual seconds then sends; rank 1 receives
        // immediately. Rank 1's clock must advance past 5.0.
        let report = World::new(WorldConfig::for_tests(2))
            .run(|proc| {
                if proc.rank() == 0 {
                    proc.compute(5.0);
                    proc.send(1, 0, Comm::WORLD, &[1]);
                } else {
                    proc.recv(SrcSel::Rank(0), TagSel::Tag(0), Comm::WORLD);
                }
                proc.now()
            })
            .unwrap();
        assert!(
            report.results[1] > 5.0,
            "receiver clock must sync to sender"
        );
    }

    #[test]
    fn panic_in_one_rank_reported_not_deadlocked() {
        let err = World::new(WorldConfig::for_tests(3))
            .run(|proc| {
                if proc.rank() == 1 {
                    panic!("injected failure");
                }
                // Ranks 0 and 2 block forever waiting for rank 1; the
                // poison mechanism must unblock them.
                proc.recv(SrcSel::Rank(1), TagSel::Tag(9), Comm::WORLD);
            })
            .unwrap_err();
        assert!(err
            .failures
            .iter()
            .any(|(r, m)| *r == 1 && m.contains("injected")));
        // The blocked ranks fail with the poison message rather than hanging.
        assert_eq!(err.failures.len(), 3);
    }

    #[test]
    fn stats_count_messages() {
        let report = World::new(WorldConfig::for_tests(2))
            .run(|proc| {
                if proc.rank() == 0 {
                    proc.send(1, 0, Comm::WORLD, &[0; 100]);
                } else {
                    proc.recv(SrcSel::Rank(0), TagSel::Tag(0), Comm::WORLD);
                }
                proc.stats()
            })
            .unwrap();
        assert_eq!(report.results[0].msgs_sent, 1);
        assert_eq!(report.results[0].bytes_sent, 100);
        assert_eq!(report.results[1].msgs_recvd, 1);
        assert_eq!(report.results[1].bytes_recvd, 100);
    }

    #[test]
    fn sendrecv_head_on_exchange() {
        // Classic stencil exchange: both partners sendrecv each other.
        World::new(WorldConfig::for_tests(2))
            .run(|proc| {
                let peer = 1 - proc.rank();
                let info = proc.sendrecv(
                    peer,
                    7,
                    &[proc.rank() as u8],
                    SrcSel::Rank(peer),
                    TagSel::Tag(7),
                    Comm::WORLD,
                );
                assert_eq!(info.payload, vec![peer as u8]);
            })
            .unwrap();
    }

    #[test]
    fn injected_crash_shrinks_run_faulty() {
        // Each rank self-sends 10 messages on the tool plane; rank 2 is
        // scheduled to die partway through.
        let plan = FaultPlan::new(1).crash_rank(2, 5);
        let report = World::new(WorldConfig::for_tests(4).with_faults(plan))
            .run_faulty(|proc| {
                let me = proc.rank();
                for i in 0..10u32 {
                    proc.send(me, i, Comm::TOOL, &[i as u8]);
                    proc.recv(SrcSel::Rank(me), TagSel::Tag(i), Comm::TOOL);
                }
                me
            })
            .unwrap();
        assert_eq!(report.crashed, vec![2]);
        assert!(report.results[2].is_none());
        assert!(report.fault_stats[2].crashed);
        for r in [0, 1, 3] {
            assert_eq!(report.results[r], Some(r));
            assert!(!report.fault_stats[r].crashed);
        }
    }

    #[test]
    fn injected_crash_fails_plain_run() {
        // `run` (intolerant) treats a scheduled crash like any panic.
        let plan = FaultPlan::new(1).crash_rank(1, 0);
        let err = World::new(WorldConfig::for_tests(2).with_faults(plan))
            .run(|proc| {
                proc.send(proc.rank(), 0, Comm::TOOL, &[]);
            })
            .unwrap_err();
        assert!(err
            .failures
            .iter()
            .any(|(r, m)| *r == 1 && m.contains("injected crash")));
    }

    #[test]
    fn death_detection_prefers_delivered_messages() {
        // Rank 1 sends once (op 0) and dies attempting its second send
        // (op 1). Rank 0 must always receive the first message and always
        // observe death for the second — message-vs-death is decided by
        // the dead rank's program position, not scheduling.
        for _ in 0..20 {
            let plan = FaultPlan::new(0).crash_rank(1, 1);
            let report = World::new(WorldConfig::for_tests(2).with_faults(plan))
                .run_faulty(|proc| {
                    if proc.rank() == 1 {
                        proc.send(0, 5, Comm::TOOL, b"first");
                        proc.send(0, 6, Comm::TOOL, b"second");
                        (false, false)
                    } else {
                        let first = proc.recv_or_dead(1, 5, Comm::TOOL).is_some();
                        let second = proc.recv_or_dead(1, 6, Comm::TOOL).is_some();
                        (first, second)
                    }
                })
                .unwrap();
            assert_eq!(report.results[0], Some((true, false)));
            assert_eq!(report.crashed, vec![1]);
        }
    }

    #[test]
    fn reliable_transfer_survives_lossy_link() {
        let plan = FaultPlan::new(0xBEEF)
            .drop_per_mille(300)
            .corrupt_per_mille(300)
            .duplicate_per_mille(200)
            .delay(100, 0.1);
        let payload: Vec<u8> = (0..2000u32).map(|i| (i % 251) as u8).collect();
        let expect = payload.clone();
        let report = World::new(WorldConfig::for_tests(2).with_faults(plan))
            .run_faulty(move |proc| {
                if proc.rank() == 0 {
                    for _ in 0..20 {
                        let got = proc
                            .reliable_recv(
                                1,
                                7,
                                Comm::TOOL,
                                crate::reliable::RetryPolicy::Unlimited,
                            )
                            .unwrap();
                        assert_eq!(got, expect);
                    }
                } else {
                    for _ in 0..20 {
                        proc.reliable_send(0, 7, Comm::TOOL, &payload).unwrap();
                    }
                }
            })
            .unwrap();
        let s = report.fault_stats[1];
        assert!(
            s.drops + s.corruptions + s.duplicates > 0,
            "a 30%/30%/20% plan must actually injure 20 transfers: {s:?}"
        );
        assert!(
            s.drops == 0 || s.retransmits > 0,
            "every observed drop must be retransmitted"
        );
    }

    #[test]
    fn reliable_recv_degrades_after_retry_budget() {
        // Every frame corrupt: the receiver re-requests once, then gives
        // up with a typed error; neither side panics or hangs.
        let plan = FaultPlan::new(42).corrupt_per_mille(1000);
        let report = World::new(WorldConfig::for_tests(2).with_faults(plan))
            .run_faulty(|proc| {
                if proc.rank() == 0 {
                    proc.reliable_recv(1, 9, Comm::TOOL, crate::reliable::RetryPolicy::Bounded(1))
                        .is_err()
                } else {
                    proc.reliable_send(0, 9, Comm::TOOL, b"doomed payload")
                        .is_err()
                }
            })
            .unwrap();
        assert_eq!(report.results, vec![Some(true), Some(true)]);
        assert_eq!(report.fault_stats[0].nacks_sent, 1);
    }

    #[test]
    fn resilient_allreduce_excludes_dead_rank() {
        let plan = FaultPlan::new(3).crash_rank(2, 0);
        let report = World::new(WorldConfig::for_tests(4).with_faults(plan))
            .run_faulty(|proc| {
                proc.resilient_allreduce_u64((proc.rank() + 1) as u64, ReduceOp::Sum, Comm::TOOL)
            })
            .unwrap();
        for r in [0, 1, 3] {
            let (sum, alive) = report.results[r].clone().unwrap();
            assert_eq!(sum, 1 + 2 + 4, "rank 2's contribution must be absent");
            assert_eq!(alive, vec![0, 1, 3]);
        }
        assert_eq!(report.crashed, vec![2]);
    }

    #[test]
    fn unarmed_world_reports_zero_fault_stats() {
        let report = World::new(WorldConfig::for_tests(3))
            .run(|proc| proc.allreduce_sum(1))
            .unwrap();
        assert!(report
            .fault_stats
            .iter()
            .all(|s| *s == FaultStats::default()));
    }

    #[test]
    fn unrecorded_world_has_no_journal() {
        let report = World::new(WorldConfig::for_tests(2))
            .run(|proc| proc.allreduce_sum(1))
            .unwrap();
        assert!(report.journal.is_none(), "recorder off => zero output");
    }

    #[test]
    fn recorder_gathers_a_journal_with_crash_and_fault_events() {
        let plan = FaultPlan::new(1).crash_rank(2, 5).corrupt_per_mille(1000);
        let report = World::new(WorldConfig::for_tests(4).with_faults(plan).with_recorder())
            .run_faulty(|proc| {
                let me = proc.rank();
                for i in 0..10u32 {
                    proc.send(me, i, Comm::TOOL, &[i as u8]);
                    proc.recv(SrcSel::Rank(me), TagSel::Tag(i), Comm::TOOL);
                }
                me
            })
            .unwrap();
        let j = report.journal.expect("recorder armed");
        assert!(j.armed);
        assert_eq!(j.ranks, 4);
        assert_eq!(j.logs.len(), 4);
        // Exactly the planned crash, attributed to the right rank and op,
        // survives the unwind into the gathered journal.
        let crashes: Vec<(usize, u64)> = j
            .events()
            .filter_map(|(rank, e)| match e.kind {
                obs::EventKind::Crash { op } => Some((rank, op)),
                _ => None,
            })
            .collect();
        assert_eq!(crashes, vec![(2, 5)]);
        // The 100% corruption plan fires on the (faultable) self-sends.
        assert!(j.count("fault") > 0, "corruption events recorded");
    }

    #[test]
    fn recorder_does_not_perturb_virtual_times() {
        let run_once = |record: bool| {
            let cfg = if record {
                WorldConfig::for_tests(3).with_recorder()
            } else {
                WorldConfig::for_tests(3)
            };
            World::new(cfg)
                .run(|proc| {
                    proc.compute(0.5);
                    proc.allreduce_sum(proc.rank() as u64)
                })
                .unwrap()
        };
        let bare = run_once(false);
        let recorded = run_once(true);
        assert_eq!(bare.rank_vtimes, recorded.rank_vtimes);
        assert_eq!(bare.results, recorded.results);
    }

    #[test]
    fn moderately_large_world() {
        // Smoke-test the thread machinery at a P beyond toy sizes.
        let report = World::new(WorldConfig::new(128))
            .run(|proc| proc.allreduce_sum(proc.rank() as u64))
            .unwrap();
        let expect: u64 = (0..128).sum();
        assert!(report.results.iter().all(|&r| r == expect));
    }
}
