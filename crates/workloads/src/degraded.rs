//! Degraded-mode scenario workloads: ground-truth targets for the
//! streaming anomaly detector.
//!
//! Three injectable degradations (see FAULTS.md "Degradation model") each
//! get a workload shaped so the detector's per-cluster robust statistics
//! have a healthy majority to score against:
//!
//! * **straggler ring** — [`DegradedRing`] under [`straggler_plan`]: rank
//!   `p - 1` computes 4x slower than its cohort, which flags `slow` at
//!   nearly every marker.
//! * **ramping lossy link** — [`DegradedRing`] or [`DegradedGrid`] under
//!   [`ramp_plan`]: rank 1's outgoing tool-plane frames degrade
//!   progressively, so its reliable-heartbeat retransmit counter climbs
//!   while its peers' stay at zero, flagging `flaky` once the ramp bites.
//! * **imbalanced grid** — [`DegradedGrid`] under [`imbalance_plan`]: the
//!   heavy corner of the row-major decomposition (ranks `p - ceil(p/4)..p`)
//!   runs 2.5x compute, flagging `slow` on every heavy rank.
//!
//! Both workloads alternate their frame labels every [`PHASE_LEN`] steps
//! (the chaos-harness idiom), so the Call-Path changes periodically and
//! Chameleon re-clusters through the armed protocol while degraded.
//!
//! ## The tool-plane heartbeat
//!
//! Application traffic rides `Comm::WORLD` and is never faulted — the
//! lossy link models a degrading *tool* network — so a workload that only
//! exchanges halos generates no retransmit signal at all. Each step both
//! workloads therefore run [`HEARTBEAT_FRAMES`] reliable stop-and-wait
//! round-trips per rank around the ring on a dedicated tool-plane tag:
//! a steady, faultable send stream whose per-marker retransmit deltas are
//! the `flaky` signal. Unarmed, the heartbeat degenerates to raw sends
//! (the reliable layer's fault-free fast path), so fault-free runs stay
//! byte-identical. The even/odd send-receive phasing below requires an
//! even world size.

use mpisim::{Comm, FaultPlan, RetryPolicy, Tag};
use obs::DetectorConfig;
use scalatrace::TracedProc;

use crate::grid::Grid2D;
use crate::{Class, RunSpec, Workload};

/// Steps per behavioral phase: the frame label alternates every block so
/// the Call-Path changes and Chameleon re-clusters mid-degradation.
pub const PHASE_LEN: usize = 10;

/// Main timesteps of both degraded workloads (no trailing phases).
pub const DEGRADED_STEPS: usize = 60;

/// Tool-plane tag of the reliable heartbeat. Distinct from the runtime's
/// CKPT/HEALTH/FLAG tags; the reliable layer keeps per-`(peer, tag)`
/// sequence numbers, so the stream cannot collide with runtime traffic.
pub const HEARTBEAT_TAG: Tag = 7;

/// Reliable heartbeat round-trips per rank per step. Sized so a ramped
/// link's per-marker retransmit delta clears the detector threshold well
/// before the ramp nears the 1000‰ cap.
pub const HEARTBEAT_FRAMES: usize = 8;

/// Virtual compute seconds per step. Large enough that the compute
/// signal's relative floor (`rel_floor * median`) dominates the absolute
/// floor, keeping `slow` scores scale-free.
const COMPUTE_DT: f64 = 2e-4;

/// One ring of reliable tool-plane round-trips: each rank sends
/// [`HEARTBEAT_FRAMES`] frames to its ring successor and receives as many
/// from its predecessor. Stop-and-wait sends block until acknowledged, so
/// the ring is phased — even ranks send first, odd ranks receive first —
/// which pairs every transfer with a ready receiver (hence the even-`p`
/// requirement).
fn heartbeat(tp: &mut TracedProc) {
    let p = tp.size();
    if p < 2 {
        return;
    }
    debug_assert!(p.is_multiple_of(2), "heartbeat phasing needs an even ring");
    let me = tp.rank();
    let next = (me + 1) % p;
    let prev = (me + p - 1) % p;
    let proc = tp.inner();
    let payload = *b"degraded-heartbt";
    for _ in 0..HEARTBEAT_FRAMES {
        if me.is_multiple_of(2) {
            proc.reliable_send(next, HEARTBEAT_TAG, Comm::TOOL, &payload)
                .expect("degraded plans neither crash nor corrupt");
            proc.reliable_recv(prev, HEARTBEAT_TAG, Comm::TOOL, RetryPolicy::Bounded(2))
                .expect("degraded plans neither crash nor corrupt");
        } else {
            proc.reliable_recv(prev, HEARTBEAT_TAG, Comm::TOOL, RetryPolicy::Bounded(2))
                .expect("degraded plans neither crash nor corrupt");
            proc.reliable_send(next, HEARTBEAT_TAG, Comm::TOOL, &payload)
                .expect("degraded plans neither crash nor corrupt");
        }
    }
}

/// A ring exchange with two behavioral cohorts: even ranks and odd ranks
/// wrap their communication in different frames, so clustering (K = 2)
/// splits the world into two healthy-majority cohorts and the detector
/// scores each rank against its own half.
#[derive(Debug, Clone, Copy)]
pub struct DegradedRing;

impl Workload for DegradedRing {
    fn name(&self) -> &'static str {
        "DRING"
    }

    fn spec(&self, _class: Class, p: usize) -> RunSpec {
        assert!(
            p >= 4 && p.is_multiple_of(2),
            "DRING needs an even world of at least 4 ranks, got {p}"
        );
        RunSpec {
            main_steps: DEGRADED_STEPS,
            phase_steps: vec![],
            call_frequency: 1,
            k: 2,
        }
    }

    fn step(&self, tp: &mut TracedProc, _class: Class, step: usize) {
        let p = tp.size();
        let me = tp.rank();
        let frame: &'static str = match ((step / PHASE_LEN) % 2, me % 2) {
            (0, 0) => "dring_a_even",
            (0, _) => "dring_a_odd",
            (1, 0) => "dring_b_even",
            _ => "dring_b_odd",
        };
        tp.frame(frame, |tp| {
            tp.compute(COMPUTE_DT);
            let next = (me + 1) % p;
            let prev = (me + p - 1) % p;
            tp.send("dring_halo_send", next, 21, &[0u8; 64]);
            let _ = tp.recv("dring_halo_recv", prev, 21, 64);
        });
        heartbeat(tp);
    }
}

/// A uniform 2-D torus halo exchange: every rank has exactly four
/// (wrapped) neighbors, so the whole world shares one Call-Path and
/// clusters into a single cohort (K = 1) — the shape that exposes the
/// imbalance plan's heavy corner to a world-wide robust median.
#[derive(Debug, Clone, Copy)]
pub struct DegradedGrid;

impl Workload for DegradedGrid {
    fn name(&self) -> &'static str {
        "DGRID"
    }

    fn spec(&self, _class: Class, p: usize) -> RunSpec {
        assert!(
            p >= 4 && p.is_multiple_of(2),
            "DGRID needs an even world of at least 4 ranks, got {p}"
        );
        RunSpec {
            main_steps: DEGRADED_STEPS,
            phase_steps: vec![],
            call_frequency: 1,
            k: 1,
        }
    }

    fn step(&self, tp: &mut TracedProc, _class: Class, step: usize) {
        let p = tp.size();
        let me = tp.rank();
        let g = Grid2D::new(p);
        let (row, col) = g.coords(me);
        let north = g.rank_at((row + g.rows() - 1) % g.rows(), col);
        let south = g.rank_at((row + 1) % g.rows(), col);
        let west = g.rank_at(row, (col + g.cols() - 1) % g.cols());
        let east = g.rank_at(row, (col + 1) % g.cols());
        let frame: &'static str = if (step / PHASE_LEN).is_multiple_of(2) {
            "dgrid_a"
        } else {
            "dgrid_b"
        };
        tp.frame(frame, |tp| {
            tp.compute(COMPUTE_DT);
            // Eager sends first, then matched receives: distinct tags per
            // direction keep the wrapped 2-row case (north == south)
            // unambiguous.
            tp.send("dgrid_halo_n", north, 24, &[0u8; 64]);
            tp.send("dgrid_halo_s", south, 25, &[0u8; 64]);
            tp.send("dgrid_halo_w", west, 26, &[0u8; 64]);
            tp.send("dgrid_halo_e", east, 27, &[0u8; 64]);
            let _ = tp.recv("dgrid_halo_recv_s", south, 24, 64);
            let _ = tp.recv("dgrid_halo_recv_n", north, 25, 64);
            let _ = tp.recv("dgrid_halo_recv_e", east, 26, 64);
            let _ = tp.recv("dgrid_halo_recv_w", west, 27, 64);
        });
        heartbeat(tp);
    }
}

/// Straggler scenario: rank `p - 1` computes 4x slower. In DRING that
/// rank sits in the odd cohort with a healthy majority; in DGRID the
/// whole world is its cohort.
pub fn straggler_plan(seed: u64, p: usize) -> FaultPlan {
    assert!(p >= 2);
    FaultPlan::new(seed).straggle_rank(p - 1, 4.0)
}

/// Topology-skewed imbalance: the heavy corner (the top `ceil(p/4)`
/// ranks) runs 2.5x compute.
pub fn imbalance_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed).imbalance(1.5)
}

/// Progressively-ramping lossy link on rank 1's outgoing tool-plane
/// sends: from nonce 120 the drop rate climbs 30‰ every 30 nonces
/// (1‰ per nonce), with delay climbing at half that slope. The run
/// consumes well under 1000 send nonces on the target even with
/// retransmissions, so the effective drop rate stays far from the 1000‰
/// cap (at which a retransmit loop could never terminate).
pub fn ramp_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .ramp_link(1, 120, 30, 30, 15)
        .delay(0, 2e-4)
}

/// Detector tuning for the degraded scenarios: the default thresholds
/// with a tighter retransmit floor — heartbeat retransmit deltas are
/// small integers per marker, and every healthy peer's delta is exactly
/// zero, so a floor of one frame still cannot flag a healthy rank.
pub fn degraded_detector() -> DetectorConfig {
    DetectorConfig {
        retry_floor: 1,
        ..DetectorConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::driver::{run, Mode, Overrides};
    use crate::registry;

    fn run_armed(
        name: &str,
        p: usize,
        plan: FaultPlan,
        detector: Option<DetectorConfig>,
    ) -> crate::driver::RunReport {
        run(
            registry::workload(name, 1),
            Class::A,
            p,
            Mode::Chameleon,
            Overrides {
                journal: true,
                faults: Some(plan),
                detector,
                ..Default::default()
            },
        )
    }

    fn flagged_ranks(report: &crate::driver::RunReport) -> Vec<usize> {
        let journal = report.journal.as_ref().expect("journal armed");
        let mut ranks: Vec<usize> = obs::query::anomalies(journal)
            .iter()
            .map(|row| row.rank as usize)
            .collect();
        ranks.sort_unstable();
        ranks.dedup();
        ranks
    }

    #[test]
    fn specs_are_sane_and_unscaled() {
        for name in ["DRING", "DGRID"] {
            let w = registry::workload(name, 10);
            assert_eq!(&w.name(), &name);
            let spec = w.spec(Class::A, 6);
            assert_eq!(spec.total_steps(), DEGRADED_STEPS, "scale must not bite");
            assert_eq!(spec.call_frequency, 1);
        }
        assert_eq!(registry::workload("DRING", 1).spec(Class::A, 6).k, 2);
        assert_eq!(registry::workload("DGRID", 1).spec(Class::A, 6).k, 1);
    }

    #[test]
    #[should_panic(expected = "even world")]
    fn odd_world_rejected() {
        DegradedRing.spec(Class::A, 5);
    }

    #[test]
    fn ramp_plan_stays_far_from_the_cap() {
        // The retransmit loop can only terminate while the effective drop
        // rate is below 1000‰. A degraded run consumes well under 800
        // target nonces (8 heartbeat frames x 60 steps plus runtime folds
        // and retransmissions); leave the cap beyond twice that.
        let plan = ramp_plan(1);
        let (drop, _) = plan.effective_rates(1, 800);
        assert!(
            drop < 700,
            "drop at nonce 800 is {drop}, too close to the cap"
        );
        assert_eq!(plan.effective_rates(1, 119), (0, 0), "quiet before onset");
        // Non-target senders never ramp.
        assert_eq!(plan.effective_rates(0, 800), (0, 0));
    }

    #[test]
    fn plans_report_ground_truth() {
        assert_eq!(straggler_plan(3, 6).degraded_ranks(6), vec![5]);
        assert_eq!(imbalance_plan(3).degraded_ranks(6), vec![4, 5]);
        assert_eq!(ramp_plan(3).degraded_ranks(6), vec![1]);
    }

    #[test]
    fn fault_free_runs_complete_without_anomalies() {
        for name in ["DRING", "DGRID"] {
            let report = run_armed(name, 6, FaultPlan::new(5), Some(degraded_detector()));
            assert!(report.crashed.is_empty());
            assert!(report.global_trace.is_some());
            assert_eq!(
                flagged_ranks(&report),
                Vec::<usize>::new(),
                "{name}: no degradation, no anomalies"
            );
            for s in &report.fault_stats {
                assert_eq!(s.retransmits, 0, "{name}: nothing to retransmit");
            }
        }
    }

    #[test]
    fn straggler_is_flagged_in_the_ring() {
        let report = run_armed("DRING", 6, straggler_plan(1, 6), Some(degraded_detector()));
        assert_eq!(flagged_ranks(&report), vec![5]);
    }

    #[test]
    fn heavy_corner_is_flagged_in_the_grid() {
        let report = run_armed("DGRID", 6, imbalance_plan(1), Some(degraded_detector()));
        assert_eq!(flagged_ranks(&report), vec![4, 5]);
    }

    #[test]
    fn ramp_target_is_flagged_flaky() {
        let report = run_armed("DRING", 6, ramp_plan(1), Some(degraded_detector()));
        assert_eq!(flagged_ranks(&report), vec![1]);
        let journal = report.journal.as_ref().unwrap();
        assert!(
            obs::query::anomalies(journal)
                .iter()
                .all(|row| row.kind == obs::AnomalyKind::Flaky),
            "a lossy link is a flaky signal, not a slow one"
        );
        // The target's own retransmit counter carried the signal.
        assert!(report.fault_stats[1].retransmits > 0);
    }

    #[test]
    fn detector_off_ignores_degradation() {
        let report = run_armed("DRING", 6, straggler_plan(1, 6), None);
        assert_eq!(flagged_ranks(&report), Vec::<usize>::new());
        let s = &report.cham_stats[0];
        assert_eq!(s.anomaly_flags, 0);
        assert_eq!(s.quarantines, 0);
    }

    #[test]
    fn degraded_runs_are_deterministic() {
        let a = run_armed("DGRID", 6, imbalance_plan(2), Some(degraded_detector()));
        let b = run_armed("DGRID", 6, imbalance_plan(2), Some(degraded_detector()));
        assert_eq!(
            a.journal.unwrap().to_jsonl(),
            b.journal.unwrap().to_jsonl(),
            "same plan, same bytes"
        );
        assert_eq!(a.fault_stats, b.fault_stats);
    }

    #[test]
    fn mitigation_reduces_ramp_retransmits() {
        // Closing the loop must pay: demoting the flaky rank from lead
        // duty removes its reliable ship traffic, so the armed-detector
        // run retransmits strictly less than the detection-off run.
        let on = run_armed("DRING", 6, ramp_plan(1), Some(degraded_detector()));
        let off = run_armed("DRING", 6, ramp_plan(1), None);
        let sum = |r: &crate::driver::RunReport| -> u64 {
            r.fault_stats.iter().map(|s| s.retransmits).sum()
        };
        assert!(
            sum(&on) < sum(&off),
            "mitigation must reduce retransmits: on={} off={}",
            sum(&on),
            sum(&off)
        );
    }

    #[test]
    fn chameleon_stats_count_mitigation_actions() {
        let report = run_armed("DRING", 6, straggler_plan(1, 6), Some(degraded_detector()));
        let s = &report.cham_stats[0];
        assert!(
            s.anomaly_flags > 0,
            "the straggler flags at nearly every marker"
        );
        assert!(
            s.quarantines > 0,
            "a sustained straggler must be walled into a singleton"
        );
        let _ = Arc::new(DegradedRing); // workloads are object-safe
    }
}
