//! Sweep3D skeleton: discrete-ordinates particle transport wavefronts.
//!
//! Sweep3D (Koch, Baker, Alcouffe) sweeps the spatial mesh once per
//! ordinate octant; on the 2-D process decomposition each octant is a
//! wavefront starting from one grid corner. The skeleton runs the four
//! corner-directed wavefronts per timestep and models the code's
//! **load imbalance** with rank-dependent compute times — which, per the
//! paper, "does not affect clustering since delta times are represented
//! in histograms for repetitive signatures."
//!
//! Boundary-position classes again give 9 Call-Path groups (Table I:
//! K = 9 for S3D).

use scalatrace::TracedProc;

use crate::grid::Grid2D;
use crate::{scale, Class, RunSpec, Workload};

/// Sweep direction: which corner the wavefront starts from.
#[derive(Debug, Clone, Copy)]
struct Octant {
    /// Sweep moves south (true) or north (false).
    southward: bool,
    /// Sweep moves east (true) or west (false).
    eastward: bool,
    tag: u32,
    recv_site_v: &'static str,
    recv_site_h: &'static str,
    send_site_v: &'static str,
    send_site_h: &'static str,
}

const OCTANTS: [Octant; 4] = [
    Octant {
        southward: true,
        eastward: true,
        tag: 40,
        recv_site_v: "oct_se_recv_n",
        recv_site_h: "oct_se_recv_w",
        send_site_v: "oct_se_send_s",
        send_site_h: "oct_se_send_e",
    },
    Octant {
        southward: true,
        eastward: false,
        tag: 42,
        recv_site_v: "oct_sw_recv_n",
        recv_site_h: "oct_sw_recv_e",
        send_site_v: "oct_sw_send_s",
        send_site_h: "oct_sw_send_w",
    },
    Octant {
        southward: false,
        eastward: true,
        tag: 44,
        recv_site_v: "oct_ne_recv_s",
        recv_site_h: "oct_ne_recv_w",
        send_site_v: "oct_ne_send_n",
        send_site_h: "oct_ne_send_e",
    },
    Octant {
        southward: false,
        eastward: false,
        tag: 46,
        recv_site_v: "oct_nw_recv_s",
        recv_site_h: "oct_nw_recv_e",
        send_site_v: "oct_nw_send_n",
        send_site_h: "oct_nw_send_w",
    },
];

/// The Sweep3D skeleton (strong- or weak-scaling flavour).
#[derive(Debug, Clone, Copy)]
pub struct Sweep3d {
    weak: bool,
}

impl Sweep3d {
    /// Strong-scaling configuration (the paper's 100×100×1000 problem).
    pub fn strong() -> Self {
        Sweep3d { weak: false }
    }

    /// Weak-scaling configuration (Figures 6/7).
    pub fn weak() -> Self {
        Sweep3d { weak: true }
    }

    fn sweep(tp: &mut TracedProc, grid: Grid2D, oct: &Octant, bytes: usize, dt: f64) {
        let me = tp.rank();
        let payload = vec![0u8; bytes + scale::count_jitter(me, grid.len())];
        let (recv_v, send_v) = if oct.southward {
            (grid.north(me), grid.south(me))
        } else {
            (grid.south(me), grid.north(me))
        };
        let (recv_h, send_h) = if oct.eastward {
            (grid.west(me), grid.east(me))
        } else {
            (grid.east(me), grid.west(me))
        };
        if let Some(src) = recv_v {
            tp.recv(oct.recv_site_v, src, oct.tag, bytes);
        }
        if let Some(src) = recv_h {
            tp.recv(oct.recv_site_h, src, oct.tag + 1, bytes);
        }
        // Load imbalance: per-rank work skew up to 30%.
        let skew = 1.0 + 0.1 * (me % 4) as f64;
        tp.compute(dt * skew);
        if let Some(dst) = send_v {
            tp.send(oct.send_site_v, dst, oct.tag, &payload);
        }
        if let Some(dst) = send_h {
            tp.send(oct.send_site_h, dst, oct.tag + 1, &payload);
        }
    }
}

impl Workload for Sweep3d {
    fn name(&self) -> &'static str {
        if self.weak {
            "S3DW"
        } else {
            "S3D"
        }
    }

    fn spec(&self, _class: Class, _p: usize) -> RunSpec {
        // Table II S3D: 10 iterations, freq 1 -> 10 markers,
        // 1 C / 7 L / 2 AT (one trailing phase).
        RunSpec {
            main_steps: 9,
            phase_steps: vec![1],
            call_frequency: 1,
            k: 9,
        }
    }

    fn step(&self, tp: &mut TracedProc, class: Class, _step: usize) {
        let p = tp.size();
        let grid = Grid2D::new(p);
        let bytes = scale::face_bytes(class, p, self.weak);
        let dt = scale::compute_dt(class, p, self.weak) / OCTANTS.len() as f64;
        tp.frame("transport_sweep", |tp| {
            for oct in &OCTANTS {
                Sweep3d::sweep(tp, grid, oct, bytes, dt);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::{World, WorldConfig};
    use std::collections::HashSet;

    #[test]
    fn spec_matches_table2() {
        let spec = Sweep3d::strong().spec(Class::D, 1024);
        assert_eq!(spec.total_steps(), 10);
        assert_eq!(spec.expected_marker_calls(), 10);
        assert_eq!(spec.k, 9);
    }

    #[test]
    fn nine_groups_and_no_deadlock() {
        let report = World::new(WorldConfig::for_tests(16))
            .run(|proc| {
                let mut tp = TracedProc::new(proc);
                Sweep3d::strong().step(&mut tp, Class::A, 0);
                tp.tracer_mut().rotate_interval().call_path
            })
            .unwrap();
        let distinct: HashSet<_> = report.results.iter().collect();
        assert_eq!(distinct.len(), 9);
    }

    #[test]
    fn load_imbalance_spreads_completion_times() {
        let report = World::new(WorldConfig::for_tests(8))
            .run(|proc| {
                let mut tp = TracedProc::new(proc);
                for step in 0..2 {
                    Sweep3d::strong().step(&mut tp, Class::A, step);
                }
                tp.now()
            })
            .unwrap();
        let min = report.results.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = report.results.iter().cloned().fold(0.0, f64::max);
        assert!(max > min, "imbalance must show up in virtual times");
    }

    #[test]
    fn repetitive_signature_despite_imbalance() {
        // The paper's point: time skew lives in histograms, not in the
        // Call-Path signature, so repetition is still detected.
        let report = World::new(WorldConfig::for_tests(4))
            .run(|proc| {
                let mut tp = TracedProc::new(proc);
                Sweep3d::strong().step(&mut tp, Class::A, 0);
                let a = tp.tracer_mut().rotate_interval().call_path;
                Sweep3d::strong().step(&mut tp, Class::A, 1);
                let b = tp.tracer_mut().rotate_interval().call_path;
                a == b
            })
            .unwrap();
        assert!(report.results.iter().all(|&same| same));
    }
}
