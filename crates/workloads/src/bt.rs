//! NPB BT skeleton: block-tridiagonal ADI solver.
//!
//! BT solves three alternating-direction implicit sweeps per timestep.
//! The skeleton uses a 1-D line decomposition (left/right face exchanges
//! per sweep), which yields exactly the paper's **3 Call-Path groups**
//! (Table I: K = 3 for BT): the left boundary rank (no west neighbor),
//! interior ranks, and the right boundary rank (no east neighbor).

use scalatrace::TracedProc;

use crate::{scale, Class, RunSpec, Workload};

/// Tag pairs per sweep direction (out, in).
const TAGS: [(u32, u32); 3] = [(10, 11), (12, 13), (14, 15)];

/// The BT skeleton.
#[derive(Debug, Clone, Copy, Default)]
pub struct Bt;

impl Bt {
    /// One directional sweep: exchange faces with both line neighbors.
    fn sweep(
        tp: &mut TracedProc,
        sites: (&'static str, &'static str),
        tags: (u32, u32),
        bytes: usize,
    ) {
        let me = tp.rank();
        let p = tp.size();
        let payload = vec![0u8; bytes + scale::count_jitter(me, p)];
        // Exchange with the west (lower-rank) neighbor.
        if me > 0 {
            tp.sendrecv(sites.0, me - 1, tags.1, &payload, me - 1, tags.0);
        }
        // Exchange with the east (higher-rank) neighbor.
        if me + 1 < p {
            tp.sendrecv(sites.1, me + 1, tags.0, &payload, me + 1, tags.1);
        }
    }
}

impl Workload for Bt {
    fn name(&self) -> &'static str {
        "BT"
    }

    fn spec(&self, _class: Class, _p: usize) -> RunSpec {
        // Table II: 250 iterations, Call_Frequency 25 -> 10 marker calls,
        // states 1 C / 8 L / 1 AT (no trailing phase: BT's verification
        // happens after the timestep loop, outside the marker region).
        RunSpec {
            main_steps: 250,
            phase_steps: vec![],
            call_frequency: 25,
            k: 3,
        }
    }

    fn step(&self, tp: &mut TracedProc, class: Class, _step: usize) {
        let p = tp.size();
        let bytes = scale::face_bytes(class, p, false);
        let dt = scale::compute_dt(class, p, false);
        tp.frame("adi", |tp| {
            tp.frame("x_solve", |tp| {
                tp.compute(dt / 3.0);
                Bt::sweep(tp, ("x_west", "x_east"), TAGS[0], bytes);
            });
            tp.frame("y_solve", |tp| {
                tp.compute(dt / 3.0);
                Bt::sweep(tp, ("y_west", "y_east"), TAGS[1], bytes);
            });
            tp.frame("z_solve", |tp| {
                tp.compute(dt / 3.0);
                Bt::sweep(tp, ("z_west", "z_east"), TAGS[2], bytes);
            });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::{World, WorldConfig};
    use std::collections::HashSet;

    #[test]
    fn spec_matches_table2() {
        let spec = Bt.spec(Class::D, 1024);
        assert_eq!(spec.total_steps(), 250);
        assert_eq!(spec.call_frequency, 25);
        assert_eq!(spec.expected_marker_calls(), 10);
        assert_eq!(spec.k, 3);
    }

    #[test]
    fn three_callpath_groups() {
        // Run one interval on 6 ranks; exactly 3 distinct Call-Paths.
        let report = World::new(WorldConfig::for_tests(6))
            .run(|proc| {
                let mut tp = TracedProc::new(proc);
                Bt.step(&mut tp, Class::A, 0);
                tp.tracer_mut().rotate_interval().call_path
            })
            .unwrap();
        let distinct: HashSet<_> = report.results.iter().collect();
        assert_eq!(distinct.len(), 3, "left end, interior, right end");
        // Interior ranks all share one Call-Path.
        assert_eq!(report.results[1], report.results[2]);
        assert_eq!(report.results[2], report.results[4]);
    }

    #[test]
    fn steps_are_repetitive() {
        // The same step twice yields the same Call-Path — the property
        // the transition graph votes on.
        let report = World::new(WorldConfig::for_tests(4))
            .run(|proc| {
                let mut tp = TracedProc::new(proc);
                Bt.step(&mut tp, Class::A, 0);
                let a = tp.tracer_mut().rotate_interval().call_path;
                Bt.step(&mut tp, Class::A, 1);
                let b = tp.tracer_mut().rotate_interval().call_path;
                a == b
            })
            .unwrap();
        assert!(report.results.iter().all(|&same| same));
    }

    #[test]
    fn single_rank_step_no_deadlock() {
        World::new(WorldConfig::for_tests(1))
            .run(|proc| {
                let mut tp = TracedProc::new(proc);
                Bt.step(&mut tp, Class::A, 0);
            })
            .unwrap();
    }
}
