//! # workloads — communication skeletons of the paper's benchmarks
//!
//! Chameleon never inspects computation — only the MPI event stream, its
//! calling contexts, and its parameters. These skeletons reproduce the
//! *communication structure* of each benchmark in the paper's evaluation
//! (who talks to whom, from which call sites, how often), parameterized by
//! NPB-style input classes:
//!
//! | workload | pattern | Call-Path groups (Table I's K) |
//! |----------|---------|--------------------------------|
//! | [`bt::Bt`], [`sp::Sp`] | 1-D ADI line sweeps (left/right face exchanges) | 3 (left end, interior, right end) |
//! | [`lu::Lu`] | 2-D SSOR wavefront (lower+upper sweeps) | 9 (3 row-positions × 3 col-positions) |
//! | [`cg::Cg`] | transpose exchange + dot-product allreduces | 2 (diagonal vs off-diagonal) |
//! | [`sweep3d::Sweep3d`] | 2-D octant wavefronts with load imbalance | 9 |
//! | [`pop::Pop`] | 1-D halo + fixed-point solver loops + global reductions | 3 |
//! | [`emf::Emf`] | master–worker task farm (mpi4py-style pipeline) | 2 (master, workers) |
//!
//! Each workload also defines its marker schedule (`RunSpec`): main
//! timesteps, `Call_Frequency`, the paper's K (Table I), and trailing
//! *phase steps* whose distinct call sites reproduce the trailing
//! All-Tracing markers of Table II (scientific codes end with
//! verification/norm phases that change the Call-Path).
//!
//! [`driver`] runs any workload under any instrumentation mode
//! (uninstrumented, ScalaTrace, ACURDION, Chameleon) and returns uniform
//! measurements — the substrate for every table and figure harness.

pub mod bt;
pub mod cg;
pub mod chaos;
pub mod degraded;
pub mod driver;
pub mod emf;
pub mod grid;
pub mod lu;
pub mod matrix;
pub mod pop;
pub mod registry;
pub mod sp;
pub mod sweep3d;

use scalatrace::TracedProc;

/// NPB-style input classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Class {
    /// Smallest.
    A,
    /// Small.
    B,
    /// Medium.
    C,
    /// Large (the paper's default).
    D,
}

impl Class {
    /// Linear problem-size multiplier.
    pub fn multiplier(self) -> usize {
        match self {
            Class::A => 1,
            Class::B => 2,
            Class::C => 4,
            Class::D => 8,
        }
    }

    /// All classes, ascending.
    pub const ALL: [Class; 4] = [Class::A, Class::B, Class::C, Class::D];

    /// Short label.
    pub fn label(self) -> &'static str {
        match self {
            Class::A => "A",
            Class::B => "B",
            Class::C => "C",
            Class::D => "D",
        }
    }
}

/// The marker/clustering schedule of one workload configuration.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Timesteps of the main (repetitive) phase.
    pub main_steps: usize,
    /// Trailing phases; each entry is a step count executed with a
    /// distinct Call-Path (verification, norm checks, output).
    pub phase_steps: Vec<usize>,
    /// `Call_Frequency` (markers between transition-graph runs).
    pub call_frequency: u64,
    /// Cluster budget K (paper Table I).
    pub k: usize,
}

impl RunSpec {
    /// Total timesteps including trailing phases.
    pub fn total_steps(&self) -> usize {
        self.main_steps + self.phase_steps.iter().sum::<usize>()
    }

    /// Which trailing phase (0-based) a step belongs to; `None` during the
    /// main phase.
    pub fn phase_of(&self, step: usize) -> Option<usize> {
        if step < self.main_steps {
            return None;
        }
        let mut offset = self.main_steps;
        for (i, &len) in self.phase_steps.iter().enumerate() {
            offset += len;
            if step < offset {
                return Some(i);
            }
        }
        None // past the end; callers never ask
    }

    /// Expected number of processed markers (one marker per step,
    /// frequency-filtered).
    pub fn expected_marker_calls(&self) -> u64 {
        self.total_steps() as u64 / self.call_frequency
    }
}

/// Distinct frame labels for trailing phases (enough for every spec used
/// in the evaluation).
pub const PHASE_FRAMES: [&str; 6] = [
    "verify_phase_0",
    "verify_phase_1",
    "verify_phase_2",
    "verify_phase_3",
    "verify_phase_4",
    "verify_phase_5",
];

/// Message-size / compute-time scaling shared by the skeletons.
pub mod scale {
    use super::Class;

    /// Bytes per halo/face message.
    ///
    /// Strong scaling: the global problem is fixed, so per-rank faces
    /// shrink as the grid grows (edge length is proportional to 1/sqrt(P)).
    /// Weak scaling: the per-rank subdomain is fixed, so faces stay
    /// constant.
    pub fn face_bytes(class: Class, p: usize, weak: bool) -> usize {
        let base = 4096 * class.multiplier();
        if weak {
            base / 4
        } else {
            (base * 4 / ((p as f64).sqrt().max(1.0) as usize)).max(64)
        }
    }

    /// Rank-dependent message-size perturbation, in bytes.
    ///
    /// Real codes do not send perfectly uniform messages: subdomain
    /// remainders, graph-partitioned boundaries, and data-dependent
    /// payloads make parameters vary across ranks — which is exactly why
    /// the ScalaTrace clustering line of work clusters on *parameters*
    /// and why real inter-node merges blow up with P (events with
    /// differing parameters cannot fold, so the global trace grows).
    /// The number of distinct size classes grows like sqrt(P), modeling
    /// remainder patterns of a 2-D decomposition.
    pub fn count_jitter(me: usize, p: usize) -> usize {
        let classes = ((p as f64).sqrt() as usize).max(2);
        (me % classes) * 8
    }

    /// Virtual compute seconds per rank per timestep.
    pub fn compute_dt(class: Class, p: usize, weak: bool) -> f64 {
        let per_rank_weak = 2e-4 * class.multiplier() as f64;
        if weak {
            per_rank_weak
        } else {
            // Fixed aggregate work split across ranks.
            0.05 * class.multiplier() as f64 / p as f64
        }
    }
}

/// A benchmark communication skeleton.
pub trait Workload: Send + Sync {
    /// Benchmark name ("BT", "LU", ...).
    fn name(&self) -> &'static str;

    /// The marker schedule for a class/size combination.
    fn spec(&self, class: Class, p: usize) -> RunSpec;

    /// Execute one timestep (main or phase; consult `spec.phase_of(step)`)
    /// on this rank. The driver wraps phase steps in their distinguishing
    /// frames — implementations just do their communication.
    fn step(&self, tp: &mut TracedProc, class: Class, step: usize);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_multipliers_monotone() {
        let mults: Vec<usize> = Class::ALL.iter().map(|c| c.multiplier()).collect();
        assert!(mults.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn runspec_phase_lookup() {
        let spec = RunSpec {
            main_steps: 10,
            phase_steps: vec![3, 2],
            call_frequency: 5,
            k: 3,
        };
        assert_eq!(spec.total_steps(), 15);
        assert_eq!(spec.phase_of(0), None);
        assert_eq!(spec.phase_of(9), None);
        assert_eq!(spec.phase_of(10), Some(0));
        assert_eq!(spec.phase_of(12), Some(0));
        assert_eq!(spec.phase_of(13), Some(1));
        assert_eq!(spec.phase_of(14), Some(1));
        assert_eq!(spec.expected_marker_calls(), 3);
    }

    #[test]
    fn runspec_no_phases() {
        let spec = RunSpec {
            main_steps: 250,
            phase_steps: vec![],
            call_frequency: 25,
            k: 3,
        };
        assert_eq!(spec.total_steps(), 250);
        assert_eq!(spec.expected_marker_calls(), 10);
        assert_eq!(spec.phase_of(249), None);
    }
}
