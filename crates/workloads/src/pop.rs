//! POP skeleton: the Parallel Ocean Program's timestep communication.
//!
//! POP advances an ocean model with 2-D halo exchanges plus a barotropic
//! solver whose inner iterations are global reductions. The paper notes
//! POP "experiences different data-dependent convergence points in
//! timestep computation" and that Chameleon handles it with "the automatic
//! filter from [2] for call parameters so that the communication pattern
//! becomes regular and can be represented by 3 clusters". The skeleton
//! models the *post-filter* view: a fixed solver-iteration count per
//! timestep (the filter's regularization) with the residual time variance
//! expressed through delta times.
//!
//! A 1-D block-row decomposition gives the paper's **3 Call-Path groups**
//! (Table I: K = 3 for POP).

use scalatrace::TracedProc;

use crate::{scale, Class, RunSpec, Workload};

const TAG_HALO_N: u32 = 50;
const TAG_HALO_S: u32 = 51;
/// Solver (conjugate-gradient) iterations per timestep after the
/// parameter filter regularizes the pattern.
const SOLVER_ITERS: usize = 3;

/// The POP skeleton.
#[derive(Debug, Clone, Copy, Default)]
pub struct Pop;

impl Workload for Pop {
    fn name(&self) -> &'static str {
        "POP"
    }

    fn spec(&self, _class: Class, _p: usize) -> RunSpec {
        // Table II POP: 20 iterations, freq 1 -> 20 markers,
        // 1 C / 16 L / 3 AT (two trailing diagnostics phases).
        RunSpec {
            main_steps: 18,
            phase_steps: vec![1, 1],
            call_frequency: 1,
            k: 3,
        }
    }

    fn step(&self, tp: &mut TracedProc, class: Class, step: usize) {
        let me = tp.rank();
        let p = tp.size();
        let bytes = scale::face_bytes(class, p, false);
        let dt = scale::compute_dt(class, p, false);
        // Data-dependent compute-time wobble (convergence speed varies per
        // timestep); lands in the delta-time histograms, not in the
        // Call-Path.
        let wobble = 1.0 + 0.2 * ((step % 5) as f64 / 5.0);
        tp.frame("baroclinic", |tp| {
            let payload = vec![0u8; bytes + scale::count_jitter(me, p)];
            if me > 0 {
                tp.sendrecv(
                    "halo_north",
                    me - 1,
                    TAG_HALO_S,
                    &payload,
                    me - 1,
                    TAG_HALO_N,
                );
            }
            if me + 1 < p {
                tp.sendrecv(
                    "halo_south",
                    me + 1,
                    TAG_HALO_N,
                    &payload,
                    me + 1,
                    TAG_HALO_S,
                );
            }
            tp.compute(dt * 0.6 * wobble);
        });
        tp.frame("barotropic_solver", |tp| {
            for _ in 0..SOLVER_ITERS {
                let payload = vec![0u8; bytes / 4 + scale::count_jitter(me, p)];
                if me > 0 {
                    tp.sendrecv(
                        "solver_halo_n",
                        me - 1,
                        TAG_HALO_S + 10,
                        &payload,
                        me - 1,
                        TAG_HALO_N + 10,
                    );
                }
                if me + 1 < p {
                    tp.sendrecv(
                        "solver_halo_s",
                        me + 1,
                        TAG_HALO_N + 10,
                        &payload,
                        me + 1,
                        TAG_HALO_S + 10,
                    );
                }
                tp.compute(dt * 0.1 * wobble / SOLVER_ITERS as f64);
                tp.allreduce_sum("solver_residual", 1);
            }
        });
        tp.frame("diagnostics", |tp| {
            tp.allreduce_sum("global_energy", 1);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::{World, WorldConfig};
    use std::collections::HashSet;

    #[test]
    fn spec_matches_table2() {
        let spec = Pop.spec(Class::D, 1024);
        assert_eq!(spec.total_steps(), 20);
        assert_eq!(spec.expected_marker_calls(), 20);
        assert_eq!(spec.k, 3);
    }

    #[test]
    fn three_callpath_groups() {
        let report = World::new(WorldConfig::for_tests(6))
            .run(|proc| {
                let mut tp = TracedProc::new(proc);
                Pop.step(&mut tp, Class::A, 0);
                tp.tracer_mut().rotate_interval().call_path
            })
            .unwrap();
        let distinct: HashSet<_> = report.results.iter().collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn wobble_changes_times_not_signatures() {
        let report = World::new(WorldConfig::for_tests(2))
            .run(|proc| {
                let mut tp = TracedProc::new(proc);
                Pop.step(&mut tp, Class::A, 0);
                let t0 = tp.now();
                let a = tp.tracer_mut().rotate_interval().call_path;
                Pop.step(&mut tp, Class::A, 2); // different wobble
                let t1 = tp.now() - t0;
                let b = tp.tracer_mut().rotate_interval().call_path;
                (a == b, t0, t1)
            })
            .unwrap();
        for &(same, t0, t1) in &report.results {
            assert!(same, "signatures must be stable across wobble");
            assert!((t0 - t1).abs() > 1e-12, "times must differ");
        }
    }
}
