//! Chaos harness: an NAS-style ring workload driven under a randomized
//! fault plan.
//!
//! The harness exercises the whole shrink-and-continue stack at once: a
//! rank crashes mid-run, the link corrupts/duplicates/delays tool
//! payloads, and the run must still complete with a non-empty online
//! trace at the online root plus counted degradation — never a hang.
//! Fault plans are pure functions of a seed, so every CI failure is
//! replayable from the seed alone (see FAULTS.md).
//!
//! Two fault shapes are exercised:
//!
//! * [`chaos_plan`] — a non-root rank dies mid-run; the run shrinks and
//!   continues in-place.
//! * [`root_crash_plan`] — rank 0 itself dies. With durable checkpoints
//!   armed ([`run_chaos_supervised`]) the deputy is promoted in-place and
//!   restores the online trace from its replica; if the run nevertheless
//!   aborts (a mid-slice wedge caught by the typed timeout backstop), the
//!   supervisor restarts from the latest on-disk checkpoint and replays
//!   forward deterministically.

use std::path::{Path, PathBuf};

use chameleon::{Chameleon, ChameleonConfig, ChameleonStats, Checkpoint};
use mpisim::{FaultPlan, FaultStats, Rank, World, WorldConfig};
use scalatrace::{CompressedTrace, TracedProc};

/// The fault plan for one chaos seed over `p` ranks: one mid-run rank
/// crash (never rank 0 — root death is [`root_crash_plan`]'s job) plus a
/// lossy link at 2% corruption, 0.5% duplication, and 0.5% delay.
/// Deterministic in `(seed, p)`.
pub fn chaos_plan(seed: u64, p: usize) -> FaultPlan {
    assert!(p >= 2, "chaos needs a rank that can die and a survivor");
    let victim = 1 + (seed as usize % (p - 1));
    let at_op = 40 + seed % 80;
    FaultPlan::new(seed)
        .crash_rank(victim, at_op)
        .corrupt_per_mille(20)
        .duplicate_per_mille(5)
        .delay(5, 2e-4)
}

/// A chaos plan that kills rank 0 — the online-trace root — at `at_op`,
/// under the same lossy link as [`chaos_plan`]. Schedule `at_op` from
/// [`marker_entry_ops`] to land the crash on a marker boundary, where the
/// resilient collectives detect it cleanly and promote the deputy.
pub fn root_crash_plan(seed: u64, at_op: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .crash_rank(0, at_op)
        .corrupt_per_mille(20)
        .duplicate_per_mille(5)
        .delay(5, 2e-4)
}

/// Probe run: execute the chaos workload under `plan` with its crash
/// stripped and return rank 0's op count at the entry of each marker.
/// Fault coins are pure in `(seed, sender, send_nonce)` and a crash only
/// perturbs the victim's own timeline after it fires, so scheduling
/// `crash_rank(0, ops[m])` in a second run kills rank 0 exactly at its
/// next op — the marker-`m+1` resilient barrier.
pub fn marker_entry_ops(p: usize, steps: usize, mut plan: FaultPlan) -> Vec<u64> {
    plan.crash = None;
    let config = WorldConfig::for_tests(p).with_faults(plan);
    let report = World::new(config)
        .run_faulty(move |proc| {
            let mut tp = TracedProc::new(proc);
            let mut cham = Chameleon::new(ChameleonConfig::with_k(p));
            let mut ops = Vec::with_capacity(steps);
            for step in 0..steps {
                let alive = cham.alive().to_vec();
                chaos_step(&mut tp, &alive, step);
                ops.push(tp.inner().op_count());
                cham.marker(&mut tp);
            }
            cham.finalize(&mut tp);
            ops
        })
        .expect("crash-free probe run cannot fail");
    report.results[0]
        .clone()
        .expect("rank 0 survives a crash-free probe")
}

/// Steps per behavioral phase: the frame label alternates every block,
/// so the Call-Path changes and Chameleon re-clusters — each boundary
/// drives a flush merge plus a fresh clustering through the armed
/// protocol (NAS codes end phases with verification/norm steps the same
/// way).
pub const PHASE_LEN: usize = 10;

/// One ring timestep over the *agreed* surviving participant set: each
/// survivor sends to its successor and receives from its predecessor in
/// the shrunk ring. The receive tolerates a predecessor that died after
/// the last agreement (`recv_dead_aware`), so a mid-slice crash degrades
/// the slice instead of wedging the ring.
pub fn chaos_step(tp: &mut TracedProc, alive: &[Rank], step: usize) {
    let ring: Vec<Rank> = if alive.is_empty() {
        (0..tp.size()).collect()
    } else {
        alive.to_vec()
    };
    let me = tp.rank();
    let i = ring
        .iter()
        .position(|&r| r == me)
        .expect("a running rank is always in the agreed ring");
    let frame: &'static str = if (step / PHASE_LEN).is_multiple_of(2) {
        "chaos_ring_even"
    } else {
        "chaos_ring_odd"
    };
    tp.frame(frame, |tp| {
        tp.compute(1e-5);
        if ring.len() > 1 {
            let next = ring[(i + 1) % ring.len()];
            let prev = ring[(i + ring.len() - 1) % ring.len()];
            tp.send("chaos_halo_send", next, 11, &[0u8; 64]);
            let _ = tp.recv_dead_aware("chaos_halo_recv", prev, 11, 64);
        }
    });
}

/// Everything a chaos run produces, for assertions and failure artifacts.
#[derive(Debug)]
pub struct ChaosOutcome {
    /// The online global trace, from whichever survivor roots it — rank 0
    /// normally, the promoted deputy after a root crash.
    pub online_trace: CompressedTrace,
    /// Per-rank stats; `None` for the crashed rank.
    pub stats: Vec<Option<ChameleonStats>>,
    /// Ranks the plan killed.
    pub crashed: Vec<Rank>,
    /// Per-rank fault counters from the simulator.
    pub fault_stats: Vec<FaultStats>,
    /// The flight-recorder journal ([`run_chaos_recorded`] only).
    pub journal: Option<obs::RunJournal>,
}

/// Run `steps` chaos timesteps over `p` ranks under `plan` and return the
/// survivors' outcome. K is set to `p` so the cluster budget never forces
/// lead sharing — any behavioral split still elects per-group leads after
/// the ring shrinks.
pub fn run_chaos(p: usize, steps: usize, plan: FaultPlan) -> ChaosOutcome {
    run_chaos_with(p, steps, plan, false)
}

/// [`run_chaos`] with the flight recorder armed: the outcome additionally
/// carries the gathered run journal (crashed ranks included — their logs
/// survive the unwind).
pub fn run_chaos_recorded(p: usize, steps: usize, plan: FaultPlan) -> ChaosOutcome {
    run_chaos_with(p, steps, plan, true)
}

fn run_chaos_with(p: usize, steps: usize, plan: FaultPlan, record: bool) -> ChaosOutcome {
    run_chaos_result(p, steps, plan, record, ChameleonConfig::with_k(p))
        .expect("chaos run must degrade, not fail the world")
}

/// Run the chaos workload under an explicit Chameleon configuration
/// (checkpoint stride/dir/resume included) and surface a fatal world
/// abort — a wedge caught by the typed timeout backstop, or a non-crash
/// panic — as `Err` instead of panicking, so a supervisor can restart.
pub fn run_chaos_result(
    p: usize,
    steps: usize,
    plan: FaultPlan,
    record: bool,
    cham_cfg: ChameleonConfig,
) -> Result<ChaosOutcome, String> {
    run_chaos_result_on(p, steps, plan, record, cham_cfg, false)
}

/// [`run_chaos_result`] with an explicit scheduler choice:
/// `thread_sched = true` runs the world on the pre-refactor free-running
/// thread scheduler (the differential-testing oracle) instead of the
/// default event scheduler. Outcomes are byte-identical between the two
/// — `tests/sched_differential.rs` pins that over the full chaos grid.
pub fn run_chaos_result_on(
    p: usize,
    steps: usize,
    plan: FaultPlan,
    record: bool,
    cham_cfg: ChameleonConfig,
    thread_sched: bool,
) -> Result<ChaosOutcome, String> {
    let mut config = WorldConfig::for_tests(p).with_faults(plan);
    if thread_sched {
        config = config.with_thread_scheduler();
    }
    if record {
        config = config.with_recorder();
    }
    let report = World::new(config)
        .run_faulty(move |proc| {
            let mut tp = TracedProc::new(proc);
            let mut cham = Chameleon::new(cham_cfg.clone());
            for step in 0..steps {
                let alive = cham.alive().to_vec();
                chaos_step(&mut tp, &alive, step);
                cham.marker(&mut tp);
            }
            cham.finalize(&mut tp)
        })
        .map_err(|e| e.to_string())?;
    let mut stats = Vec::with_capacity(p);
    let mut online_trace = None;
    for result in report.results.into_iter() {
        match result {
            Some(outcome) => {
                if let Some(trace) = outcome.online_trace {
                    online_trace = Some(trace);
                }
                stats.push(Some(outcome.stats));
            }
            None => stats.push(None),
        }
    }
    // `CHAM_JOURNAL=<path>` drops the recorded journal to disk without
    // writing Rust (same hook as the bench observability experiment).
    if let (Some(path), Some(journal)) = (std::env::var_os("CHAM_JOURNAL"), &report.journal) {
        if let Err(e) = std::fs::write(&path, journal.to_jsonl()) {
            eprintln!("CHAM_JOURNAL {}: write failed: {e}", path.to_string_lossy());
        }
    }
    Ok(ChaosOutcome {
        online_trace: online_trace.expect("some survivor roots the online trace"),
        stats,
        crashed: report.crashed,
        fault_stats: report.fault_stats,
        journal: report.journal,
    })
}

/// Outcome of a supervised chaos run.
#[derive(Debug)]
pub struct SupervisedOutcome {
    /// The final completed run's outcome.
    pub outcome: ChaosOutcome,
    /// Supervisor restarts performed (0 = the first attempt completed).
    pub restarts: u32,
    /// Marker of the on-disk checkpoint the restart resumed from, if any.
    pub resumed_marker: Option<u64>,
}

/// Supervisor mode: run the chaos workload with durable checkpoints
/// (every `stride` markers, persisted into `ckpt_dir`). If the attempt
/// aborts fatally — a mid-slice wedge the typed timeout backstop turned
/// into a world failure — restart once from the latest on-disk
/// checkpoint: the crash is consumed (it already fired; the restarted
/// job gets fresh nodes), the lossy link stays armed so the replay's
/// votes are deterministic, and the run fast-forwards to the checkpoint
/// marker before continuing normally.
pub fn run_chaos_supervised(
    p: usize,
    steps: usize,
    plan: FaultPlan,
    stride: u64,
    ckpt_dir: &Path,
    record: bool,
) -> SupervisedOutcome {
    let base_cfg = || {
        ChameleonConfig::with_k(p)
            .with_checkpoint_stride(stride)
            .with_checkpoint_dir(ckpt_dir)
    };
    match run_chaos_result(p, steps, plan.clone(), record, base_cfg()) {
        Ok(outcome) => SupervisedOutcome {
            outcome,
            restarts: 0,
            resumed_marker: None,
        },
        Err(first) => {
            let mut retry_plan = plan;
            retry_plan.crash = None;
            let mut cfg = base_cfg();
            let mut resumed_marker = None;
            match latest_checkpoint(ckpt_dir) {
                Some((marker, path)) => match std::fs::read(&path)
                    .map_err(|e| e.to_string())
                    .and_then(|b| Checkpoint::decode(&b).map_err(|e| e.to_string()))
                {
                    Ok(ckpt) => {
                        cfg = cfg.with_resume(ckpt);
                        resumed_marker = Some(marker);
                    }
                    Err(e) => eprintln!(
                        "supervisor: checkpoint {} unusable ({e}); replaying from scratch",
                        path.display()
                    ),
                },
                None => eprintln!(
                    "supervisor: no checkpoint in {}; replaying from scratch",
                    ckpt_dir.display()
                ),
            }
            let outcome =
                run_chaos_result(p, steps, retry_plan, record, cfg).unwrap_or_else(|second| {
                    panic!("supervised restart failed twice: first [{first}]; second [{second}]")
                });
            SupervisedOutcome {
                outcome,
                restarts: 1,
                resumed_marker,
            }
        }
    }
}

/// The highest-marker `ckpt-<marker>.bin` blob in `dir`, if any.
pub fn latest_checkpoint(dir: &Path) -> Option<(u64, PathBuf)> {
    let entries = std::fs::read_dir(dir).ok()?;
    entries
        .flatten()
        .filter_map(|entry| {
            let name = entry.file_name();
            let marker: u64 = name
                .to_str()?
                .strip_prefix("ckpt-")?
                .strip_suffix(".bin")?
                .parse()
                .ok()?;
            Some((marker, entry.path()))
        })
        .max_by_key(|&(marker, _)| marker)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_deterministic_and_spares_rank_zero() {
        for seed in 0..32 {
            let a = chaos_plan(seed, 6);
            let b = chaos_plan(seed, 6);
            assert_eq!(format!("{a}"), format!("{b}"));
            let crash = a.crash.expect("chaos always crashes someone");
            assert!(crash.rank >= 1 && crash.rank < 6);
        }
    }

    #[test]
    fn root_crash_plan_targets_rank_zero() {
        let plan = root_crash_plan(3, 99);
        let crash = plan.crash.expect("root crash plan always crashes");
        assert_eq!(crash.rank, 0);
        assert_eq!(crash.at_op, 99);
    }

    #[test]
    fn latest_checkpoint_picks_highest_marker() {
        let dir = std::env::temp_dir().join(format!("cham_ckpt_scan_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for name in [
            "ckpt-000002.bin",
            "ckpt-000010.bin",
            "notes.txt",
            "ckpt-x.bin",
        ] {
            std::fs::write(dir.join(name), b"x").unwrap();
        }
        let (marker, path) = latest_checkpoint(&dir).expect("two well-formed blobs");
        assert_eq!(marker, 10);
        assert!(path.ends_with("ckpt-000010.bin"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn probe_ops_are_strictly_increasing() {
        let ops = marker_entry_ops(4, 12, chaos_plan(5, 4));
        assert_eq!(ops.len(), 12);
        assert!(ops.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn fault_free_chaos_ring_completes() {
        // The harness itself (shrink-aware ring + k=p config) must be a
        // well-formed workload when nothing is armed.
        let report = mpisim::World::new(mpisim::WorldConfig::for_tests(4))
            .run(|proc| {
                let mut tp = TracedProc::new(proc);
                let mut cham = Chameleon::new(ChameleonConfig::with_k(4));
                for step in 0..25 {
                    let alive = cham.alive().to_vec();
                    chaos_step(&mut tp, &alive, step);
                    cham.marker(&mut tp);
                }
                cham.finalize(&mut tp)
            })
            .unwrap();
        let online = report.results[0].online_trace.as_ref().unwrap();
        assert!(online.dynamic_size() > 0);
        for r in &report.results {
            assert_eq!(
                r.stats.degraded_slices, 0,
                "fault-free run degrades nothing"
            );
            assert_eq!(r.stats.lead_reelections, 0);
        }
    }

    #[test]
    fn recorded_chaos_journal_agrees_with_stats() {
        let plan = chaos_plan(7, 4);
        let crash = plan.crash.unwrap();
        let out = run_chaos_recorded(4, 40, plan);
        let j = out.journal.expect("recorded run must gather a journal");
        assert!(j.armed);
        // Exactly one crash event, on the planned victim at the planned op.
        let crashes: Vec<(usize, u64)> = j
            .events()
            .filter_map(|(rank, e)| match e.kind {
                obs::EventKind::Crash { op } => Some((rank, op)),
                _ => None,
            })
            .collect();
        assert_eq!(crashes, vec![(crash.rank, crash.at_op)]);
        // Every survivor logs the same re-elections the stats count.
        let s0 = out.stats[0].as_ref().unwrap();
        let reelects_rank0 = j
            .rank_log(0)
            .unwrap()
            .events
            .iter()
            .filter(|e| matches!(e.kind, obs::EventKind::Reelect { .. }))
            .count() as u64;
        assert_eq!(reelects_rank0, s0.lead_reelections);
    }

    #[test]
    fn crashed_rank_is_excluded_and_run_degrades() {
        let plan = chaos_plan(7, 4);
        let victim = plan.crash.unwrap().rank;
        let out = run_chaos(4, 40, plan);
        assert_eq!(out.crashed, vec![victim]);
        assert!(out.stats[victim].is_none());
        assert!(out.fault_stats[victim].crashed);
        assert!(out.online_trace.dynamic_size() > 0);
        let s0 = out.stats[0].as_ref().unwrap();
        assert!(
            s0.degraded_slices >= 1,
            "a mid-run crash must degrade at least one slice"
        );
    }
}
