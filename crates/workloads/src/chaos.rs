//! Chaos harness: an NAS-style ring workload driven under a randomized
//! fault plan.
//!
//! The harness exercises the whole shrink-and-continue stack at once: a
//! rank crashes mid-run, the link corrupts/duplicates/delays tool
//! payloads, and the run must still complete with a non-empty online
//! trace at rank 0 plus counted degradation — never a hang. Fault plans
//! are pure functions of a seed, so every CI failure is replayable from
//! the seed alone (see FAULTS.md).

use chameleon::{Chameleon, ChameleonConfig, ChameleonStats};
use mpisim::{FaultPlan, FaultStats, Rank, World, WorldConfig};
use scalatrace::{CompressedTrace, TracedProc};

/// The fault plan for one chaos seed over `p` ranks: one mid-run rank
/// crash (never rank 0 — it roots the online trace) plus a lossy link at
/// 2% corruption, 0.5% duplication, and 0.5% delay. Deterministic in
/// `(seed, p)`.
pub fn chaos_plan(seed: u64, p: usize) -> FaultPlan {
    assert!(p >= 2, "chaos needs a rank that can die and a survivor");
    let victim = 1 + (seed as usize % (p - 1));
    let at_op = 40 + seed % 80;
    FaultPlan::new(seed)
        .crash_rank(victim, at_op)
        .corrupt_per_mille(20)
        .duplicate_per_mille(5)
        .delay(5, 2e-4)
}

/// Steps per behavioral phase: the frame label alternates every block,
/// so the Call-Path changes and Chameleon re-clusters — each boundary
/// drives a flush merge plus a fresh clustering through the armed
/// protocol (NAS codes end phases with verification/norm steps the same
/// way).
pub const PHASE_LEN: usize = 10;

/// One ring timestep over the *agreed* surviving participant set: each
/// survivor sends to its successor and receives from its predecessor in
/// the shrunk ring. The receive tolerates a predecessor that died after
/// the last agreement (`recv_dead_aware`), so a mid-slice crash degrades
/// the slice instead of wedging the ring.
pub fn chaos_step(tp: &mut TracedProc, alive: &[Rank], step: usize) {
    let ring: Vec<Rank> = if alive.is_empty() {
        (0..tp.size()).collect()
    } else {
        alive.to_vec()
    };
    let me = tp.rank();
    let i = ring
        .iter()
        .position(|&r| r == me)
        .expect("a running rank is always in the agreed ring");
    let frame: &'static str = if (step / PHASE_LEN).is_multiple_of(2) {
        "chaos_ring_even"
    } else {
        "chaos_ring_odd"
    };
    tp.frame(frame, |tp| {
        tp.compute(1e-5);
        if ring.len() > 1 {
            let next = ring[(i + 1) % ring.len()];
            let prev = ring[(i + ring.len() - 1) % ring.len()];
            tp.send("chaos_halo_send", next, 11, &[0u8; 64]);
            let _ = tp.recv_dead_aware("chaos_halo_recv", prev, 11, 64);
        }
    });
}

/// Everything a chaos run produces, for assertions and failure artifacts.
#[derive(Debug)]
pub struct ChaosOutcome {
    /// The online global trace from rank 0 (rank 0 is immortal by plan
    /// validation, so this is always present on a completed run).
    pub online_trace: CompressedTrace,
    /// Per-rank stats; `None` for the crashed rank.
    pub stats: Vec<Option<ChameleonStats>>,
    /// Ranks the plan killed.
    pub crashed: Vec<Rank>,
    /// Per-rank fault counters from the simulator.
    pub fault_stats: Vec<FaultStats>,
    /// The flight-recorder journal ([`run_chaos_recorded`] only).
    pub journal: Option<obs::RunJournal>,
}

/// Run `steps` chaos timesteps over `p` ranks under `plan` and return the
/// survivors' outcome. K is set to `p` so the cluster budget never forces
/// lead sharing — any behavioral split still elects per-group leads after
/// the ring shrinks.
pub fn run_chaos(p: usize, steps: usize, plan: FaultPlan) -> ChaosOutcome {
    run_chaos_with(p, steps, plan, false)
}

/// [`run_chaos`] with the flight recorder armed: the outcome additionally
/// carries the gathered run journal (crashed ranks included — their logs
/// survive the unwind).
pub fn run_chaos_recorded(p: usize, steps: usize, plan: FaultPlan) -> ChaosOutcome {
    run_chaos_with(p, steps, plan, true)
}

fn run_chaos_with(p: usize, steps: usize, plan: FaultPlan, record: bool) -> ChaosOutcome {
    let mut config = WorldConfig::for_tests(p).with_faults(plan);
    if record {
        config = config.with_recorder();
    }
    let report = World::new(config)
        .run_faulty(move |proc| {
            let mut tp = TracedProc::new(proc);
            let mut cham = Chameleon::new(ChameleonConfig::with_k(p));
            for step in 0..steps {
                let alive = cham.alive().to_vec();
                chaos_step(&mut tp, &alive, step);
                cham.marker(&mut tp);
            }
            cham.finalize(&mut tp)
        })
        .expect("chaos run must degrade, not fail the world");
    let mut stats = Vec::with_capacity(p);
    let mut online_trace = None;
    for (rank, result) in report.results.into_iter().enumerate() {
        match result {
            Some(outcome) => {
                if rank == 0 {
                    online_trace = outcome.online_trace.clone();
                }
                stats.push(Some(outcome.stats));
            }
            None => stats.push(None),
        }
    }
    // `CHAM_JOURNAL=<path>` drops the recorded journal to disk without
    // writing Rust (same hook as the bench observability experiment).
    if let (Some(path), Some(journal)) = (std::env::var_os("CHAM_JOURNAL"), &report.journal) {
        if let Err(e) = std::fs::write(&path, journal.to_jsonl()) {
            eprintln!("CHAM_JOURNAL {}: write failed: {e}", path.to_string_lossy());
        }
    }
    ChaosOutcome {
        online_trace: online_trace.expect("rank 0 is immortal and roots the online trace"),
        stats,
        crashed: report.crashed,
        fault_stats: report.fault_stats,
        journal: report.journal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_deterministic_and_spares_rank_zero() {
        for seed in 0..32 {
            let a = chaos_plan(seed, 6);
            let b = chaos_plan(seed, 6);
            assert_eq!(format!("{a}"), format!("{b}"));
            let crash = a.crash.expect("chaos always crashes someone");
            assert!(crash.rank >= 1 && crash.rank < 6);
        }
    }

    #[test]
    fn fault_free_chaos_ring_completes() {
        // The harness itself (shrink-aware ring + k=p config) must be a
        // well-formed workload when nothing is armed.
        let report = mpisim::World::new(mpisim::WorldConfig::for_tests(4))
            .run(|proc| {
                let mut tp = TracedProc::new(proc);
                let mut cham = Chameleon::new(ChameleonConfig::with_k(4));
                for step in 0..25 {
                    let alive = cham.alive().to_vec();
                    chaos_step(&mut tp, &alive, step);
                    cham.marker(&mut tp);
                }
                cham.finalize(&mut tp)
            })
            .unwrap();
        let online = report.results[0].online_trace.as_ref().unwrap();
        assert!(online.dynamic_size() > 0);
        for r in &report.results {
            assert_eq!(
                r.stats.degraded_slices, 0,
                "fault-free run degrades nothing"
            );
            assert_eq!(r.stats.lead_reelections, 0);
        }
    }

    #[test]
    fn recorded_chaos_journal_agrees_with_stats() {
        let plan = chaos_plan(7, 4);
        let crash = plan.crash.unwrap();
        let out = run_chaos_recorded(4, 40, plan);
        let j = out.journal.expect("recorded run must gather a journal");
        assert!(j.armed);
        // Exactly one crash event, on the planned victim at the planned op.
        let crashes: Vec<(usize, u64)> = j
            .events()
            .filter_map(|(rank, e)| match e.kind {
                obs::EventKind::Crash { op } => Some((rank, op)),
                _ => None,
            })
            .collect();
        assert_eq!(crashes, vec![(crash.rank, crash.at_op)]);
        // Every survivor logs the same re-elections the stats count.
        let s0 = out.stats[0].as_ref().unwrap();
        let reelects_rank0 = j
            .rank_log(0)
            .unwrap()
            .events
            .iter()
            .filter(|e| matches!(e.kind, obs::EventKind::Reelect { .. }))
            .count() as u64;
        assert_eq!(reelects_rank0, s0.lead_reelections);
    }

    #[test]
    fn crashed_rank_is_excluded_and_run_degrades() {
        let plan = chaos_plan(7, 4);
        let victim = plan.crash.unwrap().rank;
        let out = run_chaos(4, 40, plan);
        assert_eq!(out.crashed, vec![victim]);
        assert!(out.stats[victim].is_none());
        assert!(out.fault_stats[victim].crashed);
        assert!(out.online_trace.dynamic_size() > 0);
        let s0 = out.stats[0].as_ref().unwrap();
        assert!(
            s0.degraded_slices >= 1,
            "a mid-run crash must degrade at least one slice"
        );
    }
}
