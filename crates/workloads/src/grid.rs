//! Process-grid helpers for the stencil/wavefront skeletons.

use mpisim::Rank;

/// A 2-D logical process grid over ranks `0..p` in row-major order, as
/// square as the factorization of `p` allows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid2D {
    rows: usize,
    cols: usize,
}

impl Grid2D {
    /// Most-square factorization of `p` (rows ≤ cols).
    pub fn new(p: usize) -> Self {
        assert!(p >= 1, "grid needs at least one rank");
        let mut rows = (p as f64).sqrt() as usize;
        while rows >= 1 {
            if p.is_multiple_of(rows) {
                return Grid2D {
                    rows,
                    cols: p / rows,
                };
            }
            rows -= 1;
        }
        unreachable!("1 always divides p");
    }

    /// Grid rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total ranks.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Row/column coordinates of a rank.
    pub fn coords(&self, rank: Rank) -> (usize, usize) {
        debug_assert!(rank < self.len());
        (rank / self.cols, rank % self.cols)
    }

    /// Rank at coordinates.
    pub fn rank_at(&self, row: usize, col: usize) -> Rank {
        debug_assert!(row < self.rows && col < self.cols);
        row * self.cols + col
    }

    /// Neighbor to the north (row - 1), if any.
    pub fn north(&self, rank: Rank) -> Option<Rank> {
        let (r, c) = self.coords(rank);
        (r > 0).then(|| self.rank_at(r - 1, c))
    }

    /// Neighbor to the south (row + 1), if any.
    pub fn south(&self, rank: Rank) -> Option<Rank> {
        let (r, c) = self.coords(rank);
        (r + 1 < self.rows).then(|| self.rank_at(r + 1, c))
    }

    /// Neighbor to the west (col - 1), if any.
    pub fn west(&self, rank: Rank) -> Option<Rank> {
        let (r, c) = self.coords(rank);
        (c > 0).then(|| self.rank_at(r, c - 1))
    }

    /// Neighbor to the east (col + 1), if any.
    pub fn east(&self, rank: Rank) -> Option<Rank> {
        let (r, c) = self.coords(rank);
        (c + 1 < self.cols).then(|| self.rank_at(r, c + 1))
    }

    /// Transpose partner (the CG exchange): rank at mirrored coordinates,
    /// when the grid is square; identity on the diagonal. For non-square
    /// grids, partners reflect within the leading square block and ranks
    /// outside it pair with themselves.
    pub fn transpose_partner(&self, rank: Rank) -> Rank {
        let (r, c) = self.coords(rank);
        let n = self.rows.min(self.cols);
        if r < n && c < n {
            self.rank_at(c, r)
        } else {
            rank
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_factorizations() {
        assert_eq!(Grid2D::new(16), Grid2D { rows: 4, cols: 4 });
        assert_eq!(Grid2D::new(64), Grid2D { rows: 8, cols: 8 });
        assert_eq!(Grid2D::new(1024), Grid2D { rows: 32, cols: 32 });
    }

    #[test]
    fn nonsquare_factorizations() {
        assert_eq!(Grid2D::new(12), Grid2D { rows: 3, cols: 4 });
        assert_eq!(Grid2D::new(2), Grid2D { rows: 1, cols: 2 });
        let prime = Grid2D::new(7);
        assert_eq!((prime.rows(), prime.cols()), (1, 7));
    }

    #[test]
    fn coords_roundtrip() {
        let g = Grid2D::new(24);
        for rank in 0..24 {
            let (r, c) = g.coords(rank);
            assert_eq!(g.rank_at(r, c), rank);
        }
    }

    #[test]
    fn neighbors_boundary_and_interior() {
        let g = Grid2D::new(16); // 4x4
                                 // Corner 0.
        assert_eq!(g.north(0), None);
        assert_eq!(g.west(0), None);
        assert_eq!(g.south(0), Some(4));
        assert_eq!(g.east(0), Some(1));
        // Interior 5 = (1,1).
        assert_eq!(g.north(5), Some(1));
        assert_eq!(g.south(5), Some(9));
        assert_eq!(g.west(5), Some(4));
        assert_eq!(g.east(5), Some(6));
        // Far corner 15.
        assert_eq!(g.south(15), None);
        assert_eq!(g.east(15), None);
    }

    #[test]
    fn neighbor_relations_symmetric() {
        let g = Grid2D::new(20);
        for rank in 0..20 {
            if let Some(e) = g.east(rank) {
                assert_eq!(g.west(e), Some(rank));
            }
            if let Some(s) = g.south(rank) {
                assert_eq!(g.north(s), Some(rank));
            }
        }
    }

    #[test]
    fn transpose_partner_involution() {
        let g = Grid2D::new(16);
        for rank in 0..16 {
            let p = g.transpose_partner(rank);
            assert_eq!(g.transpose_partner(p), rank, "transpose is an involution");
        }
        // Diagonal fixed points.
        assert_eq!(g.transpose_partner(0), 0);
        assert_eq!(g.transpose_partner(5), 5);
        // (0,1) <-> (1,0).
        assert_eq!(g.transpose_partner(1), 4);
    }

    #[test]
    fn callpath_position_classes() {
        // The 9 wavefront Call-Path groups: 3 row positions x 3 col
        // positions. Verify a 4x4 grid has all 9.
        let g = Grid2D::new(16);
        let mut classes = std::collections::HashSet::new();
        for rank in 0..16 {
            let class = (
                g.north(rank).is_some(),
                g.south(rank).is_some(),
                g.west(rank).is_some(),
                g.east(rank).is_some(),
            );
            classes.insert(class);
        }
        assert_eq!(classes.len(), 9);
    }
}
