//! ElasticMedFlow (EMF) skeleton: a master–worker medical pipeline.
//!
//! EMF "is a generic framework for representing and executing medical
//! application pipelines in parallel with a master-worker paradigm with
//! mpi4py atop MPI. We created a sample DNA preprocessing pipeline of 9
//! stages with problem size of 1000 patient datasets. For each patient,
//! four DNA sequences are read, i.e., 1000 × 4 × 9 tasks are spawned."
//!
//! The skeleton dispatches those 36,000 tasks in rounds: each round the
//! master sends one task to every worker and collects the results through
//! a wildcard receive. Rounds scale inversely with worker count, exactly
//! reproducing Table II's EMF rows (P=126 → 288 iterations at frequency
//! 32, P=1001 → 36 at frequency 4; always 9 marker calls). Master and
//! workers form the **2 Call-Path groups** (Table I: K = 2).
//!
//! EMF is also the paper's small-trace corner case: intra-compression
//! collapses the whole run to a handful of PRSD events, making ScalaTrace
//! competitive below ~500 ranks (Figure 4's crossover).

use scalatrace::TracedProc;

use crate::{Class, RunSpec, Workload};

const TAG_TASK: u32 = 70;
const TAG_RESULT: u32 = 71;
/// Total pipeline tasks: 1000 patients × 4 sequences × 9 stages.
pub const TOTAL_TASKS: usize = 36_000;

/// The EMF skeleton.
#[derive(Debug, Clone, Copy, Default)]
pub struct Emf;

impl Emf {
    /// Dispatch rounds for a world of `p` ranks (p-1 workers).
    pub fn rounds(p: usize) -> usize {
        let workers = p.saturating_sub(1).max(1);
        (TOTAL_TASKS / workers).max(9)
    }
}

impl Workload for Emf {
    fn name(&self) -> &'static str {
        "EMF"
    }

    fn spec(&self, _class: Class, p: usize) -> RunSpec {
        // Always 9 marker calls: 8 from the main phase (AT, C, 6 L) and
        // one trailing report phase (AT). Frequency = rounds / 9.
        let rounds = Self::rounds(p);
        let call_frequency = (rounds as u64 / 9).max(1);
        let phase = call_frequency as usize;
        RunSpec {
            main_steps: rounds - phase,
            phase_steps: vec![phase],
            call_frequency,
            k: 2,
        }
    }

    fn step(&self, tp: &mut TracedProc, class: Class, _step: usize) {
        let me = tp.rank();
        let p = tp.size();
        // Task payload: a DNA sequence chunk.
        let task_bytes = 512 * class.multiplier();
        let result_bytes = 64 * class.multiplier();
        if p == 1 {
            // Degenerate single-rank run: master processes locally.
            tp.compute(1e-5);
            return;
        }
        if me == 0 {
            tp.frame("master_dispatch", |tp| {
                let task = vec![0u8; task_bytes];
                for worker in 1..p {
                    tp.send_absolute("send_task", worker, TAG_TASK, &task);
                }
                for _ in 1..p {
                    tp.recv_any("collect_result", TAG_RESULT, result_bytes);
                }
            });
        } else {
            tp.frame("worker_pipeline", |tp| {
                tp.recv_absolute("recv_task", 0, TAG_TASK, task_bytes);
                // Pipeline stage compute: varies by worker (dataset sizes
                // differ) — delta-time spread, stable Call-Path.
                tp.compute(1e-5 * (1.0 + (me % 7) as f64 * 0.1));
                tp.send_absolute("send_result", 0, TAG_RESULT, &vec![0u8; result_bytes]);
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::{World, WorldConfig};
    use std::collections::HashSet;

    #[test]
    fn rounds_match_table2() {
        assert_eq!(Emf::rounds(126), 288);
        assert_eq!(Emf::rounds(251), 144);
        assert_eq!(Emf::rounds(501), 72);
        assert_eq!(Emf::rounds(1001), 36);
    }

    #[test]
    fn spec_always_nine_markers() {
        for p in [126usize, 251, 501, 1001] {
            let spec = Emf.spec(Class::D, p);
            assert_eq!(spec.expected_marker_calls(), 9, "P={p}");
        }
        // Frequencies follow the paper.
        assert_eq!(Emf.spec(Class::D, 126).call_frequency, 32);
        assert_eq!(Emf.spec(Class::D, 251).call_frequency, 16);
        assert_eq!(Emf.spec(Class::D, 501).call_frequency, 8);
        assert_eq!(Emf.spec(Class::D, 1001).call_frequency, 4);
    }

    #[test]
    fn two_callpath_groups() {
        let report = World::new(WorldConfig::for_tests(5))
            .run(|proc| {
                let mut tp = TracedProc::new(proc);
                Emf.step(&mut tp, Class::A, 0);
                tp.tracer_mut().rotate_interval().call_path
            })
            .unwrap();
        let distinct: HashSet<_> = report.results.iter().collect();
        assert_eq!(distinct.len(), 2, "master vs workers");
        // All workers identical.
        assert_eq!(report.results[1], report.results[4]);
    }

    #[test]
    fn master_worker_rounds_complete() {
        World::new(WorldConfig::for_tests(4))
            .run(|proc| {
                let mut tp = TracedProc::new(proc);
                for step in 0..5 {
                    Emf.step(&mut tp, Class::A, step);
                }
            })
            .unwrap();
    }

    #[test]
    fn tiny_trace_after_compression() {
        // The EMF small-trace property: many rounds compress to a
        // constant-size trace.
        let report = World::new(WorldConfig::for_tests(3))
            .run(|proc| {
                let mut tp = TracedProc::new(proc);
                for step in 0..50 {
                    Emf.step(&mut tp, Class::A, step);
                }
                tp.tracer().trace().compressed_size()
            })
            .unwrap();
        for &size in &report.results {
            assert!(size <= 8, "EMF trace must stay tiny, got {size}");
        }
    }
}
